#include "exec/spill.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dataframe/ops.h"
#include "exec/partition.h"

namespace lafp::exec {
namespace {

using df::Column;
using df::DataFrame;
using df::DataType;

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "spill_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DataFrame AllTypesFrame() {
    auto ints = *Column::MakeInt({1, 2, 3}, {1, 0, 1}, &tracker_);
    auto doubles = *Column::MakeDouble({1.5, 2.5, -0.25}, {}, &tracker_);
    auto strings =
        *Column::MakeString({"alpha", "", "gamma"}, {1, 1, 1}, &tracker_);
    auto bools = *Column::MakeBool({1, 0, 1}, {}, &tracker_);
    auto ts = *Column::MakeTimestamp(
        {*df::ParseTimestamp("2024-01-01"), 0,
         *df::ParseTimestamp("1969-12-31 23:00:00")},
        {1, 0, 1}, &tracker_);
    auto cat = *df::CategorizeStrings(
        **Column::MakeString({"x", "y", "x"}, {}, &tracker_), &tracker_);
    return *DataFrame::Make({"i", "d", "s", "b", "t", "c"},
                            {ints, doubles, strings, bools, ts, cat});
  }

  std::string dir_;
  MemoryTracker tracker_{0};
};

TEST_F(SpillTest, RoundTripsAllTypes) {
  DataFrame frame = AllTypesFrame();
  std::string path = dir_ + "/all.bin";
  ASSERT_TRUE(WriteSpillFile(frame, path).ok());
  auto back = ReadSpillFile(path, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->names(), frame.names());
  // Categories come back as plain strings; values must match.
  EXPECT_EQ((*back->column("c"))->type(), DataType::kString);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < frame.num_columns(); ++c) {
      EXPECT_EQ(back->column(c)->ValueString(r),
                frame.column(c)->ValueString(r))
          << "col " << frame.names()[c] << " row " << r;
      EXPECT_EQ(back->column(c)->IsValid(r), frame.column(c)->IsValid(r));
    }
  }
}

TEST_F(SpillTest, EmptyFrameRoundTrips) {
  df::ColumnBuilder b(DataType::kInt64, &tracker_);
  auto empty = *DataFrame::Make({"v"}, {*b.Finish()});
  std::string path = dir_ + "/empty.bin";
  ASSERT_TRUE(WriteSpillFile(empty, path).ok());
  auto back = ReadSpillFile(path, &tracker_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 1u);
}

// The exchange wire format must round-trip a zero-row partition that
// still carries a real column table (names + dtypes). Shard workers send
// these routinely — a filter that empties one partition must not lose
// the schema or fail the clamp checks sized for nrows >= 1.
TEST_F(SpillTest, ZeroRowNonEmptyColumnsRoundTripOnWire) {
  df::ColumnBuilder ints(DataType::kInt64, &tracker_);
  df::ColumnBuilder strs(DataType::kString, &tracker_);
  df::ColumnBuilder dbls(DataType::kDouble, &tracker_);
  auto empty = *DataFrame::Make(
      {"i", "s", "d"}, {*ints.Finish(), *strs.Finish(), *dbls.Finish()});
  auto bytes = SerializeFrame(empty);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto back = DeserializeFrame(*bytes, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
  ASSERT_EQ(back->num_columns(), 3u);
  EXPECT_EQ(back->names(), empty.names());
  EXPECT_EQ((*back->column("i"))->type(), DataType::kInt64);
  EXPECT_EQ((*back->column("s"))->type(), DataType::kString);
  EXPECT_EQ((*back->column("d"))->type(), DataType::kDouble);
}

// Message-framed payloads carry an exact length: trailing bytes after
// the frame mean protocol desync and must fail, not be ignored.
TEST_F(SpillTest, WirePayloadRejectsTrailingJunk) {
  DataFrame frame = AllTypesFrame();
  auto bytes = SerializeFrame(frame);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(DeserializeFrame(*bytes, &tracker_).ok());
  EXPECT_FALSE(DeserializeFrame(*bytes + "x", &tracker_).ok());
}

// Rows claimed with no columns to hold them are unrepresentable; the
// header clamp must reject the combination (ncols == 0 && nrows > 0)
// while keeping the legitimate zero-row / zero-column cases working.
TEST_F(SpillTest, RejectsRowsWithoutColumns) {
  auto bytes = SerializeFrame(DataFrame());
  ASSERT_TRUE(bytes.ok());
  // Patch nrows (u64 at offset 12, after u64 magic + u32 ncols) to 5.
  std::string forged = *bytes;
  ASSERT_GE(forged.size(), 20u);
  forged[12] = 5;
  auto back = DeserializeFrame(forged, &tracker_);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("no columns"), std::string::npos)
      << back.status().ToString();
}

TEST_F(SpillTest, RejectsGarbageAndTruncation) {
  std::string path = dir_ + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a spill file at all";
  }
  EXPECT_FALSE(ReadSpillFile(path, &tracker_).ok());

  // Truncate a valid file mid-payload.
  DataFrame frame = AllTypesFrame();
  std::string full = dir_ + "/full.bin";
  ASSERT_TRUE(WriteSpillFile(frame, full).ok());
  auto size = std::filesystem::file_size(full);
  std::filesystem::resize_file(full, size / 2);
  EXPECT_FALSE(ReadSpillFile(full, &tracker_).ok());

  EXPECT_FALSE(ReadSpillFile(dir_ + "/missing.bin", &tracker_).ok());
}

TEST_F(SpillTest, ReloadChargesTracker) {
  DataFrame frame = AllTypesFrame();
  std::string path = dir_ + "/charge.bin";
  ASSERT_TRUE(WriteSpillFile(frame, path).ok());
  MemoryTracker fresh(0);
  auto back = ReadSpillFile(path, &fresh);
  ASSERT_TRUE(back.ok());
  EXPECT_GT(fresh.current(), 0);
  MemoryTracker tiny(8);
  EXPECT_TRUE(ReadSpillFile(path, &tiny).status().IsOutOfMemory());
}

TEST_F(SpillTest, PartitionSpillReleasesMemory) {
  MemoryTracker tracker(0);
  auto big = *Column::MakeInt(std::vector<int64_t>(10000, 7), {}, &tracker);
  auto frame = *DataFrame::Make({"v"}, {big});
  big.reset();
  Partition partition(std::move(frame));
  int64_t before = tracker.current();
  EXPECT_GT(before, 0);
  ASSERT_TRUE(partition.SpillTo(dir_, "p0").ok());
  EXPECT_LT(tracker.current(), before / 10);  // memory released
  EXPECT_TRUE(partition.spilled());
  EXPECT_EQ(partition.num_rows(), 10000u);
  auto reloaded = partition.Load(&tracker);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_rows(), 10000u);
  EXPECT_EQ((*reloaded->column("v"))->IntAt(9999), 7);
}

TEST_F(SpillTest, SpillAllAndToEager) {
  MemoryTracker tracker(0);
  auto col = *Column::MakeInt({1, 2, 3, 4, 5, 6}, {}, &tracker);
  auto frame = *DataFrame::Make({"v"}, {col});
  col.reset();
  auto parts = PartitionedFrame::FromEager(frame, 2);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->num_partitions(), 3u);
  ASSERT_TRUE(parts->SpillAll(dir_, "chunk").ok());
  auto eager = parts->ToEager(&tracker);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->num_rows(), 6u);
  EXPECT_EQ((*eager->column("v"))->IntAt(5), 6);
}

}  // namespace
}  // namespace lafp::exec
