// for-loop support: parsing, desugaring to while, execution, codegen
// round trips, and liveness through loop-carried dataframe uses.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "script/analyze.h"
#include "script/codegen.h"

namespace lafp::script {
namespace {

Result<std::string> RunEager(const std::string& source) {
  lazy::SessionOptions opts;
  opts.mode = lazy::ExecutionMode::kEager;
  std::stringstream output;
  opts.output = &output;
  lazy::Session session(opts);
  RunOptions run;
  run.analyze = false;
  LAFP_RETURN_NOT_OK(RunProgram(source, &session, run));
  return output.str();
}

TEST(ForLoopTest, ParsesAndPrints) {
  auto module = Parse("for i in range(3):\n    print(i)\n");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ASSERT_EQ(module->stmts.size(), 1u);
  EXPECT_EQ(module->stmts[0]->kind, StmtKind::kFor);
  EXPECT_EQ(module->stmts[0]->loop_var, "i");
  EXPECT_NE(module->ToSource().find("for i in range(3):"),
            std::string::npos);
}

TEST(ForLoopTest, RangeExecutes) {
  auto out = RunEager(
      "total = 0\n"
      "for i in range(5):\n"
      "    total = total + i\n"
      "print(total)\n");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "10\n");
}

TEST(ForLoopTest, RangeWithStartExecutes) {
  auto out = RunEager(
      "total = 0\n"
      "for i in range(2, 6):\n"
      "    total = total + i\n"
      "print(total)\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "14\n");
}

TEST(ForLoopTest, ListIterationExecutes) {
  auto out = RunEager(
      "names = [\"a\", \"bb\", \"ccc\"]\n"
      "total = 0\n"
      "for name in names:\n"
      "    total = total + len(name)\n"
      "print(total)\n");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "6\n");
}

TEST(ForLoopTest, NestedForLoops) {
  auto out = RunEager(
      "acc = 0\n"
      "for i in range(3):\n"
      "    for j in range(4):\n"
      "        acc = acc + 1\n"
      "print(acc)\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "12\n");
}

TEST(ForLoopTest, EmptyRangeSkipsBody) {
  auto out = RunEager(
      "for i in range(0):\n"
      "    print(\"never\")\n"
      "print(\"done\")\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "done\n");
}

TEST(ForLoopTest, CodegenRoundTripsAsWhile) {
  std::string source =
      "total = 0\n"
      "for i in range(4):\n"
      "    total = total + i\n"
      "print(total)\n";
  auto module = Parse(source);
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  auto regen = GenerateSource(*ir);
  ASSERT_TRUE(regen.ok()) << regen.status().ToString();
  // Desugared form: regenerates as a while loop and still runs.
  EXPECT_NE(regen->find("while"), std::string::npos) << *regen;
  auto out = RunEager(*regen);
  ASSERT_TRUE(out.ok()) << *regen;
  EXPECT_EQ(*out, "6\n");
}

TEST(ForLoopTest, DataframeUseInLoopStaysLive) {
  // Column selection must keep columns used inside the loop body.
  std::string dir = ::testing::TempDir() + "for_loop_csv";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/d.csv";
  {
    std::ofstream out(path);
    out << "a,b,c\n";
    for (int i = 0; i < 20; ++i) out << i << "," << i * 2 << ",x\n";
  }
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + path + "\")\n"
      "total = 0\n"
      "for i in range(3):\n"
      "    s = df.b.sum()\n"
      "    total = total + s\n"
      "print(f\"{total}\")\n";
  auto analyzed = Analyze(source);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->regenerated_source.find("usecols=[\"b\"]"),
            std::string::npos)
      << analyzed->regenerated_source;

  lazy::SessionOptions opts;
  opts.mode = lazy::ExecutionMode::kLazy;
  std::stringstream output;
  opts.output = &output;
  lazy::Session session(opts);
  RunOptions run;
  run.analyze = true;
  ASSERT_TRUE(RunProgram(source, &session, run).ok());
  // b sums to 2*(0+..+19) = 380; three iterations = 1140.
  EXPECT_NE(output.str().find("1140"), std::string::npos) << output.str();
  std::filesystem::remove_all(dir);
}

TEST(ForLoopTest, ParseErrors) {
  EXPECT_FALSE(Parse("for in range(3):\n    pass\n").ok());
  EXPECT_FALSE(Parse("for i range(3):\n    pass\n").ok());
  EXPECT_FALSE(Parse("for i in range(3)\n    pass\n").ok());
  // range() arity is checked at lowering time.
  auto module = Parse("for i in range():\n    x = 1\n");
  ASSERT_TRUE(module.ok());
  EXPECT_FALSE(LowerToIR(*module).ok());
}

}  // namespace
}  // namespace lafp::script
