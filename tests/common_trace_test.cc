#include "common/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "lazy/fat_dataframe.h"

namespace lafp {
namespace {

using lazy::ExecutionReport;
using lazy::FatDataFrame;
using lazy::Session;
using lazy::SessionOptions;
using trace::Event;
using trace::Tracer;

/// Enables the global tracer for one test and restores the previous
/// state (the tracer is process-global; tests must not leak enablement).
class TracerScope {
 public:
  TracerScope() : prev_(Tracer::Global()->enabled()) {
    Tracer::Global()->set_enabled(true);
    Tracer::Global()->Clear();
  }
  ~TracerScope() {
    Tracer::Global()->set_enabled(prev_);
    Tracer::Global()->Clear();
  }

 private:
  bool prev_;
};

std::map<uint64_t, Event> SpansById(const std::vector<Event>& events) {
  std::map<uint64_t, Event> spans;
  for (const auto& e : events) {
    if (e.span_id != 0 && e.dur_micros >= 0) spans[e.span_id] = e;
  }
  return spans;
}

int64_t IntArgOf(const Event& e, const std::string& key, int64_t missing) {
  for (const auto& a : e.args) {
    if (a.key == key && !a.is_string) return a.int_value;
  }
  return missing;
}

// Span hierarchy under the parallel scheduler: one round span per
// execution round; every node span is a child of it regardless of which
// pool thread executed the node; kernel/backend spans chain up to a node
// span. This test runs threaded and is part of the tsan-scheduler suite.
TEST(TraceTest, SpanNestingUnderParallelScheduler) {
  TracerScope tracing;

  std::string dir = ::testing::TempDir() + "trace_sched";
  std::filesystem::create_directories(dir);
  std::string csv = dir + "/data.csv";
  {
    std::ofstream out(csv);
    out << "a,b\n";
    for (int i = 0; i < 2000; ++i) out << i << "," << (i % 13) << "\n";
  }

  std::stringstream output;
  Session session(SessionOptions::Builder()
                      .threads(4)
                      .output(&output)
                      .Build());
  auto df = FatDataFrame::ReadCsv(&session, csv);
  ASSERT_TRUE(df.ok());
  auto left = df->Head(100);
  ASSERT_TRUE(left.ok());
  auto right = df->Head(200);
  ASSERT_TRUE(right.ok());
  auto joined = FatDataFrame::Concat(&session, {*left, *right});
  ASSERT_TRUE(joined.ok());
  auto eager = joined->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  ASSERT_TRUE(session.last_report().parallel);

  std::vector<Event> events = Tracer::Global()->Snapshot();
  std::map<uint64_t, Event> spans = SpansById(events);

  uint64_t round_id = 0;
  std::set<uint64_t> node_ids;
  int round_count = 0;
  for (const auto& [id, e] : spans) {
    if (e.category == "round") {
      ++round_count;
      round_id = id;
    }
    if (e.category == "node") node_ids.insert(id);
  }
  EXPECT_EQ(round_count, 1);
  ASSERT_NE(round_id, 0u);
  // Four executed nodes: read, head, head, concat.
  EXPECT_EQ(node_ids.size(), 4u);

  for (uint64_t id : node_ids) {
    const Event& node = spans[id];
    EXPECT_EQ(node.parent_id, round_id) << node.name;
    // Parent started no later than the child (same steady-clock epoch).
    EXPECT_LE(spans[round_id].ts_micros, node.ts_micros);
    // Every node span carries its graph node id.
    EXPECT_GE(IntArgOf(node, "node_id", -1), 0) << node.name;
  }
  // Every kernel/backend span reaches a node span through parent links.
  for (const auto& [id, e] : spans) {
    if (e.category != "kernel" && e.category != "backend") continue;
    uint64_t cursor = e.parent_id;
    bool reached_node = false;
    for (int hops = 0; hops < 16 && cursor != 0; ++hops) {
      auto it = spans.find(cursor);
      if (it == spans.end()) break;
      if (it->second.category == "node") {
        reached_node = true;
        break;
      }
      cursor = it->second.parent_id;
    }
    EXPECT_TRUE(reached_node) << e.category << " " << e.name;
  }
  std::filesystem::remove_all(dir);
}

// Chrome trace_event JSON schema: exact golden output for one complete
// span and one instant event (timestamps and ids are controlled by
// recording Event structs directly; tid is normalized).
TEST(TraceTest, ChromeJsonGolden) {
  TracerScope tracing;
  Tracer* tracer = Tracer::Global();

  Event span;
  span.name = "node";
  span.category = "node";
  span.ts_micros = 10;
  span.dur_micros = 5;
  span.span_id = 7;
  span.parent_id = 3;
  span.args.push_back(trace::IntArg("rows", 42));
  span.args.push_back(trace::StrArg("op", "head\"n\""));
  tracer->Record(std::move(span));

  Event instant;
  instant.name = "fault:spill.write";
  instant.category = "fault";
  instant.ts_micros = 12;
  instant.dur_micros = -1;
  instant.parent_id = 7;
  tracer->Record(std::move(instant));

  std::string json = tracer->ChromeTraceJson();
  // Normalize the dense thread id (assigned process-wide, so its value
  // depends on how many threads traced before this test).
  std::string tid = std::to_string(Tracer::CurrentThreadId());
  std::string needle = "\"tid\":" + tid;
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    json.replace(pos, needle.size(), "\"tid\":0");
    pos += 8;
  }

  EXPECT_EQ(json,
            "{\"traceEvents\":["
            "{\"name\":\"node\",\"cat\":\"node\",\"pid\":1,\"tid\":0,"
            "\"ts\":10,\"ph\":\"X\",\"dur\":5,"
            "\"args\":{\"span_id\":7,\"parent\":3,\"rows\":42,"
            "\"op\":\"head\\\"n\\\"\"}},"
            "{\"name\":\"fault:spill.write\",\"cat\":\"fault\",\"pid\":1,"
            "\"tid\":0,\"ts\":12,\"ph\":\"i\",\"s\":\"t\","
            "\"args\":{\"span_id\":0,\"parent\":7}}"
            "],\"displayTimeUnit\":\"ms\"}");
}

// Spans record their IDs, parents and LIFO context correctly on one
// thread, and SpanContextScope carries an explicit parent across.
TEST(TraceTest, SpanContextInstallAndRestore) {
  TracerScope tracing;
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    trace::Span outer("outer", "test");
    outer_id = outer.id();
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
    {
      trace::Span inner("inner", "test");
      inner_id = inner.id();
      EXPECT_EQ(Tracer::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
    {
      trace::SpanContextScope ctx(12345);
      EXPECT_EQ(Tracer::CurrentSpanId(), 12345u);
    }
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);

  std::map<uint64_t, Event> spans = SpansById(Tracer::Global()->Snapshot());
  ASSERT_EQ(spans.count(outer_id), 1u);
  ASSERT_EQ(spans.count(inner_id), 1u);
  EXPECT_EQ(spans[inner_id].parent_id, outer_id);
  EXPECT_EQ(spans[outer_id].parent_id, 0u);
}

// Disabled tracer: spans are inert and record nothing.
TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer* tracer = Tracer::Global();
  bool prev = tracer->enabled();
  tracer->set_enabled(false);
  tracer->Clear();
  {
    trace::Span span("noop", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    trace::Instant("noop", "test");
  }
  EXPECT_TRUE(tracer->Snapshot().empty());
  tracer->set_enabled(prev);
}

// Metrics shards merge correctly under concurrency: 8 threads hammer one
// counter and one histogram; totals must be exact.
TEST(MetricsTest, ShardMergeUnderEightThreads) {
  auto* registry = metrics::Registry::Global();
  auto* counter = registry->GetCounter("test.shard_merge.counter");
  auto* hist = registry->GetHistogram("test.shard_merge.hist");
  const int64_t base = counter->Value();
  const metrics::Histogram::Snapshot base_snap = hist->Snap();

  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter->Add(2);
        hist->Observe(t);  // per-thread constant: bucket counts checkable
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter->Value() - base, int64_t{2} * kThreads * kIters);
  metrics::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count - base_snap.count, int64_t{kThreads} * kIters);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += int64_t{t} * kIters;
  EXPECT_EQ(snap.sum - base_snap.sum, expected_sum);
  // Sample value 0 lands in bucket 0; value 1 in bucket 1.
  EXPECT_EQ(snap.buckets[0] - base_snap.buckets[0], kIters);
  EXPECT_EQ(snap.buckets[1] - base_snap.buckets[1], kIters);

  // Same-name lookup returns the same instrument; scrape sees the totals.
  EXPECT_EQ(registry->GetCounter("test.shard_merge.counter"), counter);
  auto scraped = registry->Scrape();
  EXPECT_EQ(scraped["test.shard_merge.counter"], counter->Value());
  EXPECT_EQ(scraped["test.shard_merge.hist.count"], snap.count);
}

// Registry gauges are last-write-wins and scrape renders text.
TEST(MetricsTest, GaugeAndRenderText) {
  auto* registry = metrics::Registry::Global();
  auto* gauge = registry->GetGauge("test.gauge");
  gauge->Set(17);
  EXPECT_EQ(gauge->Value(), 17);
  gauge->Set(-3);
  EXPECT_EQ(gauge->Value(), -3);
  std::string text = registry->RenderText();
  EXPECT_NE(text.find("test.gauge -3"), std::string::npos);
}

}  // namespace
}  // namespace lafp
