#include "dataframe/dataframe.h"

#include <gtest/gtest.h>

namespace lafp::df {
namespace {

class DataFrameTest : public ::testing::Test {
 protected:
  DataFrame MakeSample() {
    auto id = Column::MakeInt({1, 2, 3}, {}, &tracker_);
    auto fare = Column::MakeDouble({10.5, 20.0, 7.25}, {}, &tracker_);
    auto city = Column::MakeString({"NY", "SF", "NY"}, {}, &tracker_);
    return *DataFrame::Make({"id", "fare", "city"},
                            {*id, *fare, *city});
  }

  MemoryTracker tracker_{0};
};

TEST_F(DataFrameTest, BasicShape) {
  DataFrame frame = MakeSample();
  EXPECT_EQ(frame.num_rows(), 3u);
  EXPECT_EQ(frame.num_columns(), 3u);
  EXPECT_EQ(frame.names(),
            (std::vector<std::string>{"id", "fare", "city"}));
  EXPECT_TRUE(frame.HasColumn("fare"));
  EXPECT_FALSE(frame.HasColumn("nope"));
  EXPECT_EQ(frame.ColumnIndex("city"), 2);
}

TEST_F(DataFrameTest, MakeRejectsBadInputs) {
  auto a = Column::MakeInt({1, 2}, {}, &tracker_);
  auto b = Column::MakeInt({1, 2, 3}, {}, &tracker_);
  EXPECT_FALSE(DataFrame::Make({"a", "b"}, {*a, *b}).ok());  // length
  EXPECT_FALSE(DataFrame::Make({"a", "a"}, {*a, *a}).ok());  // dup names
  EXPECT_FALSE(DataFrame::Make({"a"}, {*a, *b}).ok());       // arity
}

TEST_F(DataFrameTest, ColumnLookup) {
  DataFrame frame = MakeSample();
  auto col = frame.column("fare");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)->DoubleAt(1), 20.0);
  EXPECT_TRUE(frame.column("missing").status().IsKeyError());
}

TEST_F(DataFrameTest, SelectProjectsAndReorders) {
  DataFrame frame = MakeSample();
  auto sel = frame.Select({"city", "id"});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->names(), (std::vector<std::string>{"city", "id"}));
  EXPECT_EQ(sel->num_rows(), 3u);
  EXPECT_FALSE(frame.Select({"ghost"}).ok());
}

TEST_F(DataFrameTest, WithColumnReplacesOrAppends) {
  DataFrame frame = MakeSample();
  auto doubled = Column::MakeDouble({21.0, 40.0, 14.5}, {}, &tracker_);
  auto replaced = frame.WithColumn("fare", *doubled);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->num_columns(), 3u);
  EXPECT_DOUBLE_EQ((*replaced->column("fare"))->DoubleAt(0), 21.0);

  auto appended = frame.WithColumn("tip", *doubled);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->num_columns(), 4u);

  auto bad = Column::MakeInt({1}, {}, &tracker_);
  EXPECT_FALSE(frame.WithColumn("short", *bad).ok());
}

TEST_F(DataFrameTest, DropAndRename) {
  DataFrame frame = MakeSample();
  auto dropped = frame.Drop({"fare"});
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->names(), (std::vector<std::string>{"id", "city"}));
  EXPECT_FALSE(frame.Drop({"ghost"}).ok());

  auto renamed = frame.Rename({{"city", "location"}});
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->HasColumn("location"));
  EXPECT_FALSE(renamed->HasColumn("city"));
  // Unknown keys ignored (pandas behavior).
  EXPECT_TRUE(frame.Rename({{"ghost", "x"}}).ok());
  // Collision rejected.
  EXPECT_FALSE(frame.Rename({{"city", "id"}}).ok());
}

TEST_F(DataFrameTest, SliceAndTakeRows) {
  DataFrame frame = MakeSample();
  auto sliced = frame.SliceRows(1, 5);  // clamps to available rows
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->num_rows(), 2u);
  EXPECT_EQ((*sliced->column("id"))->IntAt(0), 2);

  auto taken = frame.TakeRows({2, 0});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->num_rows(), 2u);
  EXPECT_EQ((*taken->column("id"))->IntAt(0), 3);
  EXPECT_EQ((*taken->column("city"))->StringAt(1), "NY");
}

TEST_F(DataFrameTest, EmptyFrame) {
  DataFrame empty;
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.num_columns(), 0u);
  EXPECT_EQ(empty.footprint_bytes(), 0);
  EXPECT_NE(empty.tracker(), nullptr);
}

TEST_F(DataFrameTest, FootprintSumsColumns) {
  DataFrame frame = MakeSample();
  int64_t total = 0;
  for (const auto& c : frame.columns()) total += c->footprint_bytes();
  EXPECT_EQ(frame.footprint_bytes(), total);
  EXPECT_GT(total, 0);
}

TEST_F(DataFrameTest, ToStringShowsHeaderAndElision) {
  DataFrame frame = MakeSample();
  std::string repr = frame.ToString(2);
  EXPECT_NE(repr.find("id"), std::string::npos);
  EXPECT_NE(repr.find("fare"), std::string::npos);
  EXPECT_NE(repr.find("..."), std::string::npos);  // 3 rows, 2 shown
  std::string full = frame.ToString(10);
  EXPECT_EQ(full.find("..."), std::string::npos);
}

TEST_F(DataFrameTest, CanonicalStringDeterministicAndSortable) {
  DataFrame frame = MakeSample();
  std::string a = frame.CanonicalString(false);
  EXPECT_EQ(a, frame.CanonicalString(false));
  // Row-sorted form is invariant under row permutation.
  auto shuffled = frame.TakeRows({2, 0, 1});
  ASSERT_TRUE(shuffled.ok());
  EXPECT_EQ(frame.CanonicalString(true), shuffled->CanonicalString(true));
  EXPECT_NE(frame.CanonicalString(false),
            shuffled->CanonicalString(false));
}

}  // namespace
}  // namespace lafp::df
