#include "lazy/task_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lafp::lazy {
namespace {

exec::OpDesc Desc(exec::OpKind kind) {
  exec::OpDesc d;
  d.kind = kind;
  return d;
}

TEST(TaskGraphTest, TopoSortDependenciesFirst) {
  TaskGraph graph;
  auto read = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  auto col = graph.NewNode(Desc(exec::OpKind::kGetColumn), {read});
  auto cmp = graph.NewNode(Desc(exec::OpKind::kCompare), {col});
  auto filter = graph.NewNode(Desc(exec::OpKind::kFilter), {read, cmp});
  auto order = TaskGraph::TopoSort({filter});
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](const TaskNodePtr& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(read), pos(col));
  EXPECT_LT(pos(col), pos(cmp));
  EXPECT_LT(pos(cmp), pos(filter));
  EXPECT_LT(pos(read), pos(filter));
}

TEST(TaskGraphTest, TopoSortHandlesSharedDiamond) {
  TaskGraph graph;
  auto read = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  auto a = graph.NewNode(Desc(exec::OpKind::kGetColumn), {read});
  auto b = graph.NewNode(Desc(exec::OpKind::kGetColumn), {read});
  auto join = graph.NewNode(Desc(exec::OpKind::kArith), {a, b});
  auto order = TaskGraph::TopoSort({join});
  EXPECT_EQ(order.size(), 4u);  // read appears once
  EXPECT_EQ(order.front().get(), read.get());
  EXPECT_EQ(order.back().get(), join.get());
}

TEST(TaskGraphTest, TopoSortMultipleRootsAndOrderDeps) {
  TaskGraph graph;
  auto read = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  auto print1 = graph.NewNode(Desc(exec::OpKind::kPrint), {read});
  auto print2 = graph.NewNode(Desc(exec::OpKind::kPrint), {read});
  print2->order_deps.push_back(print1);  // §3.3 ordering edge
  auto order = TaskGraph::TopoSort({print2, print1});
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](const TaskNodePtr& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(print1), pos(print2));
}

TEST(TaskGraphTest, ConsumersTracksLiveNodesOnly) {
  TaskGraph graph;
  auto read = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  auto keep = graph.NewNode(Desc(exec::OpKind::kGetColumn), {read});
  {
    auto temp = graph.NewNode(Desc(exec::OpKind::kHead), {read});
    EXPECT_EQ(graph.CountConsumers(read.get()), 2);
  }
  // temp dropped: only `keep` still consumes read.
  EXPECT_EQ(graph.CountConsumers(read.get()), 1);
  auto consumers = graph.Consumers(read.get());
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0].get(), keep.get());
}

TEST(TaskGraphTest, LiveNodesCompacts) {
  TaskGraph graph;
  auto keep = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  for (int i = 0; i < 100; ++i) {
    graph.NewNode(Desc(exec::OpKind::kHead), {});  // dropped immediately
  }
  auto live = graph.LiveNodes();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].get(), keep.get());
  EXPECT_EQ(graph.num_created(), 101);
}

TEST(TaskGraphTest, NodeIdsAreUniqueAndMonotonic) {
  TaskGraph graph;
  auto a = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  auto b = graph.NewNode(Desc(exec::OpKind::kHead), {a});
  auto c = graph.NewNode(Desc(exec::OpKind::kHead), {b});
  EXPECT_LT(a->id, b->id);
  EXPECT_LT(b->id, c->id);
}

TEST(TaskGraphTest, DotOutputContainsNodesAndEdges) {
  TaskGraph graph;
  auto read = graph.NewNode(Desc(exec::OpKind::kReadCsv), {});
  auto head = graph.NewNode(Desc(exec::OpKind::kHead), {read});
  head->persist = true;
  std::string dot = TaskGraph::ToDot({head});
  EXPECT_NE(dot.find("read_csv"), std::string::npos);
  EXPECT_NE(dot.find("head"), std::string::npos);
  EXPECT_NE(dot.find("[persist]"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(OpDescTest, FingerprintDistinguishesParameters) {
  exec::OpDesc a = Desc(exec::OpKind::kHead);
  a.n = 5;
  exec::OpDesc b = Desc(exec::OpKind::kHead);
  b.n = 10;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  exec::OpDesc c = Desc(exec::OpKind::kHead);
  c.n = 5;
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());

  exec::OpDesc cmp1 = Desc(exec::OpKind::kCompare);
  cmp1.has_scalar = true;
  cmp1.scalar = df::Scalar::Int(1);
  exec::OpDesc cmp2 = cmp1;
  cmp2.scalar = df::Scalar::Double(1.0);  // same repr, different type
  EXPECT_NE(cmp1.Fingerprint(), cmp2.Fingerprint());
}

TEST(OpDescTest, ExpectedArityMatchesShape) {
  EXPECT_EQ(exec::ExpectedArity(Desc(exec::OpKind::kReadCsv)), 0);
  EXPECT_EQ(exec::ExpectedArity(Desc(exec::OpKind::kHead)), 1);
  EXPECT_EQ(exec::ExpectedArity(Desc(exec::OpKind::kMerge)), 2);
  exec::OpDesc cmp = Desc(exec::OpKind::kCompare);
  EXPECT_EQ(exec::ExpectedArity(cmp), 2);
  cmp.has_scalar = true;
  EXPECT_EQ(exec::ExpectedArity(cmp), 1);
  EXPECT_EQ(exec::ExpectedArity(Desc(exec::OpKind::kPrint)), -1);
}

}  // namespace
}  // namespace lafp::lazy
