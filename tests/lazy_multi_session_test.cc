// Multi-session re-entrancy: N concurrent sessions over one shared
// ResultCache, one shared scheduler pool, and one parent memory budget
// must produce byte-identical output to the same programs run serially —
// and session-scoped fault injectors must never leak into a neighbor
// session. Runs under the tsan-scheduler preset, so every shared path
// (cache LRU, pool queue, tracker chain, injector TLS) is TSan-checked.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "lazy/fat_dataframe.h"
#include "lazy/result_cache.h"
#include "optimizer/passes.h"
#include "script/analyze.h"

namespace lafp::lazy {
namespace {

using exec::BackendKind;

class MultiSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "multi_session_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/t.csv";
    std::ofstream out(csv_path_);
    out << "a,b,c\n";
    for (int i = 0; i < 200; ++i) {
      out << i << "," << i % 7 << "," << (i * 3) % 11 << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// One of `n` distinct programs (different filters / aggregations so
  /// concurrent sessions do not trivially share one plan).
  std::string Program(int i) const {
    std::string src = "import lazyfatpandas.pandas as pd\n";
    src += "df = pd.read_csv(\"" + csv_path_ + "\")\n";
    src += "df = df[df.a > " + std::to_string(i * 3) + "]\n";
    src += "g = df.groupby([\"b\"])[\"c\"].sum()\n";
    src += "print(g)\n";
    src += "print(len(df))\n";
    return src;
  }

  /// Run one program in a fresh session. `shared` wires the session to a
  /// cross-session cache / pool / parent budget; null fields fall back to
  /// private ones.
  struct Shared {
    std::shared_ptr<ResultCache> cache;
    ThreadPool* scheduler_pool = nullptr;
    MemoryTracker* parent_budget = nullptr;
    std::string faults;
    CancellationToken* cancel = nullptr;
  };

  struct Outcome {
    Status status;
    std::string output;
  };

  Outcome RunOne(const std::string& source, const Shared& shared) const {
    Outcome outcome;
    // Child budget carved from the shared parent (the serve carving
    // model); generous enough that correct runs never OOM.
    MemoryTracker tracker(shared.parent_budget, 0);
    std::stringstream output;

    SessionOptions opts;
    opts.backend = BackendKind::kPandas;
    opts.tracker = &tracker;
    opts.output = &output;
    opts.mode = ExecutionMode::kLazy;
    opts.lazy_print = true;
    opts.exec.num_threads = 4;
    opts.exec.scheduler_pool = shared.scheduler_pool;
    opts.exec.cancel = shared.cancel;
    opts.fault_config = shared.faults;
    if (shared.cache != nullptr) {
      opts.cache.enabled = true;
      opts.cache.cache = shared.cache;
    }
    Session session(opts);
    opt::InstallDefaultOptimizer(&session);
    script::RunOptions run_opts;
    run_opts.analyze = true;
    outcome.status = script::RunProgram(source, &session, run_opts);
    outcome.output = output.str();
    return outcome;
  }

  std::string dir_, csv_path_;
};

TEST_F(MultiSessionTest, ConcurrentSessionsMatchSerialByteForByte) {
  constexpr int kSessions = 6;
  // Serial reference: fresh cache, no sharing.
  std::vector<std::string> expected(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    Outcome ref = RunOne(Program(i), Shared{});
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    ASSERT_FALSE(ref.output.empty());
    expected[i] = ref.output;
  }

  // Concurrent: one shared cache, one shared scheduler pool, one parent
  // budget — the serve wiring. Two waves so the second wave exercises
  // warm-cache splicing under concurrency.
  auto cache = std::make_shared<ResultCache>();
  ThreadPool pool(4);
  MemoryTracker parent(1u << 30);
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<Outcome> outcomes(kSessions);
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      threads.emplace_back([&, i] {
        Shared shared;
        shared.cache = cache;
        shared.scheduler_pool = &pool;
        shared.parent_budget = &parent;
        outcomes[i] = RunOne(Program(i), shared);
      });
    }
    for (auto& t : threads) t.join();
    for (int i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(outcomes[i].status.ok())
          << "wave " << wave << ": " << outcomes[i].status.ToString();
      EXPECT_EQ(outcomes[i].output, expected[i]) << "wave " << wave
                                                 << " session " << i;
    }
  }
  // Everything released: the parent budget drained back to zero.
  EXPECT_EQ(parent.current(), 0);
}

TEST_F(MultiSessionTest, SessionFaultConfigsStayScoped) {
  // One faulted session (every backend.execute fails, fallback off) next
  // to clean sessions on the same shared pool: the fault must hit only
  // the session that armed it.
  ThreadPool pool(4);
  constexpr int kClean = 4;
  std::vector<Outcome> clean(kClean);
  Outcome faulted;
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    Shared shared;
    shared.scheduler_pool = &pool;
    shared.faults = "backend.execute:nth=1,fires=-1,code=oom";
    faulted = RunOne(Program(0), shared);
  });
  for (int i = 0; i < kClean; ++i) {
    threads.emplace_back([&, i] {
      Shared shared;
      shared.scheduler_pool = &pool;
      clean[i] = RunOne(Program(i + 1), shared);
    });
  }
  for (auto& t : threads) t.join();
  // OOM never falls back, so the armed session must fail with it.
  ASSERT_FALSE(faulted.status.ok());
  EXPECT_TRUE(faulted.status.IsOutOfMemory()) << faulted.status.ToString();
  for (int i = 0; i < kClean; ++i) {
    EXPECT_TRUE(clean[i].status.ok()) << clean[i].status.ToString();
  }
}

TEST_F(MultiSessionTest, PreCancelledTokenAbortsRound) {
  CancellationToken cancel;
  cancel.Cancel();
  Shared shared;
  shared.cancel = &cancel;
  Outcome outcome = RunOne(Program(0), shared);
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.status.IsCancelled()) << outcome.status.ToString();
}

TEST_F(MultiSessionTest, ChildBudgetRejectsCleanlyAndReleasesParent) {
  MemoryTracker parent(1u << 30);
  {
    // A 1-byte child budget cannot hold the CSV columns: the run must
    // fail with OOM, not crash, and must leave nothing charged.
    MemoryTracker tracker(&parent, 1);
    std::stringstream output;
    SessionOptions opts;
    opts.backend = BackendKind::kPandas;
    opts.tracker = &tracker;
    opts.output = &output;
    opts.mode = ExecutionMode::kLazy;
    Session session(opts);
    script::RunOptions run_opts;
    run_opts.analyze = false;
    Status st = script::RunProgram(Program(0), &session, run_opts);
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();
  }
  EXPECT_EQ(parent.current(), 0);
}

TEST_F(MultiSessionTest, GlobalCacheFirstTouchIsRaceFree) {
  // Satellite: concurrent first-touch of the LAFP_CACHE-backed shared
  // cache. The magic static must hand every thread the same instance
  // (TSan verifies the initializer does not race).
  constexpr int kThreads = 8;
  std::vector<const ResultCache*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { seen[i] = ResultCache::Global().get(); });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[i], seen[0]);
}

}  // namespace
}  // namespace lafp::lazy
