#include "exec/modin_backend.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/timer.h"
#include "lazy/fat_dataframe.h"

namespace lafp::exec {
namespace {

using df::AggFunc;
using df::Scalar;

class ModinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "modin_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/data.csv";
    std::ofstream out(csv_path_);
    out << "id,v,grp\n";
    for (int i = 0; i < 5000; ++i) {
      out << i << "," << (i % 100) << "," << (i % 5) << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Backend> MakeModin(MemoryTracker* tracker,
                                     size_t partition_rows = 512,
                                     int64_t overhead_us = 0) {
    BackendConfig config;
    config.partition_rows = partition_rows;
    config.num_threads = 4;
    config.task_overhead_us = overhead_us;
    return MakeBackend(BackendKind::kModin, tracker, config);
  }

  Result<BackendValue> Read(Backend* backend) {
    OpDesc desc;
    desc.kind = OpKind::kReadCsv;
    desc.path = csv_path_;
    return backend->Execute(desc, {});
  }

  std::string dir_, csv_path_;
};

TEST_F(ModinTest, ReadIsEagerAndPartitioned) {
  MemoryTracker tracker(0);
  auto backend = MakeModin(&tracker);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  // Eager: the data is resident right after Execute.
  EXPECT_GT(tracker.current(), 5000 * 3 * 4);
  auto eager = backend->Materialize(*frame);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 5000u);
}

TEST_F(ModinTest, MapOpsRunPerPartition) {
  MemoryTracker tracker(0);
  auto backend = MakeModin(&tracker);
  auto frame = Read(backend.get());
  OpDesc get;
  get.kind = OpKind::kGetColumn;
  get.column = "v";
  auto v = backend->Execute(get, {*frame});
  ASSERT_TRUE(v.ok());
  OpDesc cmp;
  cmp.kind = OpKind::kCompare;
  cmp.compare_op = df::CompareOp::kLt;
  cmp.has_scalar = true;
  cmp.scalar = Scalar::Int(50);
  auto mask = backend->Execute(cmp, {*v});
  ASSERT_TRUE(mask.ok());
  OpDesc filter;
  filter.kind = OpKind::kFilter;
  auto filtered = backend->Execute(filter, {*frame, *mask});
  ASSERT_TRUE(filtered.ok());
  auto eager = backend->Materialize(*filtered);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 2500u);
}

TEST_F(ModinTest, MisalignedPartitionsFallBackToConcat) {
  MemoryTracker tracker(0);
  auto backend = MakeModin(&tracker);
  auto frame = Read(backend.get());
  // A mask imported with a different partitioning (one big partition).
  MemoryTracker side(0);
  std::vector<uint8_t> bits(5000, 0);
  for (size_t i = 0; i < 5000; i += 2) bits[i] = 1;
  auto mask_col = *df::Column::MakeBool(bits, {}, &side);
  auto mask_frame = *df::DataFrame::Make({"m"}, {mask_col});
  BackendConfig wide;
  wide.partition_rows = 100000;  // single partition
  // Import through the same backend but the partition count differs from
  // the csv read (512-row chunks).
  auto imported = backend->FromEager(EagerValue::Frame(mask_frame));
  ASSERT_TRUE(imported.ok());
  OpDesc filter;
  filter.kind = OpKind::kFilter;
  auto filtered = backend->Execute(filter, {*frame, *imported});
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  auto eager = backend->Materialize(*filtered);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 2500u);
}

TEST_F(ModinTest, TwoPhaseGroupByWithNuniqueFallback) {
  MemoryTracker tracker(0);
  auto backend = MakeModin(&tracker);
  auto frame = Read(backend.get());
  OpDesc gb;
  gb.kind = OpKind::kGroupByAgg;
  gb.columns = {"grp"};
  gb.aggs = {{"v", AggFunc::kSum, "s"}, {"v", AggFunc::kNunique, "u"}};
  auto grouped = backend->Execute(gb, {*frame});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  auto eager = backend->Materialize(*grouped);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 5u);
  // Each grp holds v values i%100 where i%5==g: 20 distinct residues.
  EXPECT_EQ((*eager->frame.column("u"))->IntAt(0), 20);
}

TEST_F(ModinTest, TaskOverheadSlowsExecution) {
  MemoryTracker t1(0), t2(0);
  auto fast = MakeModin(&t1, 512, 0);
  auto slow = MakeModin(&t2, 512, 2000);  // 2ms per partition task
  Timer timer;
  ASSERT_TRUE(Read(fast.get()).ok());
  double fast_seconds = timer.ElapsedSeconds();
  timer.Restart();
  ASSERT_TRUE(Read(slow.get()).ok());
  double slow_seconds = timer.ElapsedSeconds();
  // 10 partitions x 2ms = +20ms minimum.
  EXPECT_GT(slow_seconds, fast_seconds + 0.01);
}

TEST_F(ModinTest, BudgetedReadFails) {
  MemoryTracker tiny(10'000);
  auto backend = MakeModin(&tiny);
  auto frame = Read(backend.get());
  EXPECT_TRUE(frame.status().IsOutOfMemory());
}

// Kernels run by Modin partition workers are attributed to their node's
// NodeStats: each worker records into a local sink that the launching
// thread merges back (df::SharedKernelCounters). A parallel Modin round
// must therefore report nonzero kernel_micros and morsels.
TEST_F(ModinTest, ParallelRoundAttributesWorkerKernels) {
  // Big enough that per-partition kernel time measures above the Timer's
  // microsecond resolution.
  std::string big_csv = dir_ + "/big.csv";
  {
    std::ofstream out(big_csv);
    out << "id,v,grp\n";
    for (int i = 0; i < 200000; ++i) {
      out << i << "," << (i % 1000) << "," << (i % 7) << "\n";
    }
  }
  MemoryTracker tracker(0);
  std::stringstream output;
  lazy::Session session(lazy::SessionOptions::Builder()
                            .backend(BackendKind::kModin)
                            .threads(4)
                            .partition_rows(4096)
                            .tracker(&tracker)
                            .output(&output)
                            .Build());
  auto frame = lazy::FatDataFrame::ReadCsv(&session, big_csv);
  ASSERT_TRUE(frame.ok());
  auto v = frame->Col("v");
  ASSERT_TRUE(v.ok());
  auto scaled = v->ArithScalar(df::ArithOp::kMul, Scalar::Int(3));
  ASSERT_TRUE(scaled.ok());
  auto shifted = scaled->ArithScalar(df::ArithOp::kAdd, Scalar::Int(1));
  ASSERT_TRUE(shifted.ok());
  auto eager = shifted->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  const lazy::ExecutionReport& report = session.last_report();
  EXPECT_TRUE(report.parallel);
  // Worker-side kernel activity flowed into the round totals.
  EXPECT_GT(report.kernel_morsels, 0);
  EXPECT_GT(report.kernel_micros, 0);
  // And into the individual map nodes: each arith node ran one kernel per
  // partition (200000 / 4096 -> 49 partitions).
  bool found_arith = false;
  for (const auto& n : report.nodes) {
    if (n.op.find("arith") == std::string::npos) continue;
    found_arith = true;
    EXPECT_GE(n.morsels, 49) << n.op;
  }
  EXPECT_TRUE(found_arith);
}

}  // namespace
}  // namespace lafp::exec
