// Smoke test for the LAFP_TRACE env knob and the Chrome trace exporter:
// arms tracing through the environment (before the tracer singleton is
// first touched), runs a representative corpus-style program on the Modin
// backend, and validates the exported JSON end to end — it must parse,
// contain at least one span per executed node, account every node's
// kernel morsels to descendant kernel spans, and show cross-thread
// attribution (partition-worker kernels pointing at their owning node).

#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/backend.h"
#include "lazy/fat_dataframe.h"
#include "lazy/session.h"

namespace lafp {
namespace {

using trace::Tracer;

const std::string& TracePath() {
  static const std::string path =
      "/tmp/lafp_trace_smoke_" + std::to_string(::getpid()) + ".json";
  return path;
}

// Set LAFP_TRACE during static initialization, before any code touches
// Tracer::Global() — this is exactly how a user arms tracing for a binary
// they do not control.
const bool g_env_armed = [] {
  ::setenv("LAFP_TRACE", TracePath().c_str(), /*overwrite=*/1);
  return true;
}();

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough to validate that the
// exporter emits well-formed JSON and to walk the traceEvents array.

struct JsonValue {
  enum Kind { kNull, kBool, kInt, kString, kArray, kObject };
  Kind kind = kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  std::string string_value;
  std::vector<JsonValue> items;                // kArray
  std::map<std::string, JsonValue> fields;     // kObject

  const JsonValue* Field(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  int64_t IntField(const std::string& key, int64_t missing) const {
    const JsonValue* v = Field(key);
    return (v != nullptr && v->kind == kInt) ? v->int_value : missing;
  }
  std::string StrField(const std::string& key) const {
    const JsonValue* v = Field(key);
    return (v != nullptr && v->kind == kString) ? v->string_value : "";
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }
  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }
  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }
  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Decode only enough for the exporter's control-char escapes.
            int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            *out += static_cast<char>(code);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }
  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      size_t len = std::char_traits<char>::length(kw);
      if (text_.compare(pos_, len, kw) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::kBool;
      out->bool_value = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::kBool;
      out->bool_value = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::kNull;
      return true;
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kInt;
    out->int_value = std::stoll(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(TraceSmokeTest, EnvKnobArmsTracer) {
  ASSERT_TRUE(g_env_armed);
  EXPECT_TRUE(Tracer::Global()->enabled());
  EXPECT_EQ(Tracer::Global()->export_path(), TracePath());
}

TEST(TraceSmokeTest, CorpusProgramHasSpanPerNodeWithMorselAccounting) {
  Tracer* tracer = Tracer::Global();
  ASSERT_TRUE(tracer->enabled());
  tracer->Clear();

  std::string dir = ::testing::TempDir() + "trace_smoke";
  std::filesystem::create_directories(dir);
  std::string csv = dir + "/data.csv";
  {
    std::ofstream out(csv);
    out << "id,v,grp\n";
    for (int i = 0; i < 20000; ++i) {
      out << i << "," << (i % 500) << "," << (i % 7) << "\n";
    }
  }

  std::stringstream output;
  lazy::Session session(lazy::SessionOptions::Builder()
                            .backend(exec::BackendKind::kModin)
                            .threads(4)
                            .partition_rows(1024)
                            .output(&output)
                            .Build());
  auto frame = lazy::FatDataFrame::ReadCsv(&session, csv);
  ASSERT_TRUE(frame.ok());
  auto v = frame->Col("v");
  ASSERT_TRUE(v.ok());
  auto scaled = v->ArithScalar(df::ArithOp::kMul, df::Scalar::Int(3));
  ASSERT_TRUE(scaled.ok());
  auto shifted = scaled->ArithScalar(df::ArithOp::kAdd, df::Scalar::Int(1));
  ASSERT_TRUE(shifted.ok());
  auto eager = shifted->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  const lazy::ExecutionReport& report = session.last_report();
  ASSERT_FALSE(report.nodes.empty());

  std::string trace_file = dir + "/trace.json";
  ASSERT_TRUE(tracer->WriteChromeTrace(trace_file).ok());
  std::ifstream in(trace_file);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // The export parses as JSON with the trace_event envelope.
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text.substr(0, 400);
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.Field("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_FALSE(events->items.empty());

  // Index complete spans by id; collect node + kernel spans.
  struct SpanInfo {
    std::string cat;
    int64_t parent = 0;
    int64_t tid = 0;
    int64_t node_id = -1;
    int64_t morsels = 0;
  };
  std::map<int64_t, SpanInfo> spans;
  for (const JsonValue& e : events->items) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    ASSERT_NE(e.Field("name"), nullptr);
    ASSERT_NE(e.Field("ph"), nullptr);
    const JsonValue* args = e.Field("args");
    ASSERT_NE(args, nullptr);
    if (e.StrField("ph") != "X") continue;
    int64_t id = args->IntField("span_id", 0);
    ASSERT_NE(id, 0);
    SpanInfo info;
    info.cat = e.StrField("cat");
    info.parent = args->IntField("parent", 0);
    info.tid = e.IntField("tid", 0);
    info.node_id = args->IntField("node_id", -1);
    info.morsels = args->IntField("morsels", 0);
    spans.emplace(id, info);
  }

  // Walk a span's parent chain to its owning node span (0 = none).
  auto owning_node = [&](int64_t id) -> int64_t {
    int64_t cursor = spans.count(id) ? spans[id].parent : 0;
    for (int hops = 0; hops < 16 && cursor != 0; ++hops) {
      auto it = spans.find(cursor);
      if (it == spans.end()) return 0;
      if (it->second.cat == "node") return cursor;
      cursor = it->second.parent;
    }
    return 0;
  };

  // >= 1 span per executed (non-reused) node, matched by node_id.
  std::map<int64_t, int64_t> node_span_by_node_id;
  for (const auto& [id, info] : spans) {
    if (info.cat == "node") node_span_by_node_id[info.node_id] = id;
  }
  for (const auto& n : report.nodes) {
    if (n.reused) continue;
    EXPECT_TRUE(node_span_by_node_id.count(static_cast<int64_t>(n.node_id)))
        << "no span for node " << n.node_id << " (" << n.op << ")";
  }

  // Every node's kernel morsels are fully accounted to descendant kernel
  // spans — including kernels that ran on Modin partition workers.
  std::map<int64_t, int64_t> morsel_sum;  // node span id -> kernel morsels
  bool cross_thread = false;
  for (const auto& [id, info] : spans) {
    if (info.cat != "kernel") continue;
    int64_t node = owning_node(id);
    if (node == 0) continue;
    morsel_sum[node] += info.morsels;
    if (info.tid != spans[node].tid) cross_thread = true;
  }
  int checked = 0;
  for (const auto& [id, info] : spans) {
    if (info.cat != "node" || info.morsels == 0) continue;
    ++checked;
    EXPECT_EQ(morsel_sum[id], info.morsels) << "node span " << id;
  }
  EXPECT_GT(checked, 0);
  // 20000 rows / 1024-row partitions: the arith kernels ran on partition
  // workers, so some kernel span must live on a different thread than its
  // owning node span.
  EXPECT_TRUE(cross_thread);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lafp
