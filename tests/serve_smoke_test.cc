// End-to-end smoke for the lafp_serve query service: concurrent requests
// against real sockets, admission control over capacity, cancellation on
// client disconnect, clean error statuses, and a well-formed /metrics
// scrape. The ServeOptions::run_started_hook test seam holds admitted
// requests in flight deterministically, so "N requests occupying slots"
// is a controlled state, not a race.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.h"
#include "serve/server.h"

namespace lafp::serve {
namespace {

constexpr const char* kCsvBody = "a,b\n1,2\n3,4\n5,6\n";

/// Minimal blocking HTTP client for the loopback service.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() { Close(); }

  bool connected() const { return connected_; }

  void Send(const std::string& method, const std::string& target,
            const std::string& body) {
    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: localhost\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    req += body;
    SendRaw(req);
  }

  void SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t r = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (r <= 0) return;
      sent += static_cast<size_t>(r);
    }
  }

  /// Read until the server closes; returns the raw response.
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    while (true) {
      ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::atoi(response.substr(9, 3).c_str());
}

std::string BodyOf(const std::string& response) {
  auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::string RoundTrip(int port, const std::string& method,
                      const std::string& target, const std::string& body) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  client.Send(method, target, body);
  return client.ReadAll();
}

class ServeSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_smoke_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/t.csv";
    std::ofstream out(csv_path_);
    out << kCsvBody;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Program() const {
    return "import lazyfatpandas.pandas as pd\n"
           "df = pd.read_csv(\"" + csv_path_ + "\")\n"
           "print(len(df))\n";
  }

  /// Spin until `cond` or ~5 s.
  template <typename Cond>
  bool WaitFor(Cond cond) {
    for (int i = 0; i < 250; ++i) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return cond();
  }

  std::string dir_, csv_path_;
};

TEST_F(ServeSmokeTest, HealthzAndUnknownPathsAnswerCleanly) {
  ServeOptions options;
  options.port = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(StatusOf(RoundTrip(service.port(), "GET", "/healthz", "")), 200);
  EXPECT_EQ(StatusOf(RoundTrip(service.port(), "GET", "/nope", "")), 404);
  EXPECT_EQ(StatusOf(RoundTrip(service.port(), "GET", "/run", "")), 405);
  service.Stop();
}

TEST_F(ServeSmokeTest, ConcurrentRunsReturnCorrectOutputs) {
  ServeOptions options;
  options.port = 0;
  options.max_sessions = 8;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());
  constexpr int kRequests = 8;
  std::vector<std::string> responses(kRequests);
  std::vector<std::thread> threads;
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      // Mix modes and backends across the concurrent batch.
      std::string target = "/run";
      if (i % 3 == 1) target += "?mode=eager";
      if (i % 3 == 2) target += "?backend=modin";
      responses[i] =
          RoundTrip(service.port(), "POST", target, Program());
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(StatusOf(responses[i]), 200) << responses[i];
    EXPECT_EQ(BodyOf(responses[i]), "3\n") << responses[i];
  }
  service.Stop();
}

TEST_F(ServeSmokeTest, OverAdmissionGetsCleanTooManyRequests) {
  std::atomic<bool> release{false};
  ServeOptions options;
  options.port = 0;
  options.max_sessions = 1;
  // Hold admitted requests until the test releases them.
  options.run_started_hook = [&](CancellationToken*) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());

  // Occupy the single admission slot.
  Client blocked(service.port());
  ASSERT_TRUE(blocked.connected());
  blocked.Send("POST", "/run", Program());
  ASSERT_TRUE(WaitFor([&] { return service.in_flight() == 1; }));

  // The slot is held: the next /run is rejected immediately with a clean
  // 429 — it never queues behind the running query.
  std::string rejected =
      RoundTrip(service.port(), "POST", "/run", Program());
  EXPECT_EQ(StatusOf(rejected), 429) << rejected;

  // Control endpoints are not subject to /run admission.
  EXPECT_EQ(StatusOf(RoundTrip(service.port(), "GET", "/healthz", "")), 200);

  // Release the held query; it completes normally.
  release.store(true, std::memory_order_release);
  std::string response = blocked.ReadAll();
  EXPECT_EQ(StatusOf(response), 200) << response;
  EXPECT_EQ(BodyOf(response), "3\n");
  ASSERT_TRUE(WaitFor([&] { return service.in_flight() == 0; }));

  // The freed slot admits again.
  std::string after = RoundTrip(service.port(), "POST", "/run", Program());
  EXPECT_EQ(StatusOf(after), 200) << after;
  service.Stop();
}

TEST_F(ServeSmokeTest, DisconnectCancelsInFlightQuery) {
  std::atomic<bool> release{false};
  ServeOptions options;
  options.port = 0;
  options.max_sessions = 1;
  // Hold the request until the disconnect monitor trips its token (the
  // release flag is a hang safeguard only).
  options.run_started_hook = [&](CancellationToken* token) {
    while (!token->cancelled() &&
           !release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());

  {
    Client doomed(service.port());
    ASSERT_TRUE(doomed.connected());
    doomed.Send("POST", "/run", Program());
    ASSERT_TRUE(WaitFor([&] { return service.in_flight() == 1; }));
    doomed.Close();  // client walks away mid-query
  }
  // The monitor notices the dead socket and trips the session's token;
  // the scheduler then abandons the round at its first node boundary and
  // the admission slot frees.
  ASSERT_TRUE(WaitFor([&] { return service.in_flight() == 0; }));
  release.store(true, std::memory_order_release);

  std::string metrics =
      BodyOf(RoundTrip(service.port(), "GET", "/metrics", ""));
  EXPECT_NE(metrics.find("serve.cancelled"), std::string::npos) << metrics;
  service.Stop();
}

TEST_F(ServeSmokeTest, ErrorsMapToCleanStatuses) {
  ServeOptions options;
  options.port = 0;
  // Tiny process budget: a real query OOMs cleanly via the tracker chain.
  options.memory_budget_bytes = 1;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());

  // Parse error -> 400.
  std::string bad = RoundTrip(service.port(), "POST", "/run",
                              "this is not pdscript (");
  EXPECT_EQ(StatusOf(bad), 400) << bad;
  // Unknown knobs -> 400.
  EXPECT_EQ(StatusOf(RoundTrip(service.port(), "POST", "/run?backend=spark",
                               Program())),
            400);
  EXPECT_EQ(StatusOf(RoundTrip(service.port(), "POST", "/run?mode=warp",
                               Program())),
            400);
  // Budget denial -> 507, not a dropped connection.
  std::string oom = RoundTrip(service.port(), "POST", "/run", Program());
  EXPECT_EQ(StatusOf(oom), 507) << oom;
  // Malformed HTTP framing -> 400.
  {
    Client raw(service.port());
    ASSERT_TRUE(raw.connected());
    raw.SendRaw("not an http request line\r\n\r\n");
    EXPECT_EQ(StatusOf(raw.ReadAll()), 400);
  }
  service.Stop();
}

TEST_F(ServeSmokeTest, MetricsScrapeIsWellFormed) {
  ServeOptions options;
  options.port = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());
  // Generate some traffic first.
  EXPECT_EQ(
      StatusOf(RoundTrip(service.port(), "POST", "/run", Program())), 200);
  std::string response = RoundTrip(service.port(), "GET", "/metrics", "");
  EXPECT_EQ(StatusOf(response), 200);
  std::string body = BodyOf(response);
  // Serve-level instruments are present, and every line is "name value".
  EXPECT_NE(body.find("serve.requests"), std::string::npos) << body;
  EXPECT_NE(body.find("serve.in_flight"), std::string::npos) << body;
  EXPECT_NE(body.find("serve.cache.effective_capacity"), std::string::npos)
      << body;
  size_t lines = 0;
  std::istringstream stream(body);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find(' '), std::string::npos) << "bare line: " << line;
  }
  EXPECT_GT(lines, 0u);
  service.Stop();
}

TEST_F(ServeSmokeTest, TraceParameterAppendsReport) {
  ServeOptions options;
  options.port = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());
  std::string response =
      RoundTrip(service.port(), "POST", "/run?trace=1", Program());
  EXPECT_EQ(StatusOf(response), 200) << response;
  EXPECT_NE(BodyOf(response).find("--- trace ---"), std::string::npos)
      << response;
  service.Stop();
}

// The request reader must be segmentation-independent: a request split
// into arbitrary write bursts (slow client, small MTU) parses exactly
// like the same bytes in one burst. The old reader 400ed when the body's
// trailing bytes or a leading keep-alive CRLF landed in the header recv.
TEST_F(ServeSmokeTest, SplitWritesParseIdentically) {
  ServeOptions options;
  options.port = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());
  const std::string body = Program();
  std::string req = "POST /run HTTP/1.1\r\nHost: localhost\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  // Dribble the request a few bytes at a time, pausing so each write
  // lands in its own recv on the server side.
  for (size_t chunk : {1u, 3u, 7u, 16u}) {
    Client client(service.port());
    ASSERT_TRUE(client.connected());
    for (size_t i = 0; i < req.size(); i += chunk) {
      client.SendRaw(req.substr(i, chunk));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::string response = client.ReadAll();
    EXPECT_EQ(StatusOf(response), 200)
        << "chunk=" << chunk << ": " << response;
  }
  service.Stop();
}

TEST_F(ServeSmokeTest, LeadingAndTrailingCrlfTolerated) {
  ServeOptions options;
  options.port = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Start().ok());
  const std::string body = Program();
  std::string req = "POST /run HTTP/1.1\r\nHost: localhost\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  {
    // RFC 9112 §2.2: CRLFs before the request line are ignored.
    Client client(service.port());
    ASSERT_TRUE(client.connected());
    client.SendRaw("\r\n\r\n" + req);
    EXPECT_EQ(StatusOf(client.ReadAll()), 200);
  }
  {
    // A sloppy client's CRLF after the body is outside the message and
    // must not poison it — even when it arrives in the same burst.
    Client client(service.port());
    ASSERT_TRUE(client.connected());
    client.SendRaw(req + "\r\n");
    EXPECT_EQ(StatusOf(client.ReadAll()), 200);
  }
  service.Stop();
}

TEST_F(ServeSmokeTest, TargetParsingDecodesQueries) {
  std::string path;
  std::map<std::string, std::string> params;
  ParseTarget("/run?mode=lazy&trace=1&q=a%20b+c", &path, &params);
  EXPECT_EQ(path, "/run");
  EXPECT_EQ(params["mode"], "lazy");
  EXPECT_EQ(params["trace"], "1");
  EXPECT_EQ(params["q"], "a b c");
  ParseTarget("/metrics", &path, &params);
  EXPECT_EQ(path, "/metrics");
  EXPECT_TRUE(params.empty());
}

}  // namespace
}  // namespace lafp::serve
