#include "common/fault.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace lafp {
namespace {

TEST(FaultInjectorTest, DisabledByDefaultAndFastPath) {
  FaultInjector::Global()->Clear();
  EXPECT_FALSE(FaultInjector::Global()->enabled());
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  EXPECT_TRUE(FaultPoint("nonexistent.site").ok());
}

TEST(FaultInjectorTest, NthFiresDeterministically) {
  FaultScope scope("spill.write:nth=3");
  ASSERT_TRUE(scope.status().ok());
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  Status fired = FaultPoint("spill.write");
  EXPECT_TRUE(fired.IsIOError()) << fired.ToString();
  EXPECT_NE(fired.message().find("spill.write"), std::string::npos);
  // max_fires defaults to 1: the site goes quiet afterwards.
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  EXPECT_EQ(FaultInjector::Global()->hits("spill.write"), 4);
  EXPECT_EQ(FaultInjector::Global()->fires("spill.write"), 1);
}

TEST(FaultInjectorTest, BareSiteArmsImmediateSingleShot) {
  FaultScope scope("csv.read:");
  ASSERT_TRUE(scope.status().ok());
  EXPECT_FALSE(FaultPoint("csv.read").ok());
  EXPECT_TRUE(FaultPoint("csv.read").ok());
}

TEST(FaultInjectorTest, UnlimitedFires) {
  FaultScope scope("mem.reserve:nth=1,fires=-1,code=oom");
  ASSERT_TRUE(scope.status().ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FaultPoint("mem.reserve").IsOutOfMemory());
  }
}

TEST(FaultInjectorTest, CodesMapToStatusCodes) {
  {
    FaultScope scope("a:code=exec");
    EXPECT_TRUE(FaultPoint("a").IsExecutionError());
  }
  {
    FaultScope scope("a:code=notimpl");
    EXPECT_TRUE(FaultPoint("a").IsNotImplemented());
  }
  {
    FaultScope scope("a:code=cancelled");
    EXPECT_TRUE(FaultPoint("a").IsCancelled());
  }
}

TEST(FaultInjectorTest, ProbabilityIsSeededAndReproducible) {
  auto run = [](uint64_t seed) {
    FaultScope scope("x:p=0.5,seed=" + std::to_string(seed) + ",fires=-1");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!FaultPoint("x").ok());
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // 2^-64 flake odds; astronomically safe
  // p=0.5 over 64 draws fires at least once (probability 1 - 2^-64).
  auto fired = run(7);
  EXPECT_NE(std::count(fired.begin(), fired.end(), true), 0);
}

TEST(FaultInjectorTest, ScopeRestoresPreviousSpecsWithFreshCounters) {
  FaultScope outer("spill.read:nth=2");
  ASSERT_TRUE(outer.status().ok());
  EXPECT_TRUE(FaultPoint("spill.read").ok());  // hit 1
  {
    FaultScope inner("csv.write:nth=1");
    EXPECT_TRUE(FaultPoint("spill.read").ok());  // not armed inside inner
    EXPECT_FALSE(FaultPoint("csv.write").ok());
  }
  // Counters reset on restore: deterministic replay needs hit 1 again.
  EXPECT_TRUE(FaultPoint("spill.read").ok());
  EXPECT_FALSE(FaultPoint("spill.read").ok());
}

TEST(FaultInjectorTest, ParseRejectsMalformedConfigs) {
  std::vector<FaultSpec> specs;
  EXPECT_FALSE(FaultInjector::Parse("noseparator", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:nth=0", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:p=1.5", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:code=bogus", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:fires=0", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:unknown=1", &specs).ok());
  // A malformed FaultScope arms nothing and reports the parse error.
  FaultScope bad("site:nth=banana");
  EXPECT_FALSE(bad.status().ok());
  EXPECT_FALSE(FaultInjector::Global()->enabled());
}

TEST(FaultInjectorTest, ParsesMultipleSpecs) {
  std::vector<FaultSpec> specs;
  ASSERT_TRUE(FaultInjector::Parse(
                  " spill.write:nth=2 ; csv.read:p=0.25,seed=9,fires=-1 ",
                  &specs)
                  .ok());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "spill.write");
  EXPECT_EQ(specs[0].nth, 2);
  EXPECT_EQ(specs[1].site, "csv.read");
  EXPECT_DOUBLE_EQ(specs[1].probability, 0.25);
  EXPECT_EQ(specs[1].seed, 9u);
  EXPECT_EQ(specs[1].max_fires, -1);
}

// Shard-worker fork regression: a child forked while the parent thread
// has a session injector installed (and the global registry armed) must
// start fault-free after ResetForkedChild — including on pool workers,
// whose tasks capture the submitter's *current* injector at Submit time.
// Without the reset, coordinator-side specs (shard.send, spill.write)
// would fire once per worker process and stale parent-session injector
// pointers would be dereferenced in the child.
TEST(FaultInjectorTest, ForkedChildStartsFaultFreeAfterReset) {
  // Reproduce the coordinator's state at fork time: global spec armed,
  // private session injector installed on the forking thread.
  FaultScope global_arm("shard.send:nth=1,fires=-1");
  ASSERT_TRUE(global_arm.status().ok());
  ASSERT_FALSE(FaultPoint("shard.send").ok());
  FaultInjector session;
  ASSERT_TRUE(
      session.InstallFromString("csv.read:nth=1,fires=-1").ok());
  // The session injector shadows the global registry for this thread
  // (Current() returns the innermost scope) — exactly the coordinator's
  // view at fork time.
  ScopedFaultInjector install(&session);
  ASSERT_FALSE(FaultPoint("csv.read").ok());

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FaultInjector::ResetForkedChild();
    int failures = 0;
    // The thread-local override is cleared back to the (disarmed) global.
    if (FaultInjector::Current() != FaultInjector::Global()) ++failures;
    if (FaultInjector::Global()->enabled()) ++failures;
    if (!FaultPoint("csv.read").ok()) ++failures;
    if (!FaultPoint("shard.send").ok()) ++failures;
    {
      // Tasks submitted after the reset capture the clean global, not a
      // stale parent-session injector (the submitter-capture path).
      ThreadPool pool(2);
      std::atomic<int> pool_failures{0};
      for (int i = 0; i < 8; ++i) {
        pool.Submit([&pool_failures] {
          if (!FaultPoint("csv.read").ok()) pool_failures.fetch_add(1);
          if (!FaultPoint("shard.send").ok()) pool_failures.fetch_add(1);
        });
      }
      pool.WaitIdle();
      failures += pool_failures.load();
    }
    _exit(failures);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // The parent's armed state survives the child's reset untouched: the
  // session injector still fires, and the global registry (shadowed
  // while the scope is installed) is still enabled.
  EXPECT_FALSE(FaultPoint("csv.read").ok());
  EXPECT_TRUE(FaultInjector::Global()->enabled());
}

TEST(FaultInjectorTest, ConcurrentHitsFireExactlyNTimes) {
  FaultScope scope("hot:nth=1,fires=16");
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (!FaultPoint("hot").ok()) fires.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fires.load(), 16);
  EXPECT_EQ(FaultInjector::Global()->hits("hot"), 1600);
}

}  // namespace
}  // namespace lafp
