#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace lafp {
namespace {

TEST(FaultInjectorTest, DisabledByDefaultAndFastPath) {
  FaultInjector::Global()->Clear();
  EXPECT_FALSE(FaultInjector::Global()->enabled());
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  EXPECT_TRUE(FaultPoint("nonexistent.site").ok());
}

TEST(FaultInjectorTest, NthFiresDeterministically) {
  FaultScope scope("spill.write:nth=3");
  ASSERT_TRUE(scope.status().ok());
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  Status fired = FaultPoint("spill.write");
  EXPECT_TRUE(fired.IsIOError()) << fired.ToString();
  EXPECT_NE(fired.message().find("spill.write"), std::string::npos);
  // max_fires defaults to 1: the site goes quiet afterwards.
  EXPECT_TRUE(FaultPoint("spill.write").ok());
  EXPECT_EQ(FaultInjector::Global()->hits("spill.write"), 4);
  EXPECT_EQ(FaultInjector::Global()->fires("spill.write"), 1);
}

TEST(FaultInjectorTest, BareSiteArmsImmediateSingleShot) {
  FaultScope scope("csv.read:");
  ASSERT_TRUE(scope.status().ok());
  EXPECT_FALSE(FaultPoint("csv.read").ok());
  EXPECT_TRUE(FaultPoint("csv.read").ok());
}

TEST(FaultInjectorTest, UnlimitedFires) {
  FaultScope scope("mem.reserve:nth=1,fires=-1,code=oom");
  ASSERT_TRUE(scope.status().ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FaultPoint("mem.reserve").IsOutOfMemory());
  }
}

TEST(FaultInjectorTest, CodesMapToStatusCodes) {
  {
    FaultScope scope("a:code=exec");
    EXPECT_TRUE(FaultPoint("a").IsExecutionError());
  }
  {
    FaultScope scope("a:code=notimpl");
    EXPECT_TRUE(FaultPoint("a").IsNotImplemented());
  }
  {
    FaultScope scope("a:code=cancelled");
    EXPECT_TRUE(FaultPoint("a").IsCancelled());
  }
}

TEST(FaultInjectorTest, ProbabilityIsSeededAndReproducible) {
  auto run = [](uint64_t seed) {
    FaultScope scope("x:p=0.5,seed=" + std::to_string(seed) + ",fires=-1");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!FaultPoint("x").ok());
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // 2^-64 flake odds; astronomically safe
  // p=0.5 over 64 draws fires at least once (probability 1 - 2^-64).
  auto fired = run(7);
  EXPECT_NE(std::count(fired.begin(), fired.end(), true), 0);
}

TEST(FaultInjectorTest, ScopeRestoresPreviousSpecsWithFreshCounters) {
  FaultScope outer("spill.read:nth=2");
  ASSERT_TRUE(outer.status().ok());
  EXPECT_TRUE(FaultPoint("spill.read").ok());  // hit 1
  {
    FaultScope inner("csv.write:nth=1");
    EXPECT_TRUE(FaultPoint("spill.read").ok());  // not armed inside inner
    EXPECT_FALSE(FaultPoint("csv.write").ok());
  }
  // Counters reset on restore: deterministic replay needs hit 1 again.
  EXPECT_TRUE(FaultPoint("spill.read").ok());
  EXPECT_FALSE(FaultPoint("spill.read").ok());
}

TEST(FaultInjectorTest, ParseRejectsMalformedConfigs) {
  std::vector<FaultSpec> specs;
  EXPECT_FALSE(FaultInjector::Parse("noseparator", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:nth=0", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:p=1.5", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:code=bogus", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:fires=0", &specs).ok());
  EXPECT_FALSE(FaultInjector::Parse("site:unknown=1", &specs).ok());
  // A malformed FaultScope arms nothing and reports the parse error.
  FaultScope bad("site:nth=banana");
  EXPECT_FALSE(bad.status().ok());
  EXPECT_FALSE(FaultInjector::Global()->enabled());
}

TEST(FaultInjectorTest, ParsesMultipleSpecs) {
  std::vector<FaultSpec> specs;
  ASSERT_TRUE(FaultInjector::Parse(
                  " spill.write:nth=2 ; csv.read:p=0.25,seed=9,fires=-1 ",
                  &specs)
                  .ok());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "spill.write");
  EXPECT_EQ(specs[0].nth, 2);
  EXPECT_EQ(specs[1].site, "csv.read");
  EXPECT_DOUBLE_EQ(specs[1].probability, 0.25);
  EXPECT_EQ(specs[1].seed, 9u);
  EXPECT_EQ(specs[1].max_fires, -1);
}

TEST(FaultInjectorTest, ConcurrentHitsFireExactlyNTimes) {
  FaultScope scope("hot:nth=1,fires=16");
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (!FaultPoint("hot").ok()) fires.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fires.load(), 16);
  EXPECT_EQ(FaultInjector::Global()->hits("hot"), 1600);
}

}  // namespace
}  // namespace lafp
