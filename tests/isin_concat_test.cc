// Coverage for the isin / pd.concat additions across every layer:
// kernel, lazy API on all backends, predicate pushdown, and PdScript.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "lazy/fat_dataframe.h"
#include "optimizer/passes.h"
#include "script/analyze.h"

namespace lafp {
namespace {

using df::CompareOp;
using df::DataType;
using df::Scalar;
using exec::BackendKind;
using lazy::ExecutionMode;
using lazy::FatDataFrame;
using lazy::Session;
using lazy::SessionOptions;

TEST(IsInKernelTest, NumericMembership) {
  MemoryTracker tracker(0);
  auto col = *df::Column::MakeInt({1, 2, 3, 4, 2}, {1, 1, 0, 1, 1},
                                  &tracker);
  auto mask =
      df::IsIn(*col, {Scalar::Int(2), Scalar::Double(4.0)});
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE((*mask)->BoolAt(0));
  EXPECT_TRUE((*mask)->BoolAt(1));
  EXPECT_FALSE((*mask)->BoolAt(2));  // null is never a member
  EXPECT_TRUE((*mask)->BoolAt(3));   // int 4 matches double 4.0
  EXPECT_TRUE((*mask)->BoolAt(4));
}

TEST(IsInKernelTest, StringAndCategoryMembership) {
  MemoryTracker tracker(0);
  auto strs = *df::Column::MakeString({"NY", "SF", "LA"}, {}, &tracker);
  auto mask = df::IsIn(*strs, {Scalar::String("NY"), Scalar::String("LA")});
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)->BoolAt(0));
  EXPECT_FALSE((*mask)->BoolAt(1));
  EXPECT_TRUE((*mask)->BoolAt(2));

  auto cat = *df::CategorizeStrings(*strs, &tracker);
  auto cat_mask = df::IsIn(*cat, {Scalar::String("SF")});
  ASSERT_TRUE(cat_mask.ok());
  EXPECT_TRUE((*cat_mask)->BoolAt(1));

  // Type-mismatched membership values simply never match.
  auto none = df::IsIn(*strs, {Scalar::Int(7)});
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE((*none)->BoolAt(0));
}

class IsInConcatLazyTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "isin_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    for (int part = 0; part < 2; ++part) {
      std::string path = dir_ + "/part" + std::to_string(part) + ".csv";
      std::ofstream out(path);
      out << "city,v\n";
      for (int i = 0; i < 60; ++i) {
        out << (i % 3 == 0 ? "NY" : (i % 3 == 1 ? "SF" : "LA")) << ","
            << (part * 1000 + i) << "\n";
      }
      paths_.push_back(path);
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Session> MakeSession() {
    SessionOptions opts;
    opts.backend = GetParam();
    opts.backend_config.partition_rows = 16;
    opts.mode = ExecutionMode::kLazy;
    opts.tracker = &tracker_;
    return std::make_unique<Session>(opts);
  }

  std::string dir_;
  std::vector<std::string> paths_;
  MemoryTracker tracker_{0};
};

TEST_P(IsInConcatLazyTest, IsInFilterAcrossBackends) {
  auto session = MakeSession();
  auto frame = *FatDataFrame::ReadCsv(session.get(), paths_[0]);
  auto city = *frame.Col("city");
  auto mask =
      *city.IsIn({Scalar::String("NY"), Scalar::String("LA")});
  auto filtered = *frame.FilterBy(mask);
  auto n = *filtered.Len();
  auto value = n.Value();
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(value->int_value(), 40);  // 20 NY + 20 LA of 60
}

TEST_P(IsInConcatLazyTest, ConcatStacksLazily) {
  auto session = MakeSession();
  auto a = *FatDataFrame::ReadCsv(session.get(), paths_[0]);
  auto b = *FatDataFrame::ReadCsv(session.get(), paths_[1]);
  auto both = *FatDataFrame::Concat(session.get(), {a, b});
  auto n = *both.Len();
  EXPECT_EQ((*n.Value()).int_value(), 120);
  auto total = *both.Col("v")->Sum();
  // sum(0..59) + sum(1000..1059) = 1770 + 61770.
  EXPECT_EQ((*total.Value()).int_value(), 1770 + 61770);
}

TEST_P(IsInConcatLazyTest, ConcatThenGroupBy) {
  auto session = MakeSession();
  auto a = *FatDataFrame::ReadCsv(session.get(), paths_[0]);
  auto b = *FatDataFrame::ReadCsv(session.get(), paths_[1]);
  auto both = *FatDataFrame::Concat(session.get(), {a, b});
  auto grouped =
      *both.GroupByAgg({"city"}, {{"v", df::AggFunc::kCount, "n"}});
  auto eager = grouped.ToEager();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->num_rows(), 3u);
  // Row order may differ per backend; total must be 120.
  int64_t total = 0;
  for (size_t r = 0; r < 3; ++r) {
    total += (*eager->column("n"))->IntAt(r);
  }
  EXPECT_EQ(total, 120);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, IsInConcatLazyTest,
                         ::testing::Values(BackendKind::kPandas,
                                           BackendKind::kModin,
                                           BackendKind::kDask),
                         [](const auto& info) {
                           return exec::BackendKindName(info.param);
                         });

TEST(IsInPushdownTest, IsInPredicatePushesBelowSetItem) {
  std::string dir = ::testing::TempDir() + "isin_push";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/d.csv";
  {
    std::ofstream out(path);
    out << "a,b\n";
    for (int i = 0; i < 30; ++i) out << i << "," << i * 2 << "\n";
  }
  SessionOptions opts;
  opts.mode = ExecutionMode::kLazy;
  Session session(opts);
  auto frame = *FatDataFrame::ReadCsv(&session, path);
  auto doubled = *frame.Col("b")->ArithScalar(df::ArithOp::kMul,
                                              Scalar::Int(10));
  auto with_col = *frame.SetCol("b10", doubled);
  auto mask = *with_col.Col("a")->IsIn({Scalar::Int(3), Scalar::Int(7)});
  auto filtered = *with_col.FilterBy(mask);
  opt::PassStats stats;
  ASSERT_TRUE(
      opt::PushDownPredicates(&session, {filtered.node()}, &stats).ok());
  EXPECT_EQ(stats.predicates_pushed, 1);
  EXPECT_EQ(filtered.node()->desc.kind, exec::OpKind::kSetColumn);
  auto eager = filtered.ToEager();
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->num_rows(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(IsInScriptTest, PdScriptIsInAndConcat) {
  std::string dir = ::testing::TempDir() + "isin_script";
  std::filesystem::create_directories(dir);
  std::string p1 = dir + "/a.csv", p2 = dir + "/b.csv";
  {
    std::ofstream out(p1);
    out << "city,v\nNY,1\nSF,2\nLA,3\n";
  }
  {
    std::ofstream out(p2);
    out << "city,v\nNY,10\nSF,20\n";
  }
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "a = pd.read_csv(\"" + p1 + "\")\n"
      "b = pd.read_csv(\"" + p2 + "\")\n"
      "both = pd.concat([a, b])\n"
      "coastal = both[both.city.isin([\"NY\", \"SF\"])]\n"
      "total = coastal.v.sum()\n"
      "print(f\"total: {total}\")\n";
  for (bool analyze : {false, true}) {
    SessionOptions opts;
    opts.mode = analyze ? ExecutionMode::kLazy : ExecutionMode::kEager;
    std::stringstream output;
    opts.output = &output;
    Session session(opts);
    script::RunOptions run;
    run.analyze = analyze;
    Status st = script::RunProgram(source, &session, run);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_NE(output.str().find("total: 33"), std::string::npos)
        << output.str();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lafp
