// Exhaustive optimizer-pass matrix over a fixed program that contains a
// target shape for every pass: duplicate mask subexpressions (dedup),
// head-of-head chains (redundant elimination), a filter above a
// row-wise-invariant op (predicate pushdown), and elementwise chains over
// filtered projections (fusion). Every subset of {dedup, redundant,
// pushdown, fuse} on every backend, serial and parallel, must print and
// checksum exactly what the eager reference prints.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "exec/backend.h"
#include "testing/oracle.h"
#include "testing/progen.h"
#include "testing/tablegen.h"

namespace {

using lafp::testing::CompareOutcomes;
using lafp::testing::ExecuteUnderConfig;
using lafp::testing::OracleConfig;
using lafp::testing::OracleMode;
using lafp::testing::ReferenceConfig;
using lafp::testing::RunOutcome;
using lafp::testing::SubstitutePaths;
using lafp::testing::TableSpec;
using lafp::testing::WriteTable;

class OptimizerPassMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = std::filesystem::temp_directory_path() / "lafp_pass_matrix";
    std::filesystem::create_directories(dir);
    TableSpec spec;
    spec.name = "t0";
    spec.seed = 2;  // key, cat_t0, f0_t0, f1_t0, f2_t0, s0_t0
    spec.rows = 40;
    auto path = WriteTable(spec, dir.string());
    ASSERT_TRUE(path.ok()) << path.status().ToString();
    source_ = SubstitutePaths(
        "import lazyfatpandas.pandas as pd\n"
        "df0 = pd.read_csv(\"{t0}\")\n"
        // Duplicate mask subexpression: dedup merges the two compares.
        "v1 = df0[(df0.f0_t0 >= 0.5)]\n"
        "v2 = df0[(df0.f0_t0 >= 0.5)]\n"
        "v3 = pd.concat([v1, v2])\n"
        // head(head(x)): redundant elimination collapses the chain.
        "v4 = v3.head(12)\n"
        "v5 = v4.head(5)\n"
        // Filter above sort_values: pushdown reorders them.
        "v6 = df0.sort_values(by=[\"key\"])\n"
        "v7 = v6[(v6.key != 1)]\n"
        "s0 = len(v3)\n"
        "s1 = v7.f1_t0.sum()\n"
        // Anonymous filter -> get_column -> elementwise chain: fusion
        // collapses it into one kFusedMap pass over a selection vector.
        "s2 = (df0[(df0.f1_t0 < 0.75)].f0_t0 * 2.0 + 0.25).abs().sum()\n"
        // Pure series chain inside a mask (arith, arith, compare): the
        // series-chain fusion variant.
        "v8 = df0[(df0.f2_t0 * 2.0 + 0.25 >= 1.0)]\n"
        "print(f\"s0: {s0}\")\n"
        "print(f\"s1: {s1}\")\n"
        "print(f\"s2: {s2}\")\n"
        "checksum(v3)\n"
        "checksum(v5)\n"
        "checksum(v7)\n"
        "checksum(v8)\n",
        {{"t0", *path}});
    reference_ = ExecuteUnderConfig(source_, ReferenceConfig());
    ASSERT_TRUE(reference_.status.ok())
        << reference_.status.ToString();
  }

  std::string source_;
  RunOutcome reference_;
};

TEST_F(OptimizerPassMatrixTest, EveryPassSubsetMatchesReference) {
  for (auto backend :
       {lafp::exec::BackendKind::kPandas, lafp::exec::BackendKind::kModin,
        lafp::exec::BackendKind::kDask}) {
    for (unsigned mask = 0; mask < 16; ++mask) {
      for (int threads : {1, 4}) {
        OracleConfig config;
        config.backend = backend;
        config.mode = mask == 0 ? OracleMode::kLazy : OracleMode::kLafp;
        config.dedup = (mask & 1) != 0;
        config.redundant = (mask & 2) != 0;
        config.pushdown = (mask & 4) != 0;
        config.fuse = (mask & 8) != 0;
        config.num_threads = threads;
        config.partition_rows = 16;  // several partitions per frame
        RunOutcome run = ExecuteUnderConfig(source_, config);
        std::optional<std::string> diff =
            CompareOutcomes(reference_, run, config);
        EXPECT_FALSE(diff.has_value())
            << config.Name() << ":\n"
            << (diff.has_value() ? *diff : "");
      }
    }
  }
}

}  // namespace
