#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dataframe/ops.h"

namespace lafp::io {
namespace {

using df::DataFrame;
using df::DataType;

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
  MemoryTracker tracker_{0};
};

TEST_F(CsvTest, ReadsTypedColumns) {
  WriteFile(
      "id,fare,city,ok\n"
      "1,10.5,NY,True\n"
      "2,20.0,SF,False\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2u);
  EXPECT_EQ((*frame->column("id"))->type(), DataType::kInt64);
  EXPECT_EQ((*frame->column("fare"))->type(), DataType::kDouble);
  EXPECT_EQ((*frame->column("city"))->type(), DataType::kString);
  EXPECT_EQ((*frame->column("ok"))->type(), DataType::kBool);
  EXPECT_EQ((*frame->column("id"))->IntAt(1), 2);
  EXPECT_DOUBLE_EQ((*frame->column("fare"))->DoubleAt(0), 10.5);
  EXPECT_TRUE((*frame->column("ok"))->BoolAt(0));
}

TEST_F(CsvTest, InfersTimestamps) {
  WriteFile(
      "when\n"
      "2024-01-01 08:00:00\n"
      "2024-01-02 09:30:00\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("when"))->type(), DataType::kTimestamp);
  EXPECT_EQ((*frame->column("when"))->ValueString(0),
            "2024-01-01 08:00:00");
}

TEST_F(CsvTest, UsecolsReadsOnlySelected) {
  WriteFile(
      "a,b,c\n"
      "1,2,3\n"
      "4,5,6\n");
  CsvReadOptions opts;
  opts.usecols = {"c", "a"};
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  // pandas preserves file order for usecols.
  EXPECT_EQ(frame->names(), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ((*frame->column("c"))->IntAt(1), 6);
}

TEST_F(CsvTest, UsecolsUnknownColumnFails) {
  WriteFile("a\n1\n");
  CsvReadOptions opts;
  opts.usecols = {"ghost"};
  EXPECT_TRUE(ReadCsv(path_, opts, &tracker_).status().IsKeyError());
}

TEST_F(CsvTest, UsecolsReducesMemory) {
  std::string content = "a,b,c,d,e,f\n";
  for (int i = 0; i < 500; ++i) {
    content += "1,2,3,4,5,6\n";
  }
  WriteFile(content);
  MemoryTracker all_tracker(0), some_tracker(0);
  auto all = ReadCsv(path_, {}, &all_tracker);
  CsvReadOptions opts;
  opts.usecols = {"a"};
  auto some = ReadCsv(path_, opts, &some_tracker);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(some.ok());
  EXPECT_LT(some->footprint_bytes(), all->footprint_bytes() / 4);
}

TEST_F(CsvTest, DtypeOverrides) {
  WriteFile(
      "zip,label\n"
      "02134,x\n"
      "10001,y\n");
  CsvReadOptions opts;
  opts.dtypes = {{"zip", DataType::kString}};
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("zip"))->type(), DataType::kString);
  EXPECT_EQ((*frame->column("zip"))->StringAt(0), "02134");  // leading zero kept
}

TEST_F(CsvTest, CategoryDtypeProducesDictionary) {
  WriteFile(
      "city\n"
      "NY\nSF\nNY\nNY\n");
  CsvReadOptions opts;
  opts.dtypes = {{"city", DataType::kCategory}};
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("city"))->type(), DataType::kCategory);
  EXPECT_EQ((*frame->column("city"))->dictionary()->size(), 2u);
  EXPECT_EQ((*frame->column("city"))->StringAt(2), "NY");
}

TEST_F(CsvTest, BlankFieldsBecomeNulls) {
  WriteFile(
      "a,b\n"
      "1,x\n"
      ",y\n"
      "3,\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE((*frame->column("a"))->IsValid(1));
  EXPECT_FALSE((*frame->column("b"))->IsValid(2));
  EXPECT_EQ((*frame->column("a"))->IntAt(2), 3);
}

TEST_F(CsvTest, MixedIntDoubleWidens) {
  WriteFile(
      "v\n"
      "1\n"
      "2.5\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("v"))->type(), DataType::kDouble);
}

TEST_F(CsvTest, QuotedFieldsWithCommasAndEscapes) {
  WriteFile(
      "name,desc\n"
      "\"Smith, John\",\"said \"\"hi\"\"\"\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("name"))->StringAt(0), "Smith, John");
  EXPECT_EQ((*frame->column("desc"))->StringAt(0), "said \"hi\"");
}

TEST_F(CsvTest, NrowsLimitsRead) {
  WriteFile("v\n1\n2\n3\n4\n");
  CsvReadOptions opts;
  opts.nrows = 2;
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2u);
}

TEST_F(CsvTest, ChunkedReaderStreamsAllRows) {
  std::string content = "v\n";
  for (int i = 0; i < 100; ++i) content += std::to_string(i) + "\n";
  WriteFile(content);
  auto reader = CsvChunkReader::Open(path_, {}, &tracker_);
  ASSERT_TRUE(reader.ok());
  size_t total = 0;
  int chunks = 0;
  int64_t next_expected = 0;
  while (true) {
    auto chunk = (*reader)->NextChunk(7);
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    ++chunks;
    EXPECT_LE((*chunk)->num_rows(), 7u);
    const auto& col = *(*chunk)->column(0);
    for (size_t i = 0; i < col.size(); ++i) {
      EXPECT_EQ(col.IntAt(i), next_expected++);
    }
    total += (*chunk)->num_rows();
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(chunks, 15);  // ceil(100/7)
}

TEST_F(CsvTest, ChunkedInferencePrefixLargerThanChunk) {
  // infer_rows (64) larger than chunk size: buffered lines must drain
  // correctly across chunks.
  std::string content = "v\n";
  for (int i = 0; i < 30; ++i) content += std::to_string(i) + "\n";
  WriteFile(content);
  auto reader = CsvChunkReader::Open(path_, {}, &tracker_);
  ASSERT_TRUE(reader.ok());
  auto c1 = (*reader)->NextChunk(10);
  ASSERT_TRUE(c1.ok() && c1->has_value());
  EXPECT_EQ((*c1)->num_rows(), 10u);
  auto c2 = (*reader)->NextChunk(100);
  ASSERT_TRUE(c2.ok() && c2->has_value());
  EXPECT_EQ((*c2)->num_rows(), 20u);
  auto c3 = (*reader)->NextChunk(10);
  ASSERT_TRUE(c3.ok());
  EXPECT_FALSE(c3->has_value());
}

TEST_F(CsvTest, MissingFileFails) {
  EXPECT_TRUE(
      ReadCsv("/nonexistent/nope.csv", {}, &tracker_).status().code() ==
      StatusCode::kIOError);
}

TEST_F(CsvTest, HeaderOnlyFileGivesEmptyFrame) {
  WriteFile("a,b\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 0u);
  EXPECT_EQ(frame->num_columns(), 2u);
}

TEST_F(CsvTest, WriteReadRoundTrip) {
  auto id = *df::Column::MakeInt({1, 2}, {}, &tracker_);
  auto name = *df::Column::MakeString({"a,b", "c\"d"}, {}, &tracker_);
  auto fare = *df::Column::MakeDouble({1.5, 2.0}, {1, 0}, &tracker_);
  auto frame = *DataFrame::Make({"id", "name", "fare"}, {id, name, fare});
  ASSERT_TRUE(WriteCsv(frame, path_).ok());
  auto back = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ((*back->column("name"))->StringAt(0), "a,b");
  EXPECT_EQ((*back->column("name"))->StringAt(1), "c\"d");
  EXPECT_FALSE((*back->column("fare"))->IsValid(1));
}

TEST_F(CsvTest, CrLfLineEndings) {
  WriteFile("a,b\r\n1,x\r\n2,y\r\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2u);
  EXPECT_EQ((*frame->column("b"))->StringAt(1), "y");
}

TEST_F(CsvTest, SplitCsvLineEdgeCases) {
  EXPECT_EQ(SplitCsvLine("a,b", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitCsvLine("\"a,b\",c", ','),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitCsvLine("\"\"\"\"", ','),
            (std::vector<std::string>{"\""}));
}

TEST_F(CsvTest, OutOfMemoryDuringReadSurfacesAsStatus) {
  std::string content = "v\n";
  for (int i = 0; i < 10000; ++i) content += std::to_string(i) + "\n";
  WriteFile(content);
  MemoryTracker small(1024);  // far below 10000 * 8 bytes
  auto frame = ReadCsv(path_, {}, &small);
  EXPECT_TRUE(frame.status().IsOutOfMemory());
}

}  // namespace
}  // namespace lafp::io
