// Short fixed-seed differential fuzzing run wired into the tier-1 suite:
// 100 generated programs, each checked against the eager-Pandas reference
// under a sampled backend/pass/thread matrix. Any divergence is a bug in
// the engine, the optimizer, or the oracle itself.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "testing/fuzzer.h"
#include "testing/progen.h"

namespace {

using lafp::testing::FuzzOptions;
using lafp::testing::FuzzStats;
using lafp::testing::GeneratedProgram;
using lafp::testing::GenerateProgram;
using lafp::testing::RunFuzz;

TEST(FuzzSmokeTest, GeneratorIsDeterministic) {
  for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    GeneratedProgram a = GenerateProgram(seed);
    GeneratedProgram b = GenerateProgram(seed);
    EXPECT_EQ(a.source, b.source) << "seed " << seed;
    ASSERT_EQ(a.tables.size(), b.tables.size());
    for (size_t i = 0; i < a.tables.size(); ++i) {
      EXPECT_EQ(a.tables[i].ToDirective(), b.tables[i].ToDirective());
    }
  }
}

TEST(FuzzSmokeTest, HundredProgramsMatchReference) {
  FuzzOptions options;
  options.seed = 42;
  options.iters = 100;
  options.shrink = false;  // report raw; CI has no use for minimization
  auto dir = std::filesystem::temp_directory_path() / "lafp_fuzz_smoke";
  std::filesystem::create_directories(dir);
  options.data_dir = dir.string();
  std::ostringstream log;
  options.log = &log;

  FuzzStats stats = RunFuzz(options);
  EXPECT_EQ(stats.iterations, 100);
  EXPECT_EQ(stats.reference_failures, 0) << log.str();
  ASSERT_TRUE(stats.divergences.empty())
      << "first divergence: seed " << stats.divergences[0].program_seed
      << " under " << stats.divergences[0].config_name << "\n"
      << stats.divergences[0].detail << "\n"
      << log.str();
}

}  // namespace
