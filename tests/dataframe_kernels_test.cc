#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "dataframe/ops.h"

namespace lafp::df {
namespace {

class KernelsTest : public ::testing::Test {
 protected:
  ColumnPtr Ints(std::vector<int64_t> v,
                 std::vector<uint8_t> validity = {}) {
    return *Column::MakeInt(std::move(v), std::move(validity), &tracker_);
  }
  ColumnPtr Doubles(std::vector<double> v,
                    std::vector<uint8_t> validity = {}) {
    return *Column::MakeDouble(std::move(v), std::move(validity), &tracker_);
  }
  ColumnPtr Strings(std::vector<std::string> v,
                    std::vector<uint8_t> validity = {}) {
    return *Column::MakeString(std::move(v), std::move(validity), &tracker_);
  }

  MemoryTracker tracker_{0};
};

TEST_F(KernelsTest, CompareIntScalar) {
  auto mask = Compare(*Ints({1, 5, 3, 7}), CompareOp::kGt, Scalar::Int(3));
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*mask)->type(), DataType::kBool);
  EXPECT_FALSE((*mask)->BoolAt(0));
  EXPECT_TRUE((*mask)->BoolAt(1));
  EXPECT_FALSE((*mask)->BoolAt(2));
  EXPECT_TRUE((*mask)->BoolAt(3));
}

TEST_F(KernelsTest, CompareAllOps) {
  auto col = Ints({1, 2, 3});
  struct Case {
    CompareOp op;
    std::vector<bool> expected;
  };
  std::vector<Case> cases = {
      {CompareOp::kEq, {false, true, false}},
      {CompareOp::kNe, {true, false, true}},
      {CompareOp::kLt, {true, false, false}},
      {CompareOp::kLe, {true, true, false}},
      {CompareOp::kGt, {false, false, true}},
      {CompareOp::kGe, {false, true, true}},
  };
  for (const auto& c : cases) {
    auto mask = Compare(*col, c.op, Scalar::Int(2));
    ASSERT_TRUE(mask.ok());
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ((*mask)->BoolAt(i), c.expected[i])
          << CompareOpSymbol(c.op) << " row " << i;
    }
  }
}

TEST_F(KernelsTest, CompareNullsAreFalse) {
  auto col = Ints({1, 2, 3}, {1, 0, 1});
  auto mask = Compare(*col, CompareOp::kGe, Scalar::Int(0));
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)->BoolAt(0));
  EXPECT_FALSE((*mask)->BoolAt(1));  // null row
  EXPECT_TRUE((*mask)->BoolAt(2));
}

TEST_F(KernelsTest, CompareStringScalar) {
  auto mask =
      Compare(*Strings({"a", "b", "a"}), CompareOp::kEq, Scalar::String("a"));
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)->BoolAt(0));
  EXPECT_FALSE((*mask)->BoolAt(1));
  EXPECT_FALSE(
      Compare(*Strings({"a"}), CompareOp::kEq, Scalar::Int(1)).ok());
}

TEST_F(KernelsTest, CompareCategoryScalar) {
  auto cat = CategorizeStrings(*Strings({"x", "y", "x"}), &tracker_);
  ASSERT_TRUE(cat.ok());
  auto mask = Compare(**cat, CompareOp::kEq, Scalar::String("x"));
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)->BoolAt(0));
  EXPECT_FALSE((*mask)->BoolAt(1));
  EXPECT_TRUE((*mask)->BoolAt(2));
}

TEST_F(KernelsTest, CompareTimestampAgainstStringLiteral) {
  auto ts = Column::MakeTimestamp(
      {*ParseTimestamp("2024-01-01"), *ParseTimestamp("2024-06-01")}, {},
      &tracker_);
  ASSERT_TRUE(ts.ok());
  auto mask =
      Compare(**ts, CompareOp::kGe, Scalar::String("2024-03-01"));
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE((*mask)->BoolAt(0));
  EXPECT_TRUE((*mask)->BoolAt(1));
}

TEST_F(KernelsTest, CompareColumns) {
  auto mask =
      CompareColumns(*Ints({1, 5}), CompareOp::kLt, *Doubles({2.0, 4.0}));
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)->BoolAt(0));
  EXPECT_FALSE((*mask)->BoolAt(1));
  EXPECT_FALSE(
      CompareColumns(*Ints({1}), CompareOp::kLt, *Ints({1, 2})).ok());
}

TEST_F(KernelsTest, BooleanOps) {
  auto a = *Column::MakeBool({1, 1, 0, 0}, {}, &tracker_);
  auto b = *Column::MakeBool({1, 0, 1, 0}, {}, &tracker_);
  auto band = BooleanAnd(*a, *b);
  auto bor = BooleanOr(*a, *b);
  auto bnot = BooleanNot(*a);
  ASSERT_TRUE(band.ok());
  ASSERT_TRUE(bor.ok());
  ASSERT_TRUE(bnot.ok());
  EXPECT_TRUE((*band)->BoolAt(0));
  EXPECT_FALSE((*band)->BoolAt(1));
  EXPECT_TRUE((*bor)->BoolAt(2));
  EXPECT_FALSE((*bor)->BoolAt(3));
  EXPECT_FALSE((*bnot)->BoolAt(0));
  EXPECT_TRUE((*bnot)->BoolAt(2));
  EXPECT_FALSE(BooleanAnd(*a, *Ints({1, 2, 3, 4})).ok());
}

TEST_F(KernelsTest, IsNullCoversValidityAndNaN) {
  auto col = Doubles({1.0, std::nan(""), 3.0}, {1, 1, 0});
  auto mask = IsNull(*col);
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE((*mask)->BoolAt(0));
  EXPECT_TRUE((*mask)->BoolAt(1));  // NaN
  EXPECT_TRUE((*mask)->BoolAt(2));  // validity null
}

TEST_F(KernelsTest, StrContains) {
  auto mask = StrContains(*Strings({"taxi ride", "bus", "taxicab"}), "taxi");
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)->BoolAt(0));
  EXPECT_FALSE((*mask)->BoolAt(1));
  EXPECT_TRUE((*mask)->BoolAt(2));
  EXPECT_FALSE(StrContains(*Ints({1}), "x").ok());
}

TEST_F(KernelsTest, FilterDataFrame) {
  auto frame = *DataFrame::Make(
      {"id", "v"}, {Ints({1, 2, 3, 4}), Doubles({1.0, 2.0, 3.0, 4.0})});
  auto mask = Compare(*frame.column(1), CompareOp::kGt, Scalar::Double(2.0));
  ASSERT_TRUE(mask.ok());
  auto filtered = Filter(frame, **mask);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 2u);
  EXPECT_EQ((*filtered->column("id"))->IntAt(0), 3);
}

TEST_F(KernelsTest, HeadClampsToSize) {
  auto frame = *DataFrame::Make({"id"}, {Ints({1, 2, 3})});
  auto h = Head(frame, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_rows(), 2u);
  auto all = Head(frame, 99);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 3u);
}

TEST_F(KernelsTest, ArithScalar) {
  auto sum = Arith(*Ints({1, 2}), ArithOp::kAdd, Scalar::Int(10));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->type(), DataType::kInt64);
  EXPECT_EQ((*sum)->IntAt(1), 12);

  auto div = Arith(*Ints({7, 8}), ArithOp::kDiv, Scalar::Int(2));
  ASSERT_TRUE(div.ok());
  EXPECT_EQ((*div)->type(), DataType::kDouble);  // true division
  EXPECT_DOUBLE_EQ((*div)->DoubleAt(0), 3.5);
}

TEST_F(KernelsTest, ArithScalarLeft) {
  auto r = ArithScalarLeft(Scalar::Double(10.0), ArithOp::kSub,
                           *Ints({1, 2}));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(0), 9.0);
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(1), 8.0);
}

TEST_F(KernelsTest, ArithColumnsWidens) {
  auto r = ArithColumns(*Ints({1, 2}), ArithOp::kMul, *Doubles({1.5, 2.0}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(0), 1.5);
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(1), 4.0);
}

TEST_F(KernelsTest, ArithNullPropagation) {
  auto r = ArithColumns(*Ints({1, 2}, {1, 0}), ArithOp::kAdd,
                        *Ints({10, 20}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsValid(0));
  EXPECT_FALSE((*r)->IsValid(1));
}

TEST_F(KernelsTest, FlooredModFollowsDivisorSign) {
  // Python/pandas `%` is floored: the result takes the divisor's sign.
  auto r = Arith(*Ints({-7, 7, -7, 7, 0}), ArithOp::kMod, Scalar::Int(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), DataType::kInt64);
  EXPECT_EQ((*r)->IntAt(0), 2);   // -7 % 3 == 2, not -1
  EXPECT_EQ((*r)->IntAt(1), 1);
  EXPECT_EQ((*r)->IntAt(4), 0);

  auto n = Arith(*Ints({-7, 7}), ArithOp::kMod, Scalar::Int(-3));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ((*n)->IntAt(0), -1);  // -7 % -3 == -1
  EXPECT_EQ((*n)->IntAt(1), -2);  //  7 % -3 == -2

  auto d = Arith(*Doubles({-7.5, 7.5}), ArithOp::kMod, Scalar::Double(3.0));
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->DoubleAt(0), 1.5);   // fmod gives -1.5
  EXPECT_DOUBLE_EQ((*d)->DoubleAt(1), 1.5);
  auto dn = Arith(*Doubles({7.5, -6.0}), ArithOp::kMod, Scalar::Double(-3.0));
  ASSERT_TRUE(dn.ok());
  EXPECT_DOUBLE_EQ((*dn)->DoubleAt(0), -1.5);
  // Exact-zero result carries the divisor's sign bit, like numpy.
  EXPECT_TRUE(std::signbit((*dn)->DoubleAt(1)));
  EXPECT_EQ((*dn)->DoubleAt(1), 0.0);
}

TEST_F(KernelsTest, IntModByZeroAndMinusOneAreDefined) {
  // pandas int64 % 0 yields 0 (no hardware trap), and INT64_MIN % -1 is 0
  // rather than the UB overflow the raw `%` instruction would hit.
  auto z = Arith(*Ints({5, -5, 0}), ArithOp::kMod, Scalar::Int(0));
  ASSERT_TRUE(z.ok());
  EXPECT_EQ((*z)->IntAt(0), 0);
  EXPECT_EQ((*z)->IntAt(1), 0);
  auto m = Arith(*Ints({INT64_MIN, 7}), ArithOp::kMod, Scalar::Int(-1));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->IntAt(0), 0);
  EXPECT_EQ((*m)->IntAt(1), 0);
}

TEST_F(KernelsTest, Int64ArithmeticWrapsLikeNumpy) {
  // numpy int64 add/sub/mul wrap modulo 2^64; the C++ kernels must match
  // without tripping signed-overflow UB.
  auto add = Arith(*Ints({INT64_MAX}), ArithOp::kAdd, Scalar::Int(1));
  ASSERT_TRUE(add.ok());
  EXPECT_EQ((*add)->IntAt(0), INT64_MIN);
  auto sub = Arith(*Ints({INT64_MIN}), ArithOp::kSub, Scalar::Int(1));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ((*sub)->IntAt(0), INT64_MAX);
  auto mul = ArithColumns(*Ints({INT64_MAX, INT64_MIN}), ArithOp::kMul,
                          *Ints({2, -1}));
  ASSERT_TRUE(mul.ok());
  EXPECT_EQ((*mul)->IntAt(0), -2);          // INT64_MAX * 2 wraps to -2
  EXPECT_EQ((*mul)->IntAt(1), INT64_MIN);   // -INT64_MIN wraps to itself
  auto abs = Abs(*Ints({INT64_MIN}));
  ASSERT_TRUE(abs.ok());
  EXPECT_EQ((*abs)->IntAt(0), INT64_MIN);   // numpy abs wraps too
}

TEST_F(KernelsTest, StringConcatWithScalar) {
  auto r = Arith(*Strings({"a", "b"}), ArithOp::kAdd, Scalar::String("!"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->StringAt(0), "a!");
}

TEST_F(KernelsTest, AbsAndRound) {
  auto a = Abs(*Ints({-3, 4}));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->IntAt(0), 3);
  auto r = Round(*Doubles({1.2345, 2.7}), 2);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(0), 1.23);
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(1), 2.7);
  EXPECT_FALSE(Abs(*Strings({"x"})).ok());
}

TEST_F(KernelsTest, FillNaColumn) {
  auto col = Ints({1, 0, 3}, {1, 0, 1});
  auto filled = FillNaColumn(*col, Scalar::Int(-1));
  ASSERT_TRUE(filled.ok());
  EXPECT_FALSE((*filled)->has_nulls());
  EXPECT_EQ((*filled)->IntAt(1), -1);
}

TEST_F(KernelsTest, FillNaFrameSkipsIncompatible) {
  auto frame = *DataFrame::Make(
      {"n", "s"},
      {Ints({1, 2}, {1, 0}), Strings({"a", ""}, {1, 0})});
  auto filled = FillNa(frame, Scalar::Int(0));
  ASSERT_TRUE(filled.ok());
  EXPECT_FALSE((*filled->column("n"))->has_nulls());
  EXPECT_TRUE((*filled->column("s"))->has_nulls());  // untouched
}

TEST_F(KernelsTest, DropNaRemovesRowsWithAnyNull) {
  auto frame = *DataFrame::Make(
      {"a", "b"},
      {Ints({1, 2, 3}, {1, 0, 1}), Doubles({1.0, 2.0, std::nan("")})});
  auto clean = DropNa(frame);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->num_rows(), 1u);
  EXPECT_EQ((*clean->column("a"))->IntAt(0), 1);
}

TEST_F(KernelsTest, AsTypeNumericAndString) {
  auto as_double = AsType(*Ints({1, 2}), DataType::kDouble);
  ASSERT_TRUE(as_double.ok());
  EXPECT_DOUBLE_EQ((*as_double)->DoubleAt(0), 1.0);

  auto as_str = AsType(*Doubles({1.5}), DataType::kString);
  ASSERT_TRUE(as_str.ok());
  EXPECT_EQ((*as_str)->StringAt(0), "1.5");

  auto parsed = AsType(*Strings({"42", "bogus"}), DataType::kInt64);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->IntAt(0), 42);
  EXPECT_FALSE((*parsed)->IsValid(1));  // unparseable -> null
}

TEST_F(KernelsTest, AsTypeCategory) {
  auto cat = AsType(*Strings({"a", "b", "a"}), DataType::kCategory);
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ((*cat)->type(), DataType::kCategory);
  auto back = AsType(**cat, DataType::kString);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->StringAt(2), "a");
}

TEST_F(KernelsTest, ToDatetimeParsesAndCoerces) {
  auto ts = ToDatetime(*Strings({"2024-01-15 08:30:00", "junk"}));
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)->type(), DataType::kTimestamp);
  EXPECT_TRUE((*ts)->IsValid(0));
  EXPECT_FALSE((*ts)->IsValid(1));  // errors='coerce'
  EXPECT_EQ((*ts)->ValueString(0), "2024-01-15 08:30:00");
}

TEST_F(KernelsTest, ToDatetimeFromIntsIsEpoch) {
  auto ts = ToDatetime(*Ints({0}));
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)->ValueString(0), "1970-01-01 00:00:00");
}

TEST_F(KernelsTest, DtAccessors) {
  auto ts = ToDatetime(*Strings({"2024-01-01 13:00:00"}));  // Monday
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*DtAccessor(**ts, DtField::kDayOfWeek))->IntAt(0), 0);
  EXPECT_EQ((*DtAccessor(**ts, DtField::kHour))->IntAt(0), 13);
  EXPECT_EQ((*DtAccessor(**ts, DtField::kMonth))->IntAt(0), 1);
  EXPECT_EQ((*DtAccessor(**ts, DtField::kYear))->IntAt(0), 2024);
  EXPECT_EQ((*DtAccessor(**ts, DtField::kDay))->IntAt(0), 1);
  EXPECT_FALSE(DtAccessor(*Ints({1}), DtField::kHour).ok());
}

TEST_F(KernelsTest, DtFieldNames) {
  EXPECT_EQ(*DtFieldFromName("dayofweek"), DtField::kDayOfWeek);
  EXPECT_EQ(*DtFieldFromName("hour"), DtField::kHour);
  EXPECT_FALSE(DtFieldFromName("nanosecond").ok());
}

}  // namespace
}  // namespace lafp::df
