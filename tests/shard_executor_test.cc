// Shared-nothing shard executor: byte-identity against the single-process
// Pandas reference across worker counts, worker-death recovery, coordinator
// cancellation fan-out, and degenerate (zero-row / all-null) partition
// exchange. Workers are real forked processes talking the LFSH wire
// protocol, so every assertion here crosses a process boundary.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/macros.h"
#include "lazy/fat_dataframe.h"

namespace lafp::lazy {
namespace {

using df::AggFunc;
using df::ArithOp;
using df::CompareOp;
using df::Scalar;
using exec::BackendKind;

class ShardExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "shard_exec_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/facts.csv";
    std::ofstream out(csv_path_);
    out << "id,v,grp,label\n";
    for (int i = 0; i < 700; ++i) {
      out << i << "," << (i * 7) % 101 << "," << i % 9 << ",g"
          << i % 4 << "\n";
    }
    dim_path_ = dir_ + "/dim.csv";
    std::ofstream dim(dim_path_);
    dim << "grp,weight\n";
    for (int g = 0; g < 9; ++g) dim << g << "," << 10 * (g + 1) << "\n";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A session on `backend`; shard sessions get `shards` forked workers
  /// and a small partition size so several partitions land on each.
  std::unique_ptr<Session> MakeSession(BackendKind backend, int shards = 0,
                                       const std::string& faults = "",
                                       CancellationToken* cancel = nullptr) {
    SessionOptions opts;
    opts.backend = backend;
    opts.backend_config.shards = shards;
    opts.backend_config.partition_rows = 64;
    opts.tracker = &tracker_;
    opts.output = &output_;
    opts.fault_config = faults;
    opts.exec.cancel = cancel;
    return std::make_unique<Session>(opts);
  }

  /// The pipeline under test: scan -> filter -> derived column ->
  /// group-by (multi-agg) -> broadcast merge -> sort. Exercises every
  /// distributed path (kScan, kExecOp, kGroupByPartial, kPutFrame) plus
  /// the gather fallback (sort).
  Result<std::string> RunPipeline(Session* session) {
    LAFP_ASSIGN_OR_RETURN(auto frame,
                          FatDataFrame::ReadCsv(session, csv_path_));
    LAFP_ASSIGN_OR_RETURN(auto v, frame.Col("v"));
    LAFP_ASSIGN_OR_RETURN(auto mask, v.CompareTo(CompareOp::kLt,
                                                 Scalar::Int(90)));
    LAFP_ASSIGN_OR_RETURN(auto filtered, frame.FilterBy(mask));
    LAFP_ASSIGN_OR_RETURN(auto fv, filtered.Col("v"));
    LAFP_ASSIGN_OR_RETURN(auto doubled,
                          fv.ArithScalar(ArithOp::kMul, Scalar::Int(3)));
    LAFP_ASSIGN_OR_RETURN(auto with,
                          filtered.SetCol("v3", doubled));
    LAFP_ASSIGN_OR_RETURN(
        auto grouped,
        with.GroupByAgg({"grp"}, {{"v", AggFunc::kSum, "vs"},
                                  {"v3", AggFunc::kMean, "vm"},
                                  {"id", AggFunc::kCount, "n"}}));
    LAFP_ASSIGN_OR_RETURN(auto dim, FatDataFrame::ReadCsv(session, dim_path_));
    LAFP_ASSIGN_OR_RETURN(auto merged,
                          grouped.Merge(dim, {"grp"}, df::JoinType::kInner));
    LAFP_ASSIGN_OR_RETURN(auto sorted, merged.SortValues({"grp"}, {true}));
    LAFP_ASSIGN_OR_RETURN(auto eager, sorted.ToEager());
    return eager.ToString(eager.num_rows() + 1);
  }

  std::string Reference() {
    auto session = MakeSession(BackendKind::kPandas);
    auto out = RunPipeline(session.get());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? *out : std::string();
  }

  std::string dir_, csv_path_, dim_path_;
  MemoryTracker tracker_{0};
  std::stringstream output_;
};

TEST_F(ShardExecutorTest, ByteIdenticalAcrossShardCounts) {
  const std::string reference = Reference();
  ASSERT_FALSE(reference.empty());
  for (int shards : {1, 2, 4}) {
    auto session = MakeSession(BackendKind::kShard, shards);
    auto out = RunPipeline(session.get());
    ASSERT_TRUE(out.ok()) << "shards=" << shards << ": "
                          << out.status().ToString();
    EXPECT_EQ(*out, reference) << "shards=" << shards;
  }
}

TEST_F(ShardExecutorTest, ReduceMatchesReference) {
  auto ref_session = MakeSession(BackendKind::kPandas);
  auto ref_frame = *FatDataFrame::ReadCsv(ref_session.get(), csv_path_);
  auto ref_sum = *(*(*ref_frame.Col("v")).Sum()).Value();

  auto session = MakeSession(BackendKind::kShard, 4);
  auto frame = *FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto sum = (*(*frame.Col("v")).Sum()).Value();
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->int_value(), ref_sum.int_value());

  auto len = (*frame.Len()).Value();
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len->int_value(), 700);
}

// A worker SIGKILLed while the scan request is in flight is respawned and
// the scan retried transparently: the query still succeeds with
// reference-identical bytes (scans are idempotent, ISSUE acceptance
// criterion "clean Status or transparent retry").
TEST_F(ShardExecutorTest, WorkerKillDuringScanRetriesTransparently) {
  const std::string reference = Reference();
  auto session =
      MakeSession(BackendKind::kShard, 2, "shard.worker_kill:nth=1");
  auto out = RunPipeline(session.get());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, reference);
}

// Sweep the kill site across the whole protocol exchange: whatever
// message the fault lands on, the query must end in either a clean
// failed Status or a reference-identical success — never a hang, crash,
// or silently wrong frame.
TEST_F(ShardExecutorTest, WorkerKillAnywhereYieldsCleanStatusOrRetry) {
  const std::string reference = Reference();
  for (int nth = 1; nth <= 12; ++nth) {
    auto session = MakeSession(
        BackendKind::kShard, 2,
        "shard.worker_kill:nth=" + std::to_string(nth));
    auto out = RunPipeline(session.get());
    if (out.ok()) {
      EXPECT_EQ(*out, reference) << "nth=" << nth;
    } else {
      EXPECT_FALSE(out.status().message().empty()) << "nth=" << nth;
    }
  }
}

// Injected transport errors (send and recv sides) follow the same
// contract as real worker death.
TEST_F(ShardExecutorTest, InjectedTransportFaultsFailCleanly) {
  const std::string reference = Reference();
  for (const char* site : {"shard.send", "shard.recv"}) {
    for (int nth : {1, 3, 7}) {
      auto session = MakeSession(
          BackendKind::kShard, 2,
          std::string(site) + ":nth=" + std::to_string(nth));
      auto out = RunPipeline(session.get());
      if (out.ok()) {
        EXPECT_EQ(*out, reference) << site << " nth=" << nth;
      } else {
        EXPECT_FALSE(out.status().message().empty())
            << site << " nth=" << nth;
      }
    }
  }
}

// A pre-tripped token cancels the round at the coordinator; no worker
// result is awaited forever (the fan-out drains in-flight requests
// before failing).
TEST_F(ShardExecutorTest, CancellationFansOutFromCoordinator) {
  CancellationToken cancel;
  cancel.Cancel();
  auto session = MakeSession(BackendKind::kShard, 2, "", &cancel);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  Status failed = Status::OK();
  if (frame.ok()) {
    auto out = frame->ToEager();
    ASSERT_FALSE(out.ok());
    failed = out.status();
  } else {
    failed = frame.status();
  }
  EXPECT_EQ(failed.code(), StatusCode::kCancelled)
      << failed.ToString();
}

// Zero-row partitions must survive the wire round-trip: filter everything
// out, then run the aggregation/merge machinery over the empty result.
TEST_F(ShardExecutorTest, ZeroRowPartitionExchange) {
  auto run = [&](std::unique_ptr<Session> session) -> Result<std::string> {
    LAFP_ASSIGN_OR_RETURN(auto frame,
                          FatDataFrame::ReadCsv(session.get(), csv_path_));
    LAFP_ASSIGN_OR_RETURN(auto v, frame.Col("v"));
    LAFP_ASSIGN_OR_RETURN(auto mask,
                          v.CompareTo(CompareOp::kLt, Scalar::Int(-1)));
    LAFP_ASSIGN_OR_RETURN(auto none, frame.FilterBy(mask));
    LAFP_ASSIGN_OR_RETURN(auto grouped,
                          none.GroupByAgg({"grp"}, {{"v", AggFunc::kSum,
                                                     "vs"}}));
    LAFP_ASSIGN_OR_RETURN(auto eager, grouped.ToEager());
    return eager.ToString(eager.num_rows() + 1);
  };
  auto reference = run(MakeSession(BackendKind::kPandas));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int shards : {1, 2, 4}) {
    auto out = run(MakeSession(BackendKind::kShard, shards));
    ASSERT_TRUE(out.ok()) << "shards=" << shards << ": "
                          << out.status().ToString();
    EXPECT_EQ(*out, *reference) << "shards=" << shards;
  }
}

// All-null columns cross the exchange intact (null bitmaps are part of
// the spill wire format; a lost bitmap shows up as fabricated zeros).
TEST_F(ShardExecutorTest, AllNullColumnExchange) {
  std::string path = dir_ + "/nulls.csv";
  {
    std::ofstream out(path);
    out << "k,hole\n";
    for (int i = 0; i < 300; ++i) out << i % 4 << ",\n";
  }
  auto run = [&](std::unique_ptr<Session> session) -> Result<std::string> {
    LAFP_ASSIGN_OR_RETURN(auto frame,
                          FatDataFrame::ReadCsv(session.get(), path));
    LAFP_ASSIGN_OR_RETURN(auto hole, frame.Col("hole"));
    LAFP_ASSIGN_OR_RETURN(auto filled, hole.FillNa(Scalar::Double(5.0)));
    LAFP_ASSIGN_OR_RETURN(auto with, frame.SetCol("filled", filled));
    LAFP_ASSIGN_OR_RETURN(
        auto grouped,
        with.GroupByAgg({"k"}, {{"filled", AggFunc::kSum, "s"},
                                {"hole", AggFunc::kCount, "n"}}));
    LAFP_ASSIGN_OR_RETURN(auto sorted, grouped.SortValues({"k"}, {true}));
    LAFP_ASSIGN_OR_RETURN(auto eager, sorted.ToEager());
    return eager.ToString(eager.num_rows() + 1);
  };
  auto reference = run(MakeSession(BackendKind::kPandas));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int shards : {1, 2, 4}) {
    auto out = run(MakeSession(BackendKind::kShard, shards));
    ASSERT_TRUE(out.ok()) << "shards=" << shards << ": "
                          << out.status().ToString();
    EXPECT_EQ(*out, *reference) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace lafp::lazy
