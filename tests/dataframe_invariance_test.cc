// Thread-count invariance suite for the morsel-driven kernel layer.
//
// The contract under test (dataframe/kernel_context.h): morsel boundaries
// are a pure function of (row count, morsel_rows) and partial merges run
// in fixed morsel order, so for a fixed morsel_rows every kernel produces
// byte-identical output for any intra-op thread count — including the
// Kahan-compensated sums, whose non-associativity would otherwise leak
// the parallel schedule into the result. A second property checked here:
// with the default morsel size (or none), results match the legacy
// sequential path bit-for-bit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"
#include "exec/eager_ops.h"
#include "exec/fused.h"
#include "exec/op.h"

namespace lafp::df {
namespace {

/// Bit-exact fingerprint of a column: doubles are rendered as their raw
/// bit pattern, so 1 ulp of drift (or -0.0 vs 0.0) changes the string.
std::string Fingerprint(const Column& col) {
  std::ostringstream os;
  os << DataTypeName(col.type()) << ":" << col.size() << "[";
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsValid(i)) {
      os << "_;";
      continue;
    }
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        os << col.IntAt(i);
        break;
      case DataType::kDouble: {
        uint64_t bits = 0;
        double v = col.DoubleAt(i);
        std::memcpy(&bits, &v, sizeof(bits));
        os << std::hex << bits << std::dec;
        break;
      }
      case DataType::kBool:
        os << (col.BoolAt(i) ? "t" : "f");
        break;
      case DataType::kString:
      case DataType::kCategory:
        os << col.StringAt(i);
        break;
      case DataType::kNull:
        os << "?";
        break;
    }
    os << ";";
  }
  os << "]";
  return os.str();
}

/// Bit-exact scalar fingerprint (ToString would round doubles away).
std::string Fingerprint(const Scalar& s) {
  if (s.type() == DataType::kDouble) {
    uint64_t bits = 0;
    double v = s.double_value();
    std::memcpy(&bits, &v, sizeof(bits));
    std::ostringstream os;
    os << "d:" << std::hex << bits;
    return os.str();
  }
  return s.ToString();
}

std::string Fingerprint(const DataFrame& df) {
  std::ostringstream os;
  for (size_t c = 0; c < df.num_columns(); ++c) {
    os << df.names()[c] << "=" << Fingerprint(*df.column(c)) << "\n";
  }
  return os.str();
}

/// Runs `fn` under a KernelContext with the given thread count and morsel
/// size and returns the result's fingerprint. threads <= 1 uses no pool
/// (the serial-over-morsels path); morsel_rows == 0 disables splitting
/// entirely (the legacy path).
class InvarianceTest : public ::testing::Test {
 protected:
  template <typename Fn>
  std::string RunWith(int threads, size_t morsel_rows, Fn fn) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    KernelContext ctx(pool.get(), threads, morsel_rows);
    KernelScope scope(&ctx);
    return fn();
  }

  /// Asserts `fn`'s result is byte-identical for threads 1, 2 and 8 at
  /// each tested morsel size (including 1-row morsels), and identical to
  /// the legacy no-context run when the data fits one morsel.
  template <typename Fn>
  void CheckInvariant(Fn fn) {
    const std::string legacy = fn();  // no context installed
    for (size_t morsel_rows : {size_t{1}, size_t{7}, size_t{64},
                               KernelContext::kDefaultMorselRows}) {
      const std::string t1 = RunWith(1, morsel_rows, fn);
      for (int threads : {2, 8}) {
        EXPECT_EQ(t1, RunWith(threads, morsel_rows, fn))
            << "thread-count variance at morsel_rows=" << morsel_rows
            << " threads=" << threads;
      }
      if (morsel_rows == KernelContext::kDefaultMorselRows) {
        // All test inputs fit one default-size morsel, so this must be
        // the legacy sequential path bit-for-bit.
        EXPECT_EQ(legacy, t1) << "diverged from the legacy serial path";
      }
    }
  }

  ColumnPtr Ints(std::vector<int64_t> v, std::vector<uint8_t> validity = {}) {
    return *Column::MakeInt(std::move(v), std::move(validity), &tracker_);
  }
  ColumnPtr Doubles(std::vector<double> v,
                    std::vector<uint8_t> validity = {}) {
    return *Column::MakeDouble(std::move(v), std::move(validity), &tracker_);
  }
  ColumnPtr Strings(std::vector<std::string> v,
                    std::vector<uint8_t> validity = {}) {
    return *Column::MakeString(std::move(v), std::move(validity), &tracker_);
  }

  /// A mixed frame whose doubles include Kahan-hostile magnitude jumps
  /// (1e16 +/- 1 sequences), NaNs and nulls, sized to span many morsels
  /// at the small test morsel sizes.
  DataFrame TestFrame(size_t n) {
    std::vector<int64_t> ints(n);
    std::vector<double> dbls(n);
    std::vector<uint8_t> dvalid(n, 1);
    std::vector<std::string> strs(n);
    for (size_t i = 0; i < n; ++i) {
      ints[i] = static_cast<int64_t>(i * 37 % 101) - 50;
      switch (i % 7) {
        case 0:
          dbls[i] = 1e16;
          break;
        case 1:
          dbls[i] = 1.0;
          break;
        case 2:
          dbls[i] = -1e16;
          break;
        case 3:
          dbls[i] = 0.1 * static_cast<double>(i);
          break;
        case 4:
          dbls[i] = std::nan("");
          break;
        case 5:
          dbls[i] = 0.0;
          dvalid[i] = 0;
          break;
        default:
          dbls[i] = -3.25 * static_cast<double>(i % 13);
          break;
      }
      strs[i] = "g" + std::to_string(i % 5);
    }
    return *DataFrame::Make(
        {"i", "d", "k"},
        {Ints(std::move(ints)), Doubles(std::move(dbls), std::move(dvalid)),
         Strings(std::move(strs))});
  }

  MemoryTracker tracker_{0};
};

constexpr size_t kRows = 300;  // ~43 morsels at 7 rows, 300 at 1 row

TEST_F(InvarianceTest, FilterAndMaskToIndices) {
  DataFrame df = TestFrame(kRows);
  CheckInvariant([&] {
    ColumnPtr mask =
        *Compare(*df.column(size_t{0}), CompareOp::kGt, Scalar::Int(0));
    return Fingerprint(*Filter(df, *mask));
  });
}

TEST_F(InvarianceTest, ArithScalarAndColumns) {
  DataFrame df = TestFrame(kRows);
  CheckInvariant([&] {
    ColumnPtr a = *Arith(*df.column(size_t{1}), ArithOp::kMul,
                         Scalar::Double(1.0000001));
    ColumnPtr b = *ArithColumns(*df.column(size_t{1}), ArithOp::kAdd,
                                *df.column(size_t{0}));
    ColumnPtr c = *ArithScalarLeft(Scalar::Double(2.5), ArithOp::kSub,
                                   *df.column(size_t{1}));
    return Fingerprint(*a) + Fingerprint(*b) + Fingerprint(*c);
  });
}

TEST_F(InvarianceTest, CompareAndBoolean) {
  DataFrame df = TestFrame(kRows);
  CheckInvariant([&] {
    ColumnPtr gt =
        *Compare(*df.column(size_t{1}), CompareOp::kGe, Scalar::Double(0.0));
    ColumnPtr cc = *CompareColumns(*df.column(size_t{0}), CompareOp::kLt,
                                   *df.column(size_t{1}));
    ColumnPtr both = *BooleanAnd(*gt, *cc);
    ColumnPtr isnull = *IsNull(*df.column(size_t{1}));
    return Fingerprint(*both) + Fingerprint(*isnull);
  });
}

TEST_F(InvarianceTest, ReduceSumMeanCountWithKahanStress) {
  DataFrame df = TestFrame(kRows);
  CheckInvariant([&] {
    std::string out;
    for (AggFunc f : {AggFunc::kSum, AggFunc::kMean, AggFunc::kCount,
                      AggFunc::kMin, AggFunc::kMax}) {
      out += Fingerprint(*Reduce(*df.column(size_t{1}), f)) + "|";
      out += Fingerprint(*Reduce(*df.column(size_t{0}), f)) + "|";
    }
    return out;
  });
}

TEST_F(InvarianceTest, GroupByAggWithNullsAndKahan) {
  DataFrame df = TestFrame(kRows);
  CheckInvariant([&] {
    DataFrame out = *GroupByAgg(df, {"k"},
                                {{"d", AggFunc::kSum, "s"},
                                 {"d", AggFunc::kMean, "m"},
                                 {"d", AggFunc::kCount, "c"},
                                 {"i", AggFunc::kSum, "is"},
                                 {"k", AggFunc::kNunique, "u"}});
    return Fingerprint(out);
  });
}

TEST_F(InvarianceTest, TakeAndSort) {
  DataFrame df = TestFrame(kRows);
  CheckInvariant([&] {
    DataFrame sorted = *SortValues(df, {"k", "i"}, {true, false});
    std::vector<int64_t> idx;
    for (size_t i = 0; i < kRows; i += 3) {
      idx.push_back(static_cast<int64_t>(kRows - 1 - i));
    }
    ColumnPtr taken = *df.column(size_t{1})->Take(idx);
    return Fingerprint(sorted) + Fingerprint(*taken);
  });
}

TEST_F(InvarianceTest, JoinAfterParallelFilter) {
  DataFrame left = TestFrame(kRows);
  DataFrame right = *DataFrame::Make(
      {"k", "v"},
      {Strings({"g0", "g1", "g2", "g3"}), Ints({10, 11, 12, 13})});
  CheckInvariant([&] {
    ColumnPtr mask =
        *Compare(*left.column(size_t{0}), CompareOp::kNe, Scalar::Int(0));
    DataFrame filtered = *Filter(left, *mask);
    DataFrame joined = *Merge(filtered, right, {"k"}, JoinType::kInner);
    return Fingerprint(joined);
  });
}

TEST_F(InvarianceTest, DatetimeParseAndAccessors) {
  std::vector<std::string> dates;
  std::vector<uint8_t> valid;
  for (size_t i = 0; i < kRows; ++i) {
    if (i % 11 == 3) {
      dates.push_back("not a date");
      valid.push_back(1);
    } else if (i % 13 == 5) {
      dates.push_back("");
      valid.push_back(0);
    } else {
      dates.push_back("2021-0" + std::to_string(1 + i % 9) + "-" +
                      (i % 28 < 9 ? "0" : "") + std::to_string(1 + i % 28) +
                      " 07:3" + std::to_string(i % 10) + ":00");
      valid.push_back(1);
    }
  }
  ColumnPtr raw = Strings(std::move(dates), std::move(valid));
  CheckInvariant([&] {
    ColumnPtr ts = *ToDatetime(*raw);
    std::string out = Fingerprint(*ts);
    for (DtField f : {DtField::kYear, DtField::kMonth, DtField::kDay,
                      DtField::kDayOfWeek, DtField::kHour}) {
      out += Fingerprint(**DtAccessor(*ts, f));
    }
    return out;
  });
}

TEST_F(InvarianceTest, EmptyFrame) {
  DataFrame df = TestFrame(0);
  CheckInvariant([&] {
    ColumnPtr mask =
        *Compare(*df.column(size_t{0}), CompareOp::kGt, Scalar::Int(0));
    DataFrame filtered = *Filter(df, *mask);
    DataFrame grouped =
        *GroupByAgg(df, {"k"}, {{"d", AggFunc::kSum, "s"}});
    std::string out = Fingerprint(filtered) + Fingerprint(grouped);
    out += Fingerprint(*Reduce(*df.column(size_t{1}), AggFunc::kSum));
    return out;
  });
}

TEST_F(InvarianceTest, AllNullColumn) {
  const size_t n = 50;
  ColumnPtr nulls =
      Doubles(std::vector<double>(n, 0.0), std::vector<uint8_t>(n, 0));
  ColumnPtr keys = Strings([&] {
    std::vector<std::string> k(n);
    for (size_t i = 0; i < n; ++i) k[i] = i % 2 != 0 ? "a" : "b";
    return k;
  }());
  DataFrame df = *DataFrame::Make({"d", "k"}, {nulls, keys});
  CheckInvariant([&] {
    std::string out = Fingerprint(*Reduce(*nulls, AggFunc::kSum)) + "|" +
                      Fingerprint(*Reduce(*nulls, AggFunc::kMean)) + "|" +
                      Fingerprint(*Reduce(*nulls, AggFunc::kCount)) + "|";
    out += Fingerprint(*GroupByAgg(df, {"k"},
                                   {{"d", AggFunc::kMean, "m"},
                                    {"d", AggFunc::kMax, "mx"}}));
    out += Fingerprint(**Arith(*nulls, ArithOp::kAdd, Scalar::Double(1.0)));
    return out;
  });
}

// ---------------------------------------------------------------------
// Fused-vs-unfused byte identity: a kFusedMap node must reproduce the
// exact bytes of executing the same chain as individual eager ops, at
// every thread count and morsel size (including 1-row morsels).

exec::OpDesc ArithStep(ArithOp op, Scalar s, bool on_left = false) {
  exec::OpDesc d;
  d.kind = exec::OpKind::kArith;
  d.arith_op = op;
  d.has_scalar = true;
  d.scalar = std::move(s);
  d.scalar_on_left = on_left;
  return d;
}

exec::OpDesc CmpStep(CompareOp op, Scalar s) {
  exec::OpDesc d;
  d.kind = exec::OpKind::kCompare;
  d.compare_op = op;
  d.has_scalar = true;
  d.scalar = std::move(s);
  return d;
}

exec::OpDesc SimpleStep(exec::OpKind kind, int digits = 0) {
  exec::OpDesc d;
  d.kind = kind;
  d.digits = digits;
  return d;
}

/// Executes filter+project+steps as a single kFusedMap node.
Result<exec::EagerValue> RunFused(const DataFrame& df, const ColumnPtr& mask,
                                  const std::string& col,
                                  std::vector<exec::OpDesc> steps,
                                  MemoryTracker* tracker) {
  exec::OpDesc d;
  d.kind = exec::OpKind::kFusedMap;
  d.column = col;
  d.fused = std::move(steps);
  std::vector<exec::EagerValue> inputs;
  inputs.push_back(exec::EagerValue::Frame(df));
  inputs.push_back(
      exec::EagerValue::Frame(*DataFrame::Make({"m"}, {mask})));
  return exec::ExecuteFusedMap(d, inputs, tracker);
}

/// Executes the same chain as the optimizer would have left it unfused:
/// one eager op per node (filter, get_column, then each step).
Result<exec::EagerValue> RunUnfused(const DataFrame& df, const ColumnPtr& mask,
                                    const std::string& col,
                                    const std::vector<exec::OpDesc>& steps,
                                    MemoryTracker* tracker) {
  exec::OpDesc filter;
  filter.kind = exec::OpKind::kFilter;
  std::vector<exec::EagerValue> in;
  in.push_back(exec::EagerValue::Frame(df));
  in.push_back(exec::EagerValue::Frame(*DataFrame::Make({"m"}, {mask})));
  auto cur = exec::ExecuteEagerOp(filter, in, tracker);
  if (!cur.ok()) return cur;
  exec::OpDesc get;
  get.kind = exec::OpKind::kGetColumn;
  get.column = col;
  cur = exec::ExecuteEagerOp(get, {*cur}, tracker);
  for (const auto& step : steps) {
    if (!cur.ok()) return cur;
    cur = exec::ExecuteEagerOp(step, {*cur}, tracker);
  }
  return cur;
}

class FusedInvarianceTest : public InvarianceTest {
 protected:
  /// Asserts fused == unfused byte-for-byte (output or error message)
  /// across the full thread/morsel sweep.
  void CheckFusedIdentity(const DataFrame& df, const ColumnPtr& mask,
                          const std::string& col,
                          const std::vector<exec::OpDesc>& steps) {
    CheckInvariant([&] {
      auto fused = RunFused(df, mask, col, steps, &tracker_);
      auto unfused = RunUnfused(df, mask, col, steps, &tracker_);
      EXPECT_EQ(fused.ok(), unfused.ok());
      if (!fused.ok() || !unfused.ok()) {
        EXPECT_EQ(fused.status().ToString(), unfused.status().ToString());
        return fused.status().ToString();
      }
      const std::string ff = Fingerprint((*fused).frame);
      EXPECT_EQ(ff, Fingerprint((*unfused).frame));
      return ff;
    });
  }
};

TEST_F(FusedInvarianceTest, FilterProjectDoubleChain) {
  DataFrame df = TestFrame(kRows);
  ColumnPtr mask =
      *Compare(*df.column(size_t{0}), CompareOp::kGt, Scalar::Int(-20));
  CheckFusedIdentity(df, mask, "d",
                     {ArithStep(ArithOp::kMul, Scalar::Double(1.0000001)),
                      ArithStep(ArithOp::kAdd, Scalar::Double(2.5)),
                      SimpleStep(exec::OpKind::kAbs),
                      SimpleStep(exec::OpKind::kRound, 2),
                      CmpStep(CompareOp::kLt, Scalar::Double(100.0)),
                      SimpleStep(exec::OpKind::kBooleanNot)});
}

TEST_F(FusedInvarianceTest, FilterProjectIntFastPathWrapAndMod) {
  DataFrame df = TestFrame(kRows);
  ColumnPtr mask =
      *Compare(*df.column(size_t{0}), CompareOp::kNe, Scalar::Int(0));
  CheckFusedIdentity(df, mask, "i",
                     {ArithStep(ArithOp::kMul, Scalar::Int(INT64_MAX / 3)),
                      ArithStep(ArithOp::kMod, Scalar::Int(-7)),
                      ArithStep(ArithOp::kSub, Scalar::Int(INT64_MIN)),
                      SimpleStep(exec::OpKind::kAbs)});
}

TEST_F(FusedInvarianceTest, SeriesChainAndScalarOnLeft) {
  DataFrame df = TestFrame(kRows);
  // Series variant: single-column frame input, empty `column`.
  DataFrame series = *DataFrame::Make({"d"}, {df.column(size_t{1})});
  std::vector<exec::OpDesc> steps = {
      ArithStep(ArithOp::kSub, Scalar::Double(1.5), /*on_left=*/true),
      ArithStep(ArithOp::kDiv, Scalar::Double(3.0)),
      SimpleStep(exec::OpKind::kIsNull)};
  CheckInvariant([&] {
    exec::OpDesc d;
    d.kind = exec::OpKind::kFusedMap;
    d.fused = steps;
    auto fused = exec::ExecuteFusedMap(
        d, {exec::EagerValue::Frame(series)}, &tracker_);
    auto cur = Result<exec::EagerValue>(exec::EagerValue::Frame(series));
    for (const auto& step : steps) {
      cur = exec::ExecuteEagerOp(step, {*cur}, &tracker_);
      EXPECT_TRUE(cur.ok());
    }
    EXPECT_TRUE(fused.ok());
    const std::string ff = Fingerprint((*fused).frame);
    EXPECT_EQ(ff, Fingerprint((*cur).frame));
    return ff;
  });
}

TEST_F(FusedInvarianceTest, ZeroStepProjection) {
  DataFrame df = TestFrame(kRows);
  ColumnPtr mask =
      *Compare(*df.column(size_t{1}), CompareOp::kGe, Scalar::Double(0.0));
  CheckFusedIdentity(df, mask, "d", {});
  CheckFusedIdentity(df, mask, "k", {});  // string column, no steps
}

TEST_F(FusedInvarianceTest, EmptyFrame) {
  DataFrame df = TestFrame(0);
  ColumnPtr mask =
      *Compare(*df.column(size_t{0}), CompareOp::kGt, Scalar::Int(0));
  CheckFusedIdentity(df, mask, "d",
                     {ArithStep(ArithOp::kMul, Scalar::Double(2.0)),
                      CmpStep(CompareOp::kNe, Scalar::Double(0.0))});
}

TEST_F(FusedInvarianceTest, AllNullColumnAndNullScalar) {
  const size_t n = 60;
  DataFrame df = *DataFrame::Make(
      {"d", "i"},
      {Doubles(std::vector<double>(n, 0.0), std::vector<uint8_t>(n, 0)),
       Ints([&] {
         std::vector<int64_t> v(n);
         for (size_t i = 0; i < n; ++i) v[i] = static_cast<int64_t>(i) - 30;
         return v;
       }())});
  ColumnPtr mask =
      *Compare(*df.column(size_t{1}), CompareOp::kLt, Scalar::Int(20));
  // All-null input column.
  CheckFusedIdentity(df, mask, "d",
                     {ArithStep(ArithOp::kAdd, Scalar::Double(1.0)),
                      SimpleStep(exec::OpKind::kIsNull)});
  // Null scalar mid-chain nullifies everything downstream.
  CheckFusedIdentity(df, mask, "i",
                     {ArithStep(ArithOp::kMul, Scalar::Null()),
                      CmpStep(CompareOp::kNe, Scalar::Double(0.0))});
}

TEST_F(FusedInvarianceTest, StringChainFallsBackIdentically) {
  DataFrame df = TestFrame(kRows);
  ColumnPtr mask =
      *Compare(*df.column(size_t{0}), CompareOp::kGt, Scalar::Int(0));
  // Strings are not lane-representable: the fused node must fall back to
  // composing the ordinary kernels, reproducing output and errors alike.
  CheckFusedIdentity(df, mask, "k",
                     {ArithStep(ArithOp::kAdd, Scalar::String("!"))});
  CheckFusedIdentity(df, mask, "k", {SimpleStep(exec::OpKind::kAbs)});
}

// Sanity check on the geometry primitive itself: chunk boundaries must
// not depend on the pool or thread count.
TEST_F(InvarianceTest, MorselGeometryIgnoresThreads) {
  auto boundaries = [&](int threads) {
    return RunWith(threads, 7, [] {
      std::ostringstream os;
      Status st = RunMorsels(100, [&](size_t begin, size_t end) {
        os << begin << "-" << end << ",";  // serialized by RunWith's t=1...
        return Status::OK();
      });
      EXPECT_TRUE(st.ok());
      return os.str();
    });
  };
  // Only the single-threaded run writes to the stream race-free; derive
  // the expected geometry from it and check NumMorsels agreement instead
  // of comparing racy parallel output.
  EXPECT_EQ(boundaries(1),
            "0-7,7-14,14-21,21-28,28-35,35-42,42-49,49-56,56-63,63-70,"
            "70-77,77-84,84-91,91-98,98-100,");
  KernelContext ctx(nullptr, 1, 7);
  KernelScope scope(&ctx);
  EXPECT_EQ(NumMorsels(100), 15u);
  EXPECT_EQ(NumMorsels(0), 0u);
  EXPECT_EQ(NumMorsels(7), 1u);
  EXPECT_EQ(NumMorsels(8), 2u);
}

}  // namespace
}  // namespace lafp::df
