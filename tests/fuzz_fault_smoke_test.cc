// The fault axis of the differential fuzzer wired into the tier-1 suite:
// generated programs run with injected IO/OOM/exec faults armed. The
// oracle contract under faults is strict — every run must either produce
// reference-identical output or fail with a clean Status. A crash, hang,
// truncated-but-checksum-ok frame, or wrong successful output is a bug in
// a failure path.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "testing/fuzzer.h"
#include "testing/oracle.h"

namespace {

using lafp::testing::ExecuteUnderConfig;
using lafp::testing::FaultConfigs;
using lafp::testing::FuzzOptions;
using lafp::testing::FuzzStats;
using lafp::testing::OracleConfig;
using lafp::testing::RunFuzz;

TEST(FuzzFaultSmokeTest, FaultConfigsAreDeterministicAndArmed) {
  auto a = FaultConfigs(7, 12);
  auto b = FaultConfigs(7, 12);
  ASSERT_EQ(a.size(), 12u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Name(), b[i].Name());
    EXPECT_FALSE(a[i].faults.empty());
    // Spill faults only make sense on a spilling Dask config.
    if (a[i].faults.rfind("spill.", 0) == 0) {
      EXPECT_EQ(a[i].backend, lafp::exec::BackendKind::kDask);
      EXPECT_TRUE(a[i].spill);
    }
  }
}

TEST(FuzzFaultSmokeTest, ProgramsSurviveInjectedFaults) {
  FuzzOptions options;
  options.seed = 42;
  options.iters = 15;
  options.matrix = 4;  // plus matrix/2 fault points per program
  options.faults = true;
  options.shrink = false;
  auto dir = std::filesystem::temp_directory_path() / "lafp_fuzz_faults";
  std::filesystem::create_directories(dir);
  options.data_dir = dir.string();
  std::ostringstream log;
  options.log = &log;

  FuzzStats stats = RunFuzz(options);
  EXPECT_EQ(stats.iterations, 15);
  EXPECT_EQ(stats.reference_failures, 0) << log.str();
  ASSERT_TRUE(stats.divergences.empty())
      << "first divergence: seed " << stats.divergences[0].program_seed
      << " under " << stats.divergences[0].config_name << "\n"
      << stats.divergences[0].detail << "\n"
      << log.str();
}

}  // namespace
