// Replays every checked-in fuzz corpus program (tests/fuzz_corpus/*.pds)
// under the fixed regression config matrix: all three backends, every
// single-pass and all-pass optimizer subset, serial and parallel. Each
// entry is a shrunk repro of a fixed bug or a curated coverage program;
// all of them must match the eager-Pandas reference exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "testing/fuzzer.h"
#include "testing/oracle.h"

namespace {

using lafp::testing::CaseResult;
using lafp::testing::CaseVerdict;
using lafp::testing::CheckCase;
using lafp::testing::ListCorpus;
using lafp::testing::ReadCorpusFile;
using lafp::testing::RegressionConfigs;
using lafp::testing::ShrinkCase;

std::string CorpusDir() { return LAFP_FUZZ_CORPUS_DIR; }

std::string DataDir() {
  auto dir = std::filesystem::temp_directory_path() / "lafp_fuzz_regress";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(FuzzRegressionTest, CorpusIsPresent) {
  std::vector<std::string> paths = ListCorpus(CorpusDir());
  EXPECT_GE(paths.size(), 10u) << "corpus dir: " << CorpusDir();
}

TEST(FuzzRegressionTest, CorpusFilesParse) {
  for (const auto& path : ListCorpus(CorpusDir())) {
    auto c = ReadCorpusFile(path);
    ASSERT_TRUE(c.ok()) << path << ": " << c.status().ToString();
    EXPECT_FALSE(c->source.empty()) << path;
    EXPECT_FALSE(c->tables.empty()) << path;
  }
}

TEST(FuzzRegressionTest, CorpusReplaysCleanUnderRegressionMatrix) {
  const std::vector<lafp::testing::OracleConfig> configs =
      RegressionConfigs();
  const std::string data_dir = DataDir();
  for (const auto& path : ListCorpus(CorpusDir())) {
    auto c = ReadCorpusFile(path);
    ASSERT_TRUE(c.ok()) << path << ": " << c.status().ToString();
    CaseResult result = CheckCase(*c, configs, data_dir);
    EXPECT_TRUE(result.verdict == CaseVerdict::kOk)
        << path << " under " << result.config_name << ":\n"
        << result.detail;
  }
}

}  // namespace
