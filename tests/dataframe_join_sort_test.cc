#include <gtest/gtest.h>

#include <cmath>

#include "dataframe/ops.h"

namespace lafp::df {
namespace {

class JoinSortTest : public ::testing::Test {
 protected:
  MemoryTracker tracker_{0};
};

TEST_F(JoinSortTest, InnerJoinMatchesKeys) {
  auto trips = *DataFrame::Make(
      {"city_id", "fare"},
      {*Column::MakeInt({1, 2, 1, 3}, {}, &tracker_),
       *Column::MakeDouble({10.0, 20.0, 30.0, 40.0}, {}, &tracker_)});
  auto cities = *DataFrame::Make(
      {"city_id", "name"},
      {*Column::MakeInt({1, 2}, {}, &tracker_),
       *Column::MakeString({"NY", "SF"}, {}, &tracker_)});
  auto joined = Merge(trips, cities, {"city_id"}, JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 3u);  // city 3 dropped
  EXPECT_EQ(joined->names(),
            (std::vector<std::string>{"city_id", "fare", "name"}));
  EXPECT_EQ((*joined->column("name"))->StringAt(0), "NY");
  EXPECT_EQ((*joined->column("name"))->StringAt(1), "SF");
  EXPECT_EQ((*joined->column("name"))->StringAt(2), "NY");
}

TEST_F(JoinSortTest, LeftJoinKeepsUnmatchedWithNulls) {
  auto left = *DataFrame::Make(
      {"k", "v"},
      {*Column::MakeInt({1, 9}, {}, &tracker_),
       *Column::MakeInt({100, 900}, {}, &tracker_)});
  auto right = *DataFrame::Make(
      {"k", "w"},
      {*Column::MakeInt({1}, {}, &tracker_),
       *Column::MakeString({"one"}, {}, &tracker_)});
  auto joined = Merge(left, right, {"k"}, JoinType::kLeft);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 2u);
  EXPECT_EQ((*joined->column("w"))->StringAt(0), "one");
  EXPECT_FALSE((*joined->column("w"))->IsValid(1));
}

TEST_F(JoinSortTest, OneToManyFansOut) {
  auto left = *DataFrame::Make(
      {"k"}, {*Column::MakeInt({5}, {}, &tracker_)});
  auto right = *DataFrame::Make(
      {"k", "tag"},
      {*Column::MakeInt({5, 5, 5}, {}, &tracker_),
       *Column::MakeString({"a", "b", "c"}, {}, &tracker_)});
  auto joined = Merge(left, right, {"k"}, JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 3u);
}

TEST_F(JoinSortTest, OverlappingColumnsGetSuffixes) {
  auto left = *DataFrame::Make(
      {"k", "v"},
      {*Column::MakeInt({1}, {}, &tracker_),
       *Column::MakeInt({10}, {}, &tracker_)});
  auto right = *DataFrame::Make(
      {"k", "v"},
      {*Column::MakeInt({1}, {}, &tracker_),
       *Column::MakeInt({99}, {}, &tracker_)});
  auto joined = Merge(left, right, {"k"}, JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->names(),
            (std::vector<std::string>{"k", "v_x", "v_y"}));
  EXPECT_EQ((*joined->column("v_x"))->IntAt(0), 10);
  EXPECT_EQ((*joined->column("v_y"))->IntAt(0), 99);
}

TEST_F(JoinSortTest, MultiKeyJoin) {
  auto left = *DataFrame::Make(
      {"a", "b", "v"},
      {*Column::MakeInt({1, 1, 2}, {}, &tracker_),
       *Column::MakeString({"x", "y", "x"}, {}, &tracker_),
       *Column::MakeInt({10, 20, 30}, {}, &tracker_)});
  auto right = *DataFrame::Make(
      {"a", "b", "w"},
      {*Column::MakeInt({1, 2}, {}, &tracker_),
       *Column::MakeString({"y", "x"}, {}, &tracker_),
       *Column::MakeInt({7, 8}, {}, &tracker_)});
  auto joined = Merge(left, right, {"a", "b"}, JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 2u);
  EXPECT_EQ((*joined->column("v"))->IntAt(0), 20);
  EXPECT_EQ((*joined->column("w"))->IntAt(0), 7);
}

TEST_F(JoinSortTest, MergeRequiresKeys) {
  DataFrame empty;
  EXPECT_FALSE(Merge(empty, empty, {}, JoinType::kInner).ok());
}

TEST_F(JoinSortTest, SortSingleKeyAscending) {
  auto frame = *DataFrame::Make(
      {"v", "tag"},
      {*Column::MakeInt({3, 1, 2}, {}, &tracker_),
       *Column::MakeString({"c", "a", "b"}, {}, &tracker_)});
  auto sorted = SortValues(frame, {"v"}, {true});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted->column("v"))->IntAt(0), 1);
  EXPECT_EQ((*sorted->column("v"))->IntAt(2), 3);
  EXPECT_EQ((*sorted->column("tag"))->StringAt(0), "a");
}

TEST_F(JoinSortTest, SortDescendingAndMultiKey) {
  auto frame = *DataFrame::Make(
      {"g", "v"},
      {*Column::MakeString({"b", "a", "b", "a"}, {}, &tracker_),
       *Column::MakeInt({1, 2, 3, 4}, {}, &tracker_)});
  auto sorted = SortValues(frame, {"g", "v"}, {true, false});
  ASSERT_TRUE(sorted.ok());
  // a:4, a:2, b:3, b:1
  EXPECT_EQ((*sorted->column("g"))->StringAt(0), "a");
  EXPECT_EQ((*sorted->column("v"))->IntAt(0), 4);
  EXPECT_EQ((*sorted->column("v"))->IntAt(1), 2);
  EXPECT_EQ((*sorted->column("v"))->IntAt(2), 3);
  EXPECT_EQ((*sorted->column("v"))->IntAt(3), 1);
}

TEST_F(JoinSortTest, SortIsStable) {
  auto frame = *DataFrame::Make(
      {"k", "order"},
      {*Column::MakeInt({1, 1, 1}, {}, &tracker_),
       *Column::MakeInt({0, 1, 2}, {}, &tracker_)});
  auto sorted = SortValues(frame, {"k"}, {true});
  ASSERT_TRUE(sorted.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*sorted->column("order"))->IntAt(i), i);
  }
}

TEST_F(JoinSortTest, SortNullsLast) {
  auto frame = *DataFrame::Make(
      {"v"}, {*Column::MakeInt({2, 0, 1}, {1, 0, 1}, &tracker_)});
  auto asc = SortValues(frame, {"v"}, {true});
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ((*asc->column("v"))->IntAt(0), 1);
  EXPECT_FALSE((*asc->column("v"))->IsValid(2));
  auto desc = SortValues(frame, {"v"}, {false});
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ((*desc->column("v"))->IntAt(0), 2);
  EXPECT_FALSE((*desc->column("v"))->IsValid(2));  // still last
}

TEST_F(JoinSortTest, SortNaNAfterNumbers) {
  auto frame = *DataFrame::Make(
      {"v"},
      {*Column::MakeDouble({2.0, std::nan(""), 1.0}, {}, &tracker_)});
  auto sorted = SortValues(frame, {"v"}, {true});
  ASSERT_TRUE(sorted.ok());
  EXPECT_DOUBLE_EQ((*sorted->column("v"))->DoubleAt(0), 1.0);
  EXPECT_TRUE(std::isnan((*sorted->column("v"))->DoubleAt(2)));
}

TEST_F(JoinSortTest, SortBroadcastsSingleAscendingFlag) {
  auto frame = *DataFrame::Make(
      {"a", "b"},
      {*Column::MakeInt({1, 1, 0}, {}, &tracker_),
       *Column::MakeInt({5, 3, 9}, {}, &tracker_)});
  auto sorted = SortValues(frame, {"a", "b"}, {false});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted->column("a"))->IntAt(0), 1);
  EXPECT_EQ((*sorted->column("b"))->IntAt(0), 5);
}

TEST_F(JoinSortTest, ConcatStacksFrames) {
  auto a = *DataFrame::Make(
      {"x", "s"},
      {*Column::MakeInt({1}, {}, &tracker_),
       *Column::MakeString({"a"}, {}, &tracker_)});
  auto b = *DataFrame::Make(
      {"x", "s"},
      {*Column::MakeInt({2, 3}, {}, &tracker_),
       *Column::MakeString({"b", "c"}, {}, &tracker_)});
  auto cat = Concat({a, b});
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->num_rows(), 3u);
  EXPECT_EQ((*cat->column("x"))->IntAt(2), 3);
  EXPECT_EQ((*cat->column("s"))->StringAt(1), "b");
}

TEST_F(JoinSortTest, ConcatWidensIntToDouble) {
  auto a = *DataFrame::Make({"x"},
                            {*Column::MakeInt({1}, {}, &tracker_)});
  auto b = *DataFrame::Make(
      {"x"}, {*Column::MakeDouble({2.5}, {}, &tracker_)});
  auto cat = Concat({a, b});
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ((*cat->column("x"))->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ((*cat->column("x"))->DoubleAt(0), 1.0);
}

TEST_F(JoinSortTest, ConcatRejectsSchemaMismatch) {
  auto a = *DataFrame::Make({"x"},
                            {*Column::MakeInt({1}, {}, &tracker_)});
  auto b = *DataFrame::Make({"y"},
                            {*Column::MakeInt({2}, {}, &tracker_)});
  EXPECT_FALSE(Concat({a, b}).ok());
  auto c = *DataFrame::Make(
      {"x"}, {*Column::MakeString({"s"}, {}, &tracker_)});
  EXPECT_FALSE(Concat({a, c}).ok());
}

TEST_F(JoinSortTest, ConcatEmptyListYieldsEmptyFrame) {
  auto cat = Concat({});
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->num_rows(), 0u);
}

}  // namespace
}  // namespace lafp::df
