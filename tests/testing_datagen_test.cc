// Properties the shrinker relies on: table generation is deterministic in
// the spec, truncating rows keeps the surviving prefix byte-identical,
// and dropping columns via `keep` never perturbs the surviving cells.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "testing/tablegen.h"

namespace {

using lafp::testing::FuzzColumn;
using lafp::testing::SchemaForSeed;
using lafp::testing::SchemaForSpec;
using lafp::testing::TableSpec;
using lafp::testing::WriteTable;

std::string TempDir(const std::string& leaf) {
  auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Split one CSV line on commas (generated cells never contain commas).
std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

TEST(TablegenTest, SchemaIsDeterministicAndKeyed) {
  for (uint64_t seed : {1ull, 7ull, 12345ull}) {
    std::vector<FuzzColumn> a = SchemaForSeed(seed, "t0");
    std::vector<FuzzColumn> b = SchemaForSeed(seed, "t0");
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].name, b[i].name);
      EXPECT_EQ(a[i].kind, b[i].kind);
    }
    // The shared merge key and the low-cardinality category lead.
    ASSERT_GE(a.size(), 2u);
    EXPECT_EQ(a[0].name, "key");
    EXPECT_EQ(a[1].name, "cat_t0");
  }
}

TEST(TablegenTest, WriteIsDeterministic) {
  TableSpec spec;
  spec.name = "t0";
  spec.seed = 99;
  spec.rows = 25;
  auto p1 = WriteTable(spec, TempDir("lafp_tablegen_a"));
  auto p2 = WriteTable(spec, TempDir("lafp_tablegen_b"));
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(ReadLines(*p1), ReadLines(*p2));
}

TEST(TablegenTest, RowTruncationKeepsPrefix) {
  TableSpec full;
  full.name = "t0";
  full.seed = 1234;
  full.rows = 30;
  TableSpec truncated = full;
  truncated.rows = 11;
  auto pf = WriteTable(full, TempDir("lafp_tablegen_rows_f"));
  auto pt = WriteTable(truncated, TempDir("lafp_tablegen_rows_t"));
  ASSERT_TRUE(pf.ok() && pt.ok());
  std::vector<std::string> full_lines = ReadLines(*pf);
  std::vector<std::string> trunc_lines = ReadLines(*pt);
  ASSERT_EQ(trunc_lines.size(), 12u);  // header + 11 rows
  for (size_t i = 0; i < trunc_lines.size(); ++i) {
    EXPECT_EQ(trunc_lines[i], full_lines[i]) << "line " << i;
  }
}

TEST(TablegenTest, ColumnDropKeepsSurvivingCells) {
  TableSpec full;
  full.name = "t0";
  full.seed = 77;
  full.rows = 16;
  std::vector<FuzzColumn> schema = SchemaForSeed(full.seed, full.name);
  ASSERT_GE(schema.size(), 3u);
  TableSpec pruned = full;
  pruned.keep = {schema[0].name, schema[2].name};
  ASSERT_EQ(SchemaForSpec(pruned).size(), 2u);

  auto pf = WriteTable(full, TempDir("lafp_tablegen_keep_f"));
  auto pp = WriteTable(pruned, TempDir("lafp_tablegen_keep_p"));
  ASSERT_TRUE(pf.ok() && pp.ok());
  std::vector<std::string> full_lines = ReadLines(*pf);
  std::vector<std::string> pruned_lines = ReadLines(*pp);
  ASSERT_EQ(full_lines.size(), pruned_lines.size());

  // Column index of each surviving name in the full file.
  std::vector<std::string> header = SplitCells(full_lines[0]);
  std::map<std::string, size_t> index;
  for (size_t c = 0; c < header.size(); ++c) index[header[c]] = c;
  for (size_t r = 0; r < full_lines.size(); ++r) {
    std::vector<std::string> full_cells = SplitCells(full_lines[r]);
    std::vector<std::string> pruned_cells = SplitCells(pruned_lines[r]);
    ASSERT_EQ(pruned_cells.size(), 2u) << "row " << r;
    EXPECT_EQ(pruned_cells[0], full_cells[index[schema[0].name]]);
    EXPECT_EQ(pruned_cells[1], full_cells[index[schema[2].name]]);
  }
}

TEST(TablegenTest, DirectiveRoundTrips) {
  TableSpec spec;
  spec.name = "t3";
  spec.seed = 31337;
  spec.rows = 8;
  spec.keep = {"key", "f0_t3"};
  auto parsed = TableSpec::FromDirective(spec.ToDirective());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->rows, spec.rows);
  EXPECT_EQ(parsed->keep, spec.keep);
}

}  // namespace
