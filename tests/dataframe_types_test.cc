#include "dataframe/types.h"

#include <gtest/gtest.h>

namespace lafp::df {
namespace {

TEST(ScalarTest, NullScalar) {
  Scalar s;
  EXPECT_TRUE(s.is_null());
  EXPECT_EQ(s.type(), DataType::kNull);
  EXPECT_EQ(s.ToString(), "NaN");
  EXPECT_FALSE(s.AsDouble().ok());
}

TEST(ScalarTest, TypedScalars) {
  EXPECT_EQ(Scalar::Int(5).int_value(), 5);
  EXPECT_EQ(Scalar::Int(5).ToString(), "5");
  EXPECT_DOUBLE_EQ(Scalar::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Scalar::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Scalar::Bool(true).ToString(), "True");
  EXPECT_EQ(Scalar::String("hi").string_value(), "hi");
}

TEST(ScalarTest, AsDoubleWidens) {
  EXPECT_DOUBLE_EQ(*Scalar::Int(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Scalar::Bool(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(*Scalar::Timestamp(100).AsDouble(), 100.0);
  EXPECT_FALSE(Scalar::String("x").AsDouble().ok());
}

TEST(ScalarTest, Equals) {
  EXPECT_TRUE(Scalar::Int(3).Equals(Scalar::Int(3)));
  EXPECT_FALSE(Scalar::Int(3).Equals(Scalar::Int(4)));
  EXPECT_FALSE(Scalar::Int(3).Equals(Scalar::Double(3.0)));  // typed equality
  EXPECT_TRUE(Scalar::Null().Equals(Scalar::Null()));
}

TEST(DataTypeTest, NamesRoundTrip) {
  EXPECT_EQ(*DataTypeFromName("int64"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("float64"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromName("str"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("category"), DataType::kCategory);
  EXPECT_EQ(*DataTypeFromName("datetime"), DataType::kTimestamp);
  EXPECT_EQ(*DataTypeFromName("BOOL"), DataType::kBool);
  EXPECT_FALSE(DataTypeFromName("whatever").ok());
}

TEST(DataTypeTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_TRUE(IsNumeric(DataType::kBool));
  EXPECT_TRUE(IsNumeric(DataType::kTimestamp));
  EXPECT_FALSE(IsNumeric(DataType::kString));
  EXPECT_FALSE(IsNumeric(DataType::kCategory));
}

TEST(AggFuncTest, Names) {
  EXPECT_EQ(*AggFuncFromName("sum"), AggFunc::kSum);
  EXPECT_EQ(*AggFuncFromName("mean"), AggFunc::kMean);
  EXPECT_EQ(*AggFuncFromName("nunique"), AggFunc::kNunique);
  EXPECT_FALSE(AggFuncFromName("median").ok());
  EXPECT_STREQ(AggFuncName(AggFunc::kMax), "max");
}

TEST(CivilTimeTest, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  int y, m, d;
  CivilFromDays(11017, &y, &m, &d);
  EXPECT_EQ(y, 2000);
  EXPECT_EQ(m, 3);
  EXPECT_EQ(d, 1);
}

TEST(CivilTimeTest, LeapYearHandling) {
  // 2024 is a leap year: Feb 29 exists.
  int64_t feb29 = DaysFromCivil(2024, 2, 29);
  int y, m, d;
  CivilFromDays(feb29, &y, &m, &d);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
  EXPECT_EQ(DaysFromCivil(2024, 3, 1), feb29 + 1);
}

TEST(TimestampTest, ParseAndFormat) {
  auto ts = ParseTimestamp("2023-04-15 10:32:05");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(FormatTimestamp(*ts), "2023-04-15 10:32:05");
  auto date_only = ParseTimestamp("2023-04-15");
  ASSERT_TRUE(date_only.ok());
  EXPECT_EQ(FormatTimestamp(*date_only), "2023-04-15 00:00:00");
}

TEST(TimestampTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("not a date").ok());
  EXPECT_FALSE(ParseTimestamp("2023-13-01").ok());
  EXPECT_FALSE(ParseTimestamp("2023-04-15 25:00:00").ok());
}

TEST(TimestampTest, DayOfWeekMatchesPandas) {
  // 1970-01-01 was a Thursday => pandas dayofweek 3.
  EXPECT_EQ(DayOfWeek(0), 3);
  // 2024-01-01 was a Monday => 0.
  EXPECT_EQ(DayOfWeek(*ParseTimestamp("2024-01-01")), 0);
  // 2024-01-07 was a Sunday => 6.
  EXPECT_EQ(DayOfWeek(*ParseTimestamp("2024-01-07")), 6);
}

TEST(TimestampTest, FieldExtraction) {
  int64_t ts = *ParseTimestamp("2021-12-31 23:45:10");
  EXPECT_EQ(YearOf(ts), 2021);
  EXPECT_EQ(MonthOf(ts), 12);
  EXPECT_EQ(DayOfMonth(ts), 31);
  EXPECT_EQ(HourOfDay(ts), 23);
}

TEST(TimestampTest, PreEpochDates) {
  int64_t ts = *ParseTimestamp("1969-12-31 23:00:00");
  EXPECT_LT(ts, 0);
  EXPECT_EQ(FormatTimestamp(ts), "1969-12-31 23:00:00");
  EXPECT_EQ(YearOf(ts), 1969);
  EXPECT_EQ(DayOfWeek(ts), 2);  // Wednesday
}

}  // namespace
}  // namespace lafp::df
