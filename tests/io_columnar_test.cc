// LFC native columnar format: round-trip property tests over every
// dtype and edge shape, projection/row-limit contracts, zone-map pruning
// correctness per comparison op, the format-abuse sweep (checked-in
// corrupt corpus + exhaustive truncation and bit-flip mutations), the
// mmap reader's concurrent-chunk-read thread safety, and the optimizer's
// zone-prune pass end to end.
#include "io/columnar.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "dataframe/ops.h"
#include "lazy/fat_dataframe.h"
#include "optimizer/passes.h"

namespace lafp::io {
namespace {

namespace fs = std::filesystem;
using df::Column;
using df::CompareOp;
using df::DataFrame;
using df::DataType;
using df::Scalar;

class LfcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "lfc_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global()->Clear();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  /// Full-fidelity textual form: schema, types, validity, and every cell
  /// (ValueString renders NaN/null identically, so validity is explicit).
  static std::string FrameRepr(const DataFrame& frame) {
    std::string out;
    for (size_t c = 0; c < frame.num_columns(); ++c) {
      const Column& col = *frame.column(c);
      out += frame.names()[c] + ":" + df::DataTypeName(col.type()) + "[";
      for (size_t i = 0; i < col.size(); ++i) {
        if (i > 0) out += ",";
        out += col.IsValid(i) ? col.ValueString(i) : "<null>";
      }
      out += "]\n";
    }
    return out;
  }

  /// One column of every physical type, each with nulls, duplicates, and
  /// the classic value-level hazards (NaN, signed zero, empty strings).
  DataFrame MixedFrame(size_t rows) {
    std::vector<int64_t> ints, stamps;
    std::vector<double> dbls;
    std::vector<uint8_t> bools, valid;
    std::vector<std::string> strs;
    for (size_t i = 0; i < rows; ++i) {
      ints.push_back(static_cast<int64_t>(i) * 3 - 7);
      stamps.push_back(1700000000 + static_cast<int64_t>(i) * 86400);
      dbls.push_back(i % 5 == 0 ? -0.0 : (i % 7 == 0 ? std::nan("") : i * 0.5));
      bools.push_back(i % 2);
      strs.push_back(i % 4 == 0 ? "" : "s" + std::to_string(i % 3));
      valid.push_back(i % 6 == 0 ? 0 : 1);
    }
    auto c_int = *Column::MakeInt(ints, valid, &tracker_);
    auto c_ts = *Column::MakeTimestamp(stamps, valid, &tracker_);
    auto c_dbl = *Column::MakeDouble(dbls, valid, &tracker_);
    auto c_bool = *Column::MakeBool(bools, valid, &tracker_);
    auto c_str = *Column::MakeString(strs, valid, &tracker_);
    auto c_cat = *df::CategorizeStrings(*c_str, &tracker_);
    return *DataFrame::Make({"i", "ts", "d", "b", "s", "cat"},
                            {c_int, c_ts, c_dbl, c_bool, c_str, c_cat});
  }

  /// Single int column 0..rows-1 in `chunk_rows`-sized chunks — the
  /// pruning fixtures' workhorse (chunk k spans [k*cr, (k+1)*cr)).
  std::string WriteIntLadder(size_t rows, size_t chunk_rows) {
    std::vector<int64_t> vals;
    for (size_t i = 0; i < rows; ++i) vals.push_back(static_cast<int64_t>(i));
    auto col = *Column::MakeInt(vals, {}, &tracker_);
    auto frame = *DataFrame::Make({"a"}, {col});
    const std::string path = Path("ladder.lfc");
    LfcWriteOptions wo;
    wo.chunk_rows = chunk_rows;
    EXPECT_TRUE(WriteLfcFile(frame, path, wo).ok());
    return path;
  }

  std::vector<char> FileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  void WriteBytes(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  MemoryTracker tracker_{0};
};

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST_F(LfcTest, RoundTripEveryDtypeAcrossChunkSizes) {
  DataFrame frame = MixedFrame(23);
  const std::string expected = FrameRepr(frame);
  for (size_t chunk_rows : {size_t{1}, size_t{3}, size_t{7}, size_t{1024}}) {
    const std::string path = Path("mixed_" + std::to_string(chunk_rows));
    LfcWriteOptions wo;
    wo.chunk_rows = chunk_rows;
    ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok()) << chunk_rows;
    EXPECT_TRUE(IsLfcFile(path));
    auto back = ReadLfcFile(path, {}, &tracker_);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(FrameRepr(*back), expected) << "chunk_rows=" << chunk_rows;
    // Logical types survive exactly — category stays category.
    EXPECT_EQ(back->column(5)->type(), DataType::kCategory);
    EXPECT_EQ(back->column(1)->type(), DataType::kTimestamp);
  }
}

TEST_F(LfcTest, RoundTripEmptyFrame) {
  auto col = *Column::MakeInt({}, {}, &tracker_);
  auto strs = *Column::MakeString({}, {}, &tracker_);
  auto frame = *DataFrame::Make({"x", "y"}, {col, strs});
  const std::string path = Path("empty.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  auto back = ReadLfcFile(path, {}, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(back->column(0)->type(), DataType::kInt64);
  EXPECT_EQ(back->column(1)->type(), DataType::kString);
  auto info = ReadLfcInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->nrows, 0u);
  EXPECT_EQ(info->num_chunks, 0u);
}

TEST_F(LfcTest, RoundTripSingleRow) {
  DataFrame frame = MixedFrame(1);
  const std::string path = Path("one.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  auto back = ReadLfcFile(path, {}, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(FrameRepr(*back), FrameRepr(frame));
}

TEST_F(LfcTest, RoundTripAllNullColumns) {
  std::vector<uint8_t> none(5, 0);
  auto ints = *Column::MakeInt({0, 0, 0, 0, 0}, none, &tracker_);
  auto dbls = *Column::MakeDouble({0, 0, 0, 0, 0}, none, &tracker_);
  auto strs = *Column::MakeString({"", "", "", "", ""}, none, &tracker_);
  auto frame = *DataFrame::Make({"i", "d", "s"}, {ints, dbls, strs});
  const std::string path = Path("allnull.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 2;
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());
  auto back = ReadLfcFile(path, {}, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(FrameRepr(*back), FrameRepr(frame));
  for (size_t c = 0; c < back->num_columns(); ++c) {
    EXPECT_EQ(back->column(c)->null_count(), 5u);
  }
}

TEST_F(LfcTest, SignedZeroAndNanSurviveBitExact) {
  auto col = *Column::MakeDouble({0.0, -0.0, std::nan(""), 1.5}, {}, &tracker_);
  auto frame = *DataFrame::Make({"d"}, {col});
  const std::string path = Path("dbl.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  auto back = ReadLfcFile(path, {}, &tracker_);
  ASSERT_TRUE(back.ok());
  const auto& vals = back->column(0)->doubles();
  ASSERT_EQ(vals.size(), 4u);
  EXPECT_FALSE(std::signbit(vals[0]));
  EXPECT_TRUE(std::signbit(vals[1]));
  EXPECT_TRUE(std::isnan(vals[2]));
  EXPECT_EQ(vals[3], 1.5);
}

TEST_F(LfcTest, DictionaryHandlesDuplicatesAndEmptyStrings) {
  auto strs = *Column::MakeString({"", "dup", "dup", "", "x", "dup"},
                                  {1, 1, 1, 1, 1, 1}, &tracker_);
  auto cat = *df::CategorizeStrings(*strs, &tracker_);
  auto frame = *DataFrame::Make({"s", "c"}, {strs, cat});
  const std::string path = Path("dict.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 2;  // dictionary is file-level, chunks share it
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());
  auto back = ReadLfcFile(path, {}, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(FrameRepr(*back), FrameRepr(frame));
  // The category dictionary survives verbatim (first-appearance order).
  const auto& dict = *back->column(1)->dictionary();
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict[0], "");
  EXPECT_EQ(dict[1], "dup");
}

// An all-null column built from a null scalar lowers to kDouble with
// null validity (there is no public kNull column constructor); it must
// round-trip like any other all-null column.
TEST_F(LfcTest, NullScalarConstantColumnRoundTrips) {
  auto c = *Column::MakeConstant(Scalar::Null(), 3, &tracker_);
  auto frame = *DataFrame::Make({"n"}, {c});
  const std::string path = Path("null.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  auto back = ReadLfcFile(path, {}, &tracker_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(FrameRepr(*back), FrameRepr(frame));
  EXPECT_EQ(back->column(0)->null_count(), 3u);
}

// ---------------------------------------------------------------------------
// Projection and row limits
// ---------------------------------------------------------------------------

TEST_F(LfcTest, UsecolsSelectsInFileOrder) {
  DataFrame frame = MixedFrame(10);
  const std::string path = Path("proj.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  LfcReadOptions ro;
  ro.usecols = {"s", "i", "s"};  // unordered + duplicate, pandas-style
  auto back = ReadLfcFile(path, ro, &tracker_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->names(), (std::vector<std::string>{"i", "s"}));
}

TEST_F(LfcTest, UsecolsUnknownColumnIsKeyError) {
  DataFrame frame = MixedFrame(4);
  const std::string path = Path("proj2.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  LfcReadOptions ro;
  ro.usecols = {"i", "nope"};
  auto back = ReadLfcFile(path, ro, &tracker_);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsKeyError()) << back.status().ToString();
  EXPECT_NE(back.status().message().find("nope"), std::string::npos);
}

TEST_F(LfcTest, NrowsLimitsAcrossChunkBoundaries) {
  const std::string path = WriteIntLadder(20, 3);
  for (size_t nrows : {size_t{1}, size_t{3}, size_t{7}, size_t{20},
                       size_t{50}}) {
    LfcReadOptions ro;
    ro.nrows = nrows;
    auto back = ReadLfcFile(path, ro, &tracker_);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->num_rows(), std::min<size_t>(nrows, 20));
    for (size_t i = 0; i < back->num_rows(); ++i) {
      EXPECT_EQ(back->column(0)->IntAt(i), static_cast<int64_t>(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Zone-map pruning correctness
// ---------------------------------------------------------------------------

// The core soundness contract, checked per comparison op and per scalar
// position (below/inside/boundary/above the data): the filter kernel over
// a pruned scan produces byte-identical output to the same kernel over
// the unpruned scan.
TEST_F(LfcTest, PrunedFilterMatchesUnprunedPerOp) {
  const std::string path = WriteIntLadder(20, 4);  // chunks [0,3]..[16,19]
  const std::vector<Scalar> scalars = {
      Scalar::Int(-1), Scalar::Int(0),  Scalar::Int(5),
      Scalar::Int(19), Scalar::Int(99), Scalar::Double(7.5),
      Scalar::Double(std::nan("")),     Scalar::Null()};
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (const Scalar& scalar : scalars) {
      LfcReadOptions pruned_ro;
      pruned_ro.prune = {{"a", op, scalar}};
      LfcReadStats stats;
      auto pruned = ReadLfcFile(path, pruned_ro, &tracker_, &stats);
      ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
      auto unpruned = ReadLfcFile(path, {}, &tracker_);
      ASSERT_TRUE(unpruned.ok());

      auto apply = [&](const DataFrame& frame) {
        auto mask = df::Compare(*frame.column(0), op, scalar);
        EXPECT_TRUE(mask.ok());
        return *df::Filter(frame, **mask);
      };
      EXPECT_EQ(FrameRepr(apply(*pruned)), FrameRepr(apply(*unpruned)))
          << "op=" << static_cast<int>(op)
          << " scalar=" << scalar.ToString();
      EXPECT_EQ(stats.chunks_total, 5u);
      EXPECT_LE(stats.chunks_skipped, stats.chunks_total);
    }
  }
}

TEST_F(LfcTest, SelectiveEqPrunesAllButStraddlingChunk) {
  const std::string path = WriteIntLadder(20, 4);
  LfcReadOptions ro;
  ro.prune = {{"a", CompareOp::kEq, Scalar::Int(5)}};  // inside chunk 1
  LfcReadStats stats;
  auto frame = ReadLfcFile(path, ro, &tracker_, &stats);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(stats.chunks_skipped, 4u);  // every chunk but [4,7]
  ASSERT_EQ(frame->num_rows(), 4u);
  EXPECT_EQ(frame->column(0)->IntAt(0), 4);
  EXPECT_EQ(frame->column(0)->IntAt(3), 7);
  // prune_enabled=false keeps every chunk even with predicates attached.
  ro.prune_enabled = false;
  LfcReadStats off;
  auto full = ReadLfcFile(path, ro, &tracker_, &off);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(off.chunks_skipped, 0u);
  EXPECT_EQ(full->num_rows(), 20u);
}

// Direct zone-test unit checks per op at chunk boundaries: a chunk whose
// [min,max] straddles or touches the scalar must never be skipped.
TEST_F(LfcTest, ChunkMayMatchBoundaryCases) {
  const std::string path = WriteIntLadder(20, 4);
  auto reader = LfcReader::Open(path, &tracker_);
  ASSERT_TRUE(reader.ok());
  auto may = [&](size_t chunk, CompareOp op, const Scalar& s) {
    return (*reader)->ChunkMayMatch(chunk, {{"a", op, s}});
  };
  // Chunk 1 spans [4,7].
  EXPECT_TRUE(may(1, CompareOp::kEq, Scalar::Int(4)));    // boundary lo
  EXPECT_TRUE(may(1, CompareOp::kEq, Scalar::Int(7)));    // boundary hi
  EXPECT_TRUE(may(1, CompareOp::kEq, Scalar::Int(5)));    // straddle
  EXPECT_FALSE(may(1, CompareOp::kEq, Scalar::Int(8)));
  EXPECT_FALSE(may(1, CompareOp::kLt, Scalar::Int(4)));   // min >= 4
  EXPECT_TRUE(may(1, CompareOp::kLt, Scalar::Int(5)));
  EXPECT_FALSE(may(1, CompareOp::kLe, Scalar::Int(3)));
  EXPECT_TRUE(may(1, CompareOp::kLe, Scalar::Int(4)));
  EXPECT_FALSE(may(1, CompareOp::kGt, Scalar::Int(7)));   // max <= 7
  EXPECT_TRUE(may(1, CompareOp::kGt, Scalar::Int(6)));
  EXPECT_FALSE(may(1, CompareOp::kGe, Scalar::Int(8)));
  EXPECT_TRUE(may(1, CompareOp::kGe, Scalar::Int(7)));
  EXPECT_TRUE(may(1, CompareOp::kNe, Scalar::Int(5)));
  // Unknown columns are indeterminate, never a skip.
  EXPECT_TRUE((*reader)->ChunkMayMatch(
      1, {{"missing", CompareOp::kEq, Scalar::Int(0)}}));
}

TEST_F(LfcTest, PruningNanAndAllNullChunks) {
  // Chunk 0: all-NaN (valid). Chunk 1: all-null. Chunk 2: real values.
  std::vector<double> vals = {std::nan(""), std::nan(""), 0.0, 0.0, 1.0, 2.0};
  std::vector<uint8_t> valid = {1, 1, 0, 0, 1, 1};
  auto col = *Column::MakeDouble(vals, valid, &tracker_);
  auto frame = *DataFrame::Make({"d"}, {col});
  const std::string path = Path("nan.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 2;
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());

  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (const Scalar& scalar : {Scalar::Double(1.0), Scalar::Null()}) {
      LfcReadOptions ro;
      ro.prune = {{"d", op, scalar}};
      LfcReadStats stats;
      auto pruned = ReadLfcFile(path, ro, &tracker_, &stats);
      ASSERT_TRUE(pruned.ok());
      auto unpruned = ReadLfcFile(path, {}, &tracker_);
      auto apply = [&](const DataFrame& f) {
        auto mask = df::Compare(*f.column(0), op, scalar);
        return *df::Filter(f, **mask);
      };
      EXPECT_EQ(FrameRepr(apply(*pruned)), FrameRepr(apply(*unpruned)))
          << "op=" << static_cast<int>(op)
          << " scalar=" << scalar.ToString();
    }
  }
  // The kernel treats NaN rows as non-matching for any non-null scalar,
  // so both the all-NaN and the all-null chunk are provably skippable.
  LfcReadOptions eq;
  eq.prune = {{"d", CompareOp::kEq, Scalar::Double(1.0)}};
  LfcReadStats stats;
  ASSERT_TRUE(ReadLfcFile(path, eq, &tracker_, &stats).ok());
  EXPECT_EQ(stats.chunks_skipped, 2u);
}

TEST_F(LfcTest, PruningDictionaryColumnsByMembership) {
  auto strs = *Column::MakeString({"aa", "bb", "aa", "cc", "bb", "aa"}, {},
                                  &tracker_);
  auto frame = *DataFrame::Make({"s"}, {strs});
  const std::string path = Path("dictprune.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 2;
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());
  // Absent from the file dictionary: every chunk skipped, empty result —
  // identical to the unpruned+filtered scan.
  LfcReadOptions ro;
  ro.prune = {{"s", CompareOp::kEq, Scalar::String("zz")}};
  LfcReadStats stats;
  auto pruned = ReadLfcFile(path, ro, &tracker_, &stats);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(stats.chunks_skipped, 3u);
  EXPECT_EQ(pruned->num_rows(), 0u);
  // Present value: indeterminate per chunk (file-level dictionary), so
  // nothing is skipped and results match the plain scan.
  ro.prune = {{"s", CompareOp::kEq, Scalar::String("cc")}};
  LfcReadStats present;
  auto kept = ReadLfcFile(path, ro, &tracker_, &present);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(present.chunks_skipped, 0u);
  EXPECT_EQ(kept->num_rows(), 6u);
  // Ordering ops carry no dictionary metadata: never a skip.
  ro.prune = {{"s", CompareOp::kLt, Scalar::String("bb")}};
  LfcReadStats order;
  ASSERT_TRUE(ReadLfcFile(path, ro, &tracker_, &order).ok());
  EXPECT_EQ(order.chunks_skipped, 0u);
}

// Skipped chunks still consume the nrows quota, so pruning composes with
// row limits exactly like filtering the unpruned prefix.
TEST_F(LfcTest, PrunedChunksStillConsumeNrowsQuota) {
  const std::string path = WriteIntLadder(20, 4);
  LfcReadOptions ro;
  ro.prune = {{"a", CompareOp::kGe, Scalar::Int(16)}};  // only chunk 4
  ro.nrows = 8;  // window = chunks 0 and 1, both pruned
  auto windowed = ReadLfcFile(path, ro, &tracker_);
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ(windowed->num_rows(), 0u);
  ro.nrows = 0;
  auto full = ReadLfcFile(path, ro, &tracker_);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->num_rows(), 4u);
  EXPECT_EQ(full->column(0)->IntAt(0), 16);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under the tsan-kernels preset)
// ---------------------------------------------------------------------------

TEST_F(LfcTest, ConcurrentChunkReadsAgainstSharedTracker) {
  DataFrame frame = MixedFrame(64);
  const std::string path = Path("conc.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 8;
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());
  auto reader = LfcReader::Open(path, &tracker_);
  ASSERT_TRUE(reader.ok());
  auto sel = (*reader)->SelectColumns({});
  ASSERT_TRUE(sel.ok());

  const int64_t baseline = tracker_.current();
  std::atomic<int> failures{0};
  std::atomic<size_t> rows_read{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (size_t c = 0; c < (*reader)->num_chunks(); ++c) {
        auto chunk = (*reader)->ReadChunk(c, *sel);
        if (!chunk.ok()) {
          ++failures;
          continue;
        }
        rows_read += chunk->num_rows();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rows_read.load(), 8u * 64u);
  // Every decoded chunk released its reservation on destruction.
  EXPECT_EQ(tracker_.current(), baseline);
}

// ---------------------------------------------------------------------------
// Optimizer zone-prune pass end to end
// ---------------------------------------------------------------------------

class LfcOptimizerTest : public LfcTest {
 protected:
  std::unique_ptr<lazy::Session> MakeSession() {
    lazy::SessionOptions opts;
    opts.backend = exec::BackendKind::kPandas;
    opts.mode = lazy::ExecutionMode::kLazy;
    opts.output = &output_;
    opts.tracker = &tracker_;
    return std::make_unique<lazy::Session>(opts);
  }
  std::stringstream output_;
};

TEST_F(LfcOptimizerTest, ZonePruneAttachesAndMatchesPlainScan) {
  const std::string path = WriteIntLadder(20, 4);
  auto session = MakeSession();
  auto frame = lazy::FatDataFrame::ReadLfc(session.get(), path);
  ASSERT_TRUE(frame.ok());
  auto mask = frame->Col("a")->CompareTo(CompareOp::kEq, Scalar::Int(5));
  auto filtered = frame->FilterBy(*mask);
  ASSERT_TRUE(filtered.ok());

  opt::PassStats stats;
  ASSERT_TRUE(
      opt::PruneZoneMaps(session.get(), {filtered->node()}, &stats).ok());
  EXPECT_EQ(stats.zone_prunes_attached, 1);
  // The filter now sits on a cloned read carrying the prune conjunct.
  const auto& read = filtered->node()->inputs[0];
  ASSERT_EQ(read->desc.kind, exec::OpKind::kReadLfc);
  ASSERT_EQ(read->desc.lfc_options.prune.size(), 1u);
  EXPECT_EQ(read->desc.lfc_options.prune[0].column, "a");

  auto eager = filtered->ToEager();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  ASSERT_EQ(eager->num_rows(), 1u);
  EXPECT_EQ(eager->column(0)->IntAt(0), 5);
}

// A user-held mask variable forced after the pass must still see the full
// unpruned scan: the pass clones the read instead of mutating it.
TEST_F(LfcOptimizerTest, SharedMaskVariableObservesFullScan) {
  const std::string path = WriteIntLadder(20, 4);
  auto session = MakeSession();
  auto frame = lazy::FatDataFrame::ReadLfc(session.get(), path);
  auto mask = frame->Col("a")->CompareTo(CompareOp::kEq, Scalar::Int(5));
  auto filtered = frame->FilterBy(*mask);

  opt::PassStats stats;
  ASSERT_TRUE(
      opt::PruneZoneMaps(session.get(), {filtered->node(), mask->node()},
                         &stats)
          .ok());
  EXPECT_EQ(stats.zone_prunes_attached, 1);
  // The original mask chain still hangs off the unpruned read.
  EXPECT_TRUE(frame->node()->desc.lfc_options.prune.empty());
  auto eager_filtered = filtered->ToEager();
  ASSERT_TRUE(eager_filtered.ok());
  EXPECT_EQ(eager_filtered->num_rows(), 1u);
  auto eager_mask = mask->ToEager();
  ASSERT_TRUE(eager_mask.ok()) << eager_mask.status().ToString();
  EXPECT_EQ(eager_mask->num_rows(), 20u);  // full length, not pruned
}

TEST_F(LfcOptimizerTest, InstallGateDisablesZonePrune) {
  const std::string path = WriteIntLadder(20, 4);
  for (bool enabled : {true, false}) {
    auto session = MakeSession();
    opt::OptimizerOptions options;
    options.zone_prune = enabled;
    opt::PassStats stats;
    opt::InstallDefaultOptimizer(session.get(), options, &stats);
    auto frame = lazy::FatDataFrame::ReadLfc(session.get(), path);
    auto mask = frame->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(15));
    auto filtered = frame->FilterBy(*mask);
    auto eager = filtered->ToEager();
    ASSERT_TRUE(eager.ok()) << eager.status().ToString();
    EXPECT_EQ(eager->num_rows(), 4u);
    EXPECT_EQ(stats.zone_prunes_attached, enabled ? 1 : 0);
  }
}

// read_csv transparently dispatches on the LFC magic, carrying usecols.
TEST_F(LfcOptimizerTest, ReadCsvSniffsLfcMagic) {
  DataFrame frame = MixedFrame(12);
  const std::string path = Path("sniff.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  auto session = MakeSession();
  io::CsvReadOptions csv;
  csv.usecols = {"i", "d"};
  auto handle = lazy::FatDataFrame::ReadCsv(session.get(), path, csv);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->node()->desc.kind, exec::OpKind::kReadLfc);
  auto eager = handle->ToEager();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->names(), (std::vector<std::string>{"i", "d"}));
  EXPECT_EQ(eager->num_rows(), 12u);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST_F(LfcTest, InjectedWriteFaultLeavesNoPartialFile) {
  DataFrame frame = MixedFrame(10);
  const std::string path = Path("faulted.lfc");
  for (int nth = 1; nth <= 4; ++nth) {
    FaultScope scope("lfc.write:nth=" + std::to_string(nth));
    Status st = WriteLfcFile(frame, path);
    EXPECT_TRUE(st.IsIOError()) << "nth=" << nth << ": " << st.ToString();
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
  }
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  EXPECT_TRUE(ReadLfcFile(path, {}, &tracker_).ok());
}

TEST_F(LfcTest, InjectedReadFaultSurfacesCleanly) {
  DataFrame frame = MixedFrame(6);
  const std::string path = Path("readfault.lfc");
  ASSERT_TRUE(WriteLfcFile(frame, path).ok());
  FaultScope scope("lfc.read:nth=1");
  auto result = ReadLfcFile(path, {}, &tracker_);
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_TRUE(ReadLfcFile(path, {}, &tracker_).ok());  // single-shot
}

// ---------------------------------------------------------------------------
// Format abuse: corpus, truncations, bit flips
// ---------------------------------------------------------------------------

// Checked-in hostile files (tests/lfc_corpus): every one must fail with a
// clean Status from both the full reader and the footer-only path — no
// crash, no over-read, no unbounded allocation, no tracker leak.
TEST_F(LfcTest, CorruptCorpusFailsCleanly) {
  const fs::path corpus = LAFP_LFC_CORPUS_DIR;
  ASSERT_TRUE(fs::exists(corpus)) << corpus;
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.path().extension() != ".lfc") continue;
    const int64_t before = tracker_.current();
    auto result = ReadLfcFile(entry.path().string(), {}, &tracker_);
    EXPECT_FALSE(result.ok()) << entry.path().filename();
    EXPECT_EQ(tracker_.current(), before)
        << "tracker leak from " << entry.path().filename();
    EXPECT_FALSE(ReadLfcInfo(entry.path().string()).ok())
        << entry.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 12);
}

// Every strict prefix of a valid file is a truncation the reader must
// reject: the trailer anchors all metadata, so no prefix can parse.
TEST_F(LfcTest, EveryTruncationFailsCleanly) {
  DataFrame frame = MixedFrame(7);
  const std::string path = Path("full.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 3;
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());
  std::vector<char> bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 48u);
  const std::string trunc = Path("trunc.lfc");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(trunc, std::vector<char>(bytes.begin(), bytes.begin() + len));
    auto result = ReadLfcFile(trunc, {}, &tracker_);
    EXPECT_FALSE(result.ok()) << "prefix of length " << len << " succeeded";
  }
}

// Single-bit flips. Payload-region flips may be benign; any flip in the
// head magic or in the footer/trailer region must fail (the checksum
// covers the footer, the magics guard both ends) — and nothing crashes.
TEST_F(LfcTest, BitFlipsNeverCrashAndMetadataFlipsFail) {
  DataFrame frame = MixedFrame(9);
  const std::string path = Path("flipsrc.lfc");
  LfcWriteOptions wo;
  wo.chunk_rows = 4;
  ASSERT_TRUE(WriteLfcFile(frame, path, wo).ok());
  std::vector<char> bytes = FileBytes(path);
  // Recover the footer extent from the trailer to classify flip targets.
  uint64_t footer_len = 0;
  std::memcpy(&footer_len, bytes.data() + bytes.size() - 24, 8);
  const size_t footer_start = bytes.size() - 24 - footer_len;
  const std::string flipped = Path("flip.lfc");
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Payload region: sample sparsely (every 7th byte) to keep the sweep
    // fast; metadata region: every byte.
    if (i >= 8 && i < footer_start && i % 7 != 0) continue;
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> mutated = bytes;
      mutated[i] ^= static_cast<char>(1 << bit);
      WriteBytes(flipped, mutated);
      auto result = ReadLfcFile(flipped, {}, &tracker_);  // must not crash
      if (i < 8 || i >= footer_start) {
        EXPECT_FALSE(result.ok())
            << "metadata flip byte " << i << " bit " << bit << " succeeded";
      } else if (result.ok()) {
        EXPECT_EQ(result->num_rows(), frame.num_rows());
      }
    }
  }
}

}  // namespace
}  // namespace lafp::io
