#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dataframe/column.h"

namespace lafp {
namespace {

TEST(MemoryTrackerTest, ReserveAndRelease) {
  MemoryTracker t(1000);
  ASSERT_TRUE(t.Reserve(400).ok());
  EXPECT_EQ(t.current(), 400);
  EXPECT_EQ(t.peak(), 400);
  ASSERT_TRUE(t.Reserve(600).ok());
  EXPECT_EQ(t.current(), 1000);
  t.Release(500);
  EXPECT_EQ(t.current(), 500);
  EXPECT_EQ(t.peak(), 1000);  // peak is sticky
}

TEST(MemoryTrackerTest, BudgetEnforced) {
  MemoryTracker t(100);
  ASSERT_TRUE(t.Reserve(100).ok());
  Status st = t.Reserve(1);
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(t.current(), 100);  // failed reservation does not count
}

TEST(MemoryTrackerTest, UnlimitedBudget) {
  MemoryTracker t(0);
  EXPECT_TRUE(t.Reserve(1LL << 40).ok());
  EXPECT_EQ(t.current(), 1LL << 40);
}

TEST(MemoryTrackerTest, OverReleaseClamps) {
  MemoryTracker t(1000);
  ASSERT_TRUE(t.Reserve(10).ok());
  t.Release(100);
  EXPECT_EQ(t.current(), 0);
  EXPECT_TRUE(t.Reserve(1000).ok());  // accounting still sane
}

TEST(MemoryTrackerTest, NegativeReservationRejected) {
  MemoryTracker t(1000);
  EXPECT_FALSE(t.Reserve(-5).ok());
}

TEST(MemoryTrackerTest, ResetClearsCountersButNotBudget) {
  MemoryTracker t(50);
  ASSERT_TRUE(t.Reserve(50).ok());
  t.Reset();
  EXPECT_EQ(t.current(), 0);
  EXPECT_EQ(t.peak(), 0);
  EXPECT_EQ(t.budget(), 50);
  EXPECT_TRUE(t.Reserve(50).ok());
}

TEST(MemoryTrackerTest, ConcurrentReserveReleaseBalances) {
  MemoryTracker t(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int k = 0; k < kIters; ++k) {
        ASSERT_TRUE(t.Reserve(16).ok());
        t.Release(16);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current(), 0);
  EXPECT_GE(t.peak(), 16);
}

TEST(ScopedReservationTest, ReleasesOnDestruction) {
  MemoryTracker t(100);
  {
    ScopedReservation res;
    ASSERT_TRUE(ScopedReservation::Make(&t, 60, &res).ok());
    EXPECT_EQ(t.current(), 60);
    EXPECT_EQ(res.bytes(), 60);
  }
  EXPECT_EQ(t.current(), 0);
}

TEST(ScopedReservationTest, FailedMakeLeavesNothing) {
  MemoryTracker t(10);
  ScopedReservation res;
  EXPECT_TRUE(ScopedReservation::Make(&t, 60, &res).IsOutOfMemory());
  EXPECT_EQ(t.current(), 0);
  EXPECT_EQ(res.bytes(), 0);
}

TEST(ScopedReservationTest, MoveTransfersOwnership) {
  MemoryTracker t(100);
  ScopedReservation a;
  ASSERT_TRUE(ScopedReservation::Make(&t, 40, &a).ok());
  ScopedReservation b = std::move(a);
  EXPECT_EQ(a.bytes(), 0);
  EXPECT_EQ(b.bytes(), 40);
  EXPECT_EQ(t.current(), 40);
  b.Free();
  EXPECT_EQ(t.current(), 0);
}

TEST(ScopedReservationTest, MoveAssignReleasesOld) {
  MemoryTracker t(100);
  ScopedReservation a, b;
  ASSERT_TRUE(ScopedReservation::Make(&t, 40, &a).ok());
  ASSERT_TRUE(ScopedReservation::Make(&t, 30, &b).ok());
  EXPECT_EQ(t.current(), 70);
  a = std::move(b);  // releases a's 40
  EXPECT_EQ(t.current(), 30);
}

TEST(MemoryTrackerTest, ConcurrentBudgetReadsDuringReserve) {
  // Kernel and partition workers read the budget while another thread
  // reconfigures it; exercised under TSan by the tsan-kernels preset.
  MemoryTracker t(1 << 20);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t] {
      for (int k = 0; k < 500; ++k) {
        if (t.Reserve(64).ok()) t.Release(64);
        (void)t.budget();
      }
    });
  }
  for (int k = 0; k < 200; ++k) t.set_budget((k % 2 != 0) ? 0 : 1 << 20);
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current(), 0);
}

TEST(MemoryTrackerTest, ConcurrentColumnConstruction) {
  // Morsel workers and scheduler workers build columns against the same
  // tracker concurrently (the kernel layer's allocation pattern). The
  // tracker must account exactly: after all columns die, current() is 0
  // and peak() is at least one thread's footprint. Run under TSan via
  // the tsan-kernels preset.
  MemoryTracker t(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, i] {
      for (int k = 0; k < kIters; ++k) {
        std::vector<int64_t> ints(256, i);
        std::vector<double> dbls(256, 0.5 * k);
        std::vector<std::string> strs(32, "row-" + std::to_string(k));
        auto a = df::Column::MakeInt(std::move(ints), {}, &t);
        auto b = df::Column::MakeDouble(std::move(dbls), {}, &t);
        auto c = df::Column::MakeString(std::move(strs), {}, &t);
        ASSERT_TRUE(a.ok() && b.ok() && c.ok());
        auto sliced = (*a)->Slice(0, 128);
        ASSERT_TRUE(sliced.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current(), 0);
  EXPECT_GE(t.peak(), 256 * static_cast<int64_t>(sizeof(int64_t)));
}

TEST(MemoryTrackerTest, DefaultIsUnlimitedSingleton) {
  MemoryTracker* d = MemoryTracker::Default();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d, MemoryTracker::Default());
  EXPECT_EQ(d->budget(), 0);
}

}  // namespace
}  // namespace lafp
