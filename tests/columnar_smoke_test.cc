// The native-columnar axis of the differential fuzzer wired into the
// tier-1 suite: generated programs replay with their base tables
// converted to LFC (tiny chunks, zone-map pruning on and off) and must
// match the eager-Pandas CSV reference byte for byte. The standalone
// acceptance run is `lafp_fuzz --seed 42 --iters 200 --lfc`; this keeps
// a fast deterministic slice of it in every ctest round.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "testing/fuzzer.h"
#include "testing/oracle.h"

namespace {

using lafp::testing::CaseResult;
using lafp::testing::CaseVerdict;
using lafp::testing::CheckCase;
using lafp::testing::FuzzOptions;
using lafp::testing::FuzzStats;
using lafp::testing::LfcConfigs;
using lafp::testing::OracleConfig;
using lafp::testing::RunFuzz;

std::string DataDir() {
  auto dir = std::filesystem::temp_directory_path() / "lafp_fuzz_lfc";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(ColumnarSmokeTest, LfcConfigsAreDeterministicAndArmed) {
  auto a = LfcConfigs(7, 12);
  auto b = LfcConfigs(7, 12);
  ASSERT_EQ(a.size(), 12u);
  bool saw_pruned = false, saw_unpruned = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Name(), b[i].Name());
    EXPECT_TRUE(a[i].lfc);
    EXPECT_TRUE(a[i].faults.empty());
    (a[i].lfc_prune ? saw_pruned : saw_unpruned) = true;
  }
  // Both scan paths must be in the matrix: pruned and unpruned.
  EXPECT_TRUE(saw_pruned);
  EXPECT_TRUE(saw_unpruned);
}

TEST(ColumnarSmokeTest, ProgramsAgreeOnLfcTables) {
  FuzzOptions options;
  options.seed = 42;
  options.iters = 12;
  options.matrix = 4;  // plus matrix/2 LFC points per program
  options.lfc = true;
  options.shrink = false;
  options.data_dir = DataDir();
  std::ostringstream log;
  options.log = &log;

  FuzzStats stats = RunFuzz(options);
  EXPECT_EQ(stats.iterations, 12);
  EXPECT_EQ(stats.reference_failures, 0) << log.str();
  ASSERT_TRUE(stats.divergences.empty())
      << "first divergence: seed " << stats.divergences[0].program_seed
      << " under " << stats.divergences[0].config_name << "\n"
      << stats.divergences[0].detail << "\n"
      << log.str();
}

}  // namespace
