#include "script/backend_choice.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace lafp::script {
namespace {

class BackendChoiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "choice_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/data.csv";
    std::ofstream out(csv_path_);
    out << "a,b,c,d,e,f\n";
    for (int i = 0; i < 20000; ++i) {
      out << i << "," << i * 2 << "," << i % 7 << ",xxxxxxxx,yyyyyyyy,"
          << i * 0.5 << "\n";
    }
    store_ = std::make_unique<meta::MetaStore>(dir_ + "/metastore");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  BackendChoiceOptions Options(int64_t budget) {
    BackendChoiceOptions options;
    options.memory_budget = budget;
    options.metastore = store_.get();
    return options;
  }

  std::string Program() const {
    return "import lazyfatpandas.pandas as pd\n"
           "df = pd.read_csv(\"" + csv_path_ + "\")\n"
           "out = df.groupby([\"c\"])[\"a\"].sum()\n"
           "print(out)\n";
  }

  std::string dir_, csv_path_;
  std::unique_ptr<meta::MetaStore> store_;
};

TEST_F(BackendChoiceTest, SmallDataChoosesPandas) {
  auto choice = ChooseBackend(Program(), Options(1LL << 30));
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(choice->backend, exec::BackendKind::kPandas);
  EXPECT_GT(choice->estimated_bytes, 0);
  EXPECT_NE(choice->rationale.find("fits"), std::string::npos);
}

TEST_F(BackendChoiceTest, TightBudgetChoosesDask) {
  auto choice = ChooseBackend(Program(), Options(100'000));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->backend, exec::BackendKind::kDask);
  EXPECT_NE(choice->rationale.find("exceeds"), std::string::npos);
}

TEST_F(BackendChoiceTest, EstimateUsesPrunedColumns) {
  // The program only touches a and c; the estimate must be far below the
  // full six-column footprint (d/e are fat strings).
  auto pruned = ChooseBackend(Program(), Options(0));
  std::string all_columns_program =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "print(df)\n";
  auto full = ChooseBackend(all_columns_program, Options(0));
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(pruned->estimated_bytes, full->estimated_bytes / 2);
}

TEST_F(BackendChoiceTest, DetectsOrderSensitivity) {
  std::string sorted_program =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "s = df.sort_values(by=[\"a\"])\n"
      "top = s.head(3)\n"
      "print(top)\n";
  auto choice = ChooseBackend(sorted_program, Options(100'000));
  ASSERT_TRUE(choice.ok());
  EXPECT_TRUE(choice->order_sensitive);
  EXPECT_NE(choice->rationale.find("row order"), std::string::npos);

  auto plain = ChooseBackend(Program(), Options(100'000));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->order_sensitive);
}

TEST_F(BackendChoiceTest, DeadSortIsNotOrderSensitive) {
  // A sort whose result is never used does not make the program order
  // dependent.
  std::string program =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "unused = df.sort_values(by=[\"a\"])\n"
      "out = df.groupby([\"c\"])[\"a\"].sum()\n"
      "print(out)\n";
  auto choice = ChooseBackend(program, Options(0));
  ASSERT_TRUE(choice.ok());
  EXPECT_FALSE(choice->order_sensitive);
}

TEST_F(BackendChoiceTest, DynamicPathFallsBackToDask) {
  std::string program =
      "import lazyfatpandas.pandas as pd\n"
      "p = \"" + csv_path_ + "\"\n"
      "df = pd.read_csv(p)\n"  // path via variable: not a constant
      "print(df.head())\n";
  auto choice = ChooseBackend(program, Options(1LL << 30));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->backend, exec::BackendKind::kDask);
  EXPECT_NE(choice->rationale.find("not statically estimable"),
            std::string::npos);
}

TEST_F(BackendChoiceTest, RequiresMetastore) {
  BackendChoiceOptions options;
  options.metastore = nullptr;
  EXPECT_FALSE(ChooseBackend(Program(), options).ok());
}

TEST_F(BackendChoiceTest, MultipleReadsAccumulate) {
  std::string other_csv = dir_ + "/other.csv";
  {
    std::ofstream out(other_csv);
    out << "k,v\n";
    for (int i = 0; i < 20000; ++i) out << i << "," << i << "\n";
  }
  std::string program =
      "import lazyfatpandas.pandas as pd\n"
      "a = pd.read_csv(\"" + csv_path_ + "\")\n"
      "b = pd.read_csv(\"" + other_csv + "\")\n"
      "print(a)\n"
      "print(b)\n";
  auto both = ChooseBackend(program, Options(0));
  std::string single =
      "import lazyfatpandas.pandas as pd\n"
      "a = pd.read_csv(\"" + csv_path_ + "\")\n"
      "print(a)\n";
  auto one = ChooseBackend(single, Options(0));
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(one.ok());
  EXPECT_GT(both->estimated_bytes, one->estimated_bytes);
}

}  // namespace
}  // namespace lafp::script
