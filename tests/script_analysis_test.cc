#include "script/analysis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "script/rewriter.h"

namespace lafp::script {
namespace {

/// Helper: run LAA on a source program and return live columns right
/// after the read_csv assignment to `var`.
struct LaaRun {
  std::vector<std::string> live_columns;
  bool all_columns = false;
  LivenessResult liveness;
  IRProgram ir;
  ProgramModel model;
  size_t read_stmt = 0;
};

LaaRun RunLaa(const std::string& source, const std::string& var) {
  LaaRun run;
  auto module = Parse(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  auto ir = LowerToIR(*module);
  EXPECT_TRUE(ir.ok()) << ir.status().ToString();
  run.ir = std::move(*ir);
  run.model = BuildProgramModel(run.ir);
  auto cfg = BuildCfg(run.ir);
  EXPECT_TRUE(cfg.ok());
  auto liveness = RunLivenessAnalysis(*cfg, run.model);
  EXPECT_TRUE(liveness.ok()) << liveness.status().ToString();
  run.liveness = std::move(*liveness);
  for (size_t i = 0; i < run.ir.stmts.size(); ++i) {
    const IRStmt& stmt = run.ir.stmts[i];
    if (stmt.kind == IRStmtKind::kAssign && stmt.target == var &&
        stmt.expr.kind == IRExprKind::kCall &&
        stmt.expr.attr == "read_csv") {
      run.read_stmt = i;
      run.live_columns = run.liveness.LiveColumnsAfter(
          i, var, &run.all_columns);
      std::sort(run.live_columns.begin(), run.live_columns.end());
      break;
    }
  }
  return run;
}

/// The paper's Figure 3 program: only fare_amount, pickup_datetime and
/// passenger_count must be live at the read (paper §3.1 walkthrough).
TEST(LiveAttributeTest, PaperFigure3Walkthrough) {
  LaaRun run = RunLaa(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"test.csv\")\n"
      "df = df[df.fare_amount > 0]\n"
      "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
      "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
      "print(p_per_day)\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns,
            (std::vector<std::string>{"fare_amount", "passenger_count",
                                      "pickup_datetime"}));
}

TEST(LiveAttributeTest, WholeFramePrintMakesAllLive) {
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "print(df)\n",
      "df");
  EXPECT_TRUE(run.all_columns);
}

TEST(LiveAttributeTest, HeadHeuristicIgnoresAttributeUse) {
  // §3.1: df.head()/info()/describe() are informational; they do not
  // force all columns live.
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "print(df.head())\n"
      "x = df.fare.sum()\n"
      "print(f\"{x}\")\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns, std::vector<std::string>{"fare"});
}

TEST(LiveAttributeTest, SetItemKillsColumn) {
  // `day` is assigned before use, so it is not read from the file.
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "df[\"day\"] = df.pickup.dt.dayofweek\n"
      "out = df.groupby([\"day\"])[\"pax\"].sum()\n"
      "checksum(out)\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns,
            (std::vector<std::string>{"pax", "pickup"}));
}

TEST(LiveAttributeTest, SelectionRestrictsLiveSet) {
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "small = df[[\"a\", \"b\"]]\n"
      "print(small)\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns, (std::vector<std::string>{"a", "b"}));
}

TEST(LiveAttributeTest, FilterMaskColumnsAreLive) {
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "out = df[(df.a > 0) & (df.b < 5)][[\"c\"]]\n"
      "print(out)\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(LiveAttributeTest, MergeGeneratesKeysOnBothSides) {
  auto module = Parse(
      "import pandas as pd\n"
      "a = pd.read_csv(\"a.csv\")\n"
      "b = pd.read_csv(\"b.csv\")\n"
      "j = a.merge(b, on=[\"k\"])\n"
      "out = j[[\"v\"]]\n"
      "print(out)\n");
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  ProgramModel model = BuildProgramModel(*ir);
  auto cfg = BuildCfg(*ir);
  auto liveness = RunLivenessAnalysis(*cfg, model);
  ASSERT_TRUE(liveness.ok());
  // At both reads: keys + v live (v could come from either side).
  for (size_t i = 0; i < ir->stmts.size(); ++i) {
    const IRStmt& stmt = ir->stmts[i];
    if (stmt.kind != IRStmtKind::kAssign ||
        stmt.expr.attr != "read_csv") {
      continue;
    }
    bool all = false;
    auto cols = liveness->LiveColumnsAfter(i, stmt.target, &all);
    std::sort(cols.begin(), cols.end());
    EXPECT_FALSE(all);
    EXPECT_EQ(cols, (std::vector<std::string>{"k", "v"})) << stmt.target;
  }
}

TEST(LiveAttributeTest, ConditionalUseKeepsColumnLive) {
  // `b` used only in one branch: still live at the read (may-analysis).
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "n = len(df)\n"
      "if n > 100:\n"
      "    x = df.b.sum()\n"
      "else:\n"
      "    x = df.a.sum()\n"
      "print(f\"{x}\")\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns, (std::vector<std::string>{"a", "b"}));
}

TEST(LiveAttributeTest, LoopUseStaysLiveAcrossIterations) {
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "i = 0\n"
      "total = 0\n"
      "while i < 3:\n"
      "    total = total + df.v.sum()\n"
      "    i = i + 1\n"
      "print(f\"{total}\")\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns, std::vector<std::string>{"v"});
}

TEST(LiveAttributeTest, ExternalCallForcesAllColumns) {
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "import matplotlib.pyplot as plt\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "plt.plot(df)\n",
      "df");
  EXPECT_TRUE(run.all_columns);
}

TEST(LiveAttributeTest, SortKeysAreLive) {
  LaaRun run = RunLaa(
      "import pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "s = df.sort_values(by=[\"price\"])\n"
      "out = s[[\"name\"]]\n"
      "print(out)\n",
      "df");
  EXPECT_FALSE(run.all_columns);
  EXPECT_EQ(run.live_columns,
            (std::vector<std::string>{"name", "price"}));
}

TEST(LiveDataFrameTest, LiveSetAtExternalCall) {
  // Paper Figure 10/11: at plt.plot, df is live (used later for
  // avg_fare); p_per_day is not (no later use).
  auto module = Parse(
      "import lazyfatpandas.pandas as pd\n"
      "import matplotlib.pyplot as plt\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "p_per_day = df.groupby([\"day\"])[\"pax\"].sum()\n"
      "plt.plot(p_per_day)\n"
      "avg = df.fare.mean()\n"
      "print(f\"{avg}\")\n");
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  ProgramModel model = BuildProgramModel(*ir);
  auto cfg = BuildCfg(*ir);
  auto liveness = RunLivenessAnalysis(*cfg, model);
  ASSERT_TRUE(liveness.ok());
  // Find the plt.plot statement.
  for (size_t i = 0; i < ir->stmts.size(); ++i) {
    const IRStmt& stmt = ir->stmts[i];
    if (stmt.kind == IRStmtKind::kExprStmt &&
        stmt.expr.kind == IRExprKind::kCall && stmt.expr.attr == "plot") {
      auto live = LiveDataFramesAfter(*liveness, model, i);
      EXPECT_EQ(live, std::vector<std::string>{"df"});
      return;
    }
  }
  FAIL() << "plot statement not found";
}

}  // namespace
}  // namespace lafp::script
