// The result-cache axis of the differential fuzzer wired into the tier-1
// suite: generated programs run cold-then-warm against a shared
// plan/result cache, and the checked-in fuzz corpus replays under cache
// configs. The oracle contract: the warm (cache-spliced) run must match
// the eager-Pandas reference, and any cold/warm self-mismatch is a
// divergence.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "testing/fuzzer.h"
#include "testing/oracle.h"

namespace {

using lafp::testing::CacheConfigs;
using lafp::testing::CaseResult;
using lafp::testing::CaseVerdict;
using lafp::testing::CheckCase;
using lafp::testing::FuzzOptions;
using lafp::testing::FuzzStats;
using lafp::testing::ListCorpus;
using lafp::testing::OracleMode;
using lafp::testing::ReadCorpusFile;
using lafp::testing::RunFuzz;

std::string DataDir() {
  auto dir = std::filesystem::temp_directory_path() / "lafp_fuzz_cache";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(CacheSmokeTest, CacheConfigsAreDeterministicAndArmed) {
  auto a = CacheConfigs(7, 12);
  auto b = CacheConfigs(7, 12);
  ASSERT_EQ(a.size(), 12u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Name(), b[i].Name());
    EXPECT_TRUE(a[i].cache);
    // The splicer only runs in lazy sessions; faults stay off so any
    // failed Status under this axis is a genuine divergence.
    EXPECT_NE(a[i].mode, OracleMode::kEager);
    EXPECT_TRUE(a[i].faults.empty());
  }
}

TEST(CacheSmokeTest, ProgramsAgreeColdAndWarm) {
  FuzzOptions options;
  options.seed = 42;
  options.iters = 15;
  options.matrix = 4;  // plus matrix/2 cache points per program
  options.cache = true;
  options.shrink = false;
  options.data_dir = DataDir();
  std::ostringstream log;
  options.log = &log;

  FuzzStats stats = RunFuzz(options);
  EXPECT_EQ(stats.iterations, 15);
  EXPECT_EQ(stats.reference_failures, 0) << log.str();
  ASSERT_TRUE(stats.divergences.empty())
      << "first divergence: seed " << stats.divergences[0].program_seed
      << " under " << stats.divergences[0].config_name << "\n"
      << stats.divergences[0].detail << "\n"
      << log.str();
}

TEST(CacheSmokeTest, CorpusReplaysCleanUnderCacheConfigs) {
  const auto configs = CacheConfigs(11, 6);
  const std::string data_dir = DataDir();
  for (const auto& path : ListCorpus(LAFP_FUZZ_CORPUS_DIR)) {
    auto c = ReadCorpusFile(path);
    ASSERT_TRUE(c.ok()) << path << ": " << c.status().ToString();
    CaseResult result = CheckCase(*c, configs, data_dir);
    EXPECT_TRUE(result.verdict == CaseVerdict::kOk)
        << path << " under " << result.config_name << ":\n"
        << result.detail;
  }
}

}  // namespace
