#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace lafp {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&hits](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](int) { FAIL(); });
  ParallelFor(&pool, -3, [](int) { FAIL(); });
}

TEST(ParallelForTest, ResultsDeterministicByIndex) {
  ThreadPool pool(4);
  std::vector<int> out(1000, 0);
  ParallelFor(&pool, 1000, [&out](int i) { out[i] = i * i; });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace lafp
