#include "exec/backend.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exec/agg_twophase.h"

namespace lafp::exec {
namespace {

using df::AggFunc;
using df::DataFrame;
using df::DataType;
using df::Scalar;

/// Parameterized over the three backends: the same op sequence must give
/// the same results (up to row order on Dask).
class BackendParamTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "exec_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/trips.csv";
    std::ofstream out(csv_path_);
    out << "id,fare,pax,city,pickup\n";
    for (int i = 0; i < 200; ++i) {
      out << i << "," << (i % 7) * 2.5 << "," << (i % 4 + 1) << ","
          << (i % 3 == 0 ? "NY" : (i % 3 == 1 ? "SF" : "LA")) << ","
          << "2024-01-" << (i % 28 + 1 < 10 ? "0" : "") << (i % 28 + 1)
          << " 08:00:00\n";
    }
    out.close();
    BackendConfig config;
    config.partition_rows = 64;  // force several partitions
    config.num_threads = 2;
    backend_ = MakeBackend(GetParam(), &tracker_, config);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Result<BackendValue> Read() {
    OpDesc desc;
    desc.kind = OpKind::kReadCsv;
    desc.path = csv_path_;
    return backend_->Execute(desc, {});
  }

  Result<BackendValue> GetCol(const BackendValue& frame,
                              const std::string& name) {
    OpDesc desc;
    desc.kind = OpKind::kGetColumn;
    desc.column = name;
    return backend_->Execute(desc, {frame});
  }

  /// Materialized eager frame of a value, row-sorted if the backend does
  /// not preserve order.
  std::string Canonical(const BackendValue& v) {
    auto eager = backend_->Materialize(v);
    EXPECT_TRUE(eager.ok()) << eager.status().ToString();
    if (!eager.ok()) return "";
    if (eager->is_scalar) return eager->scalar.ToString();
    return eager->frame.CanonicalString(!backend_->preserves_row_order());
  }

  /// Reference frame canonicalized the same way as Canonical().
  std::string RefCanonical(const DataFrame& ref) {
    return ref.CanonicalString(!backend_->preserves_row_order());
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
  std::unique_ptr<Backend> backend_;
};

TEST_P(BackendParamTest, ReadAndMaterialize) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto eager = backend_->Materialize(*frame);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 200u);
  EXPECT_EQ(eager->frame.num_columns(), 5u);
  EXPECT_EQ((*eager->frame.column("pickup"))->type(), DataType::kTimestamp);
}

TEST_P(BackendParamTest, FilterPipeline) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  auto fare = GetCol(*frame, "fare");
  ASSERT_TRUE(fare.ok());
  OpDesc cmp;
  cmp.kind = OpKind::kCompare;
  cmp.compare_op = df::CompareOp::kGt;
  cmp.has_scalar = true;
  cmp.scalar = Scalar::Double(10.0);
  auto mask = backend_->Execute(cmp, {*fare});
  ASSERT_TRUE(mask.ok());
  OpDesc filter;
  filter.kind = OpKind::kFilter;
  auto filtered = backend_->Execute(filter, {*frame, *mask});
  ASSERT_TRUE(filtered.ok());
  auto eager = backend_->Materialize(*filtered);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  // fares cycle 0,2.5,..,15; >10 keeps i%7 in {5,6}: 28 each over 200 rows.
  EXPECT_EQ(eager->frame.num_rows(), 56u);
  auto col = *eager->frame.column("fare");
  for (size_t i = 0; i < col->size(); ++i) {
    EXPECT_GT(col->DoubleAt(i), 10.0);
  }
}

TEST_P(BackendParamTest, GroupByMatchesEagerReference) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc gb;
  gb.kind = OpKind::kGroupByAgg;
  gb.columns = {"city"};
  gb.aggs = {{"fare", AggFunc::kSum, "fare_sum"},
             {"pax", AggFunc::kMean, "pax_mean"},
             {"id", AggFunc::kCount, "trips"},
             {"fare", AggFunc::kMin, "fare_min"},
             {"fare", AggFunc::kMax, "fare_max"}};
  auto grouped = backend_->Execute(gb, {*frame});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();

  // Reference: eager engine over the whole file.
  MemoryTracker ref_tracker(0);
  auto ref_frame = io::ReadCsv(csv_path_, {}, &ref_tracker);
  ASSERT_TRUE(ref_frame.ok());
  auto ref = df::GroupByAgg(*ref_frame, gb.columns, gb.aggs);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(Canonical(*grouped), RefCanonical(*ref));
}

TEST_P(BackendParamTest, GroupByNuniqueFallsBackCorrectly) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc gb;
  gb.kind = OpKind::kGroupByAgg;
  gb.columns = {"city"};
  gb.aggs = {{"pax", AggFunc::kNunique, "pax_kinds"}};
  auto grouped = backend_->Execute(gb, {*frame});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  MemoryTracker ref_tracker(0);
  auto ref_frame = io::ReadCsv(csv_path_, {}, &ref_tracker);
  auto ref = df::GroupByAgg(*ref_frame, gb.columns, gb.aggs);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(Canonical(*grouped), RefCanonical(*ref));
}

TEST_P(BackendParamTest, ReduceScalars) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  auto pax = GetCol(*frame, "pax");
  ASSERT_TRUE(pax.ok());
  struct Case {
    AggFunc func;
    std::string expected;
  };
  // pax cycles 1..4 over 200 rows: sum = 200/4*(1+2+3+4) = 500.
  for (const Case& c : std::vector<Case>{{AggFunc::kSum, "500"},
                                         {AggFunc::kMean, "2.5"},
                                         {AggFunc::kCount, "200"},
                                         {AggFunc::kMin, "1"},
                                         {AggFunc::kMax, "4"},
                                         {AggFunc::kNunique, "4"}}) {
    OpDesc red;
    red.kind = OpKind::kReduce;
    red.agg_func = c.func;
    auto out = backend_->Execute(red, {*pax});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto eager = backend_->Materialize(*out);
    ASSERT_TRUE(eager.ok()) << eager.status().ToString();
    ASSERT_TRUE(eager->is_scalar);
    EXPECT_EQ(eager->scalar.ToString(), c.expected)
        << df::AggFuncName(c.func);
  }
}

TEST_P(BackendParamTest, LenCountsRows) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc len;
  len.kind = OpKind::kLen;
  auto out = backend_->Execute(len, {*frame});
  ASSERT_TRUE(out.ok());
  auto eager = backend_->Materialize(*out);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(eager->is_scalar);
  EXPECT_EQ(eager->scalar.int_value(), 200);
}

TEST_P(BackendParamTest, MergeBroadcast) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  // Small lookup table imported via FromEager.
  MemoryTracker side(0);
  auto city = *df::Column::MakeString({"NY", "SF"}, {}, &side);
  auto region = *df::Column::MakeString({"east", "west"}, {}, &side);
  auto lookup = *DataFrame::Make({"city", "region"}, {city, region});
  auto rhs = backend_->FromEager(EagerValue::Frame(lookup));
  ASSERT_TRUE(rhs.ok());
  OpDesc merge;
  merge.kind = OpKind::kMerge;
  merge.columns = {"city"};
  merge.join_type = df::JoinType::kInner;
  auto joined = backend_->Execute(merge, {*frame, *rhs});
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();

  MemoryTracker ref_tracker(0);
  auto ref_frame = io::ReadCsv(csv_path_, {}, &ref_tracker);
  auto ref = df::Merge(*ref_frame, lookup, {"city"}, df::JoinType::kInner);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(Canonical(*joined), RefCanonical(*ref));
}

TEST_P(BackendParamTest, SetColumnWithDtAccessor) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  auto pickup = GetCol(*frame, "pickup");
  ASSERT_TRUE(pickup.ok());
  OpDesc dt;
  dt.kind = OpKind::kDtAccessor;
  dt.dt_field = df::DtField::kDayOfWeek;
  auto dow = backend_->Execute(dt, {*pickup});
  ASSERT_TRUE(dow.ok()) << dow.status().ToString();
  OpDesc set;
  set.kind = OpKind::kSetColumn;
  set.column = "day";
  auto with_day = backend_->Execute(set, {*frame, *dow});
  ASSERT_TRUE(with_day.ok()) << with_day.status().ToString();
  auto eager = backend_->Materialize(*with_day);
  ASSERT_TRUE(eager.ok());
  EXPECT_TRUE(eager->frame.HasColumn("day"));
  EXPECT_EQ((*eager->frame.column("day"))->type(), DataType::kInt64);
}

TEST_P(BackendParamTest, HeadIsSmall) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc head;
  head.kind = OpKind::kHead;
  head.n = 5;
  auto h = backend_->Execute(head, {*frame});
  ASSERT_TRUE(h.ok());
  auto eager = backend_->Materialize(*h);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 5u);
}

TEST_P(BackendParamTest, ValueCountsMatchesReference) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  auto city = GetCol(*frame, "city");
  ASSERT_TRUE(city.ok());
  OpDesc vc;
  vc.kind = OpKind::kValueCounts;
  auto counts = backend_->Execute(vc, {*city});
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  auto eager = backend_->Materialize(*counts);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 3u);
  // NY appears for i%3==0: 67 times.
  auto canonical = Canonical(*counts);
  EXPECT_NE(canonical.find("NY,67"), std::string::npos) << canonical;
}

TEST_P(BackendParamTest, DropDuplicatesAndUnique) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc dd;
  dd.kind = OpKind::kDropDuplicates;
  dd.columns = {"city", "pax"};
  auto deduped = backend_->Execute(dd, {*frame});
  ASSERT_TRUE(deduped.ok()) << deduped.status().ToString();
  auto eager = backend_->Materialize(*deduped);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 12u);  // 3 cities x 4 pax values

  auto city = GetCol(*frame, "city");
  OpDesc uniq;
  uniq.kind = OpKind::kUnique;
  auto u = backend_->Execute(uniq, {*city});
  ASSERT_TRUE(u.ok());
  auto ue = backend_->Materialize(*u);
  ASSERT_TRUE(ue.ok());
  EXPECT_EQ(ue->frame.num_rows(), 3u);
}

TEST_P(BackendParamTest, DescribeMatchesReference) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc desc;
  desc.kind = OpKind::kDescribe;
  auto described = backend_->Execute(desc, {*frame});
  ASSERT_TRUE(described.ok()) << described.status().ToString();
  MemoryTracker ref_tracker(0);
  auto ref_frame = io::ReadCsv(csv_path_, {}, &ref_tracker);
  auto ref = df::Describe(*ref_frame);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(Canonical(*described), RefCanonical(*ref));
}

TEST_P(BackendParamTest, FallbackSortViaEagerKernels) {
  auto frame = Read();
  ASSERT_TRUE(frame.ok());
  OpDesc sort;
  sort.kind = OpKind::kSortValues;
  sort.columns = {"fare"};
  sort.ascending = {false};
  // Dask reports no native support; the caller (the LaFP runtime) would
  // materialize + run eager. Here we exercise whichever path the backend
  // offers.
  if (backend_->SupportsOp(sort)) {
    auto sorted = backend_->Execute(sort, {*frame});
    ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
    auto eager = backend_->Materialize(*sorted);
    ASSERT_TRUE(eager.ok());
    EXPECT_DOUBLE_EQ((*eager->frame.column("fare"))->DoubleAt(0), 15.0);
  } else {
    EXPECT_EQ(GetParam(), BackendKind::kDask);
  }
}

TEST_P(BackendParamTest, UsecolsPropagatesToRead) {
  OpDesc desc;
  desc.kind = OpKind::kReadCsv;
  desc.path = csv_path_;
  desc.csv_options.usecols = {"fare", "city"};
  auto frame = backend_->Execute(desc, {});
  ASSERT_TRUE(frame.ok());
  auto eager = backend_->Materialize(*frame);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_columns(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendParamTest,
                         ::testing::Values(BackendKind::kPandas,
                                           BackendKind::kModin,
                                           BackendKind::kDask),
                         [](const auto& info) {
                           return BackendKindName(info.param);
                         });

}  // namespace
}  // namespace lafp::exec
