// Cross-query plan/result cache (lazy/plan_fingerprint.h,
// lazy/result_cache.h): canonical fingerprint identity, cache hit/miss
// behaviour across sessions, input-file invalidation, LRU eviction under
// a byte budget, and concurrent lookup safety.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "io/columnar.h"
#include "lazy/fat_dataframe.h"
#include "lazy/plan_fingerprint.h"
#include "lazy/result_cache.h"

namespace lafp::lazy {
namespace {

using df::CompareOp;
using df::Scalar;

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "result_cache_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/taxi.csv";
    WriteCsv(100);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteCsv(int rows, int fare_offset = -2) {
    std::ofstream out(csv_path_, std::ios::trunc);
    out << "fare_amount,passenger_count,tip\n";
    for (int i = 0; i < rows; ++i) {
      out << (i % 10) + fare_offset << ".5," << (i % 4 + 1) << ","
          << (i % 3) << "\n";
    }
  }

  std::unique_ptr<Session> MakeSession(
      std::shared_ptr<ResultCache> cache = nullptr) {
    auto builder = SessionOptions::Builder()
                       .tracker(&tracker_)
                       .output(&output_);
    if (cache != nullptr) builder.cache(std::move(cache));
    return std::make_unique<Session>(builder.Build());
  }

  /// read(csv)[read(csv).fare_amount > threshold] — four nodes.
  Result<FatDataFrame> FilterPlan(Session* session, double threshold) {
    LAFP_ASSIGN_OR_RETURN(FatDataFrame frame,
                          FatDataFrame::ReadCsv(session, csv_path_));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame fare, frame.Col("fare_amount"));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame mask,
                          fare.CompareTo(CompareOp::kGt,
                                         Scalar::Double(threshold)));
    return frame.FilterBy(mask);
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
  std::stringstream output_;
};

TEST_F(ResultCacheTest, FingerprintIgnoresNodeIdentity) {
  auto session = MakeSession();
  auto a = FilterPlan(session.get(), 0.0);
  auto b = FilterPlan(session.get(), 0.0);  // distinct nodes, same plan
  ASSERT_TRUE(a.ok() && b.ok());
  PlanFingerprinter fp;
  const PlanFingerprint& fa = fp.Fingerprint(a->node());
  const PlanFingerprint& fb = fp.Fingerprint(b->node());
  EXPECT_TRUE(fa.cacheable);
  EXPECT_TRUE(fb.cacheable);
  EXPECT_EQ(fa.plan_hash, fb.plan_hash);
  EXPECT_EQ(fa.input_hash, fb.input_hash);
}

TEST_F(ResultCacheTest, FingerprintNormalizesSafeRenames) {
  auto session = MakeSession();
  auto read = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(read.ok());
  auto plain = read->Select({"fare_amount", "tip"});
  auto renamed = read->Rename({{"fare_amount", "x"}});
  ASSERT_TRUE(renamed.ok());
  auto via_rename = renamed->Select({"x", "tip"});
  ASSERT_TRUE(plain.ok() && via_rename.ok());
  PlanFingerprinter fp;
  const PlanFingerprint fa = fp.Fingerprint(plain->node());
  const PlanFingerprint fb = fp.Fingerprint(via_rename->node());
  ASSERT_TRUE(fa.cacheable);
  ASSERT_TRUE(fb.cacheable);
  // The rename is normalized away: both select canonical columns
  // (fare_amount, tip) of the same source.
  EXPECT_EQ(fa.plan_hash, fb.plan_hash);
  EXPECT_EQ(fa.input_hash, fb.input_hash);
  EXPECT_TRUE(fa.identity_names());
  EXPECT_FALSE(fb.identity_names());  // visible "x", canonical "fare_amount"
}

TEST_F(ResultCacheTest, FingerprintSensitiveToParamsAndInputOrder) {
  auto session = MakeSession();
  auto read = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(read.ok());
  PlanFingerprinter fp;
  auto h3 = read->Head(3);
  auto h4 = read->Head(4);
  ASSERT_TRUE(h3.ok() && h4.ok());
  EXPECT_NE(fp.Fingerprint(h3->node()).plan_hash,
            fp.Fingerprint(h4->node()).plan_hash);

  auto tip = read->Col("tip");
  auto pax = read->Col("passenger_count");
  ASSERT_TRUE(tip.ok() && pax.ok());
  auto tip_minus_pax = tip->ArithCol(df::ArithOp::kSub, *pax);
  auto pax_minus_tip = pax->ArithCol(df::ArithOp::kSub, *tip);
  ASSERT_TRUE(tip_minus_pax.ok() && pax_minus_tip.ok());
  EXPECT_NE(fp.Fingerprint(tip_minus_pax->node()).plan_hash,
            fp.Fingerprint(pax_minus_tip->node()).plan_hash);
}

TEST_F(ResultCacheTest, FileEditChangesInputHashNotPlanHash) {
  auto session = MakeSession();
  auto plan = FilterPlan(session.get(), 0.0);
  ASSERT_TRUE(plan.ok());
  PlanFingerprinter before;
  const PlanFingerprint fa = before.Fingerprint(plan->node());
  ASSERT_TRUE(fa.cacheable);
  WriteCsv(120, /*fare_offset=*/1);  // different size and content
  PlanFingerprinter after;  // file identity is memoized per instance
  const PlanFingerprint fb = after.Fingerprint(plan->node());
  ASSERT_TRUE(fb.cacheable);
  EXPECT_EQ(fa.plan_hash, fb.plan_hash);
  EXPECT_NE(fa.input_hash, fb.input_hash);
}

TEST_F(ResultCacheTest, WarmSessionHitsCacheAndSkipsExecution) {
  auto cache = std::make_shared<ResultCache>();

  auto cold = MakeSession(cache);
  auto plan1 = FilterPlan(cold.get(), 0.0);
  ASSERT_TRUE(plan1.ok());
  auto eager1 = plan1->Compute();
  ASSERT_TRUE(eager1.ok()) << eager1.status().ToString();
  const int64_t cold_execs = cold->num_node_executions();
  EXPECT_GE(cold_execs, 4);
  EXPECT_GE(cache->inserts(), 1);
  EXPECT_EQ(cache->hits(), 0);

  auto warm = MakeSession(cache);
  auto plan2 = FilterPlan(warm.get(), 0.0);
  ASSERT_TRUE(plan2.ok());
  auto eager2 = plan2->Compute();
  ASSERT_TRUE(eager2.ok()) << eager2.status().ToString();
  EXPECT_GE(cache->hits(), 1);
  EXPECT_LT(warm->num_node_executions(), cold_execs);
  EXPECT_EQ(eager2->frame.num_rows(), eager1->frame.num_rows());
  EXPECT_EQ(eager2->ToDisplayString(), eager1->ToDisplayString());
}

TEST_F(ResultCacheTest, ScalarResultsRoundTripThroughCache) {
  auto cache = std::make_shared<ResultCache>();
  auto cold = MakeSession(cache);
  auto read1 = FatDataFrame::ReadCsv(cold.get(), csv_path_);
  ASSERT_TRUE(read1.ok());
  auto sum1 = read1->Col("tip")->Sum();
  ASSERT_TRUE(sum1.ok());
  auto v1 = sum1->Value();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  auto warm = MakeSession(cache);
  auto read2 = FatDataFrame::ReadCsv(warm.get(), csv_path_);
  ASSERT_TRUE(read2.ok());
  auto sum2 = read2->Col("tip")->Sum();
  ASSERT_TRUE(sum2.ok());
  const int64_t hits_before = cache->hits();
  auto v2 = sum2->Value();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_GT(cache->hits(), hits_before);
  EXPECT_EQ(v1->ToString(), v2->ToString());
}

TEST_F(ResultCacheTest, ParameterChangeMisses) {
  auto cache = std::make_shared<ResultCache>();
  auto cold = MakeSession(cache);
  auto plan1 = FilterPlan(cold.get(), 0.0);
  ASSERT_TRUE(plan1.ok());
  ASSERT_TRUE(plan1->Compute().ok());

  auto warm = MakeSession(cache);
  auto plan2 = FilterPlan(warm.get(), 1.0);  // different threshold
  ASSERT_TRUE(plan2.ok());
  const int64_t hits_before = cache->hits();
  auto eager2 = plan2->Compute();
  ASSERT_TRUE(eager2.ok());
  EXPECT_EQ(cache->hits(), hits_before);
  EXPECT_GT(cache->misses(), 0);
  EXPECT_EQ(eager2->frame.num_rows(), 70u);  // fares {1.5..7.5} of each 10
}

TEST_F(ResultCacheTest, FileMutationInvalidates) {
  auto cache = std::make_shared<ResultCache>();
  auto cold = MakeSession(cache);
  auto plan1 = FilterPlan(cold.get(), 0.0);
  ASSERT_TRUE(plan1.ok());
  auto eager1 = plan1->Compute();
  ASSERT_TRUE(eager1.ok());
  EXPECT_EQ(eager1->frame.num_rows(), 80u);

  WriteCsv(120, /*fare_offset=*/1);  // every fare now > 0

  auto warm = MakeSession(cache);
  auto plan2 = FilterPlan(warm.get(), 0.0);
  ASSERT_TRUE(plan2.ok());
  const int64_t hits_before = cache->hits();
  auto eager2 = plan2->Compute();
  ASSERT_TRUE(eager2.ok());
  EXPECT_EQ(cache->hits(), hits_before);  // stale entry unreachable
  EXPECT_EQ(eager2->frame.num_rows(), 120u);
}

TEST_F(ResultCacheTest, LruEvictionUnderByteBudget) {
  ResultCache::Options options;
  options.capacity_bytes = 24 << 10;  // a couple of ~8 KiB frames
  ResultCache cache(options);

  MemoryTracker tracker(0);
  auto make_frame = [&](int64_t salt) {
    std::vector<int64_t> values(1000, salt);
    auto col = df::Column::MakeInt(std::move(values), {}, &tracker);
    EXPECT_TRUE(col.ok());
    auto frame = df::DataFrame::Make({"v"}, {*col});
    EXPECT_TRUE(frame.ok());
    return exec::EagerValue::Frame(*frame);
  };

  for (int64_t i = 0; i < 6; ++i) {
    CacheKey key{/*plan_hash=*/static_cast<uint64_t>(i + 1),
                 /*input_hash=*/7};
    ASSERT_TRUE(cache.Insert(key, make_frame(i)).ok());
  }
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_LE(cache.bytes(), options.capacity_bytes);
  EXPECT_LT(cache.entries(), 6u);
  // Most-recent entry survived; the oldest was evicted.
  EXPECT_NE(cache.Lookup(CacheKey{6, 7}), nullptr);
  EXPECT_EQ(cache.Lookup(CacheKey{1, 7}), nullptr);
  // An entry larger than the whole budget is skipped, not cached.
  std::vector<int64_t> big(10000, 1);
  auto col = df::Column::MakeInt(std::move(big), {}, &tracker);
  ASSERT_TRUE(col.ok());
  auto frame = df::DataFrame::Make({"v"}, {*col});
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(
      cache.Insert(CacheKey{99, 7}, exec::EagerValue::Frame(*frame)).ok());
  EXPECT_FALSE(cache.Contains(CacheKey{99, 7}));
}

TEST_F(ResultCacheTest, ConcurrentLookupsAndInsertsAreClean) {
  ResultCache cache;
  MemoryTracker tracker(0);
  auto make_value = [&](int64_t salt) {
    std::vector<int64_t> values(64, salt);
    auto col = df::Column::MakeInt(std::move(values), {}, &tracker);
    EXPECT_TRUE(col.ok());
    auto frame = df::DataFrame::Make({"v"}, {*col});
    EXPECT_TRUE(frame.ok());
    return exec::EagerValue::Frame(*frame);
  };
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        cache.Insert(CacheKey{static_cast<uint64_t>(i), 1}, make_value(i))
            .ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t key = static_cast<uint64_t>((i + t) % 8);
        auto value = cache.Lookup(CacheKey{key, 1});
        if (value != nullptr) {
          EXPECT_FALSE(value->is_scalar);
          EXPECT_EQ(value->frame.num_rows(), 64u);
        }
        if (i % 50 == t) {
          EXPECT_TRUE(cache.Insert(CacheKey{key, 1}, make_value(i)).ok());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kIters);
}

TEST_F(ResultCacheTest, BuilderKnobsControlSessionCache) {
  auto plain = MakeSession();
  EXPECT_EQ(plain->result_cache(), nullptr);  // off by default

  auto opts = SessionOptions::Builder()
                  .tracker(&tracker_)
                  .output(&output_)
                  .cache(true)
                  .cache_bytes(1 << 20)
                  .Build();
  Session with_private(opts);
  ASSERT_NE(with_private.result_cache(), nullptr);
  EXPECT_EQ(with_private.result_cache()->capacity_bytes(), 1u << 20);

  auto shared = std::make_shared<ResultCache>();
  auto shared_session = MakeSession(shared);
  EXPECT_EQ(shared_session->result_cache(), shared);
}

// ---- LFC input fingerprints (io/fingerprint.h FingerprintInputFile) ----
//
// Regression for the CSV-only fingerprint path: native columnar inputs
// must carry their own identity (stat + footer checksum), so an edited
// LFC file invalidates cached results even when size/mtime are
// indistinguishable at stat granularity.

class LfcCacheTest : public ResultCacheTest {
 protected:
  void WriteLfc(int rows, int fare_offset = -2) {
    WriteCsv(rows, fare_offset);
    lfc_path_ = dir_ + "/taxi.lfc";
    io::LfcWriteOptions wo;
    wo.chunk_rows = 16;
    ASSERT_TRUE(io::ConvertCsvToLfc(csv_path_, lfc_path_, {}, wo, &tracker_)
                    .ok());
  }

  Result<FatDataFrame> LfcFilterPlan(Session* session, double threshold) {
    LAFP_ASSIGN_OR_RETURN(FatDataFrame frame,
                          FatDataFrame::ReadLfc(session, lfc_path_));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame fare, frame.Col("fare_amount"));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame mask,
                          fare.CompareTo(CompareOp::kGt,
                                         Scalar::Double(threshold)));
    return frame.FilterBy(mask);
  }

  std::string lfc_path_;
};

TEST_F(LfcCacheTest, LfcEditChangesInputHashNotPlanHash) {
  WriteLfc(100);
  auto session = MakeSession();
  auto plan = LfcFilterPlan(session.get(), 0.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  PlanFingerprinter before;
  const PlanFingerprint fa = before.Fingerprint(plan->node());
  ASSERT_TRUE(fa.cacheable);
  // Same row count and byte size — only cell values (and therefore the
  // footer checksum) change.
  WriteLfc(100, /*fare_offset=*/1);
  PlanFingerprinter after;
  const PlanFingerprint fb = after.Fingerprint(plan->node());
  ASSERT_TRUE(fb.cacheable);
  EXPECT_EQ(fa.plan_hash, fb.plan_hash);
  EXPECT_NE(fa.input_hash, fb.input_hash);
}

TEST_F(LfcCacheTest, WarmSessionHitsCacheOverLfcScan) {
  WriteLfc(100);
  auto cache = std::make_shared<ResultCache>();
  auto cold = MakeSession(cache);
  auto plan1 = LfcFilterPlan(cold.get(), 0.0);
  ASSERT_TRUE(plan1.ok());
  auto eager1 = plan1->Compute();
  ASSERT_TRUE(eager1.ok()) << eager1.status().ToString();
  EXPECT_GE(cache->inserts(), 1);

  auto warm = MakeSession(cache);
  auto plan2 = LfcFilterPlan(warm.get(), 0.0);
  ASSERT_TRUE(plan2.ok());
  auto eager2 = plan2->Compute();
  ASSERT_TRUE(eager2.ok());
  EXPECT_GE(cache->hits(), 1);
  EXPECT_EQ(eager2->frame.num_rows(), eager1->frame.num_rows());
}

TEST_F(LfcCacheTest, LfcMutationInvalidates) {
  WriteLfc(100);
  auto cache = std::make_shared<ResultCache>();
  auto cold = MakeSession(cache);
  auto plan1 = LfcFilterPlan(cold.get(), 0.0);
  ASSERT_TRUE(plan1.ok());
  auto eager1 = plan1->Compute();
  ASSERT_TRUE(eager1.ok());
  EXPECT_EQ(eager1->frame.num_rows(), 80u);

  WriteLfc(100, /*fare_offset=*/1);  // every fare now > 0; same shape

  auto warm = MakeSession(cache);
  auto plan2 = LfcFilterPlan(warm.get(), 0.0);
  ASSERT_TRUE(plan2.ok());
  const int64_t hits_before = cache->hits();
  auto eager2 = plan2->Compute();
  ASSERT_TRUE(eager2.ok()) << eager2.status().ToString();
  EXPECT_EQ(cache->hits(), hits_before);  // stale entry unreachable
  EXPECT_EQ(eager2->frame.num_rows(), 100u);
}

}  // namespace
}  // namespace lafp::lazy
