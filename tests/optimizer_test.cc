#include "optimizer/passes.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "lazy/fat_dataframe.h"
#include "common/macros.h"
#include "optimizer/predicate.h"

namespace lafp::opt {
namespace {

using df::AggFunc;
using df::CompareOp;
using df::Scalar;
using exec::BackendKind;
using exec::OpKind;
using lazy::ExecutionMode;
using lazy::FatDataFrame;
using lazy::Session;
using lazy::SessionOptions;
using lazy::TaskGraph;
using lazy::TaskNodePtr;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "opt_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/data.csv";
    std::ofstream out(csv_path_);
    out << "a,b,city\n";
    for (int i = 0; i < 60; ++i) {
      out << i << "," << (i * 2) << ","
          << (i % 3 == 0 ? "NY" : (i % 3 == 1 ? "SF" : "LA")) << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Session> MakeSession(
      BackendKind backend = BackendKind::kPandas) {
    SessionOptions opts;
    opts.backend = backend;
    opts.mode = ExecutionMode::kLazy;
    opts.output = &output_;
    opts.tracker = &tracker_;
    return std::make_unique<Session>(opts);
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
  std::stringstream output_;
};

TEST_F(OptimizerTest, ExtractSimplePredicate) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto mask = frame->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(10));
  ASSERT_TRUE(mask.ok());
  auto pred = ExtractPredicate(mask->node(), frame->node());
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->kind, Predicate::Kind::kLeaf);
  EXPECT_EQ(pred->column, "a");
  EXPECT_EQ(pred->op.compare_op, CompareOp::kGt);
}

TEST_F(OptimizerTest, ExtractConjunctionAndNot) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto m1 = frame->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(5));
  auto m2 = frame->Col("city")->CompareTo(CompareOp::kEq,
                                          Scalar::String("NY"));
  auto both = m1->And(*m2);
  auto negated = both->Not();
  auto pred = ExtractPredicate(negated->node(), frame->node());
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->kind, Predicate::Kind::kNot);
  ASSERT_EQ(pred->children.size(), 1u);
  EXPECT_EQ(pred->children[0].kind, Predicate::Kind::kAnd);
  std::vector<std::string> cols;
  pred->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "city"}));
}

TEST_F(OptimizerTest, ExtractRejectsForeignAnchor) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto other = frame->Select({"a"});
  auto mask = other->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(1));
  // Anchored at `other`, not `frame`.
  EXPECT_FALSE(ExtractPredicate(mask->node(), frame->node()).has_value());
}

TEST_F(OptimizerTest, ExtractRejectsRuntimeScalarCompare) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto a = frame->Col("a");
  auto mean = a->Mean();
  auto mask = a->CompareLazy(CompareOp::kGt, *mean);
  EXPECT_FALSE(ExtractPredicate(mask->node(), frame->node()).has_value());
}

TEST_F(OptimizerTest, BuildMaskRoundTripsExtraction) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto m1 = frame->Col("a")->CompareTo(CompareOp::kLe, Scalar::Int(30));
  auto m2 = frame->Col("b")->CompareTo(CompareOp::kNe, Scalar::Int(4));
  auto orred = m1->Or(*m2);
  auto pred = ExtractPredicate(orred->node(), frame->node());
  ASSERT_TRUE(pred.has_value());
  TaskNodePtr rebuilt =
      BuildMask(session->graph(), *pred, frame->node());
  auto round_trip = ExtractPredicate(rebuilt, frame->node());
  ASSERT_TRUE(round_trip.has_value());
  EXPECT_EQ(round_trip->kind, Predicate::Kind::kOr);
}

/// The filter sits above set_item in the source program; after pushdown
/// the user-visible node must be the set_item and the filter must sit
/// directly on the read.
TEST_F(OptimizerTest, PushdownThroughSetItem) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto doubled = frame->Col("a")->ArithScalar(df::ArithOp::kMul,
                                              Scalar::Int(10));
  auto with_col = frame->SetCol("a10", *doubled);
  auto mask = with_col->Col("b")->CompareTo(CompareOp::kLt, Scalar::Int(20));
  auto filtered = with_col->FilterBy(*mask);
  ASSERT_TRUE(filtered.ok());

  PassStats stats;
  ASSERT_TRUE(
      PushDownPredicates(session.get(), {filtered->node()}, &stats).ok());
  EXPECT_EQ(stats.predicates_pushed, 1);
  // Filter moved below: the visible node is now the set_item.
  EXPECT_EQ(filtered->node()->desc.kind, OpKind::kSetColumn);
  EXPECT_EQ(filtered->node()->inputs[0]->desc.kind, OpKind::kFilter);

  auto eager = filtered->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 10u);  // b<20 -> a in 0..9
  EXPECT_TRUE(eager->frame.HasColumn("a10"));
  EXPECT_EQ((*eager->frame.column("a10"))->IntAt(9), 90);
}

TEST_F(OptimizerTest, PushdownBlockedWhenPredicateUsesComputedColumn) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto doubled = frame->Col("a")->ArithScalar(df::ArithOp::kMul,
                                              Scalar::Int(10));
  auto with_col = frame->SetCol("a10", *doubled);
  auto mask =
      with_col->Col("a10")->CompareTo(CompareOp::kLt, Scalar::Int(100));
  auto filtered = with_col->FilterBy(*mask);
  PassStats stats;
  ASSERT_TRUE(
      PushDownPredicates(session.get(), {filtered->node()}, &stats).ok());
  EXPECT_EQ(stats.predicates_pushed, 0);  // a10 is computed by set_item
  EXPECT_EQ(filtered->node()->desc.kind, OpKind::kFilter);
}

TEST_F(OptimizerTest, PushdownThroughSortAndRename) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  // Intermediate handles are scoped like the temporaries of a chained
  // program (df.rename(...).sort_values(...)[pred]); a handle the program
  // still holds counts as a consumer and would pin the hop.
  Result<FatDataFrame> filtered = Status::Invalid("unset");
  {
    auto renamed = frame->Rename({{"a", "alpha"}});
    auto sorted = renamed->SortValues({"b"}, {false});
    auto mask =
        sorted->Col("alpha")->CompareTo(CompareOp::kLt, Scalar::Int(10));
    filtered = sorted->FilterBy(*mask);
  }
  PassStats stats;
  ASSERT_TRUE(
      PushDownPredicates(session.get(), {filtered->node()}, &stats).ok());
  // Two hops: below sort_values, then below rename (column mapped back to
  // "a").
  EXPECT_EQ(stats.predicates_pushed, 2);
  auto eager = filtered->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 10u);
  EXPECT_TRUE(eager->frame.HasColumn("alpha"));
  // Sorted descending by b.
  EXPECT_EQ((*eager->frame.column("alpha"))->IntAt(0), 9);
}

TEST_F(OptimizerTest, PushdownBlockedByMultipleConsumers) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto sorted = frame->SortValues({"a"}, {true});
  auto mask = sorted->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(5));
  auto filtered = sorted->FilterBy(*mask);
  // Second consumer of the sorted node.
  auto head = sorted->Head(3);
  PassStats stats;
  ASSERT_TRUE(PushDownPredicates(session.get(),
                                 {filtered->node(), head->node()}, &stats)
                  .ok());
  EXPECT_EQ(stats.predicates_pushed, 0);
  EXPECT_EQ(filtered->node()->desc.kind, OpKind::kFilter);
}

TEST_F(OptimizerTest, PushdownRespectsDropDuplicatesSubset) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto dedup = frame->DropDuplicates({"city"});
  auto mask = dedup->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(0));
  auto filtered = dedup->FilterBy(*mask);
  PassStats stats;
  ASSERT_TRUE(
      PushDownPredicates(session.get(), {filtered->node()}, &stats).ok());
  // Predicate reads "a" which is outside the dedup subset {city}:
  // swapping would change which representative row survives.
  EXPECT_EQ(stats.predicates_pushed, 0);

  auto dedup_all = frame->DropDuplicates({});
  auto mask2 = dedup_all->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(0));
  auto filtered2 = dedup_all->FilterBy(*mask2);
  PassStats stats2;
  ASSERT_TRUE(
      PushDownPredicates(session.get(), {filtered2->node()}, &stats2).ok());
  EXPECT_EQ(stats2.predicates_pushed, 1);  // all-column dedup is safe
}

TEST_F(OptimizerTest, DeduplicateMergesIdenticalChains) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  // Two structurally identical aggregations.
  auto g1 = frame->GroupByAgg({"city"}, {{"a", AggFunc::kSum, "s"}});
  auto g2 = frame->GroupByAgg({"city"}, {{"a", AggFunc::kSum, "s"}});
  auto joined = g1->Merge(*g2, {"city"}, df::JoinType::kInner);
  PassStats stats;
  ASSERT_TRUE(
      DeduplicateNodes(session.get(), {joined->node()}, &stats).ok());
  EXPECT_EQ(stats.nodes_deduplicated, 1);
  EXPECT_EQ(joined->node()->inputs[0], joined->node()->inputs[1]);
  auto eager = joined->Compute();
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 3u);
}

TEST_F(OptimizerTest, DeduplicateCountsExecutionsOnce) {
  auto session = MakeSession();
  InstallDefaultOptimizer(session.get());
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto g1 = frame->GroupByAgg({"city"}, {{"a", AggFunc::kSum, "s"}});
  auto g2 = frame->GroupByAgg({"city"}, {{"a", AggFunc::kSum, "s"}});
  auto joined = g1->Merge(*g2, {"city"}, df::JoinType::kInner);
  auto eager = joined->Compute();
  ASSERT_TRUE(eager.ok());
  // read + groupby + merge = 3 executions (not 2 groupbys).
  EXPECT_EQ(session->num_node_executions(), 3);
}

TEST_F(OptimizerTest, RedundantHeadAndSelectCollapse) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto chained = frame->Head(10)->Head(20);
  ASSERT_TRUE(chained.ok());
  PassStats stats;
  ASSERT_TRUE(
      EliminateRedundantOps(session.get(), {chained->node()}, &stats).ok());
  EXPECT_EQ(stats.redundant_ops_removed, 1);
  EXPECT_EQ(chained->node()->desc.n, 10u);
  EXPECT_EQ(chained->node()->inputs[0]->desc.kind, OpKind::kReadCsv);

  auto sel = frame->Select({"a", "b"})->Select({std::vector<std::string>{"a"}});
  ASSERT_TRUE(sel.ok());
  PassStats stats2;
  ASSERT_TRUE(
      EliminateRedundantOps(session.get(), {sel->node()}, &stats2).ok());
  EXPECT_EQ(stats2.redundant_ops_removed, 1);
  auto eager = sel->Compute();
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_columns(), 1u);
}

TEST_F(OptimizerTest, DoubleNegationCollapses) {
  auto session = MakeSession();
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto mask = frame->Col("a")->CompareTo(CompareOp::kGt, Scalar::Int(10));
  auto nn = mask->Not()->Not();
  ASSERT_TRUE(nn.ok());
  PassStats stats;
  ASSERT_TRUE(
      EliminateRedundantOps(session.get(), {nn->node()}, &stats).ok());
  EXPECT_EQ(stats.redundant_ops_removed, 1);
  EXPECT_EQ(nn->node()->desc.kind, OpKind::kCompare);
}

/// Property check: for a pipeline exercising every pass, the optimized
/// result equals the unoptimized result on every backend.
class OptimizerEquivalenceTest
    : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "opt_eq_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/data.csv";
    std::ofstream out(csv_path_);
    out << "a,b,city\n";
    for (int i = 0; i < 300; ++i) {
      out << i << "," << (i % 17) << ","
          << (i % 3 == 0 ? "NY" : (i % 3 == 1 ? "SF" : "LA")) << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Result<df::DataFrame> RunPipeline(bool optimized) {
    SessionOptions opts;
    opts.backend = GetParam();
    opts.backend_config.partition_rows = 64;
    opts.mode = ExecutionMode::kLazy;
    opts.tracker = &tracker_;
    Session session(opts);
    if (optimized) InstallDefaultOptimizer(&session);
    LAFP_ASSIGN_OR_RETURN(FatDataFrame frame,
                          FatDataFrame::ReadCsv(&session, csv_path_));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame b, frame.Col("b"));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame b3,
                          b.ArithScalar(df::ArithOp::kMul, Scalar::Int(3)));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame with_col, frame.SetCol("b3", b3));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame a_col, with_col.Col("a"));
    LAFP_ASSIGN_OR_RETURN(
        FatDataFrame m1, a_col.CompareTo(CompareOp::kLt, Scalar::Int(200)));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame city_col, with_col.Col("city"));
    LAFP_ASSIGN_OR_RETURN(
        FatDataFrame m2,
        city_col.CompareTo(CompareOp::kNe, Scalar::String("LA")));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame mask, m1.And(m2));
    LAFP_ASSIGN_OR_RETURN(FatDataFrame filtered, with_col.FilterBy(mask));
    std::vector<df::AggSpec> aggs{{"b3", AggFunc::kSum, "total"},
                                  {"a", AggFunc::kCount, "n"}};
    LAFP_ASSIGN_OR_RETURN(FatDataFrame grouped,
                          filtered.GroupByAgg({"city"}, aggs));
    return grouped.ToEager();
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
};

TEST_P(OptimizerEquivalenceTest, OptimizedMatchesUnoptimized) {
  auto plain = RunPipeline(false);
  auto optimized = RunPipeline(true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(plain->CanonicalString(true), optimized->CanonicalString(true));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OptimizerEquivalenceTest,
                         ::testing::Values(BackendKind::kPandas,
                                           BackendKind::kModin,
                                           BackendKind::kDask),
                         [](const auto& info) {
                           return exec::BackendKindName(info.param);
                         });

}  // namespace
}  // namespace lafp::opt
