#include <gtest/gtest.h>

#include <cmath>

#include "dataframe/ops.h"

namespace lafp::df {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  DataFrame MakeTrips() {
    auto day = *Column::MakeInt({0, 1, 0, 1, 2, 0}, {}, &tracker_);
    auto pax = *Column::MakeInt({1, 2, 3, 4, 5, 6}, {}, &tracker_);
    auto fare = *Column::MakeDouble({10.0, 20.0, 30.0, 40.0, 50.0, 60.0},
                                    {}, &tracker_);
    auto city = *Column::MakeString({"NY", "SF", "NY", "NY", "SF", "LA"}, {},
                                    &tracker_);
    return *DataFrame::Make({"day", "pax", "fare", "city"},
                            {day, pax, fare, city});
  }

  MemoryTracker tracker_{0};
};

TEST_F(GroupByTest, SumByKey) {
  auto out = GroupByAgg(MakeTrips(), {"day"},
                        {{"pax", AggFunc::kSum, "pax_sum"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);  // days 0,1,2 in first-appearance order
  EXPECT_EQ(out->names(), (std::vector<std::string>{"day", "pax_sum"}));
  EXPECT_EQ((*out->column("day"))->IntAt(0), 0);
  EXPECT_EQ((*out->column("pax_sum"))->IntAt(0), 1 + 3 + 6);
  EXPECT_EQ((*out->column("pax_sum"))->IntAt(1), 2 + 4);
  EXPECT_EQ((*out->column("pax_sum"))->IntAt(2), 5);
}

TEST_F(GroupByTest, MultipleAggsAndKeys) {
  auto out = GroupByAgg(MakeTrips(), {"day", "city"},
                        {{"fare", AggFunc::kMean, "avg_fare"},
                         {"pax", AggFunc::kCount, "trips"}});
  ASSERT_TRUE(out.ok());
  // Groups: (0,NY), (1,SF), (1,NY), (2,SF), (0,LA).
  EXPECT_EQ(out->num_rows(), 5u);
  EXPECT_EQ((*out->column("avg_fare"))->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ((*out->column("avg_fare"))->DoubleAt(0), 20.0);
  EXPECT_EQ((*out->column("trips"))->IntAt(0), 2);
}

TEST_F(GroupByTest, MinMaxPreserveType) {
  auto out = GroupByAgg(MakeTrips(), {"city"},
                        {{"pax", AggFunc::kMin, "min_pax"},
                         {"fare", AggFunc::kMax, "max_fare"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out->column("min_pax"))->type(), DataType::kInt64);
  EXPECT_EQ((*out->column("max_fare"))->type(), DataType::kDouble);
  // NY rows: pax {1,3,4}, fares {10,30,40}.
  EXPECT_EQ((*out->column("min_pax"))->IntAt(0), 1);
  EXPECT_DOUBLE_EQ((*out->column("max_fare"))->DoubleAt(0), 40.0);
}

TEST_F(GroupByTest, NuniqueCountsDistinct) {
  auto out = GroupByAgg(MakeTrips(), {"city"},
                        {{"day", AggFunc::kNunique, "days"}});
  ASSERT_TRUE(out.ok());
  // NY days {0,1}; SF days {1,2}; LA days {0}.
  EXPECT_EQ((*out->column("days"))->IntAt(0), 2);
  EXPECT_EQ((*out->column("days"))->IntAt(1), 2);
  EXPECT_EQ((*out->column("days"))->IntAt(2), 1);
}

TEST_F(GroupByTest, NullKeysFormOwnGroup) {
  auto key = *Column::MakeInt({1, 1, 2}, {1, 0, 1}, &tracker_);
  auto val = *Column::MakeInt({10, 20, 30}, {}, &tracker_);
  auto frame = *DataFrame::Make({"k", "v"}, {key, val});
  auto out = GroupByAgg(frame, {"k"}, {{"v", AggFunc::kSum, "s"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);  // 1, null, 2
}

TEST_F(GroupByTest, NullValuesSkippedInAggregates) {
  auto key = *Column::MakeInt({1, 1, 1}, {}, &tracker_);
  auto val = *Column::MakeDouble({10.0, 0.0, 30.0}, {1, 0, 1}, &tracker_);
  auto frame = *DataFrame::Make({"k", "v"}, {key, val});
  auto out = GroupByAgg(
      frame, {"k"},
      {{"v", AggFunc::kSum, "s"}, {"v", AggFunc::kCount, "c"},
       {"v", AggFunc::kMean, "m"}});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out->column("s"))->DoubleAt(0), 40.0);
  EXPECT_EQ((*out->column("c"))->IntAt(0), 2);
  EXPECT_DOUBLE_EQ((*out->column("m"))->DoubleAt(0), 20.0);
}

TEST_F(GroupByTest, RequiresKeys) {
  EXPECT_FALSE(
      GroupByAgg(MakeTrips(), {}, {{"pax", AggFunc::kSum, "s"}}).ok());
  EXPECT_FALSE(
      GroupByAgg(MakeTrips(), {"ghost"}, {{"pax", AggFunc::kSum, "s"}})
          .ok());
}

TEST_F(GroupByTest, StringMinMax) {
  auto out = GroupByAgg(MakeTrips(), {"day"},
                        {{"city", AggFunc::kMin, "first_city"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out->column("first_city"))->type(), DataType::kString);
  EXPECT_EQ((*out->column("first_city"))->StringAt(0), "LA");  // day 0
}

TEST_F(GroupByTest, ReduceScalars) {
  auto fares = *Column::MakeDouble({1.0, 2.0, 3.0}, {}, &tracker_);
  EXPECT_DOUBLE_EQ((*Reduce(*fares, AggFunc::kSum)).double_value(), 6.0);
  EXPECT_DOUBLE_EQ((*Reduce(*fares, AggFunc::kMean)).double_value(), 2.0);
  EXPECT_EQ((*Reduce(*fares, AggFunc::kCount)).int_value(), 3);
  EXPECT_DOUBLE_EQ((*Reduce(*fares, AggFunc::kMin)).double_value(), 1.0);
  EXPECT_DOUBLE_EQ((*Reduce(*fares, AggFunc::kMax)).double_value(), 3.0);

  auto ints = *Column::MakeInt({4, 5}, {}, &tracker_);
  Scalar s = *Reduce(*ints, AggFunc::kSum);
  EXPECT_EQ(s.type(), DataType::kInt64);
  EXPECT_EQ(s.int_value(), 9);
}

TEST_F(GroupByTest, ReduceEdgeCases) {
  auto empty = *Column::MakeDouble({}, {}, &tracker_);
  EXPECT_TRUE((*Reduce(*empty, AggFunc::kMean)).is_null());
  EXPECT_DOUBLE_EQ((*Reduce(*empty, AggFunc::kSum)).double_value(), 0.0);
  EXPECT_TRUE((*Reduce(*empty, AggFunc::kMin)).is_null());

  auto strs = *Column::MakeString({"b", "a"}, {}, &tracker_);
  EXPECT_FALSE(Reduce(*strs, AggFunc::kMean).ok());
  EXPECT_EQ((*Reduce(*strs, AggFunc::kMin)).string_value(), "a");
  EXPECT_EQ((*Reduce(*strs, AggFunc::kNunique)).int_value(), 2);

  auto with_nan =
      *Column::MakeDouble({1.0, std::nan(""), 3.0}, {}, &tracker_);
  EXPECT_DOUBLE_EQ((*Reduce(*with_nan, AggFunc::kMean)).double_value(), 2.0);
}

TEST_F(GroupByTest, DropDuplicatesSubsetAndAll) {
  auto frame = MakeTrips();
  auto by_city = DropDuplicates(frame, {"city"});
  ASSERT_TRUE(by_city.ok());
  EXPECT_EQ(by_city->num_rows(), 3u);  // NY, SF, LA first occurrences
  EXPECT_EQ((*by_city->column("pax"))->IntAt(0), 1);

  auto all_cols = DropDuplicates(frame, {});
  ASSERT_TRUE(all_cols.ok());
  EXPECT_EQ(all_cols->num_rows(), 6u);  // all rows distinct
  EXPECT_FALSE(DropDuplicates(frame, {"ghost"}).ok());
}

TEST_F(GroupByTest, UniquePreservesFirstAppearance) {
  auto col = *Column::MakeString({"b", "a", "b", "c"}, {}, &tracker_);
  auto u = Unique(*col);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ((*u)->size(), 3u);
  EXPECT_EQ((*u)->StringAt(0), "b");
  EXPECT_EQ((*u)->StringAt(1), "a");
  EXPECT_EQ((*u)->StringAt(2), "c");
}

TEST_F(GroupByTest, ValueCountsSortedDescending) {
  auto col = *Column::MakeString({"a", "b", "a", "c", "a", "b"}, {},
                                 &tracker_);
  auto vc = ValueCounts(*col, "val");
  ASSERT_TRUE(vc.ok());
  EXPECT_EQ(vc->names(), (std::vector<std::string>{"val", "count"}));
  EXPECT_EQ((*vc->column("val"))->StringAt(0), "a");
  EXPECT_EQ((*vc->column("count"))->IntAt(0), 3);
  EXPECT_EQ((*vc->column("count"))->IntAt(1), 2);
  EXPECT_EQ((*vc->column("count"))->IntAt(2), 1);
}

TEST_F(GroupByTest, ValueCountsDropsNulls) {
  auto col = *Column::MakeInt({1, 1, 2}, {1, 0, 1}, &tracker_);
  auto vc = ValueCounts(*col, "v");
  ASSERT_TRUE(vc.ok());
  EXPECT_EQ(vc->num_rows(), 2u);
}

TEST_F(GroupByTest, DescribeSummarizesNumericColumns) {
  auto d = Describe(MakeTrips());
  ASSERT_TRUE(d.ok());
  // stat + day + pax + fare (city excluded: not numeric).
  EXPECT_EQ(d->num_columns(), 4u);
  EXPECT_EQ(d->num_rows(), 5u);
  EXPECT_EQ((*d->column("stat"))->StringAt(0), "count");
  EXPECT_DOUBLE_EQ((*d->column("fare"))->DoubleAt(0), 6.0);   // count
  EXPECT_DOUBLE_EQ((*d->column("fare"))->DoubleAt(1), 35.0);  // mean
  EXPECT_DOUBLE_EQ((*d->column("fare"))->DoubleAt(3), 10.0);  // min
  EXPECT_DOUBLE_EQ((*d->column("fare"))->DoubleAt(4), 60.0);  // max
}

}  // namespace
}  // namespace lafp::df
