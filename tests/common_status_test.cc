#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace lafp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::KeyError("no column 'foo'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kKeyError);
  EXPECT_EQ(st.message(), "no column 'foo'");
  EXPECT_TRUE(st.IsKeyError());
  EXPECT_EQ(st.ToString(), "key error: no column 'foo'");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_FALSE(Status::Invalid("x").IsOutOfMemory());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::IOError("disk gone");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kIOError);
  EXPECT_EQ(copy.message(), "disk gone");
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::Invalid("bad arg").WithContext("ReadCsv");
  EXPECT_EQ(st.message(), "ReadCsv: bad arg");
  EXPECT_EQ(st.code(), StatusCode::kInvalid);
  EXPECT_TRUE(Status::OK().WithContext("nope").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::Invalid("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int v) {
  LAFP_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalid);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::Invalid("odd");
  return v / 2;
}

Result<int> QuarterDivisibleBy4(int v) {
  LAFP_ASSIGN_OR_RETURN(int half, HalveEven(v));
  LAFP_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = HalveEven(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorRoundTrip) {
  Result<int> r = HalveEven(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalid);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterDivisibleBy4(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterDivisibleBy4(6).ok());  // fails at second halving
  EXPECT_FALSE(QuarterDivisibleBy4(3).ok());  // fails at first halving
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace lafp
