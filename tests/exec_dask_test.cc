#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exec/dask_backend.h"

namespace lafp::exec {
namespace {

using df::AggFunc;
using df::Scalar;

class DaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "dask_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/big.csv";
    std::ofstream out(csv_path_);
    out << "id,v,grp\n";
    for (int i = 0; i < 10000; ++i) {
      out << i << "," << (i % 100) << "," << (i % 5) << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Backend> MakeDask(MemoryTracker* tracker,
                                    size_t partition_rows = 1000) {
    BackendConfig config;
    config.partition_rows = partition_rows;
    // Single-partition residency so the budget assertions below measure
    // the streaming pipeline itself, not the worker prefetch window.
    config.prefetch_partitions = 1;
    config.spill_dir = dir_ + "/spill";
    return MakeBackend(BackendKind::kDask, tracker, config);
  }

  Result<BackendValue> Read(Backend* backend) {
    OpDesc desc;
    desc.kind = OpKind::kReadCsv;
    desc.path = csv_path_;
    return backend->Execute(desc, {});
  }

  std::string dir_, csv_path_;
};

TEST_F(DaskTest, ExecuteIsLazy) {
  MemoryTracker tracker(0);
  auto backend = MakeDask(&tracker);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  // No data has been read yet: plan building must not touch the tracker.
  EXPECT_EQ(tracker.current(), 0);
  EXPECT_EQ(tracker.peak(), 0);
}

TEST_F(DaskTest, StreamingAggregationStaysUnderBudget) {
  // Full dataset is ~10k rows * 3 cols * 8B = 240KB in memory; a 64KB
  // budget only works if the reduction streams partition-by-partition.
  MemoryTracker tracker(64 * 1024);
  auto backend = MakeDask(&tracker, 500);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  OpDesc get;
  get.kind = OpKind::kGetColumn;
  get.column = "v";
  auto col = backend->Execute(get, {*frame});
  ASSERT_TRUE(col.ok());
  OpDesc red;
  red.kind = OpKind::kReduce;
  red.agg_func = AggFunc::kSum;
  auto total = backend->Execute(red, {*col});
  ASSERT_TRUE(total.ok());
  auto eager = backend->Materialize(*total);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->scalar.int_value(), 100 * (99 * 100 / 2));
  EXPECT_LE(tracker.peak(), 64 * 1024);
}

TEST_F(DaskTest, FullMaterializationCanOom) {
  MemoryTracker tracker(64 * 1024);
  auto backend = MakeDask(&tracker, 500);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  auto eager = backend->Materialize(*frame);
  EXPECT_TRUE(eager.status().IsOutOfMemory());
}

TEST_F(DaskTest, RecomputesWithoutPersist) {
  MemoryTracker tracker(0);
  auto backend = MakeDask(&tracker, 1000);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  OpDesc gb;
  gb.kind = OpKind::kGroupByAgg;
  gb.columns = {"grp"};
  gb.aggs = {{"v", AggFunc::kSum, "s"}};
  auto grouped = backend->Execute(gb, {*frame});
  ASSERT_TRUE(grouped.ok());
  auto first = backend->Materialize(*grouped);
  auto second = backend->Materialize(*grouped);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->frame.CanonicalString(true),
            second->frame.CanonicalString(true));
}

TEST_F(DaskTest, PersistCachesAcrossMaterializations) {
  MemoryTracker tracker(0);
  auto backend = MakeDask(&tracker, 1000);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(backend->Persist(*frame).ok());
  auto first = backend->Materialize(*frame);
  ASSERT_TRUE(first.ok());
  // Persisted partitions stay resident: tracker holds ~dataset size even
  // after the materialized copy goes away.
  int64_t resident = tracker.current();
  EXPECT_GT(resident, 0);
  auto second = backend->Materialize(*frame);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->frame.CanonicalString(true),
            second->frame.CanonicalString(true));
  ASSERT_TRUE(backend->Unpersist(*frame).ok());
}

TEST_F(DaskTest, PersistIncreasesMemoryFootprint) {
  MemoryTracker plain_tracker(0);
  {
    auto backend = MakeDask(&plain_tracker, 1000);
    auto frame = Read(backend.get());
    OpDesc gb;
    gb.kind = OpKind::kGroupByAgg;
    gb.columns = {"grp"};
    gb.aggs = {{"v", AggFunc::kSum, "s"}};
    auto grouped = backend->Execute(gb, {*frame});
    ASSERT_TRUE(backend->Materialize(*grouped).ok());
  }
  MemoryTracker persist_tracker(0);
  {
    auto backend = MakeDask(&persist_tracker, 1000);
    auto frame = Read(backend.get());
    ASSERT_TRUE(backend->Persist(*frame).ok());
    OpDesc gb;
    gb.kind = OpKind::kGroupByAgg;
    gb.columns = {"grp"};
    gb.aggs = {{"v", AggFunc::kSum, "s"}};
    auto grouped = backend->Execute(gb, {*frame});
    ASSERT_TRUE(backend->Materialize(*grouped).ok());
  }
  // Persisting the base frame keeps the whole dataset resident (the
  // paper's stu 2.3x memory increase); streaming alone stays far lower.
  EXPECT_GT(persist_tracker.peak(), 2 * plain_tracker.peak());
}

TEST_F(DaskTest, SpillPersistedExtensionBoundsMemory) {
  MemoryTracker tracker(0);
  BackendConfig config;
  config.partition_rows = 1000;
  config.spill_dir = dir_ + "/spill";
  config.spill_persisted = true;
  auto backend = MakeBackend(BackendKind::kDask, &tracker, config);
  auto frame = Read(backend.get());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(backend->Persist(*frame).ok());
  OpDesc gb;
  gb.kind = OpKind::kGroupByAgg;
  gb.columns = {"grp"};
  gb.aggs = {{"v", AggFunc::kSum, "s"}};
  auto grouped = backend->Execute(gb, {*frame});
  ASSERT_TRUE(grouped.ok());
  auto out = backend->Materialize(*grouped);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // After materialize, persisted partitions live on disk, not in memory.
  EXPECT_LT(tracker.current(), 100 * 1024);
  // And the cache is reusable.
  auto again = backend->Materialize(*grouped);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(out->frame.CanonicalString(true),
            again->frame.CanonicalString(true));
}

TEST_F(DaskTest, SharedNodeEvaluatedOncePerMaterialize) {
  // mask and frame share the read; fusion must evaluate the read once per
  // partition (this is a correctness smoke test: results must match the
  // eager reference).
  MemoryTracker tracker(0);
  auto backend = MakeDask(&tracker, 700);
  auto frame = Read(backend.get());
  OpDesc get;
  get.kind = OpKind::kGetColumn;
  get.column = "v";
  auto v = backend->Execute(get, {*frame});
  OpDesc cmp;
  cmp.kind = OpKind::kCompare;
  cmp.compare_op = df::CompareOp::kLt;
  cmp.has_scalar = true;
  cmp.scalar = Scalar::Int(10);
  auto mask = backend->Execute(cmp, {*v});
  OpDesc filter;
  filter.kind = OpKind::kFilter;
  auto filtered = backend->Execute(filter, {*frame, *mask});
  ASSERT_TRUE(filtered.ok());
  OpDesc len;
  len.kind = OpKind::kLen;
  auto n = backend->Execute(len, {*filtered});
  auto eager = backend->Materialize(*n);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->scalar.int_value(), 1000);  // v in 0..9 of 0..99
}

TEST_F(DaskTest, ScalarFeedsBackIntoPlan) {
  // df[df.v > df.v.mean()] — the reduce result is consumed inside a zone.
  MemoryTracker tracker(0);
  auto backend = MakeDask(&tracker, 1000);
  auto frame = Read(backend.get());
  OpDesc get;
  get.kind = OpKind::kGetColumn;
  get.column = "v";
  auto v = backend->Execute(get, {*frame});
  OpDesc red;
  red.kind = OpKind::kReduce;
  red.agg_func = AggFunc::kMean;
  auto mean = backend->Execute(red, {*v});
  OpDesc cmp;
  cmp.kind = OpKind::kCompare;
  cmp.compare_op = df::CompareOp::kGt;
  auto mask = backend->Execute(cmp, {*v, *mean});
  OpDesc filter;
  filter.kind = OpKind::kFilter;
  auto filtered = backend->Execute(filter, {*frame, *mask});
  OpDesc len;
  len.kind = OpKind::kLen;
  auto n = backend->Execute(len, {*filtered});
  auto eager = backend->Materialize(*n);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  // mean of v (0..99 uniform) = 49.5; values 50..99 = half the rows.
  EXPECT_EQ(eager->scalar.int_value(), 5000);
}

TEST_F(DaskTest, HeadStopsEarly) {
  MemoryTracker tracker(48 * 1024);
  auto backend = MakeDask(&tracker, 200);
  auto frame = Read(backend.get());
  OpDesc head;
  head.kind = OpKind::kHead;
  head.n = 5;
  auto h = backend->Execute(head, {*frame});
  ASSERT_TRUE(h.ok());
  auto eager = backend->Materialize(*h);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 5u);
  // Early exit: head under a small budget must succeed (no full scan into
  // memory).
  EXPECT_LE(tracker.peak(), 48 * 1024);
}

}  // namespace
}  // namespace lafp::exec
