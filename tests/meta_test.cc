#include "meta/metadata.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

namespace lafp::meta {
namespace {

class MetaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "meta_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/data.csv";
    std::ofstream out(csv_path_);
    out << "id,fare,city,when\n";
    for (int i = 0; i < 100; ++i) {
      out << i << "," << (i * 0.5) << ","
          << (i % 3 == 0 ? "NY" : (i % 3 == 1 ? "SF" : "LA"))
          << ",2024-01-0" << (i % 9 + 1) << " 08:00:00\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::string csv_path_;
};

TEST_F(MetaTest, ComputeBasicStats) {
  auto md = ComputeFileMetadata(csv_path_);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->sample_rows, 100);
  EXPECT_NEAR(md->approx_rows, 100, 10);  // estimated from byte widths
  ASSERT_EQ(md->columns.size(), 4u);
  const ColumnMeta* id = md->FindColumn("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->type, df::DataType::kInt64);
  EXPECT_EQ(id->sample_distinct, 100);
  EXPECT_EQ(id->min_value, "0");
  EXPECT_EQ(id->max_value, "99");
  const ColumnMeta* city = md->FindColumn("city");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ(city->type, df::DataType::kString);
  EXPECT_EQ(city->sample_distinct, 3);
  const ColumnMeta* when = md->FindColumn("when");
  ASSERT_NE(when, nullptr);
  EXPECT_EQ(when->type, df::DataType::kTimestamp);
}

TEST_F(MetaTest, NumericRangeUsesNumericOrder) {
  // Lexicographic order would claim max(id)="99" > "100"; numeric must win.
  std::string p = dir_ + "/range.csv";
  std::ofstream out(p);
  out << "v\n9\n100\n25\n";
  out.close();
  auto md = ComputeFileMetadata(p);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->FindColumn("v")->min_value, "9");
  EXPECT_EQ(md->FindColumn("v")->max_value, "100");
}

TEST_F(MetaTest, SerializeDeserializeRoundTrip) {
  auto md = ComputeFileMetadata(csv_path_);
  ASSERT_TRUE(md.ok());
  auto back = FileMetadata::Deserialize(md->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->path, md->path);
  EXPECT_EQ(back->modified_time, md->modified_time);
  EXPECT_EQ(back->approx_rows, md->approx_rows);
  ASSERT_EQ(back->columns.size(), md->columns.size());
  for (size_t i = 0; i < md->columns.size(); ++i) {
    EXPECT_EQ(back->columns[i].name, md->columns[i].name);
    EXPECT_EQ(back->columns[i].type, md->columns[i].type);
    EXPECT_EQ(back->columns[i].sample_distinct,
              md->columns[i].sample_distinct);
  }
}

TEST_F(MetaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FileMetadata::Deserialize("not key value").ok());
  EXPECT_FALSE(FileMetadata::Deserialize("path=x\n").ok());  // missing keys
}

TEST_F(MetaTest, CategoryCandidatesLowCardinalityStringsOnly) {
  auto md = ComputeFileMetadata(csv_path_);
  ASSERT_TRUE(md.ok());
  auto candidates = md->CategoryCandidates(10);
  EXPECT_EQ(candidates, std::vector<std::string>{"city"});
  // id has 100 distinct ints; city is the only low-card string.
  EXPECT_TRUE(md->CategoryCandidates(2).empty());
}

TEST_F(MetaTest, DtypeHintsRespectReadOnlySafety) {
  auto md = ComputeFileMetadata(csv_path_);
  ASSERT_TRUE(md.ok());
  // city read-only -> category.
  auto hints = md->DtypeHints({"city"}, 10);
  EXPECT_EQ(hints.at("city"), df::DataType::kCategory);
  EXPECT_EQ(hints.at("id"), df::DataType::kInt64);
  // city written by the program -> stays string (paper's safety rule).
  auto unsafe = md->DtypeHints({}, 10);
  EXPECT_EQ(unsafe.at("city"), df::DataType::kString);
}

TEST_F(MetaTest, EstimateMemoryScalesWithSelection) {
  auto md = ComputeFileMetadata(csv_path_);
  ASSERT_TRUE(md.ok());
  int64_t all = md->EstimateMemoryBytes({});
  int64_t just_id = md->EstimateMemoryBytes({"id"});
  EXPECT_GT(all, just_id);
  EXPECT_GT(just_id, 0);
}

TEST_F(MetaTest, StoreRoundTripAndFreshness) {
  MetaStore store(dir_ + "/metastore");
  auto miss = store.Lookup(csv_path_);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->has_value());

  auto computed = store.ComputeAndStore(csv_path_);
  ASSERT_TRUE(computed.ok());
  auto hit = store.Lookup(csv_path_);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((*hit)->approx_rows, computed->approx_rows);
}

TEST_F(MetaTest, StaleMetadataIgnoredAfterFileUpdate) {
  MetaStore store(dir_ + "/metastore");
  ASSERT_TRUE(store.ComputeAndStore(csv_path_).ok());
  // Touch the dataset with a strictly newer mtime.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  {
    std::ofstream out(csv_path_, std::ios::app);
    out << "101,1.0,NY,2024-01-01 00:00:00\n";
  }
  auto stale = store.Lookup(csv_path_);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->has_value());  // refused

  auto refreshed = store.GetOrCompute(csv_path_);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->sample_rows, 101);
}

TEST_F(MetaTest, GetOrComputeCaches) {
  MetaStore store(dir_ + "/metastore");
  auto first = store.GetOrCompute(csv_path_);
  ASSERT_TRUE(first.ok());
  auto second = store.GetOrCompute(csv_path_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Serialize(), second->Serialize());
}

TEST_F(MetaTest, DistinctPathsDoNotCollideInStore) {
  std::string other_dir = dir_ + "/other";
  std::filesystem::create_directories(other_dir);
  std::string other_csv = other_dir + "/data.csv";  // same basename
  {
    std::ofstream out(other_csv);
    out << "x\n1\n";
  }
  MetaStore store(dir_ + "/metastore");
  ASSERT_TRUE(store.ComputeAndStore(csv_path_).ok());
  ASSERT_TRUE(store.ComputeAndStore(other_csv).ok());
  auto a = store.Lookup(csv_path_);
  auto b = store.Lookup(other_csv);
  ASSERT_TRUE(a.ok() && a->has_value());
  ASSERT_TRUE(b.ok() && b->has_value());
  EXPECT_EQ((*a)->columns.size(), 4u);
  EXPECT_EQ((*b)->columns.size(), 1u);
}

TEST_F(MetaTest, MissingFileFails) {
  EXPECT_FALSE(ComputeFileMetadata("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace lafp::meta
