// Session edge cases: flush semantics, print re-emission guards, mode
// interactions, and compute on already-computed nodes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "lazy/fat_dataframe.h"

namespace lafp::lazy {
namespace {

using df::AggFunc;
using df::Scalar;
using exec::BackendKind;

class SessionEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "session_edge_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/d.csv";
    std::ofstream out(csv_path_);
    out << "a,b\n";
    for (int i = 0; i < 50; ++i) out << i << "," << i % 5 << "\n";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Session> MakeSession(BackendKind backend,
                                       ExecutionMode mode,
                                       bool lazy_print = true) {
    SessionOptions opts;
    opts.backend = backend;
    opts.mode = mode;
    opts.lazy_print = lazy_print;
    opts.output = &output_;
    opts.tracker = &tracker_;
    return std::make_unique<Session>(opts);
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
  std::stringstream output_;
};

TEST_F(SessionEdgeTest, FlushWithNothingPendingIsANoOp) {
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  EXPECT_TRUE(session->Flush().ok());
  EXPECT_TRUE(session->Flush().ok());
  EXPECT_EQ(output_.str(), "");
}

TEST_F(SessionEdgeTest, DoubleFlushDoesNotReprint) {
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  ASSERT_TRUE(
      session->Print({Session::PrintArg::Literal("once")}).ok());
  ASSERT_TRUE(session->Flush().ok());
  ASSERT_TRUE(session->Flush().ok());
  EXPECT_EQ(output_.str(), "once\n");
}

TEST_F(SessionEdgeTest, PrintAfterFlushStartsANewChain) {
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  ASSERT_TRUE(session->Print({Session::PrintArg::Literal("first")}).ok());
  ASSERT_TRUE(session->Flush().ok());
  ASSERT_TRUE(session->Print({Session::PrintArg::Literal("second")}).ok());
  ASSERT_TRUE(session->Flush().ok());
  EXPECT_EQ(output_.str(), "first\nsecond\n");
}

TEST_F(SessionEdgeTest, ComputeTwiceReusesKeptResult) {
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  auto frame = *FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto grouped = *frame.GroupByAgg({"b"}, {{"a", AggFunc::kSum, "s"}});
  auto first = grouped.Compute();
  ASSERT_TRUE(first.ok());
  int64_t execs = session->num_node_executions();
  auto second = grouped.Compute();
  ASSERT_TRUE(second.ok());
  // The round target kept its result: nothing re-executed.
  EXPECT_EQ(session->num_node_executions(), execs);
  EXPECT_EQ(first->frame.CanonicalString(true),
            second->frame.CanonicalString(true));
}

TEST_F(SessionEdgeTest, DaskComputeRetainsMaterializedValue) {
  auto session = MakeSession(BackendKind::kDask, ExecutionMode::kLazy);
  auto frame = *FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto grouped = *frame.GroupByAgg({"b"}, {{"a", AggFunc::kSum, "s"}});
  ASSERT_TRUE(grouped.Compute().ok());
  // After an explicit compute the node holds a concrete value (pandas
  // compute() semantics): its footprint is resident.
  EXPECT_GT(tracker_.current(), 0);
  auto again = grouped.Compute();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->frame.num_rows(), 5u);
}

TEST_F(SessionEdgeTest, EagerModeWithLazyPrintFlagStillPrintsEagerly) {
  // lazy_print only applies to lazy mode; eager sessions print at once.
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kEager,
                             /*lazy_print=*/true);
  auto frame = *FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto n = *frame.Len();
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("n="),
                           Session::PrintArg::Value(n.node())})
                  .ok());
  EXPECT_NE(output_.str().find("n=50"), std::string::npos);
}

TEST_F(SessionEdgeTest, MixedLiteralAndValuePrintSegments) {
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  auto frame = *FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto lo = *frame.Col("a")->Min();
  auto hi = *frame.Col("a")->Max();
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("range ["),
                           Session::PrintArg::Value(lo.node()),
                           Session::PrintArg::Literal(", "),
                           Session::PrintArg::Value(hi.node()),
                           Session::PrintArg::Literal("]")})
                  .ok());
  ASSERT_TRUE(session->Flush().ok());
  EXPECT_EQ(output_.str(), "range [0, 49]\n");
}

TEST_F(SessionEdgeTest, ComputeOnEmptyHandleFails) {
  FatDataFrame empty;
  EXPECT_FALSE(empty.Compute().ok());
  LazyScalar no_scalar;
  EXPECT_FALSE(no_scalar.Value().ok());
}

TEST_F(SessionEdgeTest, FailedOptimizerRoundRefreshesReport) {
  auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(df->Compute().ok());
  const int64_t rounds_before = session->num_rounds();
  ASSERT_GT(session->last_report().nodes_executed, 0);

  session->ClearOptimizerPasses();
  session->RegisterOptimizerPass(MakeFunctionPass(
      "custom-hook",
      [](Session*, const std::vector<TaskNodePtr>&,
         const std::vector<TaskNodePtr>&) {
        return Status::Invalid("pass exploded");
      }));
  auto head = df->Head(3);
  ASSERT_TRUE(head.ok());
  EXPECT_FALSE(head->Compute().ok());

  // The failed round must be recorded: a stale report from the previous
  // (successful) round would make callers read its stats as this round's.
  EXPECT_EQ(session->num_rounds(), rounds_before + 1);
  const ExecutionReport& report = session->last_report();
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_EQ(report.passes[0].name, "custom-hook");
  EXPECT_EQ(report.nodes_executed, 0);
}

TEST_F(SessionEdgeTest, CrossSessionOperandsRejected) {
  auto s1 = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
  std::stringstream other_out;
  SessionOptions opts;
  opts.output = &other_out;
  Session s2(opts);
  auto a = *FatDataFrame::ReadCsv(s1.get(), csv_path_);
  auto b = *FatDataFrame::ReadCsv(&s2, csv_path_);
  EXPECT_FALSE(a.Merge(b, {"a"}, df::JoinType::kInner).ok());
  EXPECT_FALSE(FatDataFrame::Concat(s1.get(), {a, b}).ok());
}

// ---- graceful degradation (the §4.3/§5.2 fallback zone) ----

TEST_F(SessionEdgeTest, BackendFaultFallsBackToEagerWithIdenticalOutput) {
  // Baseline run, no faults.
  std::string expected;
  {
    auto session = MakeSession(BackendKind::kPandas, ExecutionMode::kLazy);
    auto frame = *FatDataFrame::ReadCsv(session.get(), csv_path_);
    auto head = *frame.Head(7);
    ASSERT_TRUE(session->Print({Session::PrintArg::Value(head.node())}).ok());
    ASSERT_TRUE(session->Flush().ok());
    expected = output_.str();
    output_.str("");
  }
  ASSERT_FALSE(expected.empty());
  // Same program with an injected single-shot failure inside the second
  // native Execute: graceful fallback retries that node on the eager
  // Pandas path and the round succeeds with identical output.
  SessionOptions opts = SessionOptions::Builder()
                            .backend(BackendKind::kPandas)
                            .mode(ExecutionMode::kLazy)
                            .output(&output_)
                            .tracker(&tracker_)
                            .faults("backend.execute:nth=2,code=exec")
                            .Build();
  Session session(opts);
  auto frame = *FatDataFrame::ReadCsv(&session, csv_path_);
  auto head = *frame.Head(7);
  ASSERT_TRUE(session.Print({Session::PrintArg::Value(head.node())}).ok());
  Status flushed = session.Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_EQ(output_.str(), expected);
  // The report shows which node degraded.
  bool saw_fallback = false;
  for (const auto& n : session.last_report().nodes) {
    saw_fallback |= n.fallback;
  }
  EXPECT_TRUE(saw_fallback);
}

TEST_F(SessionEdgeTest, FallbackDisabledSurfacesBackendFault) {
  Session session(SessionOptions::Builder()
                      .backend(BackendKind::kPandas)
                      .mode(ExecutionMode::kLazy)
                      .output(&output_)
                      .tracker(&tracker_)
                      .graceful_fallback(false)
                      .faults("backend.execute:nth=1,code=exec")
                      .Build());
  auto frame = *FatDataFrame::ReadCsv(&session, csv_path_);
  auto eager = frame.Compute();
  ASSERT_FALSE(eager.ok());
  EXPECT_TRUE(eager.status().IsExecutionError()) << eager.status().ToString();
}

TEST_F(SessionEdgeTest, OutOfMemoryFaultNeverFallsBack) {
  // OOM is a program/budget error, not a backend limitation: graceful
  // fallback must not mask it (Fig. 12 semantics depend on it surfacing).
  Session session(SessionOptions::Builder()
                      .backend(BackendKind::kPandas)
                      .mode(ExecutionMode::kLazy)
                      .output(&output_)
                      .tracker(&tracker_)
                      .faults("backend.execute:nth=1,code=oom")
                      .Build());
  auto frame = *FatDataFrame::ReadCsv(&session, csv_path_);
  auto eager = frame.Compute();
  ASSERT_FALSE(eager.ok());
  EXPECT_TRUE(eager.status().IsOutOfMemory()) << eager.status().ToString();
}

TEST_F(SessionEdgeTest, MalformedFaultConfigFailsFirstRound) {
  Session session(SessionOptions::Builder()
                      .backend(BackendKind::kPandas)
                      .mode(ExecutionMode::kLazy)
                      .output(&output_)
                      .tracker(&tracker_)
                      .faults("not a valid spec")
                      .Build());
  auto frame = *FatDataFrame::ReadCsv(&session, csv_path_);
  auto eager = frame.Compute();
  ASSERT_FALSE(eager.ok());
  EXPECT_TRUE(eager.status().IsInvalid()) << eager.status().ToString();
}

TEST_F(SessionEdgeTest, SpillFaultRetriesOnFallbackDirectory) {
  // A Dask round that spills every collected partition: the first spill
  // write fails (injected ENOSPC), the retry lands in the fallback
  // directory, and the round completes with correct results.
  const std::string primary = dir_ + "/spill_primary";
  const std::string fallback = dir_ + "/spill_fallback";
  SessionOptions opts = SessionOptions::Builder()
                            .backend(BackendKind::kDask)
                            .mode(ExecutionMode::kLazy)
                            .output(&output_)
                            .tracker(&tracker_)
                            .partition_rows(16)
                            .spill_dir(primary)
                            .spill_fallback_dir(fallback)
                            .faults("spill.write:nth=1")
                            .Build();
  opts.backend_config.spill_persisted = true;
  Session session(opts);
  auto frame = *FatDataFrame::ReadCsv(&session, csv_path_);
  frame.node()->persist = true;  // force the persist-collect spill loop
  auto eager = frame.Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 50u);
  // The failed write was retried on the fallback dir; at least one spill
  // file exists there and no partial file survives in the primary.
  bool fallback_used = std::filesystem::exists(fallback) &&
                       !std::filesystem::is_empty(fallback);
  EXPECT_TRUE(fallback_used);
}

}  // namespace
}  // namespace lafp::lazy
