#include "common/string_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace lafp {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(CaseTest, ToLower) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToLower("123"), "123");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("read_csv", "read"));
  EXPECT_FALSE(StartsWith("read", "read_csv"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "file.csv"));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" -7 "), -7);
  EXPECT_EQ(ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_FALSE(ParseInt64("4.2").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // overflow
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("4.25"), 4.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("7"), 7.0);
  EXPECT_FALSE(ParseDouble("4.2.5").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
}

TEST(IsBlankTest, Blank) {
  EXPECT_TRUE(IsBlank(""));
  EXPECT_TRUE(IsBlank("  \t"));
  EXPECT_FALSE(IsBlank(" x "));
}

TEST(FormatDoubleTest, IntegerValuedKeepsPointZero) {
  EXPECT_EQ(FormatDouble(3.0), "3.0");
  EXPECT_EQ(FormatDouble(-2.0), "-2.0");
  EXPECT_EQ(FormatDouble(0.0), "0.0");
}

TEST(FormatDoubleTest, FractionsTrimTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(1.0 / 3.0), "0.333333");
}

TEST(FormatDoubleTest, SpecialValues) {
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace lafp
