#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <unordered_set>

#include "lazy/fat_dataframe.h"
#include "lazy/scheduler.h"
#include "optimizer/passes.h"

namespace lafp::lazy {
namespace {

using df::AggFunc;
using df::CompareOp;
using df::Scalar;
using exec::BackendKind;

class LazySchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "lazy_sched_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/data.csv";
    std::ofstream out(csv_path_);
    out << "fare,day,passengers\n";
    for (int i = 0; i < 500; ++i) {
      out << (i % 40) - 5 << "." << (i % 10) << "," << (i % 7) << ","
          << (i % 5 + 1) << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Session> MakeSession(int threads,
                                       std::stringstream* output,
                                       BackendKind backend =
                                           BackendKind::kPandas) {
    return std::make_unique<Session>(SessionOptions::Builder()
                                         .backend(backend)
                                         .threads(threads)
                                         .output(output)
                                         .tracker(&tracker_)
                                         .Build());
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
};

// (a) A diamond-shaped graph — one shared source feeding two branches that
// rejoin — must execute every node exactly once under parallelism.
TEST_F(LazySchedulerTest, DiamondExecutesSharedNodeOnce) {
  std::stringstream output;
  auto session = MakeSession(4, &output);
  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  auto left = df->Head(10);
  ASSERT_TRUE(left.ok());
  auto right = df->Head(20);
  ASSERT_TRUE(right.ok());
  auto joined = FatDataFrame::Concat(session.get(), {*left, *right});
  ASSERT_TRUE(joined.ok());
  auto eager = joined->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 30u);
  // read + head + head + concat: the shared read ran exactly once.
  EXPECT_EQ(session->num_node_executions(), 4);

  const ExecutionReport& report = session->last_report();
  EXPECT_TRUE(report.parallel);
  EXPECT_EQ(report.num_threads, 4);
  EXPECT_EQ(report.nodes_executed, 4);
  // Per-node stats are sorted and unique by node id.
  ASSERT_EQ(report.nodes.size(), 4u);
  for (size_t i = 1; i < report.nodes.size(); ++i) {
    EXPECT_LT(report.nodes[i - 1].node_id, report.nodes[i].node_id);
  }
  // The concat node saw 30 input rows and produced 30.
  const NodeStats& concat = report.nodes.back();
  EXPECT_EQ(concat.rows_in, 30);
  EXPECT_EQ(concat.rows_out, 30);
}

// (b) Lazy prints must emit in program order regardless of how many
// scheduler workers execute the (independent) chains feeding them.
TEST_F(LazySchedulerTest, LazyPrintOrderMatchesSerial) {
  auto build_and_flush = [&](int threads, std::stringstream* output) {
    auto session = MakeSession(threads, output);
    for (int chain = 0; chain < 6; ++chain) {
      auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
      ASSERT_TRUE(df.ok());
      auto fare = df->Col("fare");
      auto mask =
          fare->CompareTo(CompareOp::kGt, Scalar::Double(chain * 2.0));
      auto filtered = df->FilterBy(*mask);
      auto grouped = filtered->GroupByAgg(
          {"day"}, {{"passengers", AggFunc::kSum, "passengers"}});
      ASSERT_TRUE(grouped.ok());
      auto sorted = grouped->SortValues({"day"}, {true});
      ASSERT_TRUE(sorted.ok());
      ASSERT_TRUE(session
                      ->Print({Session::PrintArg::Literal(
                                   "chain " + std::to_string(chain) + ":"),
                               Session::PrintArg::Value(sorted->node())})
                      .ok());
      auto len = filtered->Len();
      ASSERT_TRUE(len.ok());
      ASSERT_TRUE(session
                      ->Print({Session::PrintArg::Literal("len: "),
                               Session::PrintArg::Value(len->node())})
                      .ok());
    }
    ASSERT_TRUE(session->Flush().ok());
    EXPECT_EQ(session->last_report().prints_emitted, 12);
  };

  std::stringstream serial_out, parallel_out;
  build_and_flush(1, &serial_out);
  build_and_flush(4, &parallel_out);
  EXPECT_FALSE(serial_out.str().empty());
  EXPECT_EQ(serial_out.str(), parallel_out.str());
}

// (c) Randomized wide graphs: many chains of random ops, flushed together,
// must produce byte-identical output and identical execution counts under
// num_threads ∈ {1, 4}.
TEST_F(LazySchedulerTest, RandomizedWideGraphMatchesSerialReference) {
  for (uint32_t seed : {7u, 21u, 99u}) {
    auto run = [&](int threads, std::stringstream* output,
                   ExecutionReport* report) {
      std::mt19937 rng(seed);
      auto session = MakeSession(threads, output);
      int chains = 8 + static_cast<int>(rng() % 5);
      for (int c = 0; c < chains; ++c) {
        auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
        ASSERT_TRUE(df.ok());
        FatDataFrame cur = *df;
        // After a groupby the frame's columns become {day, p}; the
        // generator tracks that so every program is valid.
        bool aggregated = false;
        int depth = 1 + static_cast<int>(rng() % 4);
        for (int d = 0; d < depth; ++d) {
          switch (rng() % 4) {
            case 0: {
              auto col = cur.Col(aggregated ? "day" : "fare");
              ASSERT_TRUE(col.ok());
              double threshold =
                  aggregated ? static_cast<double>(rng() % 5)
                             : static_cast<double>(rng() % 20) - 5.0;
              auto mask =
                  col->CompareTo(CompareOp::kGt, Scalar::Double(threshold));
              ASSERT_TRUE(mask.ok());
              auto next = cur.FilterBy(*mask);
              ASSERT_TRUE(next.ok());
              cur = *next;
              break;
            }
            case 1: {
              auto next = cur.Head(10 + rng() % 200);
              ASSERT_TRUE(next.ok());
              cur = *next;
              break;
            }
            case 2: {
              auto next = cur.SortValues({aggregated ? "day" : "fare"},
                                         {rng() % 2 == 0});
              ASSERT_TRUE(next.ok());
              cur = *next;
              break;
            }
            default: {
              auto next = cur.GroupByAgg(
                  {"day"},
                  {{aggregated ? "p" : "passengers", AggFunc::kSum, "p"}});
              ASSERT_TRUE(next.ok());
              auto sorted = next->SortValues({"day"}, {true});
              ASSERT_TRUE(sorted.ok());
              cur = *sorted;
              aggregated = true;
              break;
            }
          }
        }
        ASSERT_TRUE(session
                        ->Print({Session::PrintArg::Literal(
                                     "c" + std::to_string(c) + " "),
                                 Session::PrintArg::Value(cur.node())})
                        .ok());
      }
      ASSERT_TRUE(session->Flush().ok());
      *report = session->last_report();
    };

    std::stringstream serial_out, parallel_out;
    ExecutionReport serial_report, parallel_report;
    run(1, &serial_out, &serial_report);
    run(4, &parallel_out, &parallel_report);
    EXPECT_FALSE(serial_out.str().empty());
    EXPECT_EQ(serial_out.str(), parallel_out.str()) << "seed " << seed;
    EXPECT_EQ(serial_report.nodes_executed, parallel_report.nodes_executed)
        << "seed " << seed;
    EXPECT_EQ(serial_report.results_cleared, parallel_report.results_cleared)
        << "seed " << seed;
    EXPECT_EQ(serial_report.total_rows_out(),
              parallel_report.total_rows_out())
        << "seed " << seed;
    EXPECT_TRUE(parallel_report.parallel);
    EXPECT_FALSE(serial_report.parallel);
  }
}

// Errors from worker threads must surface as the round's status without
// hanging or executing dependents of the failed node.
TEST_F(LazySchedulerTest, ParallelErrorPropagates) {
  std::stringstream output;
  auto session = MakeSession(4, &output);
  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  auto bogus = df->Col("no_such_column");
  ASSERT_TRUE(bogus.ok());  // graph building is lazy; failure is at exec
  auto head = bogus->Head(3);
  ASSERT_TRUE(head.ok());
  auto eager = head->Compute();
  EXPECT_FALSE(eager.ok());
}

// The unified knob: Builder().threads(n) drives both the scheduler and
// the backend config; legacy aggregate init keeps working.
TEST_F(LazySchedulerTest, BuilderUnifiesThreadKnobs) {
  std::stringstream output;
  auto session = MakeSession(3, &output, BackendKind::kModin);
  EXPECT_EQ(session->options().exec.num_threads, 3);
  EXPECT_EQ(session->options().backend_config.num_threads, 3);

  // Legacy path: aggregate init with only the backend knob set.
  SessionOptions legacy;
  legacy.backend_config.num_threads = 2;
  legacy.output = &output;
  Session legacy_session(std::move(legacy));
  EXPECT_EQ(legacy_session.options().exec.num_threads, 2);
  EXPECT_EQ(legacy_session.options().backend_config.num_threads, 2);
}

// End-to-end intra-op parallelism: the builder knob reaches the backend
// config, kernel morsels engage (forced small via morsel_rows), results
// match a serial session byte-for-byte, and the report carries kernel
// counters.
TEST_F(LazySchedulerTest, IntraOpThreadsProduceIdenticalResultsAndStats) {
  auto run = [&](int intra_threads, size_t morsel_rows,
                 ExecutionReport* report) {
    std::stringstream output;
    auto session = std::make_unique<Session>(SessionOptions::Builder()
                                                 .threads(1)
                                                 .intra_op_threads(intra_threads)
                                                 .morsel_rows(morsel_rows)
                                                 .output(&output)
                                                 .tracker(&tracker_)
                                                 .Build());
    EXPECT_EQ(session->options().backend_config.intra_op_threads,
              intra_threads);
    EXPECT_EQ(session->options().backend_config.morsel_rows, morsel_rows);
    auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
    auto fare = *df->Col("fare");
    auto mask = *fare.CompareTo(CompareOp::kGt, Scalar::Double(0.0));
    auto filtered = *df->FilterBy(mask);
    auto grouped = *filtered.GroupByAgg(
        {"day"}, {{"fare", AggFunc::kSum, "total"},
                  {"fare", AggFunc::kMean, "avg"}});
    auto sorted = *grouped.SortValues({"day"}, {true});
    df::DataFrame result = *sorted.ToEager();
    if (report != nullptr) *report = session->last_report();
    std::ostringstream os;
    for (size_t c = 0; c < result.num_columns(); ++c) {
      const df::Column& col = *result.column(c);
      for (size_t i = 0; i < col.size(); ++i) {
        if (col.type() == df::DataType::kDouble) {
          uint64_t bits = 0;
          double v = col.DoubleAt(i);
          std::memcpy(&bits, &v, sizeof(bits));
          os << bits << ";";
        } else {
          os << (col.IsValid(i) ? std::to_string(col.IntAt(i)) : "_") << ";";
        }
      }
    }
    return os.str();
  };
  ExecutionReport serial_report, parallel_report;
  std::string serial = run(1, 64, &serial_report);
  std::string parallel = run(4, 64, &parallel_report);
  EXPECT_EQ(serial, parallel);  // bit-identical across thread counts
  // 500 rows at 64-row morsels => every kernel splits; counters flow
  // through NodeStats into the round report.
  EXPECT_GT(parallel_report.kernel_morsels, 0);
  EXPECT_GT(parallel_report.parallel_kernels, 0);
  EXPECT_EQ(serial_report.parallel_kernels, 0);  // no pool at 1 thread
  bool node_has_kernel_stats = false;
  for (const auto& n : parallel_report.nodes) {
    if (n.morsels > 0) node_has_kernel_stats = true;
  }
  EXPECT_TRUE(node_has_kernel_stats);
}

// Dask (lazy backend) rounds stay on the deterministic serial path even
// when the session asks for parallelism.
TEST_F(LazySchedulerTest, LazyBackendSchedulesSerially) {
  std::stringstream output;
  auto session = MakeSession(4, &output, BackendKind::kDask);
  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  auto head = df->Head(5);
  ASSERT_TRUE(head.ok());
  auto eager = head->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_FALSE(session->last_report().parallel);
  EXPECT_EQ(session->last_report().num_threads, 1);
}

// Named optimizer passes show up in the round report, in order, and the
// registry supports replacing the whole pipeline.
TEST_F(LazySchedulerTest, OptimizerPassRegistry) {
  std::stringstream output;
  auto session = MakeSession(2, &output);
  opt::InstallDefaultOptimizer(session.get());
  ASSERT_EQ(session->optimizer_passes().size(), 6u);

  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  auto a = df->Head(7);
  auto b = df->Head(7);  // structural duplicate; dedup should merge
  auto joined = FatDataFrame::Concat(session.get(), {*a, *b});
  ASSERT_TRUE(joined.ok());
  auto eager = joined->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  const ExecutionReport& report = session->last_report();
  ASSERT_EQ(report.passes.size(), 6u);
  EXPECT_EQ(report.passes[0].name, "dedup");
  EXPECT_EQ(report.passes[1].name, "redundant-elim");
  EXPECT_EQ(report.passes[2].name, "pushdown");
  EXPECT_EQ(report.passes[3].name, "zone-prune");
  EXPECT_EQ(report.passes[4].name, "fuse");
  EXPECT_EQ(report.passes[5].name, "dedup-final");
  // Dedup merged the duplicate head: read + head + concat only.
  EXPECT_EQ(report.nodes_executed, 3);

  // Clearing and registering a function pass replaces the pipeline.
  int hook_runs = 0;
  session->ClearOptimizerPasses();
  session->RegisterOptimizerPass(MakeFunctionPass(
      "custom-hook",
      [&hook_runs](Session*, const std::vector<TaskNodePtr>&,
                   const std::vector<TaskNodePtr>&) {
        ++hook_runs;
        return Status::OK();
      }));
  ASSERT_EQ(session->optimizer_passes().size(), 1u);
  EXPECT_EQ(session->optimizer_passes()[0]->name(), "custom-hook");
  auto head2 = df->Head(3);
  ASSERT_TRUE(head2.ok());
  ASSERT_TRUE(head2->Compute().ok());
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(session->last_report().passes.size(), 1u);

  session->ClearOptimizerPasses();
  EXPECT_TRUE(session->optimizer_passes().empty());
}

// Reused results are visible in the stats so tests can prove §3.5 reuse
// instead of inferring it from execution counts.
TEST_F(LazySchedulerTest, ReportMarksReusedNodes) {
  std::stringstream output;
  auto session = MakeSession(4, &output);
  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  auto head = df->Head(10);
  ASSERT_TRUE(head.ok());
  // First compute materializes; persist-marking via live set keeps the
  // head result alive for the second round.
  ASSERT_TRUE(head->Compute({*head}).ok());
  auto sorted = head->SortValues({"fare"}, {true});
  ASSERT_TRUE(sorted.ok());
  ASSERT_TRUE(sorted->Compute().ok());
  const ExecutionReport& report = session->last_report();
  EXPECT_GT(report.nodes_reused, 0);
  bool saw_reused = false;
  for (const auto& n : report.nodes) saw_reused |= n.reused;
  EXPECT_TRUE(saw_reused);
}

// ---- cooperative cancellation (drive the Scheduler directly) ----

/// Harness over a raw TaskGraph: every node "executes" by storing a
/// scalar; nodes listed in `bombs` fail instead. Execution order and
/// counts are observable through the atomic counter and per-node
/// `executed` flags.
class CancellationHarness {
 public:
  TaskNodePtr Node(std::vector<TaskNodePtr> inputs) {
    return graph_.NewNode(exec::OpDesc{}, std::move(inputs));
  }

  TaskNodePtr Chain(TaskNodePtr from, int length) {
    for (int i = 0; i < length; ++i) {
      from = Node(from == nullptr ? std::vector<TaskNodePtr>{}
                                  : std::vector<TaskNodePtr>{from});
    }
    return from;
  }

  void Arm(const TaskNodePtr& bomb) { bombs_.insert(bomb.get()); }

  Scheduler::Callbacks Callbacks() {
    Scheduler::Callbacks cb;
    cb.exec_node = [this](const TaskNodePtr& node, NodeStats*) -> Status {
      if (bombs_.count(node.get()) > 0) {
        return Status::ExecutionError("boom");
      }
      executions_.fetch_add(1);
      node->result = exec::BackendValue::FromScalar(df::Scalar::Int(1));
      node->executed = true;
      return Status::OK();
    };
    cb.emit_print = [](const TaskNodePtr&, NodeStats*) {
      return Status::OK();
    };
    return cb;
  }

  int executions() const { return executions_.load(); }

 private:
  TaskGraph graph_;
  std::unordered_set<const TaskNode*> bombs_;
  std::atomic<int> executions_{0};
};

TEST(SchedulerCancellationTest, ParallelFailureCancelsPendingWork) {
  CancellationHarness h;
  // One failing source whose 10 dependents can never run, plus three
  // independent 10-node chains that may be in flight when it fails.
  TaskNodePtr bomb = h.Node({});
  h.Arm(bomb);
  TaskNodePtr doomed_tail = h.Chain(bomb, 10);
  std::vector<TaskNodePtr> roots = {doomed_tail};
  for (int i = 0; i < 3; ++i) roots.push_back(h.Chain(nullptr, 10));
  const int64_t runnable = 41;  // 1 bomb + 10 doomed + 3x10 independent

  ThreadPool pool(4);
  CancellationToken token;
  Scheduler::Options options;
  options.num_threads = 4;
  options.cancel = &token;
  Scheduler scheduler(&pool, options, h.Callbacks());
  ExecutionReport report;
  Status status = scheduler.Run(roots, &report);

  // Root cause propagates, the token trips, and the accounting closes:
  // every runnable node either executed, failed, or was cancelled.
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "boom");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(report.nodes_executed + report.nodes_cancelled + 1, runnable);
  EXPECT_EQ(report.nodes_executed, h.executions());
  // Nothing downstream of the failure ever ran.
  for (TaskNodePtr n = doomed_tail; n != bomb; n = n->inputs[0]) {
    EXPECT_FALSE(n->executed);
  }
  EXPECT_GE(report.nodes_cancelled, 10);
}

TEST(SchedulerCancellationTest, SerialErrorShortCircuits) {
  CancellationHarness h;
  TaskNodePtr pre = h.Chain(nullptr, 3);
  TaskNodePtr bomb = h.Node({pre});
  h.Arm(bomb);
  TaskNodePtr post = h.Chain(bomb, 4);
  TaskNodePtr independent = h.Chain(nullptr, 5);

  CancellationToken token;
  Scheduler::Options options;
  options.num_threads = 1;
  options.cancel = &token;
  Scheduler scheduler(nullptr, options, h.Callbacks());
  ExecutionReport report;
  Status status = scheduler.Run({post, independent}, &report);

  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "boom");
  EXPECT_TRUE(token.cancelled());
  // Serial topo order: only the bomb's 3 ancestors can have executed
  // before it; the 4 nodes after it plus whatever of the independent
  // chain had not run yet are all cancelled.
  EXPECT_EQ(report.nodes_executed, h.executions());
  EXPECT_EQ(report.nodes_executed + report.nodes_cancelled + 1, 13);
  for (TaskNodePtr n = post; n != bomb; n = n->inputs[0]) {
    EXPECT_FALSE(n->executed);
  }
}

TEST(SchedulerCancellationTest, PreCancelledTokenRunsNothing) {
  for (int threads : {1, 4}) {
    CancellationHarness h;
    TaskNodePtr tail = h.Chain(nullptr, 6);
    CancellationToken token;
    token.Cancel();
    ThreadPool pool(threads);
    Scheduler::Options options;
    options.num_threads = threads;
    options.cancel = &token;
    Scheduler scheduler(threads > 1 ? &pool : nullptr, options,
                        h.Callbacks());
    ExecutionReport report;
    Status status = scheduler.Run({tail}, &report);
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
    EXPECT_EQ(h.executions(), 0);
    EXPECT_EQ(report.nodes_cancelled, 6);
    EXPECT_EQ(report.nodes_executed, 0);
  }
}

TEST(SchedulerCancellationTest, SessionRoundReportsCancelledNodes) {
  // End-to-end: a session round over a real program where one node fails
  // (injected backend fault, fallback disabled) must report the
  // cancellation accounting, not just the error.
  std::string dir = ::testing::TempDir() + "sched_cancel_e2e";
  std::filesystem::create_directories(dir);
  std::string csv = dir + "/d.csv";
  {
    std::ofstream out(csv);
    out << "a,b\n";
    for (int i = 0; i < 100; ++i) out << i << "," << i % 7 << "\n";
  }
  MemoryTracker tracker(0);
  std::stringstream output;
  Session session(SessionOptions::Builder()
                      .threads(4)
                      .tracker(&tracker)
                      .output(&output)
                      .graceful_fallback(false)
                      .faults("backend.execute:nth=2,code=exec")
                      .Build());
  auto df = FatDataFrame::ReadCsv(&session, csv);
  ASSERT_TRUE(df.ok());
  auto head = df->Head(10);
  ASSERT_TRUE(head.ok());
  auto sorted = head->SortValues({"a"}, {true});
  ASSERT_TRUE(sorted.ok());
  auto eager = sorted->Compute();
  ASSERT_FALSE(eager.ok());
  EXPECT_TRUE(eager.status().IsExecutionError()) << eager.status().ToString();
  // Three runnable nodes (read, head, sort); the injected fault fails the
  // second, so the third is cancelled: executed + cancelled + 1 failure.
  const ExecutionReport& report = session.last_report();
  EXPECT_EQ(report.nodes_executed, 1);
  EXPECT_EQ(report.nodes_cancelled, 1);
  std::filesystem::remove_all(dir);
}

// A frame used as both sides of a self-merge is one upstream input:
// rows_in counts each distinct input result once, not per edge.
TEST_F(LazySchedulerTest, SelfMergeCountsInputRowsOnce) {
  std::stringstream output;
  auto session = MakeSession(1, &output);
  auto df = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(df.ok());
  auto keys = df->Select({"day", "passengers"});
  ASSERT_TRUE(keys.ok());
  auto joined = keys->Merge(*keys, {"day"}, df::JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  auto eager = joined->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  const ExecutionReport& report = session->last_report();
  bool found_merge = false;
  for (const auto& n : report.nodes) {
    if (n.op.find("merge") == std::string::npos) continue;
    found_merge = true;
    // 500 input rows, not 1000 (both edges reach the same select node).
    EXPECT_EQ(n.rows_in, 500);
  }
  EXPECT_TRUE(found_merge);
}

// ExecutionReport::peak_tracked_bytes is the round's own high-water mark,
// not the process-lifetime MemoryTracker peak: a small second round must
// report a smaller peak than a big first round.
TEST_F(LazySchedulerTest, PeakTrackedBytesIsPerRound) {
  std::string big_csv = dir_ + "/big.csv";
  {
    std::ofstream out(big_csv);
    out << "a,b\n";
    for (int i = 0; i < 50000; ++i) {
      out << i << "," << (i % 97) << "\n";
    }
  }
  std::string small_csv = dir_ + "/small.csv";
  {
    std::ofstream out(small_csv);
    out << "a,b\n";
    for (int i = 0; i < 10; ++i) {
      out << i << "," << i << "\n";
    }
  }
  std::stringstream output;
  auto session = MakeSession(1, &output);

  // Round 1: large read whose root is a scalar, so §2.6 clearing releases
  // the frames before the round ends.
  auto big = FatDataFrame::ReadCsv(session.get(), big_csv);
  ASSERT_TRUE(big.ok());
  auto big_len = big->Len();
  ASSERT_TRUE(big_len.ok());
  auto v1 = big_len->Value();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  const int64_t round1_peak = session->last_report().peak_tracked_bytes;
  EXPECT_GT(round1_peak, 0);

  // Round 2: tiny read. Under the old lifetime-peak reporting this round
  // would still show round 1's number.
  auto small = FatDataFrame::ReadCsv(session.get(), small_csv);
  ASSERT_TRUE(small.ok());
  auto small_len = small->Len();
  ASSERT_TRUE(small_len.ok());
  auto v2 = small_len->Value();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  const int64_t round2_peak = session->last_report().peak_tracked_bytes;
  EXPECT_GT(round2_peak, 0);
  EXPECT_LT(round2_peak, round1_peak);
  // The lifetime peak is unaffected by the round epochs.
  EXPECT_GE(tracker_.peak(), round1_peak);
}

}  // namespace
}  // namespace lafp::lazy
