#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "lazy/fat_dataframe.h"

namespace lafp::lazy {
namespace {

using df::AggFunc;
using df::CompareOp;
using df::Scalar;
using exec::BackendKind;

class LazyRuntimeTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "lazy_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/taxi.csv";
    std::ofstream out(csv_path_);
    out << "fare_amount,pickup_datetime,passenger_count,tip,vendor\n";
    for (int i = 0; i < 100; ++i) {
      out << (i % 10) - 2 << ".5,"
          << "2024-01-" << (i % 28 + 1 < 10 ? "0" : "") << (i % 28 + 1)
          << " 08:00:00," << (i % 4 + 1) << "," << (i % 3) << ","
          << (i % 2 == 0 ? "acme" : "zoom") << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Session> MakeSession(ExecutionMode mode,
                                       bool lazy_print = true) {
    SessionOptions opts;
    opts.backend = GetParam();
    opts.backend_config.partition_rows = 32;
    opts.backend_config.num_threads = 2;
    opts.mode = mode;
    opts.lazy_print = lazy_print;
    opts.output = &output_;
    opts.tracker = &tracker_;
    return std::make_unique<Session>(opts);
  }

  std::string dir_, csv_path_;
  MemoryTracker tracker_{0};
  std::stringstream output_;
};

TEST_P(LazyRuntimeTest, LazyModeBuildsGraphWithoutExecuting) {
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(frame.ok());
  auto fare = frame->Col("fare_amount");
  ASSERT_TRUE(fare.ok());
  auto mask = fare->CompareTo(CompareOp::kGt, Scalar::Double(0.0));
  ASSERT_TRUE(mask.ok());
  auto filtered = frame->FilterBy(*mask);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(session->num_node_executions(), 0);
  auto eager = filtered->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_GT(session->num_node_executions(), 0);
  EXPECT_EQ(eager->frame.num_rows(), 80u);  // fares {-2.5..7.5}, 8 of 10 > 0
}

TEST_P(LazyRuntimeTest, EagerModeExecutesPerCall) {
  auto session = MakeSession(ExecutionMode::kEager);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(session->num_node_executions(), 1);  // read happened already
  auto head = frame->Head(3);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(session->num_node_executions(), 2);
  auto eager = head->Compute();
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->frame.num_rows(), 3u);
}

TEST_P(LazyRuntimeTest, TaskGraphShapeMatchesPaperFigure6) {
  // The taxi program of paper Figure 3 -> task graph of Figure 6.
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto fare = frame->Col("fare_amount");
  auto mask = fare->CompareTo(CompareOp::kGt, Scalar::Double(0.0));
  auto filtered = frame->FilterBy(*mask);
  auto pickup = filtered->Col("pickup_datetime");
  auto day = pickup->ToDatetime()->Dt(df::DtField::kDayOfWeek);
  auto with_day = filtered->SetCol("day", *day);
  auto grouped = with_day->GroupByAgg(
      {"day"}, {{"passenger_count", AggFunc::kSum, "passenger_count"}});
  ASSERT_TRUE(grouped.ok());
  std::string dot = grouped->DebugDot();
  EXPECT_NE(dot.find("read_csv"), std::string::npos);
  EXPECT_NE(dot.find("get_item[fare_amount]"), std::string::npos);
  EXPECT_NE(dot.find("filter"), std::string::npos);
  EXPECT_NE(dot.find("set_item[day]"), std::string::npos);
  EXPECT_NE(dot.find("groupby_agg"), std::string::npos);
  auto eager = grouped->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_columns(), 2u);
}

TEST_P(LazyRuntimeTest, LazyPrintDefersAndPreservesOrder) {
  auto session = MakeSession(ExecutionMode::kLazy, /*lazy_print=*/true);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto head = frame->Head(2);
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("first:"),
                           Session::PrintArg::Value(head->node())})
                  .ok());
  auto mean = frame->Col("passenger_count")->Mean();
  ASSERT_TRUE(mean.ok());
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("mean: "),
                           Session::PrintArg::Value(mean->node())})
                  .ok());
  // Nothing printed yet: prints are lazy.
  EXPECT_EQ(output_.str(), "");
  EXPECT_EQ(session->num_node_executions(), 0);
  ASSERT_TRUE(session->Flush().ok());
  std::string text = output_.str();
  size_t first = text.find("first:");
  size_t second = text.find("mean: 2.5");
  ASSERT_NE(first, std::string::npos) << text;
  ASSERT_NE(second, std::string::npos) << text;
  EXPECT_LT(first, second);
}

TEST_P(LazyRuntimeTest, NonLazyPrintForcesImmediately) {
  auto session = MakeSession(ExecutionMode::kLazy, /*lazy_print=*/false);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto mean = frame->Col("passenger_count")->Mean();
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("mean: "),
                           Session::PrintArg::Value(mean->node())})
                  .ok());
  EXPECT_NE(output_.str().find("mean: 2.5"), std::string::npos);
}

TEST_P(LazyRuntimeTest, PendingPrintsEmittedBeforeForcedCompute) {
  // §3.4: a forced compute must first process earlier lazy prints so
  // output order is preserved around external-module calls.
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("before compute")})
                  .ok());
  auto grouped = frame->GroupByAgg(
      {"vendor"}, {{"tip", AggFunc::kMean, "tip_mean"}});
  auto eager = grouped->Compute();
  ASSERT_TRUE(eager.ok());
  EXPECT_NE(output_.str().find("before compute"), std::string::npos);
  // A later flush must not re-emit.
  ASSERT_TRUE(session->Flush().ok());
  size_t first = output_.str().find("before compute");
  size_t again = output_.str().find("before compute", first + 1);
  EXPECT_EQ(again, std::string::npos);
}

TEST_P(LazyRuntimeTest, FStringPlaceholderSubstitution) {
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto avg = frame->Col("fare_amount")->Mean();
  ASSERT_TRUE(avg.ok());
  ASSERT_TRUE(session
                  ->Print({Session::PrintArg::Literal("Average fare: "),
                           Session::PrintArg::Value(avg->node()),
                           Session::PrintArg::Literal(" (rupees)")})
                  .ok());
  ASSERT_TRUE(session->Flush().ok());
  EXPECT_NE(output_.str().find("Average fare: 2.8 (rupees)"),
            std::string::npos)
      << output_.str();
}

TEST_P(LazyRuntimeTest, LazyScalarValueForcesCompute) {
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto len = frame->Len();
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(session->num_node_executions(), 0);
  auto value = len->Value();
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(value->int_value(), 100);
}

TEST_P(LazyRuntimeTest, ScalarFlowsBackIntoExpressions) {
  // df[df.fare > df.fare.mean()]
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto fare = frame->Col("fare_amount");
  auto mean = fare->Mean();
  auto mask = fare->CompareLazy(CompareOp::kGt, *mean);
  ASSERT_TRUE(mask.ok());
  auto filtered = frame->FilterBy(*mask);
  auto n = filtered->Len();
  auto value = n->Value();
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  // fares: (i%10)-1.5 for i in 0..99, mean 2.0; greater: i%10 in {4..9}
  // gives 3.5? fares are (i%10)-2+0.5 = i%10-1.5, mean = 3.0? Let's just
  // assert the invariant against an eagerly computed reference.
  auto ref_mask = fare->CompareTo(CompareOp::kGt, Scalar::Double(2.8));
  auto ref_n = frame->FilterBy(*ref_mask)->Len();
  auto ref = ref_n->Value();
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(value->int_value(), ref->int_value());
}

TEST_P(LazyRuntimeTest, ResultClearingFreesIntermediates) {
  if (GetParam() == BackendKind::kDask) {
    GTEST_SKIP() << "plan nodes are never cleared on a lazy backend";
  }
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto mask =
      frame->Col("fare_amount")->CompareTo(CompareOp::kGt, Scalar::Double(0));
  auto filtered = frame->FilterBy(*mask);
  auto grouped = filtered->GroupByAgg(
      {"vendor"}, {{"tip", AggFunc::kSum, "tips"}});
  auto eager = grouped->Compute();
  ASSERT_TRUE(eager.ok());
  // Intermediates (read, get_item, compare, filter) were cleared.
  EXPECT_GE(session->num_results_cleared(), 3);
  EXPECT_FALSE(frame->node()->has_result());
  EXPECT_FALSE(filtered->node()->has_result());
  EXPECT_TRUE(grouped->node()->has_result());  // round target kept
}

TEST_P(LazyRuntimeTest, RecomputeWithoutPersistAndReuseWithLiveDf) {
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto day = frame->Col("pickup_datetime")
                 ->ToDatetime()
                 ->Dt(df::DtField::kDayOfWeek);
  auto with_day = frame->SetCol("day", *day);
  auto grouped = with_day->GroupByAgg(
      {"day"}, {{"passenger_count", AggFunc::kSum, "pax"}});

  // First compute, passing live_df=[with_day] (the rewriter's §3.5 hint):
  // the shared subexpression must be persisted...
  auto first = grouped->Compute({*with_day});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(with_day->node()->persist);
  int64_t execs_after_first = session->num_node_executions();
  // ...so the second compute that reuses with_day only runs the new op.
  auto avg = with_day->Col("fare_amount")->Mean();
  auto value = avg->Value();
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  int64_t execs_second = session->num_node_executions() - execs_after_first;
  EXPECT_LE(execs_second, 2);  // get_item + reduce, not the whole chain
}

TEST_P(LazyRuntimeTest, WithoutLiveDfSharedChainIsRecomputed) {
  if (GetParam() == BackendKind::kDask) {
    GTEST_SKIP() << "dask keeps plans, so execution counting differs";
  }
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto day = frame->Col("pickup_datetime")
                 ->ToDatetime()
                 ->Dt(df::DtField::kDayOfWeek);
  auto with_day = frame->SetCol("day", *day);
  auto grouped = with_day->GroupByAgg(
      {"day"}, {{"passenger_count", AggFunc::kSum, "pax"}});
  ASSERT_TRUE(grouped->Compute().ok());
  int64_t execs_after_first = session->num_node_executions();
  auto avg = with_day->Col("fare_amount")->Mean();
  auto value = avg->Value();
  ASSERT_TRUE(value.ok());
  int64_t execs_second = session->num_node_executions() - execs_after_first;
  // The whole with_day chain (read, getcol, to_datetime, dt, set) reran.
  EXPECT_GE(execs_second, 5);
}

TEST_P(LazyRuntimeTest, MergePipeline) {
  auto session = MakeSession(ExecutionMode::kLazy);
  // Vendor lookup written next to the trips file.
  std::string lookup_path = dir_ + "/vendors.csv";
  {
    std::ofstream out(lookup_path);
    out << "vendor,hq\nacme,NY\nzoom,SF\n";
  }
  auto trips = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto vendors = FatDataFrame::ReadCsv(session.get(), lookup_path);
  auto joined = trips->Merge(*vendors, {"vendor"}, df::JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  auto grouped =
      joined->GroupByAgg({"hq"}, {{"tip", AggFunc::kSum, "tips"}});
  auto eager = grouped->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(eager->frame.num_rows(), 2u);
}

TEST_P(LazyRuntimeTest, SortFallsBackWhereUnsupported) {
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto sorted = frame->SortValues({"fare_amount"}, {false});
  ASSERT_TRUE(sorted.ok());
  auto top = sorted->Head(1);
  auto eager = top->Compute();
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_DOUBLE_EQ((*eager->frame.column("fare_amount"))->DoubleAt(0), 7.5);
}

TEST_P(LazyRuntimeTest, OutOfMemorySurfacesFromCompute) {
  SessionOptions opts;
  opts.backend = GetParam();
  opts.backend_config.partition_rows = 32;
  opts.mode = ExecutionMode::kLazy;
  opts.output = &output_;
  MemoryTracker tiny(GetParam() == BackendKind::kDask ? 700 : 2000);
  opts.tracker = &tiny;
  Session session(opts);
  auto frame = FatDataFrame::ReadCsv(&session, csv_path_);
  ASSERT_TRUE(frame.ok());
  auto eager = frame->Compute();
  EXPECT_TRUE(eager.status().IsOutOfMemory()) << eager.status().ToString();
}

TEST_P(LazyRuntimeTest, DotDumpHasPrintOrderingEdges) {
  auto session = MakeSession(ExecutionMode::kLazy);
  auto frame = FatDataFrame::ReadCsv(session.get(), csv_path_);
  auto head = frame->Head(1);
  ASSERT_TRUE(
      session->Print({Session::PrintArg::Value(head->node())}).ok());
  auto mean = frame->Col("tip")->Mean();
  ASSERT_TRUE(
      session->Print({Session::PrintArg::Value(mean->node())}).ok());
  // Reach the second print node via the session graph: flush and inspect
  // execution instead. Before flushing, dump the graph from the last
  // print (order edge should appear dashed).
  // (The DebugDot of the mean's node does not contain prints; build from
  // the print chain instead.)
  ASSERT_TRUE(session->Flush().ok());
  std::string text = output_.str();
  // Output order: head print before mean print.
  EXPECT_LT(text.find("fare_amount"), text.find("2.0"));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LazyRuntimeTest,
                         ::testing::Values(BackendKind::kPandas,
                                           BackendKind::kModin,
                                           BackendKind::kDask),
                         [](const auto& info) {
                           return exec::BackendKindName(info.param);
                         });

}  // namespace
}  // namespace lafp::lazy
