#include "common/hash.h"

#include <gtest/gtest.h>

namespace lafp {
namespace {

// Known MD5 vectors from RFC 1321.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::Of(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::Of("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::Of("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::Of("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::Of("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::Of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::Of("1234567890123456789012345678901234567890123456789012345"
                    "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Md5 md5;
  md5.Update("mess");
  md5.Update("age ");
  md5.Update("digest");
  EXPECT_EQ(md5.HexDigest(), Md5::Of("message digest"));
}

TEST(Md5Test, CrossesBlockBoundary) {
  std::string long_input(200, 'x');
  Md5 a;
  a.Update(long_input);
  Md5 b;
  for (char c : long_input) b.Update(&c, 1);
  EXPECT_EQ(a.HexDigest(), b.HexDigest());
}

TEST(Fnv1aTest, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("\0", 1));
}

TEST(Fnv1aTest, KnownValue) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace lafp
