#include "dataframe/column.h"

#include <gtest/gtest.h>

namespace lafp::df {
namespace {

class ColumnTest : public ::testing::Test {
 protected:
  MemoryTracker tracker_{0};
};

TEST_F(ColumnTest, IntColumnBasics) {
  auto col = Column::MakeInt({1, 2, 3}, {}, &tracker_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), DataType::kInt64);
  EXPECT_EQ((*col)->size(), 3u);
  EXPECT_FALSE((*col)->has_nulls());
  EXPECT_EQ((*col)->IntAt(1), 2);
  EXPECT_EQ((*col)->ValueString(2), "3");
}

TEST_F(ColumnTest, ValidityMarksNulls) {
  auto col = Column::MakeInt({1, 0, 3}, {1, 0, 1}, &tracker_);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE((*col)->has_nulls());
  EXPECT_EQ((*col)->null_count(), 1u);
  EXPECT_TRUE((*col)->IsValid(0));
  EXPECT_FALSE((*col)->IsValid(1));
  EXPECT_EQ((*col)->ValueString(1), "NaN");
  EXPECT_TRUE((*col)->ScalarAt(1).is_null());
  EXPECT_EQ((*col)->ScalarAt(2).int_value(), 3);
}

TEST_F(ColumnTest, MemoryAccounting) {
  int64_t before = tracker_.current();
  {
    auto col = Column::MakeInt(std::vector<int64_t>(1000, 7), {}, &tracker_);
    ASSERT_TRUE(col.ok());
    EXPECT_EQ(tracker_.current() - before, 8000);
    EXPECT_EQ((*col)->footprint_bytes(), 8000);
  }
  EXPECT_EQ(tracker_.current(), before);  // released on destruction
}

TEST_F(ColumnTest, BudgetExceededFailsConstruction) {
  MemoryTracker small(100);
  auto col = Column::MakeInt(std::vector<int64_t>(1000, 7), {}, &small);
  EXPECT_FALSE(col.ok());
  EXPECT_TRUE(col.status().IsOutOfMemory());
  EXPECT_EQ(small.current(), 0);
}

TEST_F(ColumnTest, StringFootprintCountsPayload) {
  auto col = Column::MakeString({"aaaa", "bb"}, {}, &tracker_);
  ASSERT_TRUE(col.ok());
  // 4 + 2 chars + 2 * 16 overhead = 38.
  EXPECT_EQ((*col)->footprint_bytes(), 38);
}

TEST_F(ColumnTest, TakeGathersAndPropagatesNulls) {
  auto col = Column::MakeDouble({1.5, 2.5, 3.5}, {1, 0, 1}, &tracker_);
  ASSERT_TRUE(col.ok());
  auto taken = (*col)->Take({2, 1, 2});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ((*taken)->size(), 3u);
  EXPECT_DOUBLE_EQ((*taken)->DoubleAt(0), 3.5);
  EXPECT_FALSE((*taken)->IsValid(1));
  EXPECT_DOUBLE_EQ((*taken)->DoubleAt(2), 3.5);
}

TEST_F(ColumnTest, SliceBounds) {
  auto col = Column::MakeInt({10, 20, 30, 40}, {}, &tracker_);
  ASSERT_TRUE(col.ok());
  auto sliced = (*col)->Slice(1, 2);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ((*sliced)->size(), 2u);
  EXPECT_EQ((*sliced)->IntAt(0), 20);
  EXPECT_EQ((*sliced)->IntAt(1), 30);
}

TEST_F(ColumnTest, ConstantColumn) {
  auto col = Column::MakeConstant(Scalar::String("x"), 3, &tracker_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->size(), 3u);
  EXPECT_EQ((*col)->StringAt(2), "x");
  auto nulls = Column::MakeConstant(Scalar::Null(), 2, &tracker_);
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ((*nulls)->null_count(), 2u);
}

TEST_F(ColumnTest, BuilderMixedNulls) {
  ColumnBuilder b(DataType::kInt64, &tracker_);
  b.AppendInt(1);
  b.AppendInt(2);
  b.AppendNull();
  b.AppendInt(4);
  auto col = b.Finish();
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->size(), 4u);
  EXPECT_EQ((*col)->null_count(), 1u);
  EXPECT_TRUE((*col)->IsValid(0));
  EXPECT_FALSE((*col)->IsValid(2));
  EXPECT_EQ((*col)->IntAt(3), 4);
}

TEST_F(ColumnTest, BuilderAppendScalarConversions) {
  ColumnBuilder b(DataType::kDouble, &tracker_);
  ASSERT_TRUE(b.AppendScalar(Scalar::Int(3)).ok());
  ASSERT_TRUE(b.AppendScalar(Scalar::Double(0.5)).ok());
  ASSERT_TRUE(b.AppendScalar(Scalar::Null()).ok());
  auto col = b.Finish();
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)->DoubleAt(0), 3.0);
  EXPECT_FALSE((*col)->IsValid(2));

  ColumnBuilder sb(DataType::kBool, &tracker_);
  EXPECT_FALSE(sb.AppendScalar(Scalar::String("x")).ok());
}

TEST_F(ColumnTest, CategorizeRoundTrip) {
  auto strs = Column::MakeString({"NY", "SF", "NY", "LA", "SF"}, {},
                                 &tracker_);
  ASSERT_TRUE(strs.ok());
  auto cat = CategorizeStrings(**strs, &tracker_);
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ((*cat)->type(), DataType::kCategory);
  EXPECT_EQ((*cat)->dictionary()->size(), 3u);  // NY, SF, LA
  EXPECT_EQ((*cat)->StringAt(0), "NY");
  EXPECT_EQ((*cat)->StringAt(3), "LA");
  EXPECT_EQ((*cat)->CodeAt(0), (*cat)->CodeAt(2));  // both NY

  auto back = DecategorizeToStrings(**cat, &tracker_);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*back)->StringAt(i), (*strs)->StringAt(i));
  }
}

TEST_F(ColumnTest, CategorySavesMemoryOnLowCardinality) {
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(i % 2 == 0 ? "electronics" : "groceries");
  }
  auto strs = Column::MakeString(std::move(values), {}, &tracker_);
  ASSERT_TRUE(strs.ok());
  auto cat = CategorizeStrings(**strs, &tracker_);
  ASSERT_TRUE(cat.ok());
  // 1000 * 4 bytes of codes + tiny dictionary << 1000 * (11..12 + 16).
  EXPECT_LT((*cat)->footprint_bytes(), (*strs)->footprint_bytes() / 4);
}

TEST_F(ColumnTest, CategoryNullsPreserved) {
  auto strs = Column::MakeString({"a", "", "b"}, {1, 0, 1}, &tracker_);
  ASSERT_TRUE(strs.ok());
  auto cat = CategorizeStrings(**strs, &tracker_);
  ASSERT_TRUE(cat.ok());
  EXPECT_FALSE((*cat)->IsValid(1));
  EXPECT_EQ((*cat)->null_count(), 1u);
  EXPECT_EQ((*cat)->dictionary()->size(), 2u);
}

TEST_F(ColumnTest, TimestampColumnFormatting) {
  int64_t ts = *ParseTimestamp("2020-06-01 12:00:00");
  auto col = Column::MakeTimestamp({ts}, {}, &tracker_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), DataType::kTimestamp);
  EXPECT_EQ((*col)->ValueString(0), "2020-06-01 12:00:00");
}

TEST_F(ColumnTest, NumericAtWidens) {
  auto col = Column::MakeBool({1, 0}, {}, &tracker_);
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(*(*col)->NumericAt(0), 1.0);
  auto strs = Column::MakeString({"x"}, {}, &tracker_);
  ASSERT_TRUE(strs.ok());
  EXPECT_FALSE((*strs)->NumericAt(0).ok());
}

}  // namespace
}  // namespace lafp::df
