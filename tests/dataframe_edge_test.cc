// Edge cases and property-style sweeps over the eager engine: empty
// frames through every kernel, randomized groupby/join cross-checks
// against naive reference computations, and category interactions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <set>

#include "dataframe/kahan.h"
#include "dataframe/ops.h"

namespace lafp::df {
namespace {

class EmptyFrameTest : public ::testing::Test {
 protected:
  DataFrame Empty() {
    ColumnBuilder a(DataType::kInt64, &tracker_);
    ColumnBuilder b(DataType::kString, &tracker_);
    return *DataFrame::Make({"k", "s"}, {*a.Finish(), *b.Finish()});
  }
  MemoryTracker tracker_{0};
};

TEST_F(EmptyFrameTest, KernelsHandleZeroRows) {
  DataFrame empty = Empty();
  auto mask = Compare(*(*empty.column("k")), CompareOp::kGt, Scalar::Int(0));
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*Filter(empty, **mask)).num_rows(), 0u);
  EXPECT_EQ((*Head(empty, 5)).num_rows(), 0u);
  EXPECT_EQ((*SortValues(empty, {"k"}, {true})).num_rows(), 0u);
  EXPECT_EQ((*DropDuplicates(empty, {"k"})).num_rows(), 0u);
  EXPECT_EQ((*DropNa(empty)).num_rows(), 0u);
  EXPECT_EQ((*FillNa(empty, Scalar::Int(0))).num_rows(), 0u);
  auto grouped =
      GroupByAgg(empty, {"k"}, {{"k", AggFunc::kSum, "total"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 0u);
  auto joined = Merge(empty, empty, {"k"}, JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 0u);
  auto vc = ValueCounts(*(*empty.column("s")), "s");
  ASSERT_TRUE(vc.ok());
  EXPECT_EQ(vc->num_rows(), 0u);
  auto described = Describe(empty);
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described->num_rows(), 5u);  // stat labels, NaN values
}

TEST_F(EmptyFrameTest, ReducesOnEmpty) {
  DataFrame empty = Empty();
  const Column& k = *(*empty.column("k"));
  EXPECT_EQ((*Reduce(k, AggFunc::kSum)).int_value(), 0);
  EXPECT_EQ((*Reduce(k, AggFunc::kCount)).int_value(), 0);
  EXPECT_TRUE((*Reduce(k, AggFunc::kMean)).is_null());
  EXPECT_TRUE((*Reduce(k, AggFunc::kMin)).is_null());
  EXPECT_EQ((*Reduce(k, AggFunc::kNunique)).int_value(), 0);
}

TEST_F(EmptyFrameTest, MergeEmptyAgainstNonEmpty) {
  MemoryTracker t(0);
  auto k = *Column::MakeInt({1, 2}, {}, &t);
  auto s = *Column::MakeString({"a", "b"}, {}, &t);
  auto full = *DataFrame::Make({"k", "s"}, {k, s});
  auto inner = Merge(Empty(), full, {"k"}, JoinType::kInner);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->num_rows(), 0u);
  auto left = Merge(full, Empty(), {"k"}, JoinType::kLeft);
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->num_rows(), 2u);
  EXPECT_FALSE((*left->column("s_y"))->IsValid(0));
}

/// Property: GroupByAgg(sum/count/min/max/mean) matches a naive
/// std::map-based reference on random data, across seeds.
class GroupByPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupByPropertyTest, MatchesNaiveReference) {
  std::mt19937_64 rng(GetParam());
  MemoryTracker tracker(0);
  size_t n = 200 + rng() % 800;
  std::vector<int64_t> keys(n);
  std::vector<double> values(n);
  std::vector<uint8_t> validity(n, 1);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<int64_t>(rng() % 13);
    values[i] =
        static_cast<double>(static_cast<int64_t>(rng() % 2000) - 1000) /
        8.0;
    if (rng() % 10 == 0) validity[i] = 0;  // some null values
  }
  auto key_col = *Column::MakeInt(keys, {}, &tracker);
  auto val_col = *Column::MakeDouble(values, validity, &tracker);
  auto frame = *DataFrame::Make({"k", "v"}, {key_col, val_col});

  auto out = GroupByAgg(frame, {"k"},
                        {{"v", AggFunc::kSum, "sum"},
                         {"v", AggFunc::kCount, "count"},
                         {"v", AggFunc::kMin, "min"},
                         {"v", AggFunc::kMax, "max"},
                         {"v", AggFunc::kMean, "mean"}});
  ASSERT_TRUE(out.ok());

  struct Ref {
    double sum = 0;
    int64_t count = 0;
    double mn = 1e300, mx = -1e300;
  };
  std::map<int64_t, Ref> ref;
  for (size_t i = 0; i < n; ++i) {
    Ref& r = ref[keys[i]];
    if (!validity[i]) continue;
    r.sum += values[i];
    ++r.count;
    r.mn = std::min(r.mn, values[i]);
    r.mx = std::max(r.mx, values[i]);
  }
  ASSERT_EQ(out->num_rows(), ref.size());
  for (size_t r = 0; r < out->num_rows(); ++r) {
    int64_t key = (*out->column("k"))->IntAt(r);
    ASSERT_TRUE(ref.count(key) > 0) << key;
    const Ref& expected = ref[key];
    EXPECT_NEAR((*out->column("sum"))->DoubleAt(r), expected.sum, 1e-9);
    EXPECT_EQ((*out->column("count"))->IntAt(r), expected.count);
    if (expected.count > 0) {
      EXPECT_DOUBLE_EQ((*out->column("min"))->DoubleAt(r), expected.mn);
      EXPECT_DOUBLE_EQ((*out->column("max"))->DoubleAt(r), expected.mx);
      EXPECT_NEAR((*out->column("mean"))->DoubleAt(r),
                  expected.sum / expected.count, 1e-9);
    } else {
      EXPECT_FALSE((*out->column("mean"))->IsValid(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByPropertyTest,
                         ::testing::Range(1, 9));

/// Property: inner hash join row count matches the naive cross-check.
class JoinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinPropertyTest, InnerJoinCountMatchesNaive) {
  std::mt19937_64 rng(GetParam() * 7919);
  MemoryTracker tracker(0);
  size_t nl = 50 + rng() % 200, nr = 20 + rng() % 100;
  std::vector<int64_t> lk(nl), rk(nr);
  for (auto& v : lk) v = static_cast<int64_t>(rng() % 17);
  for (auto& v : rk) v = static_cast<int64_t>(rng() % 17);
  auto left = *DataFrame::Make(
      {"k"}, {*Column::MakeInt(lk, {}, &tracker)});
  auto right = *DataFrame::Make(
      {"k"}, {*Column::MakeInt(rk, {}, &tracker)});
  auto joined = Merge(left, right, {"k"}, JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  size_t expected = 0;
  for (int64_t a : lk) {
    for (int64_t b : rk) expected += (a == b);
  }
  EXPECT_EQ(joined->num_rows(), expected);

  auto left_join = Merge(left, right, {"k"}, JoinType::kLeft);
  ASSERT_TRUE(left_join.ok());
  size_t left_expected = 0;
  for (int64_t a : lk) {
    size_t matches = 0;
    for (int64_t b : rk) matches += (a == b);
    left_expected += std::max<size_t>(1, matches);
  }
  EXPECT_EQ(left_join->num_rows(), left_expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest, ::testing::Range(1, 9));

/// Property: sort output is a permutation and is ordered, across key
/// types and directions.
class SortPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SortPropertyTest, OrderedPermutation) {
  auto [seed, ascending] = GetParam();
  std::mt19937_64 rng(seed * 104729);
  MemoryTracker tracker(0);
  size_t n = 100 + rng() % 400;
  std::vector<double> values(n);
  for (auto& v : values) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 1000)) / 4.0;
  }
  auto frame = *DataFrame::Make(
      {"v"}, {*Column::MakeDouble(values, {}, &tracker)});
  auto sorted = SortValues(frame, {"v"}, {ascending});
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->num_rows(), n);
  const Column& out = *(*sorted->column("v"));
  std::multiset<double> expected(values.begin(), values.end());
  std::multiset<double> got;
  for (size_t i = 0; i < n; ++i) got.insert(out.DoubleAt(i));
  EXPECT_EQ(got, expected);  // permutation
  for (size_t i = 1; i < n; ++i) {
    if (ascending) {
      EXPECT_LE(out.DoubleAt(i - 1), out.DoubleAt(i));
    } else {
      EXPECT_GE(out.DoubleAt(i - 1), out.DoubleAt(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortPropertyTest,
    ::testing::Combine(::testing::Range(1, 5), ::testing::Bool()));

TEST(CategoryEdgeTest, FilterAndGroupByOnCategories) {
  MemoryTracker tracker(0);
  std::vector<std::string> cities;
  std::vector<int64_t> values;
  for (int i = 0; i < 300; ++i) {
    cities.push_back(i % 3 == 0 ? "NY" : (i % 3 == 1 ? "SF" : "LA"));
    values.push_back(i);
  }
  auto cat = *CategorizeStrings(
      **Column::MakeString(cities, {}, &tracker), &tracker);
  auto val = *Column::MakeInt(values, {}, &tracker);
  auto frame = *DataFrame::Make({"city", "v"}, {cat, val});

  auto mask =
      Compare(*cat, CompareOp::kEq, Scalar::String("SF"));
  ASSERT_TRUE(mask.ok());
  auto sf = Filter(frame, **mask);
  ASSERT_TRUE(sf.ok());
  EXPECT_EQ(sf->num_rows(), 100u);
  EXPECT_EQ((*sf->column("city"))->type(), DataType::kCategory);

  auto grouped = GroupByAgg(frame, {"city"},
                            {{"v", AggFunc::kCount, "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 3u);

  // Sorting by a category column compares decoded strings.
  auto sorted = SortValues(frame, {"city"}, {true});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted->column("city"))->StringAt(0), "LA");
}

TEST(KahanTest, CompensatedSumBeatsNaive) {
  // 1 + 1e-16 added 1e6 times: naive summation loses the small terms.
  KahanSum kahan;
  double naive = 1.0;
  kahan.Add(1.0);
  for (int i = 0; i < 1000000; ++i) {
    kahan.Add(1e-16);
    naive += 1e-16;
  }
  EXPECT_DOUBLE_EQ(naive, 1.0);  // the point: naive dropped everything
  EXPECT_NEAR(kahan.Total(), 1.0 + 1e-10, 1e-14);
}

TEST(KahanTest, PartitionedSumMatchesSinglePass) {
  std::mt19937_64 rng(7);
  std::vector<double> values(100000);
  for (auto& v : values) {
    v = static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / 100.0;
  }
  KahanSum single;
  for (double v : values) single.Add(v);
  // Two-phase: per-chunk sums, then a sum of sums.
  KahanSum combined;
  for (size_t off = 0; off < values.size(); off += 8192) {
    KahanSum chunk;
    for (size_t i = off; i < std::min(values.size(), off + 8192); ++i) {
      chunk.Add(values[i]);
    }
    combined.Add(chunk.Total());
  }
  EXPECT_DOUBLE_EQ(single.Total(), combined.Total());
}

}  // namespace
}  // namespace lafp::df
