#include "exec/agg_twophase.h"

#include <gtest/gtest.h>

namespace lafp::exec {
namespace {

using df::AggFunc;
using df::AggSpec;
using df::Column;
using df::DataFrame;
using df::Scalar;

class TwoPhaseTest : public ::testing::Test {
 protected:
  DataFrame Part(std::vector<int64_t> keys, std::vector<double> values) {
    auto k = *Column::MakeInt(std::move(keys), {}, &tracker_);
    auto v = *Column::MakeDouble(std::move(values), {}, &tracker_);
    return *DataFrame::Make({"k", "v"}, {k, v});
  }

  MemoryTracker tracker_{0};
};

TEST_F(TwoPhaseTest, GroupBySumAcrossPartitions) {
  GroupByCombiner combiner({"k"}, {{"v", AggFunc::kSum, "s"}});
  ASSERT_TRUE(combiner.supported());
  ASSERT_TRUE(combiner.AddPartition(Part({1, 2, 1}, {1.0, 2.0, 3.0})).ok());
  ASSERT_TRUE(combiner.AddPartition(Part({2, 3}, {4.0, 5.0})).ok());
  auto out = combiner.Finish();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Groups in first-appearance order across partials: 1, 2, 3.
  EXPECT_EQ(out->num_rows(), 3u);
  EXPECT_EQ((*out->column("k"))->IntAt(0), 1);
  EXPECT_DOUBLE_EQ((*out->column("s"))->DoubleAt(0), 4.0);
  EXPECT_DOUBLE_EQ((*out->column("s"))->DoubleAt(1), 6.0);
  EXPECT_DOUBLE_EQ((*out->column("s"))->DoubleAt(2), 5.0);
}

TEST_F(TwoPhaseTest, GroupByMeanDecomposesIntoSumAndCount) {
  GroupByCombiner combiner({"k"}, {{"v", AggFunc::kMean, "m"}});
  ASSERT_TRUE(combiner.AddPartition(Part({1, 1}, {1.0, 2.0})).ok());
  ASSERT_TRUE(combiner.AddPartition(Part({1}, {6.0})).ok());
  auto out = combiner.Finish();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  // Mean of {1,2,6} = 3, not mean-of-means (1.5+6)/2 = 3.75.
  EXPECT_DOUBLE_EQ((*out->column("m"))->DoubleAt(0), 3.0);
}

TEST_F(TwoPhaseTest, GroupByMinMaxCount) {
  GroupByCombiner combiner({"k"}, {{"v", AggFunc::kMin, "lo"},
                                   {"v", AggFunc::kMax, "hi"},
                                   {"v", AggFunc::kCount, "n"}});
  ASSERT_TRUE(combiner.AddPartition(Part({1, 1}, {5.0, 3.0})).ok());
  ASSERT_TRUE(combiner.AddPartition(Part({1, 1}, {9.0, 1.0})).ok());
  auto out = combiner.Finish();
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out->column("lo"))->DoubleAt(0), 1.0);
  EXPECT_DOUBLE_EQ((*out->column("hi"))->DoubleAt(0), 9.0);
  EXPECT_EQ((*out->column("n"))->IntAt(0), 4);
}

TEST_F(TwoPhaseTest, NuniqueUnsupported) {
  GroupByCombiner combiner({"k"}, {{"v", AggFunc::kNunique, "u"}});
  EXPECT_FALSE(combiner.supported());
  EXPECT_FALSE(combiner.AddPartition(Part({1}, {1.0})).ok());
}

TEST_F(TwoPhaseTest, FinishWithoutPartitionsFails) {
  GroupByCombiner combiner({"k"}, {{"v", AggFunc::kSum, "s"}});
  EXPECT_FALSE(combiner.Finish().ok());
}

DataFrame Series(std::vector<double> values, MemoryTracker* tracker) {
  auto v = *Column::MakeDouble(std::move(values), {}, tracker);
  return *DataFrame::Make({"v"}, {v});
}

TEST_F(TwoPhaseTest, ReduceSumMeanAcrossPartitions) {
  ReduceCombiner sum(AggFunc::kSum);
  ASSERT_TRUE(sum.AddPartition(Series({1.0, 2.0}, &tracker_)).ok());
  ASSERT_TRUE(sum.AddPartition(Series({3.0}, &tracker_)).ok());
  EXPECT_DOUBLE_EQ((*sum.Finish()).double_value(), 6.0);

  ReduceCombiner mean(AggFunc::kMean);
  ASSERT_TRUE(mean.AddPartition(Series({1.0, 2.0}, &tracker_)).ok());
  ASSERT_TRUE(mean.AddPartition(Series({6.0}, &tracker_)).ok());
  EXPECT_DOUBLE_EQ((*mean.Finish()).double_value(), 3.0);
}

TEST_F(TwoPhaseTest, ReduceIntSumStaysInt) {
  ReduceCombiner sum(AggFunc::kSum);
  auto ints = *Column::MakeInt({1, 2, 3}, {}, &tracker_);
  auto frame = *DataFrame::Make({"v"}, {ints});
  ASSERT_TRUE(sum.AddPartition(frame).ok());
  Scalar out = *sum.Finish();
  EXPECT_EQ(out.type(), df::DataType::kInt64);
  EXPECT_EQ(out.int_value(), 6);
}

TEST_F(TwoPhaseTest, ReduceMinMaxAndEmpty) {
  ReduceCombiner mn(AggFunc::kMin);
  ASSERT_TRUE(mn.AddPartition(Series({5.0, 2.0}, &tracker_)).ok());
  ASSERT_TRUE(mn.AddPartition(Series({7.0}, &tracker_)).ok());
  EXPECT_DOUBLE_EQ((*mn.Finish()).double_value(), 2.0);

  ReduceCombiner empty(AggFunc::kMax);
  EXPECT_TRUE((*empty.Finish()).is_null());
}

TEST_F(TwoPhaseTest, ReduceNuniqueUnionsPartitions) {
  ReduceCombiner nu(AggFunc::kNunique);
  ASSERT_TRUE(nu.AddPartition(Series({1.0, 2.0, 1.0}, &tracker_)).ok());
  ASSERT_TRUE(nu.AddPartition(Series({2.0, 3.0}, &tracker_)).ok());
  EXPECT_EQ((*nu.Finish()).int_value(), 3);
}

TEST_F(TwoPhaseTest, ReduceStringMinMax) {
  ReduceCombiner mn(AggFunc::kMin);
  auto s1 = *Column::MakeString({"pear", "apple"}, {}, &tracker_);
  auto s2 = *Column::MakeString({"banana"}, {}, &tracker_);
  ASSERT_TRUE(
      mn.AddPartition(*DataFrame::Make({"v"}, {s1})).ok());
  ASSERT_TRUE(
      mn.AddPartition(*DataFrame::Make({"v"}, {s2})).ok());
  EXPECT_EQ((*mn.Finish()).string_value(), "apple");
}

TEST_F(TwoPhaseTest, ReduceRejectsMultiColumnPartition) {
  ReduceCombiner sum(AggFunc::kSum);
  EXPECT_FALSE(sum.AddPartition(Part({1}, {1.0})).ok());
}

}  // namespace
}  // namespace lafp::exec
