#include "script/rewriter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "script/analyze.h"
#include "script/codegen.h"

namespace lafp::script {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "rw_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/test.csv";
    std::ofstream out(csv_path_);
    // 6 columns; programs typically use 3 (paper: 22 columns, 3 used).
    out << "fare_amount,pickup_datetime,passenger_count,tip,tolls,vendor\n";
    for (int i = 0; i < 50; ++i) {
      out << i << ",2024-01-01 08:00:00," << (i % 4) << ",1,0,"
          << (i % 2 == 0 ? "acme" : "zoom") << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Result<std::string> RewriteToSource(const std::string& source,
                                      RewriteOptions options = {},
                                      RewriteStats* stats = nullptr) {
    auto module = Parse(source);
    if (!module.ok()) return module.status();
    auto ir = LowerToIR(*module);
    if (!ir.ok()) return ir.status();
    auto rewritten = Rewrite(*ir, options, stats);
    if (!rewritten.ok()) return rewritten.status();
    return GenerateSource(*rewritten);
  }

  std::string TaxiProgram() const {
    return "import lazyfatpandas.pandas as pd\n"
           "df = pd.read_csv(\"" + csv_path_ + "\")\n"
           "df = df[df.fare_amount > 0]\n"
           "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
           "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
           "print(p_per_day)\n";
  }

  std::string dir_, csv_path_;
};

/// Paper Figure 3 -> Figure 4: the rewritten read_csv fetches only the
/// three used columns via usecols.
TEST_F(RewriterTest, ColumnSelectionMatchesPaperFigure4) {
  RewriteStats stats;
  RewriteOptions options;
  auto source = RewriteToSource(TaxiProgram(), options, &stats);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(stats.reads_pruned, 1);
  EXPECT_NE(
      source->find("usecols=[\"fare_amount\", \"passenger_count\", "
                   "\"pickup_datetime\"]"),
      std::string::npos)
      << *source;
  EXPECT_TRUE(stats.flush_inserted);
  EXPECT_NE(source->find("pd.flush()"), std::string::npos);
}

TEST_F(RewriterTest, NoPruningWhenWholeFramePrinted) {
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "print(df)\n",
      {}, &stats);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(stats.reads_pruned, 0);
  EXPECT_EQ(source->find("usecols"), std::string::npos);
}

TEST_F(RewriterTest, ExistingUsecolsNotOverwritten) {
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\", usecols=[\"tip\"])\n"
      "x = df.tip.sum()\n"
      "print(f\"{x}\")\n",
      {}, &stats);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(stats.reads_pruned, 0);
}

/// Paper Figure 10 -> Figure 11: compute(live_df=[df]) inserted before
/// the external plot call.
TEST_F(RewriterTest, ForcedComputeWithLiveDfMatchesPaperFigure11) {
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "import matplotlib.pyplot as plt\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
      "plt.plot(p_per_day)\n"
      "avg_fare = df.fare_amount.mean()\n"
      "print(f\"Average fare: {avg_fare}\")\n",
      {}, &stats);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(stats.computes_inserted, 1);
  EXPECT_NE(source->find("plt.plot(p_per_day.compute(live_df=[df]))"),
            std::string::npos)
      << *source;
}

TEST_F(RewriterTest, ComputeInsertionDisabled) {
  RewriteOptions options;
  options.forced_compute = false;
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "import matplotlib.pyplot as plt\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "plt.plot(df)\n",
      options, &stats);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(stats.computes_inserted, 0);
  EXPECT_EQ(source->find(".compute("), std::string::npos);
}

TEST_F(RewriterTest, MetadataDtypesAddCategoryForReadOnlyLowCardinality) {
  meta::MetaStore store(dir_ + "/metastore");
  RewriteOptions options;
  options.metastore = &store;
  options.category_max_distinct = 8;
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "out = df.groupby([\"vendor\"])[\"fare_amount\"].sum()\n"
      "print(out)\n",
      options, &stats);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(stats.dtype_hints_added, 1);
  EXPECT_GE(stats.category_columns, 1);
  // vendor: 2 distinct strings, never assigned -> category.
  EXPECT_NE(source->find("\"vendor\": \"category\""), std::string::npos)
      << *source;
}

TEST_F(RewriterTest, AssignedColumnNotCategorized) {
  meta::MetaStore store(dir_ + "/metastore");
  RewriteOptions options;
  options.metastore = &store;
  options.category_max_distinct = 8;
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "df[\"vendor\"] = \"other\"\n"
      "out = df.groupby([\"vendor\"])[\"fare_amount\"].sum()\n"
      "print(out)\n",
      options, &stats);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // vendor is assigned by the program: categorizing it would be unsafe
  // (§3.6); it must stay a plain string.
  EXPECT_EQ(source->find("\"vendor\": \"category\""), std::string::npos)
      << *source;
}

TEST_F(RewriterTest, AnalyzePipelineReportsTiming) {
  AnalyzeOptions options;
  auto result = Analyze(TaxiProgram(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->analysis_seconds, 0.0);
  EXPECT_LT(result->analysis_seconds, 1.0);  // paper: 0.04-0.59s
  EXPECT_FALSE(result->regenerated_source.empty());
  EXPECT_EQ(result->stats.reads_pruned, 1);
  // The regenerated program is itself parseable (SCIRPy -> Python).
  EXPECT_TRUE(Parse(result->regenerated_source).ok());
}

TEST_F(RewriterTest, RewritePreservesControlFlow) {
  RewriteStats stats;
  auto source = RewriteToSource(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "n = len(df)\n"
      "if n > 10:\n"
      "    x = df.tip.sum()\n"
      "else:\n"
      "    x = df.tolls.sum()\n"
      "print(f\"{x}\")\n",
      {}, &stats);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(stats.reads_pruned, 1);
  EXPECT_NE(source->find("usecols=[\"tip\", \"tolls\"]"),
            std::string::npos)
      << *source;
  EXPECT_NE(source->find("if"), std::string::npos);
  EXPECT_NE(source->find("else:"), std::string::npos);
}

}  // namespace
}  // namespace lafp::script
