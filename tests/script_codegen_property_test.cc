// Property: source -> AST -> IR -> regenerated source is a fixpoint
// after one round trip (regenerating the regenerated source gives the
// same text), and every stage re-parses cleanly. Parameterized over a
// corpus of programs covering the whole PdScript surface.
#include <gtest/gtest.h>

#include "script/codegen.h"

namespace lafp::script {
namespace {

std::vector<std::string> Corpus() {
  return {
      // straight-line dataframe pipeline
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"t.csv\")\n"
      "df = df[df.fare > 0]\n"
      "df[\"day\"] = df.pickup.dt.dayofweek\n"
      "out = df.groupby([\"day\"])[\"pax\"].sum()\n"
      "print(out)\n",
      // control flow, arithmetic, f-strings
      "x = 10\n"
      "total = 0\n"
      "while x > 0:\n"
      "    if x % 2 == 0:\n"
      "        total = total + x\n"
      "    else:\n"
      "        total = total - 1\n"
      "    x = x - 1\n"
      "print(f\"total={total}\")\n",
      // kwargs, dicts, lists, merges
      "import pandas as pd\n"
      "a = pd.read_csv(\"a.csv\")\n"
      "b = pd.read_csv(\"b.csv\")\n"
      "j = a.merge(b, on=[\"k\"], how=\"left\")\n"
      "j = j.rename(columns={\"v\": \"value\"})\n"
      "s = j.sort_values(by=[\"value\"], ascending=False)\n"
      "print(s.head(3))\n",
      // isin, concat, boolean operators, unary
      "import pandas as pd\n"
      "a = pd.read_csv(\"a.csv\")\n"
      "b = pd.read_csv(\"b.csv\")\n"
      "both = pd.concat([a, b])\n"
      "m = both[both.city.isin([\"NY\", \"SF\"]) & (both.v > 1.5)]\n"
      "n = len(m)\n"
      "print(f\"rows: {n}\")\n",
      // elif chains and comparisons
      "y = 3\n"
      "if y > 5:\n"
      "    z = \"big\"\n"
      "elif y > 1:\n"
      "    z = \"mid\"\n"
      "else:\n"
      "    z = \"small\"\n"
      "print(z)\n",
      // nested loops
      "i = 0\n"
      "acc = 0\n"
      "while i < 3:\n"
      "    j = 0\n"
      "    while j < 2:\n"
      "        acc = acc + i * j\n"
      "        j = j + 1\n"
      "    i = i + 1\n"
      "print(acc)\n",
  };
}

class CodegenRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CodegenRoundTripTest, RegenerationIsAFixpoint) {
  std::string source = Corpus()[GetParam()];
  auto module1 = Parse(source);
  ASSERT_TRUE(module1.ok()) << module1.status().ToString();
  auto ir1 = LowerToIR(*module1);
  ASSERT_TRUE(ir1.ok()) << ir1.status().ToString();
  auto regen1 = GenerateSource(*ir1);
  ASSERT_TRUE(regen1.ok()) << regen1.status().ToString();

  // The regenerated source parses and regenerates to itself.
  auto module2 = Parse(*regen1);
  ASSERT_TRUE(module2.ok()) << "regen does not parse:\n" << *regen1;
  auto ir2 = LowerToIR(*module2);
  ASSERT_TRUE(ir2.ok());
  auto regen2 = GenerateSource(*ir2);
  ASSERT_TRUE(regen2.ok());
  EXPECT_EQ(*regen1, *regen2) << "codegen is not a fixpoint";

  // Statement counts survive the round trip (no dropped statements).
  EXPECT_EQ(module1->stmts.size(), module2->stmts.size());
}

INSTANTIATE_TEST_SUITE_P(Corpus, CodegenRoundTripTest,
                         ::testing::Range<size_t>(0, Corpus().size()));

TEST(CodegenEdgeTest, EmptyProgram) {
  auto module = Parse("");
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  auto regen = GenerateSource(*ir);
  ASSERT_TRUE(regen.ok());
  EXPECT_TRUE(regen->empty());
}

TEST(CodegenEdgeTest, StringEscapesSurvive) {
  std::string source = "s = \"quote \\\" and backslash \\\\ here\"\nprint(s)\n";
  auto module = Parse(source);
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  auto regen = GenerateSource(*ir);
  ASSERT_TRUE(regen.ok());
  auto module2 = Parse(*regen);
  ASSERT_TRUE(module2.ok()) << *regen;
  // The literal value is preserved through the round trip.
  EXPECT_EQ(module2->stmts[0]->value->str_value,
            module->stmts[0]->value->str_value);
}

}  // namespace
}  // namespace lafp::script
