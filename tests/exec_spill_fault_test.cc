#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "dataframe/ops.h"
#include "exec/partition.h"
#include "exec/spill.h"

namespace lafp::exec {
namespace {

namespace fs = std::filesystem;
using df::Column;
using df::DataFrame;
using df::DataType;

class SpillFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "spill_fault_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global()->Clear();
    fs::remove_all(dir_);
  }

  DataFrame SampleFrame() {
    auto ints = *Column::MakeInt({1, 2, 3, 4}, {1, 0, 1, 1}, &tracker_);
    auto strs = *Column::MakeString({"aa", "", "cc", "dddd"}, {}, &tracker_);
    auto dbls = *Column::MakeDouble({0.5, -1.25, 3.5, 8.0}, {}, &tracker_);
    return *DataFrame::Make({"i", "s", "d"}, {ints, strs, dbls});
  }

  std::vector<char> FileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  std::string dir_;
  MemoryTracker tracker_{0};
};

// The ISSUE's acceptance bar: an injected ENOSPC mid-spill must never
// leave a readable (or even present) partial file behind.
TEST_F(SpillFaultTest, InjectedWriteFaultUnlinksPartialFile) {
  DataFrame frame = SampleFrame();
  for (int nth = 1; nth <= 3; ++nth) {  // fail on each of the 3 columns
    const std::string path =
        dir_ + "/enospc_" + std::to_string(nth) + ".bin";
    FaultScope scope("spill.write:nth=" + std::to_string(nth));
    Status st = WriteSpillFile(frame, path);
    EXPECT_TRUE(st.IsIOError()) << "nth=" << nth << ": " << st.ToString();
    EXPECT_FALSE(fs::exists(path)) << "partial file left at nth=" << nth;
  }
  // With the fault exhausted (single-shot), the same write succeeds.
  const std::string path = dir_ + "/ok.bin";
  ASSERT_TRUE(WriteSpillFile(frame, path).ok());
  ASSERT_TRUE(ReadSpillFile(path, &tracker_).ok());
}

TEST_F(SpillFaultTest, InjectedReadFaultSurfacesCleanly) {
  DataFrame frame = SampleFrame();
  const std::string path = dir_ + "/read.bin";
  ASSERT_TRUE(WriteSpillFile(frame, path).ok());
  FaultScope scope("spill.read:nth=1");
  auto result = ReadSpillFile(path, &tracker_);
  EXPECT_TRUE(result.status().IsIOError());
  // Single-shot: the retry succeeds.
  EXPECT_TRUE(ReadSpillFile(path, &tracker_).ok());
}

TEST_F(SpillFaultTest, PartitionSpillIsRetrySafeAfterFault) {
  auto part = std::make_shared<Partition>(SampleFrame());
  {
    FaultScope scope("spill.write:nth=1");
    EXPECT_FALSE(part->SpillTo(dir_, "p0").ok());
  }
  // The partition kept its in-memory frame; a later spill works and the
  // frame still loads from disk.
  EXPECT_FALSE(part->spilled());
  ASSERT_TRUE(part->SpillTo(dir_, "p0").ok());
  EXPECT_TRUE(part->spilled());
  auto frame = part->Load(&tracker_);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->num_rows(), 4u);
}

// Checked-in corrupt/hostile spill files: every one must fail with a
// clean Status — no crash, no multi-gigabyte allocation from a hostile
// length field.
TEST_F(SpillFaultTest, CorruptCorpusFailsCleanly) {
  const fs::path corpus = LAFP_SPILL_CORPUS_DIR;
  ASSERT_TRUE(fs::exists(corpus)) << corpus;
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.path().extension() != ".bin") continue;
    const int64_t before = tracker_.current();
    auto result = ReadSpillFile(entry.path().string(), &tracker_);
    EXPECT_FALSE(result.ok()) << entry.path().filename();
    EXPECT_EQ(tracker_.current(), before)
        << "tracker leak from " << entry.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 8);
}

// Positive pin: the checked-in zero-row-with-columns encoding (the exact
// bytes shard workers emit for an empty partition) must stay readable
// forever — a clamp tightened for hostile files must not regress it.
TEST_F(SpillFaultTest, ZeroRowCorpusPinStaysReadable) {
  const fs::path pin =
      fs::path(LAFP_SPILL_CORPUS_DIR) / "zero_rows_nonempty_cols.spill";
  ASSERT_TRUE(fs::exists(pin)) << pin;
  auto frame = ReadSpillFile(pin.string(), &tracker_);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->num_rows(), 0u);
  ASSERT_EQ(frame->num_columns(), 2u);
  EXPECT_EQ(frame->names(), (std::vector<std::string>{"i", "s"}));
}

// Every strict prefix of a valid spill file is a truncation the reader
// must reject; none may succeed or crash.
TEST_F(SpillFaultTest, EveryTruncationFailsCleanly) {
  DataFrame frame = SampleFrame();
  const std::string path = dir_ + "/full.bin";
  ASSERT_TRUE(WriteSpillFile(frame, path).ok());
  std::vector<char> bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 20u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string trunc = dir_ + "/trunc.bin";
    std::ofstream(trunc, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(len));
    auto result = ReadSpillFile(trunc, &tracker_);
    EXPECT_FALSE(result.ok()) << "prefix of length " << len << " succeeded";
  }
}

// Single-byte corruptions of the header region: clean failure or a
// successful read (a flipped bit inside string payload can be benign);
// never a crash or unbounded allocation.
TEST_F(SpillFaultTest, HeaderBitFlipsNeverCrash) {
  DataFrame frame = SampleFrame();
  const std::string path = dir_ + "/flip_src.bin";
  ASSERT_TRUE(WriteSpillFile(frame, path).ok());
  std::vector<char> bytes = FileBytes(path);
  const size_t header_span = std::min<size_t>(bytes.size(), 40);
  for (size_t i = 0; i < header_span; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> mutated = bytes;
      mutated[i] ^= static_cast<char>(1 << bit);
      const std::string flipped = dir_ + "/flip.bin";
      std::ofstream(flipped, std::ios::binary | std::ios::trunc)
          .write(mutated.data(),
                 static_cast<std::streamsize>(mutated.size()));
      auto result = ReadSpillFile(flipped, &tracker_);  // must not crash
      if (!result.ok()) continue;
      EXPECT_LE(result->num_rows(), frame.num_rows() + 64);
    }
  }
}

TEST_F(SpillFaultTest, InjectedWriteErrorMentionsSite) {
  DataFrame frame = SampleFrame();
  const std::string path = dir_ + "/named.bin";
  FaultScope scope("spill.write:nth=1");
  Status st = WriteSpillFile(frame, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("spill.write"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace lafp::exec
