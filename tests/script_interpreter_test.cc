#include "script/interpreter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "optimizer/passes.h"
#include "script/analyze.h"

namespace lafp::script {
namespace {

using exec::BackendKind;
using lazy::ExecutionMode;
using lazy::Session;
using lazy::SessionOptions;

class InterpreterTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "interp_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    csv_path_ = dir_ + "/taxi.csv";
    std::ofstream out(csv_path_);
    out << "fare_amount,pickup_datetime,passenger_count,tip,vendor\n";
    for (int i = 0; i < 120; ++i) {
      out << ((i % 10) - 2) << ".5,"
          << "2024-01-" << (i % 28 + 1 < 10 ? "0" : "") << (i % 28 + 1)
          << " 0" << (i % 9) << ":00:00," << (i % 4 + 1) << "," << (i % 3)
          << "," << (i % 2 == 0 ? "acme" : "zoom") << "\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Run `source` and return the captured stdout.
  Result<std::string> Run(const std::string& source, bool analyze,
                          ExecutionMode mode, bool lazy_print = true,
                          bool optimizer = false) {
    SessionOptions opts;
    opts.backend = GetParam();
    opts.backend_config.partition_rows = 32;
    opts.mode = mode;
    opts.lazy_print = lazy_print;
    std::stringstream output;
    opts.output = &output;
    MemoryTracker tracker(0);
    opts.tracker = &tracker;
    Session session(opts);
    if (optimizer) opt::InstallDefaultOptimizer(&session);
    RunOptions run_opts;
    run_opts.analyze = analyze;
    LAFP_RETURN_NOT_OK(RunProgram(source, &session, run_opts));
    return output.str();
  }

  std::string Taxi() const {
    return "import lazyfatpandas.pandas as pd\n"
           "df = pd.read_csv(\"" + csv_path_ + "\")\n"
           "df = df[df.fare_amount > 0]\n"
           "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
           "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
           "checksum(p_per_day)\n";
  }

  std::string dir_, csv_path_;
};

TEST_P(InterpreterTest, TaxiProgramRunsInAllModes) {
  auto eager = Run(Taxi(), /*analyze=*/false, ExecutionMode::kEager);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  auto lazy_plain = Run(Taxi(), false, ExecutionMode::kLazy, false);
  ASSERT_TRUE(lazy_plain.ok()) << lazy_plain.status().ToString();
  auto lafp = Run(Taxi(), true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(lafp.ok()) << lafp.status().ToString();
  // §5.2 regression methodology: identical checksums across modes.
  EXPECT_EQ(*eager, *lazy_plain);
  EXPECT_EQ(*eager, *lafp);
  EXPECT_NE(eager->find("checksum "), std::string::npos);
}

TEST_P(InterpreterTest, ArithmeticAndControlFlow) {
  std::string source =
      "x = 3\n"
      "total = 0\n"
      "while x > 0:\n"
      "    total = total + x * 2\n"
      "    x = x - 1\n"
      "if total == 12:\n"
      "    print(\"twelve\")\n"
      "else:\n"
      "    print(\"bug\")\n";
  auto out = Run(source, false, ExecutionMode::kEager);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "twelve\n");
}

TEST_P(InterpreterTest, PaperFigure7MultiplePrints) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "print(df.head())\n"
      "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
      "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
      "print(p_per_day)\n"
      "avg_fare = df.fare_amount.mean()\n"
      "print(f\"Average fare: {avg_fare}\")\n";
  auto out = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // All three outputs, in program order.
  size_t head_pos = out->find("fare_amount");
  size_t group_pos = out->find("day");
  size_t avg_pos = out->find("Average fare: 2.8");
  ASSERT_NE(head_pos, std::string::npos) << *out;
  ASSERT_NE(group_pos, std::string::npos) << *out;
  ASSERT_NE(avg_pos, std::string::npos) << *out;
  EXPECT_LT(head_pos, avg_pos);
}

TEST_P(InterpreterTest, PaperFigure10ExternalPlotOrdering) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "import matplotlib.pyplot as plt\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "print(df.head())\n"
      "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
      "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
      "print(p_per_day)\n"
      "plt.plot(p_per_day)\n"
      "avg_fare = df.fare_amount.mean()\n"
      "print(f\"Average fare: {avg_fare}\")\n";
  auto out = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // §3.4: pending prints are flushed before the plot output appears, and
  // the final print after it.
  size_t head_pos = out->find("fare_amount");
  size_t plot_pos = out->find("[plt.plot:");
  size_t avg_pos = out->find("Average fare:");
  ASSERT_NE(head_pos, std::string::npos) << *out;
  ASSERT_NE(plot_pos, std::string::npos) << *out;
  ASSERT_NE(avg_pos, std::string::npos) << *out;
  EXPECT_LT(head_pos, plot_pos);
  EXPECT_LT(plot_pos, avg_pos);
}

TEST_P(InterpreterTest, MergeProgram) {
  std::string lookup = dir_ + "/vendors.csv";
  {
    std::ofstream out(lookup);
    out << "vendor,hq\nacme,NY\nzoom,SF\n";
  }
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "trips = pd.read_csv(\"" + csv_path_ + "\")\n"
      "vendors = pd.read_csv(\"" + lookup + "\")\n"
      "j = trips.merge(vendors, on=[\"vendor\"], how=\"inner\")\n"
      "out = j.groupby([\"hq\"])[\"tip\"].sum()\n"
      "checksum(out)\n";
  auto plain = Run(source, false, ExecutionMode::kEager);
  auto lafp = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(lafp.ok()) << lafp.status().ToString();
  EXPECT_EQ(*plain, *lafp);
}

TEST_P(InterpreterTest, SortAndFilterProgram) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "big = df[df.fare_amount > 2]\n"
      "sel = big[[\"fare_amount\", \"passenger_count\"]]\n"
      "top = sel.sort_values(by=[\"fare_amount\"], ascending=False)\n"
      "checksum(top)\n";
  auto plain = Run(source, false, ExecutionMode::kEager);
  auto lafp = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(lafp.ok()) << lafp.status().ToString();
  EXPECT_EQ(*plain, *lafp);
}

TEST_P(InterpreterTest, StringAndCategoryOps) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "df[\"vendor\"] = df.vendor.astype(\"category\")\n"
      "acme = df[df.vendor == \"acme\"]\n"
      "n = len(acme)\n"
      "print(f\"acme trips: {n}\")\n";
  auto out = Run(source, false, ExecutionMode::kEager);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("acme trips: 60"), std::string::npos) << *out;
}

TEST_P(InterpreterTest, ValueCountsAndUnique) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "counts = df.vendor.value_counts()\n"
      "checksum(counts)\n"
      "u = df.passenger_count.unique()\n"
      "n = len(u)\n"
      "print(f\"kinds: {n}\")\n";
  auto plain = Run(source, false, ExecutionMode::kEager);
  auto lafp = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(lafp.ok()) << lafp.status().ToString();
  EXPECT_EQ(*plain, *lafp);
  EXPECT_NE(plain->find("kinds: 4"), std::string::npos);
}

TEST_P(InterpreterTest, FillnaDropnaPipeline) {
  std::string gaps = dir_ + "/gaps.csv";
  {
    std::ofstream out(gaps);
    out << "a,b\n1,\n,x\n3,y\n4,z\n";
  }
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + gaps + "\")\n"
      "filled = df.fillna(0)\n"
      "checksum(filled)\n"
      "clean = df.dropna()\n"
      "n = len(clean)\n"
      "print(f\"clean: {n}\")\n";
  auto plain = Run(source, false, ExecutionMode::kEager);
  auto lafp = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(lafp.ok()) << lafp.status().ToString();
  EXPECT_EQ(*plain, *lafp);
  EXPECT_NE(plain->find("clean: 2"), std::string::npos);
}

TEST_P(InterpreterTest, ScalarFeedbackFilter) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "avg = df.fare_amount.mean()\n"
      "rich = df[df.fare_amount > avg]\n"
      "n = len(rich)\n"
      "print(f\"above mean: {n}\")\n";
  auto plain = Run(source, false, ExecutionMode::kEager);
  auto lafp = Run(source, true, ExecutionMode::kLazy, true, true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(lafp.ok()) << lafp.status().ToString();
  EXPECT_EQ(*plain, *lafp);
}

TEST_P(InterpreterTest, UndefinedVariableError) {
  auto out = Run("print(ghost)\n", false, ExecutionMode::kEager);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kExecutionError);
}

TEST_P(InterpreterTest, MissingColumnSurfacesKeyError) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + csv_path_ + "\")\n"
      "x = df.no_such_column.sum()\n"
      "print(f\"{x}\")\n";
  auto out = Run(source, false, ExecutionMode::kEager);
  EXPECT_TRUE(out.status().IsKeyError()) << out.status().ToString();
}

TEST_P(InterpreterTest, RewrittenProgramReadsFewerColumns) {
  // Observable effect of the §3.1 rewrite: head() after pruning shows
  // only the used columns.
  SessionOptions opts;
  opts.backend = GetParam();
  opts.mode = ExecutionMode::kLazy;
  std::stringstream output;
  opts.output = &output;
  MemoryTracker tracker(0);
  opts.tracker = &tracker;
  Session session(opts);
  RunOptions run_opts;
  run_opts.analyze = true;
  AnalyzeResult analyzed;
  ASSERT_TRUE(RunProgram(Taxi(), &session, run_opts, nullptr, &analyzed)
                  .ok());
  EXPECT_EQ(analyzed.stats.reads_pruned, 1);
  EXPECT_NE(analyzed.regenerated_source.find("usecols="),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, InterpreterTest,
                         ::testing::Values(BackendKind::kPandas,
                                           BackendKind::kModin,
                                           BackendKind::kDask),
                         [](const auto& info) {
                           return exec::BackendKindName(info.param);
                         });

}  // namespace
}  // namespace lafp::script
