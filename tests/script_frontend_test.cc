#include <gtest/gtest.h>

#include "script/cfg.h"
#include "script/codegen.h"
#include "script/model.h"

namespace lafp::script {
namespace {

TEST(LexerTest, TokenizesBasicProgram) {
  auto tokens = Lex("df = pd.read_csv(\"data.csv\")\n");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kName, TokenKind::kAssign, TokenKind::kName,
                TokenKind::kDot, TokenKind::kName, TokenKind::kLParen,
                TokenKind::kString, TokenKind::kRParen, TokenKind::kNewline,
                TokenKind::kEndOfFile}));
  EXPECT_EQ((*tokens)[6].text, "data.csv");
}

TEST(LexerTest, IndentationBlocks) {
  auto tokens = Lex("if x:\n    y = 1\nz = 2\n");
  ASSERT_TRUE(tokens.ok());
  int indents = 0, dedents = 0;
  for (const auto& t : *tokens) {
    indents += t.kind == TokenKind::kIndent;
    dedents += t.kind == TokenKind::kDedent;
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(LexerTest, CommentsAndBlankLinesSkipped) {
  auto tokens = Lex("# header\n\nx = 1  # trailing\n\n");
  ASSERT_TRUE(tokens.ok());
  size_t names = 0;
  for (const auto& t : *tokens) names += t.kind == TokenKind::kName;
  EXPECT_EQ(names, 1u);
}

TEST(LexerTest, OperatorsAndNumbers) {
  auto tokens = Lex("a = (1 + 2.5) * 3 <= x != y\n");
  ASSERT_TRUE(tokens.ok());
  bool saw_le = false, saw_ne = false, saw_float = false;
  for (const auto& t : *tokens) {
    saw_le |= t.kind == TokenKind::kLe;
    saw_ne |= t.kind == TokenKind::kNe;
    saw_float |= t.kind == TokenKind::kFloat;
  }
  EXPECT_TRUE(saw_le && saw_ne && saw_float);
}

TEST(LexerTest, FStringSplitsParts) {
  auto tokens = Lex("print(f\"avg is {x} units\")\n");
  ASSERT_TRUE(tokens.ok());
  const Token* fstr = nullptr;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kFStringStart) fstr = &t;
  }
  ASSERT_NE(fstr, nullptr);
  ASSERT_EQ(fstr->fstring_parts.size(), 3u);
  EXPECT_EQ(fstr->fstring_parts[0], "avg is ");
  EXPECT_EQ(fstr->fstring_parts[1], "x");
  EXPECT_EQ(fstr->fstring_parts[2], " units");
}

TEST(LexerTest, BracketContinuationJoinsLines) {
  auto tokens = Lex("x = foo(1,\n        2)\ny = 3\n");
  ASSERT_TRUE(tokens.ok());
  size_t newlines = 0;
  for (const auto& t : *tokens) newlines += t.kind == TokenKind::kNewline;
  EXPECT_EQ(newlines, 2u);  // one per logical line
}

TEST(LexerTest, RejectsBadIndentAndStrays) {
  EXPECT_FALSE(Lex("x = @\n").ok());
  EXPECT_FALSE(Lex("x = \"unterminated\n").ok());
}

TEST(ParserTest, AssignAndCalls) {
  auto module = Parse(
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"d.csv\")\n"
      "df[\"day\"] = df.pickup.dt.dayofweek\n"
      "x = df.groupby([\"day\"])[\"pax\"].sum()\n"
      "print(x)\n");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ASSERT_EQ(module->stmts.size(), 5u);
  EXPECT_EQ(module->stmts[0]->kind, StmtKind::kImport);
  EXPECT_EQ(module->stmts[0]->alias, "pd");
  EXPECT_EQ(module->stmts[1]->kind, StmtKind::kAssign);
  EXPECT_EQ(module->stmts[2]->target->kind, ExprKind::kSubscript);
  EXPECT_EQ(module->stmts[4]->kind, StmtKind::kExpr);
}

TEST(ParserTest, PrecedenceAndParens) {
  auto expr = ParseExpression("a + b * c");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->ToSource(), "(a + (b * c))");
  auto expr2 = ParseExpression("(a + b) * c");
  ASSERT_TRUE(expr2.ok());
  EXPECT_EQ((*expr2)->ToSource(), "((a + b) * c)");
  auto cmp = ParseExpression("df.fare > 0 ");
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ((*cmp)->kind, ExprKind::kCompare);
}

TEST(ParserTest, MaskConjunction) {
  auto expr = ParseExpression("(df.a > 0) & (df.b < 5)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kBinOp);
  EXPECT_EQ((*expr)->name, "&");
}

TEST(ParserTest, KwargsAndDicts) {
  auto expr = ParseExpression(
      "df.merge(other, on=[\"k\"], how=\"left\")");
  ASSERT_TRUE(expr.ok());
  ASSERT_EQ((*expr)->kwargs.size(), 2u);
  EXPECT_EQ((*expr)->kwargs[0].name, "on");
  EXPECT_EQ((*expr)->kwargs[1].name, "how");
  auto dict = ParseExpression("{\"a\": \"b\", \"c\": \"d\"}");
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ((*dict)->dict_keys.size(), 2u);
}

TEST(ParserTest, IfElifElseAndWhile) {
  auto module = Parse(
      "if x > 1:\n"
      "    y = 1\n"
      "elif x > 0:\n"
      "    y = 2\n"
      "else:\n"
      "    y = 3\n"
      "while y > 0:\n"
      "    y = y - 1\n");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ASSERT_EQ(module->stmts.size(), 2u);
  const Stmt& ifstmt = *module->stmts[0];
  EXPECT_EQ(ifstmt.kind, StmtKind::kIf);
  ASSERT_EQ(ifstmt.else_body.size(), 1u);
  EXPECT_EQ(ifstmt.else_body[0]->kind, StmtKind::kIf);  // elif sugar
  EXPECT_EQ(module->stmts[1]->kind, StmtKind::kWhile);
}

TEST(ParserTest, NegativeNumbersFold) {
  auto expr = ParseExpression("-5");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kIntLit);
  EXPECT_EQ((*expr)->int_value, -5);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("if x:\n").ok());                 // missing block
  EXPECT_FALSE(Parse("x = = 3\n").ok());               // bad expression
  EXPECT_FALSE(Parse("1 = x\n").ok());                 // bad target
}

TEST(LoweringTest, FlattensToTemps) {
  auto module = Parse("y = df[df.a > 0].head(5)\n");
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  // getattr, compare, getitem, head -> several temps; the final assign
  // targets y.
  EXPECT_GE(ir->stmts.size(), 4u);
  EXPECT_EQ(ir->stmts.back().kind, IRStmtKind::kAssign);
  EXPECT_EQ(ir->stmts.back().target, "y");
  bool has_temp = false;
  for (const auto& s : ir->stmts) {
    if (s.kind == IRStmtKind::kAssign && s.target[0] == '$') has_temp = true;
  }
  EXPECT_TRUE(has_temp);
}

TEST(LoweringTest, ControlFlowLabels) {
  auto module = Parse(
      "if a:\n    x = 1\nelse:\n    x = 2\n"
      "while b:\n    x = x - 1\n");
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  int branches = 0, gotos = 0, labels = 0;
  for (const auto& s : ir->stmts) {
    branches += s.kind == IRStmtKind::kBranch;
    gotos += s.kind == IRStmtKind::kGoto;
    labels += s.kind == IRStmtKind::kLabel;
  }
  EXPECT_EQ(branches, 2);
  EXPECT_GE(gotos, 2);  // if-else end jump + loop back edge
  EXPECT_GE(labels, 5);
}

TEST(CfgTest, StraightLineIsOneBlock) {
  auto module = Parse("a = 1\nb = 2\nc = a\n");
  auto ir = LowerToIR(*module);
  auto cfg = BuildCfg(*ir);
  ASSERT_TRUE(cfg.ok());
  // One real block plus the virtual exit.
  EXPECT_EQ(cfg->blocks.size(), 2u);
  EXPECT_EQ(cfg->blocks[0].succs, std::vector<int>{1});
}

TEST(CfgTest, WhileLoopHasBackEdge) {
  auto module = Parse("x = 3\nwhile x > 0:\n    x = x - 1\ny = x\n");
  auto ir = LowerToIR(*module);
  auto cfg = BuildCfg(*ir);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  bool back_edge = false;
  for (const auto& block : cfg->blocks) {
    for (int succ : block.succs) {
      if (succ <= block.id) back_edge = true;
    }
  }
  EXPECT_TRUE(back_edge);
  EXPECT_FALSE(cfg->ToDot().empty());
}

TEST(CfgTest, BranchHasTwoSuccessors) {
  auto module = Parse("if a:\n    x = 1\nelse:\n    x = 2\ny = x\n");
  auto ir = LowerToIR(*module);
  auto cfg = BuildCfg(*ir);
  ASSERT_TRUE(cfg.ok());
  bool found = false;
  for (const auto& block : cfg->blocks) {
    if (block.stmts.empty()) continue;
    const IRStmt& last = ir->stmts[block.stmts.back()];
    if (last.kind == IRStmtKind::kBranch) {
      EXPECT_EQ(block.succs.size(), 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelTest, InfersKindsAcrossChains) {
  auto module = Parse(
      "import lazyfatpandas.pandas as pd\n"
      "import matplotlib.pyplot as plt\n"
      "df = pd.read_csv(\"d.csv\")\n"
      "fare = df.fare_amount\n"
      "mask = fare > 0\n"
      "small = df[mask]\n"
      "gb = small.groupby([\"day\"])\n"
      "series = gb[\"pax\"]\n"
      "total = series.sum()\n"
      "n = len(df)\n");
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  ProgramModel model = BuildProgramModel(*ir);
  EXPECT_TRUE(model.IsPandasModule("pd"));
  EXPECT_TRUE(model.IsExternalModule("plt"));
  EXPECT_EQ(model.KindOf("df"), VarKind::kDataFrame);
  EXPECT_EQ(model.KindOf("fare"), VarKind::kSeries);
  EXPECT_EQ(model.Find("fare")->column, "fare_amount");
  EXPECT_EQ(model.KindOf("mask"), VarKind::kSeries);
  EXPECT_EQ(model.KindOf("small"), VarKind::kDataFrame);
  EXPECT_EQ(model.KindOf("gb"), VarKind::kGroupBy);
  EXPECT_EQ(model.Find("gb")->groupby_keys,
            std::vector<std::string>{"day"});
  EXPECT_EQ(model.KindOf("series"), VarKind::kGroupByCol);
  // A grouped-column aggregate is a keyed frame (day + pax), not a scalar.
  EXPECT_EQ(model.KindOf("total"), VarKind::kDataFrame);
  EXPECT_EQ(model.KindOf("n"), VarKind::kScalar);
}

TEST(ModelTest, RecordsAssignedColumns) {
  auto module = Parse(
      "import pandas as pd\n"
      "df = pd.read_csv(\"d.csv\")\n"
      "df[\"day\"] = df.a\n");
  auto ir = LowerToIR(*module);
  ProgramModel model = BuildProgramModel(*ir);
  EXPECT_EQ(model.assigned_columns.count("day"), 1u);
  EXPECT_EQ(model.assigned_columns.count("a"), 0u);
}

TEST(CodegenTest, RoundTripsStraightLine) {
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"d.csv\")\n"
      "df[\"day\"] = df.pickup.dt.dayofweek\n"
      "x = df.groupby([\"day\"])[\"pax\"].sum()\n"
      "print(x)\n";
  auto module = Parse(source);
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  auto regen = GenerateSource(*ir);
  ASSERT_TRUE(regen.ok()) << regen.status().ToString();
  // Temps are inlined back: no $ left, statements intact.
  EXPECT_EQ(regen->find('$'), std::string::npos) << *regen;
  EXPECT_NE(regen->find("df = pd.read_csv(\"d.csv\")"), std::string::npos);
  EXPECT_NE(regen->find("df[\"day\"] = df.pickup.dt.dayofweek"),
            std::string::npos);
  EXPECT_NE(regen->find("print(x)"), std::string::npos);
  // And the regenerated source parses again.
  EXPECT_TRUE(Parse(*regen).ok());
}

TEST(CodegenTest, RoundTripsControlFlow) {
  std::string source =
      "x = 3\n"
      "total = 0\n"
      "while x > 0:\n"
      "    total = total + x\n"
      "    x = x - 1\n"
      "if total > 5:\n"
      "    y = 1\n"
      "else:\n"
      "    y = 2\n"
      "print(y)\n";
  auto module = Parse(source);
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  auto regen = GenerateSource(*ir);
  ASSERT_TRUE(regen.ok()) << regen.status().ToString();
  EXPECT_NE(regen->find("while"), std::string::npos);
  EXPECT_NE(regen->find("if"), std::string::npos);
  EXPECT_NE(regen->find("else:"), std::string::npos);
  // Regenerated source must parse and re-lower.
  auto module2 = Parse(*regen);
  ASSERT_TRUE(module2.ok()) << *regen;
  EXPECT_TRUE(LowerToIR(*module2).ok());
}

TEST(CodegenTest, NestedControlFlow) {
  std::string source =
      "x = 4\n"
      "while x > 0:\n"
      "    if x > 2:\n"
      "        x = x - 2\n"
      "    else:\n"
      "        x = x - 1\n"
      "print(x)\n";
  auto module = Parse(source);
  ASSERT_TRUE(module.ok());
  auto ir = LowerToIR(*module);
  ASSERT_TRUE(ir.ok());
  auto regen = GenerateSource(*ir);
  ASSERT_TRUE(regen.ok()) << regen.status().ToString();
  EXPECT_TRUE(Parse(*regen).ok()) << *regen;
}

}  // namespace
}  // namespace lafp::script
