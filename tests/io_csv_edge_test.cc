#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/csv.h"

namespace lafp::io {
namespace {

class CsvEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "csv_edge_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
  MemoryTracker tracker_{0};
};

TEST_F(CsvEdgeTest, DuplicateHeaderNamesRejected) {
  WriteFile("a,b,a\n1,2,3\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  EXPECT_FALSE(frame.ok());
}

TEST_F(CsvEdgeTest, RaggedShortRowsPadWithNulls) {
  WriteFile("a,b,c\n1,2,3\n4,5\n6\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->num_rows(), 3u);
  EXPECT_EQ((*frame->column("c"))->IntAt(0), 3);
  EXPECT_FALSE((*frame->column("c"))->IsValid(1));
  EXPECT_FALSE((*frame->column("b"))->IsValid(2));
}

TEST_F(CsvEdgeTest, TypeDriftAfterInferenceWindowCoerces) {
  // The inference window sees only integers; a later alphabetic value
  // cannot be represented and becomes null (errors='coerce' semantics).
  std::string content = "v\n";
  for (int i = 0; i < 70; ++i) content += std::to_string(i) + "\n";
  content += "oops\n";
  WriteFile(content);
  CsvReadOptions opts;
  opts.infer_rows = 64;
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("v"))->type(), df::DataType::kInt64);
  EXPECT_EQ(frame->num_rows(), 71u);
  EXPECT_FALSE((*frame->column("v"))->IsValid(70));
}

TEST_F(CsvEdgeTest, WideInferenceWindowAvoidsTheDrift) {
  std::string content = "v\n";
  for (int i = 0; i < 70; ++i) content += std::to_string(i) + "\n";
  content += "oops\n";
  WriteFile(content);
  CsvReadOptions opts;
  opts.infer_rows = 200;  // sees the string: column inferred as string
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("v"))->type(), df::DataType::kString);
  EXPECT_EQ((*frame->column("v"))->StringAt(70), "oops");
}

TEST_F(CsvEdgeTest, VeryLongFieldSurvives) {
  std::string big(100000, 'x');
  WriteFile("a,b\n1," + big + "\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("b"))->StringAt(0).size(), big.size());
}

TEST_F(CsvEdgeTest, ExtraFieldsAreIgnored) {
  WriteFile("a,b\n1,2,3,4\n5,6\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_columns(), 2u);
  EXPECT_EQ((*frame->column("b"))->IntAt(0), 2);
}

TEST_F(CsvEdgeTest, WhitespaceOnlyNumbersAreNull) {
  WriteFile("a\n1\n   \n3\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 3u);
  EXPECT_FALSE((*frame->column("a"))->IsValid(1));
}

TEST_F(CsvEdgeTest, NegativeAndScientificNumbers) {
  WriteFile("a,b\n-5,1e3\n+0,-2.5E-2\n");
  auto frame = ReadCsv(path_, {}, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame->column("a"))->type(), df::DataType::kInt64);
  EXPECT_EQ((*frame->column("a"))->IntAt(0), -5);
  EXPECT_EQ((*frame->column("b"))->type(), df::DataType::kDouble);
  EXPECT_DOUBLE_EQ((*frame->column("b"))->DoubleAt(0), 1000.0);
  EXPECT_DOUBLE_EQ((*frame->column("b"))->DoubleAt(1), -0.025);
}

TEST_F(CsvEdgeTest, UsecolsSingleOfMany) {
  std::string content = "a,b,c,d\n";
  for (int i = 0; i < 10; ++i) content += "1,2,3,4\n";
  WriteFile(content);
  CsvReadOptions opts;
  opts.usecols = {"d"};
  auto frame = ReadCsv(path_, opts, &tracker_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_columns(), 1u);
  EXPECT_EQ(frame->names()[0], "d");
  EXPECT_EQ((*frame->column("d"))->IntAt(9), 4);
}

}  // namespace
}  // namespace lafp::io
