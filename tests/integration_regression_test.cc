// The §5.2 regression framework as a test: every benchmark program runs
// under all six configurations at the small scale; all successful runs
// must produce checksum lines identical to the plain-Pandas reference.
// Also a failure-injection sweep: under shrinking memory budgets every
// run must either succeed with the right answer or fail cleanly with
// kOutOfMemory — never crash, never return a wrong result.
#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/programs.h"

namespace lafp::bench {
namespace {

class RegressionTest : public ::testing::TestWithParam<std::string> {
 protected:
  static std::string ScratchDir() {
    static std::string dir =
        ::testing::TempDir() + "lafp_integration_bench";
    return dir;
  }
};

TEST_P(RegressionTest, AllConfigurationsAgreeWithPandas) {
  const std::string& program = GetParam();
  auto paths = GenerateForProgram(program, ScratchDir(), /*scale=*/1);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();

  std::string reference;
  for (const auto& config : AllConfigs(/*budget=*/0)) {
    BenchResult r = RunBenchmark(program, *paths, config, ScratchDir());
    ASSERT_TRUE(r.success)
        << ConfigName(config) << ": " << r.status.ToString();
    ASSERT_FALSE(r.checksums.empty())
        << program << " emits no checksum lines";
    if (reference.empty()) {
      reference = r.checksums;
    } else {
      EXPECT_EQ(r.checksums, reference) << ConfigName(config);
    }
  }
}

TEST_P(RegressionTest, BudgetSweepFailsCleanlyOrAgrees) {
  const std::string& program = GetParam();
  auto paths = GenerateForProgram(program, ScratchDir(), /*scale=*/1);
  ASSERT_TRUE(paths.ok());

  // Reference at unlimited budget on plain Pandas.
  BenchConfig reference_config;
  reference_config.backend = exec::BackendKind::kPandas;
  BenchResult reference =
      RunBenchmark(program, *paths, reference_config, ScratchDir());
  ASSERT_TRUE(reference.success);

  for (int64_t budget : {int64_t{200'000}, int64_t{2'000'000},
                         int64_t{8'000'000}, int64_t{64'000'000}}) {
    for (auto backend :
         {exec::BackendKind::kPandas, exec::BackendKind::kDask}) {
      for (bool optimized : {false, true}) {
        BenchConfig config;
        config.backend = backend;
        config.optimized = optimized;
        config.memory_budget = budget;
        BenchResult r = RunBenchmark(program, *paths, config, ScratchDir());
        if (r.success) {
          EXPECT_EQ(r.checksums, reference.checksums)
              << ConfigName(config) << " @" << budget;
        } else {
          // The only acceptable failure is a clean budget rejection.
          EXPECT_TRUE(r.status.IsOutOfMemory())
              << ConfigName(config) << " @" << budget << ": "
              << r.status.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, RegressionTest,
                         ::testing::ValuesIn(ProgramNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lafp::bench
