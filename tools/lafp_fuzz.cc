// Differential fuzzer CLI: random PdScript programs cross-checked
// against the eager Pandas oracle across backends, optimizer pass
// subsets, thread counts, and morsel geometry.
//
//   lafp_fuzz --seed 42 --iters 500
//
// Exits 0 when every program agrees under every sampled configuration,
// 1 on any divergence (shrunk repros are written to --corpus-dir).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/trace.h"
#include "testing/fuzzer.h"

namespace {

void Usage() {
  std::cerr
      << "usage: lafp_fuzz [options]\n"
      << "  --seed N          base RNG seed (default 0)\n"
      << "  --iters N         programs to generate (default 100)\n"
      << "  --matrix N        configs sampled per program (default 8)\n"
      << "  --data-dir DIR    scratch dir for generated CSVs\n"
      << "  --corpus-dir DIR  write shrunk repros here (default\n"
      << "                    tests/fuzz_corpus next to the source tree\n"
      << "                    is NOT assumed; no corpus unless given)\n"
      << "  --faults          add the fault-injection axis: each program\n"
      << "                    also runs with injected IO/OOM/exec faults;\n"
      << "                    clean failure or identical output required\n"
      << "  --cache           add the result-cache axis: each program also\n"
      << "                    runs cold-then-warm against a shared plan/\n"
      << "                    result cache; warm must match the reference\n"
      << "  --lfc             add the native-columnar axis: each program\n"
      << "                    also replays with its base tables converted\n"
      << "                    to LFC (zone-map pruning on and off); output\n"
      << "                    must match the CSV reference exactly\n"
      << "  --shards          add the shared-nothing axis: each program\n"
      << "                    also runs on the shard backend with 1/2/4\n"
      << "                    forked worker processes; output must match\n"
      << "                    the single-process reference exactly\n"
      << "  --trace PATH      enable structured tracing and write a\n"
      << "                    Chrome trace_event JSON to PATH at exit\n"
      << "  --no-shrink       keep failing programs unminimized\n"
      << "  --shrink-budget N predicate evaluations per shrink (400)\n"
      << "  --max-statements N program length cap (default 12)\n"
      << "  --no-control-flow  disable if/for/while generation\n"
      << "  --quiet           suppress progress logging\n";
}

bool ParseUint64(const char* text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0' && end != text;
}

bool ParseInt(const char* text, int* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || end == text) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lafp::testing::FuzzOptions options;
  options.log = &std::cerr;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &options.seed)) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--iters") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &options.iters)) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--matrix") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &options.matrix)) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--data-dir") == 0) {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      options.data_dir = v;
    } else if (std::strcmp(arg, "--corpus-dir") == 0) {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      options.corpus_dir = v;
    } else if (std::strcmp(arg, "--replay-seed") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &options.replay_seed)) {
        Usage();
        return 2;
      }
      options.replay = true;
    } else if (std::strcmp(arg, "--run-corpus") == 0) {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      options.corpus_file = v;
    } else if (std::strcmp(arg, "--trace") == 0) {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      trace_path = v;
      lafp::trace::Tracer::Global()->set_enabled(true);
    } else if (std::strcmp(arg, "--faults") == 0) {
      options.faults = true;
    } else if (std::strcmp(arg, "--cache") == 0) {
      options.cache = true;
    } else if (std::strcmp(arg, "--lfc") == 0) {
      options.lfc = true;
    } else if (std::strcmp(arg, "--shards") == 0) {
      options.shards = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(arg, "--shrink-budget") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &options.shrink_budget)) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--max-statements") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &options.progen.max_statements)) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--no-control-flow") == 0) {
      options.progen.control_flow = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.log = nullptr;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage();
      return 2;
    }
  }

  lafp::testing::FuzzStats stats = lafp::testing::RunFuzz(options);

  std::cout << "lafp_fuzz: " << stats.iterations << " programs, "
            << stats.reference_failures << " reference failures, "
            << stats.divergences.size() << " divergences\n";
  for (const auto& d : stats.divergences) {
    std::cout << "  seed " << d.program_seed << " under " << d.config_name;
    if (!d.corpus_path.empty()) std::cout << " -> " << d.corpus_path;
    std::cout << "\n";
  }
  if (!trace_path.empty()) {
    lafp::Status trace_status =
        lafp::trace::Tracer::Global()->WriteChromeTrace(trace_path);
    if (!trace_status.ok()) {
      std::cerr << "trace export failed: " << trace_status.ToString() << "\n";
    } else {
      std::cout << "trace written to " << trace_path << "\n";
    }
  }
  return stats.divergences.empty() ? 0 : 1;
}
