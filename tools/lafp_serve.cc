// lafp_serve: the LaFP query service. Accepts PdScript programs over
// HTTP, runs each request in an isolated session against shared engine
// pools, and exposes a metrics scrape.
//
//   lafp_serve --port 8080 --threads 8 --max-sessions 8 --budget-mb 1024
//   curl -s -X POST --data-binary @program.py localhost:8080/run
//   curl -s localhost:8080/metrics

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

void Usage() {
  std::cerr <<
      "usage: lafp_serve [options]\n"
      "  --port N          listen port (default 8080; 0 = ephemeral)\n"
      "  --threads N       HTTP worker threads (default 8)\n"
      "  --max-sessions N  concurrent /run admission cap (default 8)\n"
      "  --budget-mb N     process memory budget in MiB (default 0 = off)\n"
      "  --cache-mb N      shared result-cache capacity in MiB "
      "(default 256; 0 = off)\n"
      "  --session-threads N  scheduler threads per session (default 4)\n"
      "  --intra-op N      morsel threads per kernel (default 0 = off)\n"
      "  --backend NAME    default backend: pandas|modin|dask "
      "(default pandas)\n";
}

}  // namespace

int main(int argc, char** argv) {
  lafp::serve::ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--threads") {
      options.worker_threads = std::atoi(next());
    } else if (arg == "--max-sessions") {
      options.max_sessions = std::atoi(next());
    } else if (arg == "--budget-mb") {
      options.memory_budget_bytes = std::atoll(next()) << 20;
    } else if (arg == "--cache-mb") {
      options.cache_bytes = static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--session-threads") {
      options.session_threads = std::atoi(next());
    } else if (arg == "--intra-op") {
      options.intra_op_threads = std::atoi(next());
    } else if (arg == "--backend") {
      std::string name = next();
      if (name == "pandas") {
        options.default_backend = lafp::exec::BackendKind::kPandas;
      } else if (name == "modin") {
        options.default_backend = lafp::exec::BackendKind::kModin;
      } else if (name == "dask") {
        options.default_backend = lafp::exec::BackendKind::kDask;
      } else {
        std::cerr << "unknown backend '" << name << "'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      Usage();
      return 2;
    }
  }

  lafp::serve::QueryService service(options);
  lafp::Status started = service.Start();
  if (!started.ok()) {
    std::cerr << "lafp_serve: " << started.ToString() << "\n";
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "lafp_serve listening on port " << service.port()
            << " (max " << service.options().max_sessions
            << " concurrent sessions)" << std::endl;
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "lafp_serve: shutting down" << std::endl;
  service.Stop();
  return 0;
}
