// CSV -> LFC converter and LFC inspector.
//
//   lafp_convert input.csv output.lfc [--chunk-rows N] [--usecols a,b]
//   lafp_convert --info table.lfc [--zones]
//
// Conversion streams through the eager CSV reader (type inference and
// dtype overrides included) and writes the native columnar format with
// an atomic rename; --info dumps the footer metadata (schema, chunk
// layout, optional per-chunk zone maps) without decoding any payload.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "dataframe/types.h"
#include "io/columnar.h"
#include "io/csv.h"

namespace {

void Usage() {
  std::cerr
      << "usage: lafp_convert INPUT.csv OUTPUT.lfc [options]\n"
      << "       lafp_convert --info FILE.lfc [--zones]\n"
      << "  --chunk-rows N   rows per chunk / zone map (default 65536)\n"
      << "  --usecols a,b,c  convert only these columns (file order)\n"
      << "  --delimiter C    CSV field delimiter (default ',')\n"
      << "  --nrows N        convert at most N data rows\n"
      << "  --category COL   read COL as a dictionary-encoded category\n"
      << "                   (repeatable)\n"
      << "  --info           print schema/chunk metadata of an LFC file\n"
      << "  --zones          with --info, also dump per-chunk zone maps\n";
}

bool ParseSize(const char* text, size_t* out) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0' || end == text) return false;
  *out = static_cast<size_t>(value);
  return true;
}

int Info(const std::string& path, bool zones) {
  auto info = lafp::io::ReadLfcInfo(path);
  if (!info.ok()) {
    std::cerr << "lafp_convert: " << info.status().ToString() << "\n";
    return 1;
  }
  std::cout << path << ": " << info->nrows << " rows, "
            << info->num_chunks << " chunks, " << info->columns.size()
            << " columns (footer checksum " << std::hex
            << info->footer_checksum << std::dec << ")\n";
  for (const auto& col : info->columns) {
    std::cout << "  " << col.name << ": " << lafp::df::DataTypeName(col.type)
              << "\n";
  }
  if (!zones) return 0;

  lafp::MemoryTracker tracker;
  auto reader = lafp::io::LfcReader::Open(path, &tracker);
  if (!reader.ok()) {
    std::cerr << "lafp_convert: " << reader.status().ToString() << "\n";
    return 1;
  }
  for (size_t c = 0; c < info->columns.size(); ++c) {
    std::cout << "  zones for " << info->columns[c].name << ":\n";
    for (size_t k = 0; k < (*reader)->num_chunks(); ++k) {
      const lafp::io::LfcZoneMap& z = (*reader)->zone_map(c, k);
      std::cout << "    chunk " << k << ": rows="
                << (*reader)->chunk_rows(k) << " nulls=" << z.null_count;
      if (z.has_bounds) {
        std::cout << " int=[" << z.min_i << "," << z.max_i << "]"
                  << " dbl=[" << z.min_d << "," << z.max_d << "]";
      } else {
        std::cout << " (no bounds)";
      }
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  lafp::io::CsvReadOptions csv_options;
  lafp::io::LfcWriteOptions write_options;
  bool info = false;
  bool zones = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--chunk-rows") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseSize(v, &write_options.chunk_rows) ||
          write_options.chunk_rows == 0) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--usecols") == 0) {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      for (auto& name : lafp::Split(v, ','))
        csv_options.usecols.push_back(name);
    } else if (std::strcmp(arg, "--delimiter") == 0) {
      const char* v = next();
      if (v == nullptr || std::strlen(v) != 1) {
        Usage();
        return 2;
      }
      csv_options.delimiter = v[0];
    } else if (std::strcmp(arg, "--nrows") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseSize(v, &csv_options.nrows)) {
        Usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--category") == 0) {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      csv_options.dtypes[v] = lafp::df::DataType::kCategory;
    } else if (std::strcmp(arg, "--info") == 0) {
      info = true;
    } else if (std::strcmp(arg, "--zones") == 0) {
      zones = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (info) {
    if (positional.size() != 1) {
      Usage();
      return 2;
    }
    return Info(positional[0], zones);
  }

  if (positional.size() != 2) {
    Usage();
    return 2;
  }
  const std::string& csv_path = positional[0];
  const std::string& lfc_path = positional[1];

  lafp::MemoryTracker tracker;
  lafp::Status status = lafp::io::ConvertCsvToLfc(
      csv_path, lfc_path, csv_options, write_options, &tracker);
  if (!status.ok()) {
    std::cerr << "lafp_convert: " << status.ToString() << "\n";
    return 1;
  }
  auto out = lafp::io::ReadLfcInfo(lfc_path);
  if (!out.ok()) {
    std::cerr << "lafp_convert: wrote " << lfc_path
              << " but could not read it back: " << out.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << csv_path << " -> " << lfc_path << ": " << out->nrows
            << " rows, " << out->columns.size() << " columns, "
            << out->num_chunks << " chunks\n";
  return 0;
}
