// Runs one analytical program under all six configurations the paper
// evaluates ({Pandas, Modin, Dask} x {plain, LaFP}) under a memory budget
// and prints a miniature of Figures 13/15: time, peak tracked memory, and
// success. Shows the choose-your-backend value proposition of §2.6.
//
//   ./build/examples/backend_comparison
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/timer.h"
#include "optimizer/passes.h"
#include "script/analyze.h"

using namespace lafp;

int main() {
  std::string path =
      (std::filesystem::temp_directory_path() / "orders_example.csv")
          .string();
  {
    std::ofstream out(path);
    out << "order,product,qty,price,region,note_a,note_b,note_c\n";
    for (int i = 0; i < 200000; ++i) {
      out << i << ",p" << (i % 50) << "," << (i % 9 + 1) << ","
          << (i % 500) * 0.75 << ","
          << (i % 4 == 0 ? "north" : (i % 4 == 1 ? "south"
                                                 : (i % 4 == 2 ? "east"
                                                               : "west")))
          << ",lorem,ipsum,dolor\n";
    }
  }
  std::string program =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + path + "\")\n"
      "df[\"revenue\"] = df.price * df.qty\n"
      "big = df[df.revenue > 1000.0]\n"
      "by_region = big.groupby([\"region\"])[\"revenue\"].sum()\n"
      "print(by_region)\n";

  constexpr int64_t kBudget = 48LL * 1000 * 1000;  // deliberately tight
  std::printf("one program, six configurations (budget %lld MB)\n\n",
              static_cast<long long>(kBudget / 1000000));
  std::printf("%-10s %10s %12s %8s\n", "config", "time (s)", "peak (MB)",
              "status");

  for (auto backend :
       {exec::BackendKind::kPandas, exec::BackendKind::kModin,
        exec::BackendKind::kDask}) {
    for (bool optimized : {false, true}) {
      MemoryTracker tracker(kBudget);
      lazy::SessionOptions options;
      options.backend = backend;
      options.tracker = &tracker;
      options.backend_config.partition_rows = 16384;
      std::stringstream sink;
      options.output = &sink;  // keep the table clean
      if (optimized) {
        options.mode = lazy::ExecutionMode::kLazy;
        options.lazy_print = true;
      } else if (backend == exec::BackendKind::kDask) {
        options.mode = lazy::ExecutionMode::kLazy;
        options.lazy_print = false;
      } else {
        options.mode = lazy::ExecutionMode::kEager;
      }
      lazy::Session session(options);
      if (optimized) opt::InstallDefaultOptimizer(&session);

      script::RunOptions run;
      run.analyze = optimized;
      Timer timer;
      Status st = script::RunProgram(program, &session, run);
      std::string name = std::string(optimized ? "L" : "") +
                         exec::BackendKindName(backend);
      std::printf("%-10s %10.3f %12.1f %8s\n", name.c_str(),
                  timer.ElapsedSeconds(), tracker.peak() / 1e6,
                  st.ok() ? "ok" : StatusCodeToString(st.code()));
    }
  }
  std::printf(
      "\nReading: the eager engines hold everything (and OOM first as\n"
      "data grows); LaFP's column selection shrinks them; Dask streams\n"
      "within the budget, and LDask adds the paper's rewrites on top.\n");
  std::filesystem::remove(path);
  return 0;
}
