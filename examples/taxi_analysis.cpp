// The paper end-to-end: a plain-pandas program (Figure 3) is JIT-analyzed
// (pd.analyze()), rewritten (Figure 4: usecols column selection, lazy
// print, flush) and executed on the LaFP lazy runtime.
//
//   ./build/examples/taxi_analysis
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "optimizer/passes.h"
#include "script/analyze.h"

using namespace lafp;

int main() {
  // A 20-column taxi file of which the program uses only 3 — the setting
  // of the paper's §3.1 walkthrough.
  std::string path =
      (std::filesystem::temp_directory_path() / "taxi_example.csv")
          .string();
  {
    std::ofstream out(path);
    out << "trip_id,pickup_datetime,dropoff_datetime,passenger_count,"
           "trip_distance,fare_amount,tip,tolls,extra,total,vendor,"
           "payment,pzone,dzone,rate,fwd,tax,surcharge,airport,driver\n";
    for (int i = 0; i < 5000; ++i) {
      out << i << ",2023-07-" << (i % 28 + 1 < 10 ? "0" : "")
          << (i % 28 + 1) << " 10:00:00,2023-07-01 11:00:00,"
          << (i % 5 + 1) << ",3.2," << (i % 40) - 4
          << ".5,1,0,0.5,20,1,card,a,b,1,N,0.5,0.3,0,77\n";
    }
  }

  std::string program =
      "import lazyfatpandas.pandas as pd\n"
      "pd.analyze()\n"
      "df = pd.read_csv(\"" + path + "\")\n"
      "df = df[df.fare_amount > 0]\n"
      "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
      "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
      "print(p_per_day)\n"
      "avg_fare = df.fare_amount.mean()\n"
      "print(f\"Average fare: {avg_fare}\")\n";

  std::printf("---- original program (paper Figure 3) ----\n%s\n",
              program.c_str());

  // pd.analyze(): parse -> SCIRPy -> CFG -> live attribute analysis ->
  // rewrite -> regenerate.
  auto analyzed = script::Analyze(program);
  if (!analyzed.ok()) {
    std::cerr << analyzed.status().ToString() << "\n";
    return 1;
  }
  std::printf("---- rewritten program (paper Figure 4) ----\n%s\n",
              analyzed->regenerated_source.c_str());
  std::printf("analysis took %.4f s; %d read(s) pruned\n\n",
              analyzed->analysis_seconds, analyzed->stats.reads_pruned);

  // Execute the rewritten program on the LaFP lazy runtime with the graph
  // optimizer installed.
  lazy::SessionOptions options;
  options.backend = exec::BackendKind::kPandas;
  options.mode = lazy::ExecutionMode::kLazy;
  lazy::Session session(options);
  opt::InstallDefaultOptimizer(&session);

  std::printf("---- program output ----\n");
  script::RunOptions run;
  run.analyze = true;
  Status st = script::RunProgram(program, &session, run);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::filesystem::remove(path);
  return 0;
}
