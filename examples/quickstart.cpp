// Quickstart: the LaFP C++ API in ~60 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// A Session owns the task graph and a pluggable backend; FatDataFrame is
// the lazy pandas-like handle. Nothing executes until Compute() — switch
// the backend line to kModin or kDask and the same program runs there.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "lazy/fat_dataframe.h"

using namespace lafp;

int main() {
  // A small taxi-like dataset.
  std::string path =
      (std::filesystem::temp_directory_path() / "quickstart_trips.csv")
          .string();
  {
    std::ofstream out(path);
    out << "fare,pickup,passengers\n";
    for (int i = 0; i < 1000; ++i) {
      out << (i % 30) - 3 << ".5,2024-03-" << (i % 28 + 1 < 10 ? "0" : "")
          << (i % 28 + 1) << " 09:00:00," << (i % 4 + 1) << "\n";
    }
  }

  // Pick the backend here: kPandas (eager engine), kModin (partition-
  // parallel) or kDask (lazy, streaming, out-of-core).
  lazy::SessionOptions options;
  options.backend = exec::BackendKind::kDask;
  lazy::Session session(options);

  auto check = [](const auto& result) {
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      std::exit(1);
    }
    return *result;
  };

  // df = pd.read_csv(path)
  lazy::FatDataFrame df =
      check(lazy::FatDataFrame::ReadCsv(&session, path));
  // df = df[df.fare > 0]
  lazy::FatDataFrame fare = check(df.Col("fare"));
  lazy::FatDataFrame mask =
      check(fare.CompareTo(df::CompareOp::kGt, df::Scalar::Double(0)));
  lazy::FatDataFrame valid = check(df.FilterBy(mask));
  // df["day"] = df.pickup.dt.dayofweek
  lazy::FatDataFrame day =
      check(check(check(valid.Col("pickup")).ToDatetime())
                .Dt(df::DtField::kDayOfWeek));
  lazy::FatDataFrame with_day = check(valid.SetCol("day", day));
  // per_day = df.groupby(["day"])["passengers"].sum()
  lazy::FatDataFrame per_day = check(with_day.GroupByAgg(
      {"day"}, {{"passengers", df::AggFunc::kSum, "passengers"}}));

  // Up to here nothing ran; this is the task graph the paper draws in
  // Figure 6:
  std::printf("task graph:\n%s\n", per_day.DebugDot().c_str());

  // Compute() optimizes and executes on the chosen backend.
  df::DataFrame result = check(per_day.ToEager());
  std::printf("passengers per weekday (%s backend):\n%s",
              session.backend()->name(), result.ToString(10).c_str());

  // Lazy scalars participate in expressions and only force on Value().
  lazy::LazyScalar avg = check(fare.Mean());
  std::printf("average fare: %s\n",
              check(avg.Value()).ToString().c_str());

  std::filesystem::remove(path);
  return 0;
}
