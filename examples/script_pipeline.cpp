// A guided tour of the static-analysis pipeline (paper §2.1-§2.4):
// PdScript source -> tokens -> AST -> SCIRPy IR -> CFG -> live attribute
// analysis -> rewritten IR -> regenerated source. Prints every stage.
//
//   ./build/examples/script_pipeline
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "script/analysis.h"
#include "script/codegen.h"
#include "script/rewriter.h"

using namespace lafp;
using namespace lafp::script;

int main() {
  std::string path =
      (std::filesystem::temp_directory_path() / "pipeline_example.csv")
          .string();
  {
    std::ofstream out(path);
    out << "a,b,c,d,e\n";
    for (int i = 0; i < 100; ++i) {
      out << i << "," << i * 2 << "," << i % 7 << ",x,y\n";
    }
  }
  std::string source =
      "import lazyfatpandas.pandas as pd\n"
      "df = pd.read_csv(\"" + path + "\")\n"
      "n = len(df)\n"
      "if n > 10:\n"
      "    out = df.groupby([\"c\"])[\"a\"].sum()\n"
      "else:\n"
      "    out = df.groupby([\"c\"])[\"b\"].sum()\n"
      "print(out)\n";

  std::printf("---- source ----\n%s\n", source.c_str());

  auto fail = [](const Status& st) {
    std::cerr << st.ToString() << "\n";
    std::exit(1);
  };

  // 1. Lex + parse.
  auto module = Parse(source);
  if (!module.ok()) fail(module.status());
  std::printf("---- AST (re-printed) ----\n%s\n",
              module->ToSource().c_str());

  // 2. Lower to the SCIRPy three-address IR.
  auto ir = LowerToIR(*module);
  if (!ir.ok()) fail(ir.status());
  std::printf("---- SCIRPy IR ----\n%s\n", ir->ToSource().c_str());

  // 3. Build the control-flow graph.
  auto cfg = BuildCfg(*ir);
  if (!cfg.ok()) fail(cfg.status());
  std::printf("---- CFG (graphviz) ----\n%s\n", cfg->ToDot().c_str());

  // 4. Variable model + live attribute analysis.
  ProgramModel model = BuildProgramModel(*ir);
  auto liveness = RunLivenessAnalysis(*cfg, model);
  if (!liveness.ok()) fail(liveness.status());
  for (size_t i = 0; i < ir->stmts.size(); ++i) {
    const IRStmt& stmt = ir->stmts[i];
    if (stmt.kind == IRStmtKind::kAssign &&
        stmt.expr.kind == IRExprKind::kCall &&
        stmt.expr.attr == "read_csv") {
      bool all = false;
      auto cols = liveness->LiveColumnsAfter(i, stmt.target, &all);
      std::printf("---- LAA at the read ----\nlive columns of %s: ",
                  stmt.target.c_str());
      if (all) {
        std::printf("(all)\n");
      } else {
        for (const auto& c : cols) std::printf("%s ", c.c_str());
        std::printf("\n");
      }
      // Both branches' columns are live (may-analysis): a, b, c.
    }
  }

  // 5. Rewrite + regenerate (the paper's Figure 4 step).
  RewriteStats stats;
  auto rewritten = Rewrite(*ir, RewriteOptions{}, &stats);
  if (!rewritten.ok()) fail(rewritten.status());
  auto regen = GenerateSource(*rewritten);
  if (!regen.ok()) fail(regen.status());
  std::printf("\n---- rewritten source ----\n%s\n", regen->c_str());
  std::printf("reads pruned: %d, computes inserted: %d, flush: %s\n",
              stats.reads_pruned, stats.computes_inserted,
              stats.flush_inserted ? "yes" : "no");

  std::filesystem::remove(path);
  return 0;
}
