// Shared-nothing shard executor scaling (ROADMAP item 5): the same
// scan -> filter -> groupby pipeline on the single-process Pandas
// backend and on 1/2/4 forked shard workers. Results land in
// BENCH_shard.json. The exit code gates on byte-identical results
// across every configuration — scaling numbers are reported, not
// gated: on a loopback socketpair exchange the break-even point
// depends on core count and data size, and a perf regression must not
// mask a correctness one.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/macros.h"
#include "lazy/fat_dataframe.h"

using namespace lafp;
using namespace lafp::lazy;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double seconds = 0.0;
  std::string output;
  bool ok = false;
};

/// One full session round: read, filter, derive, group, sort, print.
Timed RunPipeline(const std::string& csv, exec::BackendKind backend,
                  int shards) {
  Timed timed;
  MemoryTracker tracker(0);
  SessionOptions opts;
  opts.backend = backend;
  opts.backend_config.shards = shards;
  opts.backend_config.partition_rows = 65536;
  opts.tracker = &tracker;
  std::stringstream sink;
  opts.output = &sink;
  Session session(opts);

  double start = Now();
  auto run = [&]() -> Result<std::string> {
    LAFP_ASSIGN_OR_RETURN(auto frame, FatDataFrame::ReadCsv(&session, csv));
    LAFP_ASSIGN_OR_RETURN(auto v, frame.Col("v"));
    LAFP_ASSIGN_OR_RETURN(
        auto mask, v.CompareTo(df::CompareOp::kLt, df::Scalar::Int(800)));
    LAFP_ASSIGN_OR_RETURN(auto filtered, frame.FilterBy(mask));
    LAFP_ASSIGN_OR_RETURN(
        auto grouped,
        filtered.GroupByAgg({"grp"}, {{"v", df::AggFunc::kSum, "vs"},
                                      {"v", df::AggFunc::kMean, "vm"},
                                      {"id", df::AggFunc::kCount, "n"}}));
    LAFP_ASSIGN_OR_RETURN(auto sorted, grouped.SortValues({"grp"}, {true}));
    LAFP_ASSIGN_OR_RETURN(auto eager, sorted.ToEager());
    return eager.ToString(eager.num_rows() + 1);
  };
  auto out = run();
  timed.seconds = Now() - start;
  if (!out.ok()) {
    std::fprintf(stderr, "pipeline failed (shards=%d): %s\n", shards,
                 out.status().ToString().c_str());
    return timed;
  }
  timed.output = *out;
  timed.ok = true;
  return timed;
}

}  // namespace

int main() {
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  const size_t rows = quick != nullptr ? 200000 : 2000000;

  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/lafp_bench_shard";
  std::filesystem::create_directories(dir);
  std::string csv = dir + "/facts.csv";
  {
    std::ofstream out(csv);
    out << "id,v,grp\n";
    uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (size_t i = 0; i < rows; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      out << i << "," << (state % 1000) << "," << (state >> 32) % 32 << "\n";
    }
  }

  Timed reference = RunPipeline(csv, exec::BackendKind::kPandas, 0);
  bool ok = reference.ok;
  std::printf("%zu rows, scan+filter+groupby+sort\n\n", rows);
  std::printf("%-24s %10.4f s\n", "pandas (1 process)", reference.seconds);

  struct Point {
    int shards;
    Timed timed;
  };
  std::vector<Point> points;
  for (int shards : {1, 2, 4}) {
    Point p{shards, RunPipeline(csv, exec::BackendKind::kShard, shards)};
    ok = ok && p.timed.ok && p.timed.output == reference.output;
    if (p.timed.ok && p.timed.output != reference.output) {
      std::fprintf(stderr, "shards=%d output diverges from reference\n",
                   shards);
    }
    std::printf("%-21s %2d %10.4f s   %.2fx\n", "shard workers", shards,
                p.timed.seconds, reference.seconds / p.timed.seconds);
    points.push_back(std::move(p));
  }

  std::ofstream json("BENCH_shard.json");
  json << "[\n"
       << "  {\"config\": \"pandas\", \"processes\": 1, \"seconds\": "
       << reference.seconds << ", \"rows\": " << rows << "},\n";
  for (size_t i = 0; i < points.size(); ++i) {
    json << "  {\"config\": \"shard\", \"workers\": " << points[i].shards
         << ", \"seconds\": " << points[i].timed.seconds
         << ", \"speedup_vs_pandas\": "
         << reference.seconds / points[i].timed.seconds
         << ", \"identical\": "
         << (points[i].timed.output == reference.output ? "true" : "false")
         << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "]\n";
  std::printf("\n-> BENCH_shard.json (gates on byte-identical results "
              "across 1/2/4 workers)\n");
  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
