#include "bench/harness.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "bench/programs.h"
#include "common/timer.h"
#include "common/trace.h"
#include "meta/metadata.h"
#include "optimizer/passes.h"
#include "script/analyze.h"

namespace lafp::bench {

std::string ConfigName(const BenchConfig& config) {
  std::string base;
  switch (config.backend) {
    case exec::BackendKind::kPandas:
      base = "Pandas";
      break;
    case exec::BackendKind::kModin:
      base = "Modin";
      break;
    case exec::BackendKind::kDask:
      base = "Dask";
      break;
  }
  return config.optimized ? "L" + base : base;
}

std::vector<BenchConfig> AllConfigs(int64_t memory_budget) {
  std::vector<BenchConfig> configs;
  for (auto backend :
       {exec::BackendKind::kPandas, exec::BackendKind::kModin,
        exec::BackendKind::kDask}) {
    for (bool optimized : {false, true}) {
      BenchConfig c;
      c.backend = backend;
      c.optimized = optimized;
      c.memory_budget = memory_budget;
      configs.push_back(c);
    }
  }
  // Figure order: Pandas, LPandas, Modin, LModin, Dask, LDask.
  return configs;
}

std::string BenchScratchDir() {
  const char* env = std::getenv("LAFP_BENCH_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return (std::filesystem::temp_directory_path() / "lafp_bench").string();
}

std::vector<std::pair<std::string, int>> BenchSizes() {
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    return {{"S", 1}};
  }
  return {{"S", 1}, {"M", 3}, {"L", 9}};
}

int64_t DefaultMemoryBudget() {
  const char* env = std::getenv("LAFP_BENCH_BUDGET");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoll(env, nullptr, 10);
  }
  // Chosen so the Figure 12 shape reproduces: all 10 programs fit at S,
  // eager backends start failing at L, streaming Dask mostly survives.
  return 100LL * 1000 * 1000;
}

namespace {

int64_t DefaultOverheadUs(exec::BackendKind backend) {
  switch (backend) {
    case exec::BackendKind::kPandas:
      return 0;
    case exec::BackendKind::kModin:
      return 120;  // Ray-style per-partition dispatch
    case exec::BackendKind::kDask:
      return 250;  // lazy scheduler per task
  }
  return 0;
}

/// Extract the checksum lines (the §5.2 regression payload) from a
/// program's stdout.
std::string ChecksumLines(const std::string& output) {
  std::istringstream in(output);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      out += line;
      out += "\n";
    }
  }
  return out;
}

}  // namespace

BenchResult RunBenchmark(const std::string& program_name,
                         const std::map<std::string, std::string>& paths,
                         const BenchConfig& config,
                         const std::string& scratch_dir) {
  BenchResult result;
  auto source = ProgramSource(program_name, paths);
  if (!source.ok()) {
    result.status = source.status();
    return result;
  }

  MemoryTracker tracker(config.memory_budget);
  lazy::SessionOptions opts;
  opts.backend = config.backend;
  opts.tracker = &tracker;
  opts.backend_config.partition_rows = config.partition_rows;
  opts.backend_config.num_threads = 4;
  opts.backend_config.task_overhead_us =
      config.task_overhead_us >= 0 ? config.task_overhead_us
                                   : DefaultOverheadUs(config.backend);
  std::stringstream output;
  opts.output = &output;
  if (config.result_cache != nullptr) {
    opts.cache.enabled = true;
    opts.cache.cache = config.result_cache;
  }

  script::RunOptions run_opts;
  run_opts.analyze = config.optimized;

  meta::MetaStore metastore(scratch_dir + "/metastore");
  if (config.optimized) {
    // LaFP mode: lazy runtime + lazy print + graph optimizer + JIT
    // static analysis with metadata.
    opts.mode = lazy::ExecutionMode::kLazy;
    opts.lazy_print = config.enable_lazy_print;
    opts.backend_config.spill_persisted = config.spill_persisted;
    if (config.enable_metadata) {
      run_opts.analyze_options.rewrite.metastore = &metastore;
    } else {
      run_opts.analyze_options.rewrite.metadata_dtypes = false;
    }
    run_opts.analyze_options.rewrite.column_selection =
        config.enable_column_selection;
    if (!config.enable_caching) {
      // Ablation (§5.3): drop the live_df persist hints.
      run_opts.analyze_options.rewrite.forced_compute = false;
    }
  } else if (config.backend == exec::BackendKind::kDask) {
    // Hand-ported Dask program: lazy, but prints force computation and
    // no LaFP rewrites/graph passes run.
    opts.mode = lazy::ExecutionMode::kLazy;
    opts.lazy_print = false;
  } else {
    // Plain Pandas / Modin: eager statement-by-statement.
    opts.mode = lazy::ExecutionMode::kEager;
    opts.lazy_print = false;
  }

  lazy::Session session(opts);
  if (config.optimized) {
    opt::OptimizerOptions optimizer_options;
    optimizer_options.pushdown = config.enable_pushdown;
    opt::InstallDefaultOptimizer(&session, optimizer_options);
  }

  // Bench span wrapping the program run: with LAFP_TRACE set, a bench
  // sweep ships a flamegraph-grade artifact alongside BENCH_*.json.
  trace::Span bench_span(
      "bench:" + program_name + "/" + ConfigName(config), "bench");
  Timer timer;
  script::AnalyzeResult analyzed;
  Status st = script::RunProgram(*source, &session, run_opts, nullptr,
                                 config.optimized ? &analyzed : nullptr);
  result.seconds = timer.ElapsedSeconds();
  result.peak_bytes = tracker.peak();
  result.analysis_seconds = analyzed.analysis_seconds;
  result.status = st;
  result.success = st.ok();
  result.checksums = ChecksumLines(output.str());
  return result;
}

}  // namespace lafp::bench
