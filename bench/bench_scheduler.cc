// Wide independent-branch workload for the parallel DAG scheduler: N
// disjoint read→filter→sort→groupby chains, each ending in a lazy print,
// flushed together as one round. With threads=1 the round executes on the
// serial reference path; with threads=4 ready nodes from different chains
// run concurrently. The bench asserts identical printed output and
// identical ExecutionReport row counts across thread counts, and reports
// the speedup (acceptance target: >= 2x at 4 threads).
//
// The workload is latency-dominated by design: the Modin backend with a
// single partition per frame pays one simulated dispatch sleep
// (task_overhead_us, the same knob the paper benches use to model
// Dask/Ray task costs) per node. Those sleeps only overlap when the DAG
// scheduler executes *nodes* concurrently, so the measured speedup
// isolates scheduler-level parallelism and is reproducible on any core
// count — a purely CPU-bound variant would show nothing on a 1-core CI
// box even with a perfect scheduler.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/harness.h"
#include "common/memory_tracker.h"
#include "common/timer.h"
#include "lazy/fat_dataframe.h"

namespace lafp::bench {
namespace {

constexpr int kChains = 8;
constexpr int kRows = 50000;
// Simulated per-node dispatch latency (µs). 25 ms x 7 ops x 8 chains
// ~= 1.4 s of latency in the serial round; 4 scheduler workers overlap
// it ~4x.
constexpr int64_t kTaskOverheadUs = 25000;

std::string WriteDataset(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::string path =
      dir + "/sched_bench_" + std::to_string(kRows) + ".csv";
  if (std::filesystem::exists(path)) return path;
  std::ofstream out(path);
  out << "fare,day,passengers\n";
  // Pseudo-random but deterministic: enough key/value spread that sort
  // and groupby do real work per chain.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < kRows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int fare_cents = static_cast<int>((state >> 33) % 10000) - 1000;
    int day = static_cast<int>((state >> 17) % 7);
    int passengers = static_cast<int>((state >> 7) % 6) + 1;
    out << fare_cents / 100 << "." << std::abs(fare_cents) % 100 << ","
        << day << "," << passengers << "\n";
  }
  return path;
}

struct RunResult {
  double seconds = 0.0;
  std::string output;
  lazy::ExecutionReport report;
  bool ok = false;
};

RunResult RunOnce(const std::string& csv_path, int threads) {
  RunResult result;
  std::stringstream output;
  MemoryTracker tracker(0);
  lazy::Session session(lazy::SessionOptions::Builder()
                            .backend(exec::BackendKind::kModin)
                            .threads(threads)
                            // One partition per frame: exactly one
                            // dispatch sleep per node, so overlap can
                            // only come from node-level scheduling.
                            .partition_rows(kRows * 2)
                            .task_overhead_us(kTaskOverheadUs)
                            .output(&output)
                            .tracker(&tracker)
                            .Build());

  auto fail = [&](const Status& status) {
    std::cerr << "chain build failed: " << status.ToString() << "\n";
    return result;
  };

  // Build the 8 disjoint chains before timing: graph construction is
  // cheap and identical across configurations; the round is what the
  // scheduler parallelizes.
  for (int chain = 0; chain < kChains; ++chain) {
    auto df = lazy::FatDataFrame::ReadCsv(&session, csv_path);
    if (!df.ok()) return fail(df.status());
    auto fare = df->Col("fare");
    if (!fare.ok()) return fail(fare.status());
    auto mask = fare->CompareTo(df::CompareOp::kGt,
                                df::Scalar::Double(chain - 4.0));
    if (!mask.ok()) return fail(mask.status());
    auto filtered = df->FilterBy(*mask);
    if (!filtered.ok()) return fail(filtered.status());
    auto sorted = filtered->SortValues({"fare"}, {true});
    if (!sorted.ok()) return fail(sorted.status());
    auto grouped = sorted->GroupByAgg(
        {"day"}, {{"passengers", df::AggFunc::kSum, "passengers"}});
    if (!grouped.ok()) return fail(grouped.status());
    auto by_day = grouped->SortValues({"day"}, {true});
    if (!by_day.ok()) return fail(by_day.status());
    Status printed = session.Print(
        {lazy::Session::PrintArg::Literal("chain " + std::to_string(chain) +
                                          ":\n"),
         lazy::Session::PrintArg::Value(by_day->node())});
    if (!printed.ok()) return fail(printed);
  }

  Timer timer;
  Status status = session.Flush();
  result.seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    std::cerr << "flush failed: " << status.ToString() << "\n";
    return result;
  }
  result.output = output.str();
  result.report = session.last_report();
  result.ok = true;
  return result;
}

RunResult Best(const std::string& csv_path, int threads, int repeats) {
  RunResult best;
  for (int i = 0; i < repeats; ++i) {
    RunResult r = RunOnce(csv_path, threads);
    if (!r.ok) return r;
    if (!best.ok || r.seconds < best.seconds) best = std::move(r);
  }
  return best;
}

int Main() {
  std::string csv_path = WriteDataset(BenchScratchDir());

  RunResult serial = Best(csv_path, 1, 2);
  if (!serial.ok) return 1;
  RunResult parallel = Best(csv_path, 4, 2);
  if (!parallel.ok) return 1;

  std::cout << "bench_scheduler: " << kChains << " disjoint chains, "
            << kRows << " rows each\n";
  std::cout << "  threads=1: " << serial.seconds << " s ("
            << serial.report.nodes_executed << " nodes, rows_out="
            << serial.report.total_rows_out() << ")\n";
  std::cout << "  threads=4: " << parallel.seconds << " s ("
            << parallel.report.nodes_executed << " nodes, rows_out="
            << parallel.report.total_rows_out() << ", parallel="
            << (parallel.report.parallel ? "yes" : "no") << ")\n";
  double speedup = parallel.seconds > 0 ? serial.seconds / parallel.seconds
                                        : 0.0;
  std::cout << "  speedup: " << speedup << "x\n";

  bool same_output = serial.output == parallel.output;
  bool same_rows = serial.report.total_rows_out() ==
                       parallel.report.total_rows_out() &&
                   serial.report.nodes_executed ==
                       parallel.report.nodes_executed;
  std::cout << "  identical output: " << (same_output ? "yes" : "NO")
            << "\n";
  std::cout << "  identical report row counts: " << (same_rows ? "yes" : "NO")
            << "\n";
  std::cout << "  speedup >= 2x: " << (speedup >= 2.0 ? "yes" : "NO")
            << "\n";
  // Correctness mismatches fail the bench; the speedup line is reported
  // but machine-dependent, so it does not gate the exit code.
  return (same_output && same_rows) ? 0 : 1;
}

}  // namespace
}  // namespace lafp::bench

int main() { return lafp::bench::Main(); }
