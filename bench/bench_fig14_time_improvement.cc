// Reproduces paper Figure 14 (a-c): execution-time improvement of the
// LaFP-optimized configuration over its baseline, as a percentage of the
// original time, per backend and dataset size. A configuration that only
// the optimized variant can run (baseline OOM) counts as 100%, exactly
// as in the paper; "n/a" marks pairs where neither ran.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  int64_t budget = DefaultMemoryBudget();
  const char* backends[] = {"Pandas", "Modin", "Dask"};
  for (const auto& [size_name, scale] : BenchSizes()) {
    std::printf("Figure 14 (%s dataset): execution time improvement %%\n",
                size_name.c_str());
    std::printf("%-9s %10s %10s %10s\n", "program", "Pandas", "Modin",
                "Dask");
    for (const auto& program : ProgramNames()) {
      auto paths = GenerateForProgram(program, dir, scale);
      if (!paths.ok()) {
        std::fprintf(stderr, "datagen failed: %s\n",
                     paths.status().ToString().c_str());
        return 1;
      }
      std::printf("%-9s", program.c_str());
      int b = 0;
      for (auto backend :
           {exec::BackendKind::kPandas, exec::BackendKind::kModin,
            exec::BackendKind::kDask}) {
        BenchConfig base;
        base.backend = backend;
        base.optimized = false;
        base.memory_budget = budget;
        BenchConfig opt = base;
        opt.optimized = true;
        BenchResult rb = RunBenchmark(program, *paths, base, dir);
        BenchResult ro = RunBenchmark(program, *paths, opt, dir);
        (void)backends[b++];
        if (!rb.success && !ro.success) {
          std::printf(" %10s", "n/a");
        } else if (!rb.success) {
          std::printf(" %10s", "100*");  // baseline OOM -> 100% (paper)
        } else if (!ro.success) {
          std::printf(" %10s", "OOM!");
        } else {
          double improvement = 100.0 * (rb.seconds - ro.seconds) /
                               rb.seconds;
          std::printf(" %9.1f%%", improvement);
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape to match the paper: up to ~70%% on Pandas, ~90%% on Modin,\n"
      "~95%% on Dask; failures of the baseline count as 100%% (marked *);\n"
      "a few small negative values are expected.\n");
  return 0;
}
