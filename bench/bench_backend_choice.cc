// Demonstrates the implemented future-work feature (§6): automated
// backend choice from static size estimates + metadata. For the taxi
// program at S and L the chooser must pick the backend that actually
// wins under the benchmark budget — Pandas when the pruned working set
// fits, Dask when it does not.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"
#include "script/backend_choice.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  int64_t budget = DefaultMemoryBudget();
  meta::MetaStore metastore(dir + "/metastore");

  std::printf("Automated backend choice (budget %lld MB)\n\n",
              static_cast<long long>(budget / 1000000));
  for (const auto& [size_name, scale] : BenchSizes()) {
    auto paths = GenerateForProgram("taxi", dir, scale);
    if (!paths.ok()) return 1;
    auto source = ProgramSource("taxi", *paths);
    if (!source.ok()) return 1;

    script::BackendChoiceOptions options;
    options.memory_budget = budget;
    options.metastore = &metastore;
    auto choice = script::ChooseBackend(*source, options);
    if (!choice.ok()) {
      std::fprintf(stderr, "choice failed: %s\n",
                   choice.status().ToString().c_str());
      return 1;
    }
    std::printf("taxi @%s -> %s\n  rationale: %s\n", size_name.c_str(),
                exec::BackendKindName(choice->backend),
                choice->rationale.c_str());

    // Validate against reality: run LaFP on every backend.
    std::printf("  measured:");
    for (auto backend :
         {exec::BackendKind::kPandas, exec::BackendKind::kModin,
          exec::BackendKind::kDask}) {
      BenchConfig config;
      config.backend = backend;
      config.optimized = true;
      config.memory_budget = budget;
      BenchResult r = RunBenchmark("taxi", *paths, config, dir);
      std::string cell =
          r.success ? std::to_string(r.seconds).substr(0, 5) + "s" : "OOM";
      std::printf("  L%s=%s%s", exec::BackendKindName(backend),
                  cell.c_str(),
                  backend == choice->backend ? "[chosen]" : "");
    }
    std::printf("\n\n");
  }
  std::printf(
      "Shape: the chooser picks Pandas while the pruned working set\n"
      "fits the budget (it is the fastest in-memory engine) and switches\n"
      "to Dask when it would not.\n");
  return 0;
}
