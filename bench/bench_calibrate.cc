// Calibration utility (not a paper figure): prints dataset sizes and
// per-configuration time/memory for each benchmark program so the memory
// budget and overhead defaults can be sanity-checked. Runs a single size
// unless LAFP_CALIBRATE_SIZES is set.
#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"
#include "bench/programs.h"
#include "meta/metadata.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  const char* env = std::getenv("LAFP_CALIBRATE_SIZES");
  std::vector<int> scales;
  if (env != nullptr) {
    for (const char* p = env; *p != '\0'; ++p) {
      if (*p >= '1' && *p <= '9') scales.push_back(*p - '0');
    }
  }
  if (scales.empty()) scales = {1};

  for (int scale : scales) {
    std::printf("== scale %dx ==\n", scale);
    for (const auto& program : ProgramNames()) {
      auto paths = GenerateForProgram(program, dir, scale);
      if (!paths.ok()) {
        std::printf("%-8s datagen failed: %s\n", program.c_str(),
                    paths.status().ToString().c_str());
        continue;
      }
      int64_t bytes = 0;
      for (const auto& [name, path] : *paths) {
        bytes += meta::FileSizeBytes(path);
      }
      std::printf("%-8s data=%6.1f MB  ", program.c_str(),
                  static_cast<double>(bytes) / 1e6);
      for (const auto& config : AllConfigs(/*budget=*/0)) {
        BenchResult r = RunBenchmark(program, *paths, config, dir);
        if (r.success) {
          std::printf("%s=%5.2fs/%5.1fMB ", ConfigName(config).c_str(),
                      r.seconds, static_cast<double>(r.peak_bytes) / 1e6);
        } else {
          std::printf("%s=ERR(%s) ", ConfigName(config).c_str(),
                      r.status.ToString().c_str());
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
