// Reproduces paper Figure 13: absolute execution time per program on the
// small (S ~ 1.4 GB-equivalent) dataset, where every configuration runs
// successfully. Expected shape: Pandas/Modin beat Dask in memory; the
// LaFP-optimized variants beat their baselines almost everywhere; LDask
// is competitive with (often beats) everything.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  int64_t budget = DefaultMemoryBudget();
  std::printf("Figure 13: execution time (seconds) on the S dataset\n\n");
  std::printf("%-9s %8s %8s %8s %8s %8s %8s\n", "program", "Pandas",
              "LPandas", "Modin", "LModin", "Dask", "LDask");
  for (const auto& program : ProgramNames()) {
    auto paths = GenerateForProgram(program, dir, /*scale=*/1);
    if (!paths.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n",
                   paths.status().ToString().c_str());
      return 1;
    }
    std::printf("%-9s", program.c_str());
    for (const auto& config : AllConfigs(budget)) {
      BenchResult r = RunBenchmark(program, *paths, config, dir);
      if (r.success) {
        std::printf(" %8.3f", r.seconds);
      } else {
        std::printf(" %8s", "OOM");
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nShape to match the paper: Dask slowest of the baselines "
      "in-memory;\nL* variants <= their baselines in almost all cases; "
      "occasional small\nregressions are expected (paper's worst case: "
      "-20%% vs Pandas).\n");
  return 0;
}
