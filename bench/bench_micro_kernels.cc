// Google-benchmark microbenchmarks of the engine kernels underlying
// every backend: CSV parse, filter, group-by, hash join, sort, and the
// lazy-runtime graph overhead. These are not paper figures; they document
// the substrate's raw costs for regression tracking.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>

#include "dataframe/ops.h"
#include "io/csv.h"
#include "lazy/fat_dataframe.h"
#include "optimizer/passes.h"

namespace lafp {
namespace {

std::string TempCsv(int64_t rows) {
  static std::string path;
  static int64_t cached_rows = 0;
  if (!path.empty() && cached_rows == rows) return path;
  path = (std::filesystem::temp_directory_path() /
          ("lafp_micro_" + std::to_string(rows) + ".csv"))
             .string();
  cached_rows = rows;
  if (std::filesystem::exists(path)) return path;
  std::ofstream out(path);
  out << "id,value,grp,name\n";
  for (int64_t i = 0; i < rows; ++i) {
    out << i << ',' << (i % 997) * 0.5 << ',' << (i % 31) << ",name_"
        << (i % 11) << '\n';
  }
  return path;
}

df::DataFrame LoadFixture(int64_t rows) {
  auto frame = io::ReadCsv(TempCsv(rows), {}, MemoryTracker::Default());
  return *frame;
}

void BM_CsvRead(benchmark::State& state) {
  std::string path = TempCsv(state.range(0));
  for (auto _ : state) {
    MemoryTracker tracker(0);
    auto frame = io::ReadCsv(path, {}, &tracker);
    benchmark::DoNotOptimize(frame.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvRead)->Arg(10000)->Arg(100000);

void BM_CsvReadUsecols(benchmark::State& state) {
  std::string path = TempCsv(state.range(0));
  io::CsvReadOptions opts;
  opts.usecols = {"value"};
  for (auto _ : state) {
    MemoryTracker tracker(0);
    auto frame = io::ReadCsv(path, opts, &tracker);
    benchmark::DoNotOptimize(frame.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvReadUsecols)->Arg(10000)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  df::DataFrame frame = LoadFixture(state.range(0));
  auto value = *frame.column("value");
  for (auto _ : state) {
    auto mask = df::Compare(*value, df::CompareOp::kGt,
                            df::Scalar::Double(200.0));
    auto out = df::Filter(frame, **mask);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(100000);

void BM_GroupByAgg(benchmark::State& state) {
  df::DataFrame frame = LoadFixture(state.range(0));
  std::vector<df::AggSpec> aggs{{"value", df::AggFunc::kSum, "total"},
                                {"value", df::AggFunc::kMean, "avg"}};
  for (auto _ : state) {
    auto out = df::GroupByAgg(frame, {"grp"}, aggs);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAgg)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  df::DataFrame left = LoadFixture(state.range(0));
  MemoryTracker tracker(0);
  std::vector<int64_t> keys;
  std::vector<std::string> labels;
  for (int i = 0; i < 31; ++i) {
    keys.push_back(i);
    labels.push_back("label_" + std::to_string(i));
  }
  auto right = *df::DataFrame::Make(
      {"grp", "label"},
      {*df::Column::MakeInt(keys, {}, &tracker),
       *df::Column::MakeString(labels, {}, &tracker)});
  for (auto _ : state) {
    auto out = df::Merge(left, right, {"grp"}, df::JoinType::kInner);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_SortValues(benchmark::State& state) {
  df::DataFrame frame = LoadFixture(state.range(0));
  for (auto _ : state) {
    auto out = df::SortValues(frame, {"value"}, {false});
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortValues)->Arg(100000);

void BM_LazyGraphConstruction(benchmark::State& state) {
  lazy::SessionOptions opts;
  opts.mode = lazy::ExecutionMode::kLazy;
  lazy::Session session(opts);
  auto frame = *lazy::FatDataFrame::ReadCsv(&session, TempCsv(1000));
  for (auto _ : state) {
    auto col = *frame.Col("value");
    auto mask = *col.CompareTo(df::CompareOp::kGt, df::Scalar::Double(1.0));
    auto filtered = *frame.FilterBy(mask);
    benchmark::DoNotOptimize(filtered.node());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_LazyGraphConstruction);

void BM_OptimizerPass(benchmark::State& state) {
  lazy::SessionOptions opts;
  opts.mode = lazy::ExecutionMode::kLazy;
  lazy::Session session(opts);
  auto frame = *lazy::FatDataFrame::ReadCsv(&session, TempCsv(1000));
  auto sorted = *frame.SortValues({"value"}, {true});
  auto col = *sorted.Col("grp");
  auto mask = *col.CompareTo(df::CompareOp::kEq, df::Scalar::Int(3));
  auto filtered = *sorted.FilterBy(mask);
  for (auto _ : state) {
    opt::PassStats stats;
    benchmark::DoNotOptimize(
        opt::DeduplicateNodes(&session, {filtered.node()}, &stats).ok());
  }
}
BENCHMARK(BM_OptimizerPass);

}  // namespace
}  // namespace lafp

BENCHMARK_MAIN();
