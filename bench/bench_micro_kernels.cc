// Google-benchmark microbenchmarks of the engine kernels underlying
// every backend: CSV parse, filter, group-by, hash join, sort, and the
// lazy-runtime graph overhead. These are not paper figures; they document
// the substrate's raw costs for regression tracking.
//
// After the google-benchmark suite, main() runs an intra-op thread sweep
// (1/2/4/8 kernel threads over the morsel-driven kernels) and writes
// machine-readable results to BENCH_kernels.json — one record per
// (op, rows, threads) with ns/row and a bit-exact output checksum, which
// must be identical across the sweep (the kernel determinism contract).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <fstream>
#include <iostream>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"
#include "exec/fused.h"
#include "exec/op.h"
#include "io/csv.h"
#include "lazy/fat_dataframe.h"
#include "optimizer/passes.h"

namespace lafp {
namespace {

std::string TempCsv(int64_t rows) {
  static std::string path;
  static int64_t cached_rows = 0;
  if (!path.empty() && cached_rows == rows) return path;
  path = (std::filesystem::temp_directory_path() /
          ("lafp_micro_" + std::to_string(rows) + ".csv"))
             .string();
  cached_rows = rows;
  if (std::filesystem::exists(path)) return path;
  std::ofstream out(path);
  out << "id,value,grp,name\n";
  for (int64_t i = 0; i < rows; ++i) {
    out << i << ',' << (i % 997) * 0.5 << ',' << (i % 31) << ",name_"
        << (i % 11) << '\n';
  }
  return path;
}

df::DataFrame LoadFixture(int64_t rows) {
  auto frame = io::ReadCsv(TempCsv(rows), {}, MemoryTracker::Default());
  return *frame;
}

void BM_CsvRead(benchmark::State& state) {
  std::string path = TempCsv(state.range(0));
  for (auto _ : state) {
    MemoryTracker tracker(0);
    auto frame = io::ReadCsv(path, {}, &tracker);
    benchmark::DoNotOptimize(frame.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvRead)->Arg(10000)->Arg(100000);

void BM_CsvReadUsecols(benchmark::State& state) {
  std::string path = TempCsv(state.range(0));
  io::CsvReadOptions opts;
  opts.usecols = {"value"};
  for (auto _ : state) {
    MemoryTracker tracker(0);
    auto frame = io::ReadCsv(path, opts, &tracker);
    benchmark::DoNotOptimize(frame.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvReadUsecols)->Arg(10000)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  df::DataFrame frame = LoadFixture(state.range(0));
  auto value = *frame.column("value");
  for (auto _ : state) {
    auto mask = df::Compare(*value, df::CompareOp::kGt,
                            df::Scalar::Double(200.0));
    auto out = df::Filter(frame, **mask);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(100000);

void BM_GroupByAgg(benchmark::State& state) {
  df::DataFrame frame = LoadFixture(state.range(0));
  std::vector<df::AggSpec> aggs{{"value", df::AggFunc::kSum, "total"},
                                {"value", df::AggFunc::kMean, "avg"}};
  for (auto _ : state) {
    auto out = df::GroupByAgg(frame, {"grp"}, aggs);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAgg)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  df::DataFrame left = LoadFixture(state.range(0));
  MemoryTracker tracker(0);
  std::vector<int64_t> keys;
  std::vector<std::string> labels;
  for (int i = 0; i < 31; ++i) {
    keys.push_back(i);
    labels.push_back("label_" + std::to_string(i));
  }
  auto right = *df::DataFrame::Make(
      {"grp", "label"},
      {*df::Column::MakeInt(keys, {}, &tracker),
       *df::Column::MakeString(labels, {}, &tracker)});
  for (auto _ : state) {
    auto out = df::Merge(left, right, {"grp"}, df::JoinType::kInner);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_SortValues(benchmark::State& state) {
  df::DataFrame frame = LoadFixture(state.range(0));
  for (auto _ : state) {
    auto out = df::SortValues(frame, {"value"}, {false});
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortValues)->Arg(100000);

void BM_LazyGraphConstruction(benchmark::State& state) {
  lazy::SessionOptions opts;
  opts.mode = lazy::ExecutionMode::kLazy;
  lazy::Session session(opts);
  auto frame = *lazy::FatDataFrame::ReadCsv(&session, TempCsv(1000));
  for (auto _ : state) {
    auto col = *frame.Col("value");
    auto mask = *col.CompareTo(df::CompareOp::kGt, df::Scalar::Double(1.0));
    auto filtered = *frame.FilterBy(mask);
    benchmark::DoNotOptimize(filtered.node());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_LazyGraphConstruction);

void BM_OptimizerPass(benchmark::State& state) {
  lazy::SessionOptions opts;
  opts.mode = lazy::ExecutionMode::kLazy;
  lazy::Session session(opts);
  auto frame = *lazy::FatDataFrame::ReadCsv(&session, TempCsv(1000));
  auto sorted = *frame.SortValues({"value"}, {true});
  auto col = *sorted.Col("grp");
  auto mask = *col.CompareTo(df::CompareOp::kEq, df::Scalar::Int(3));
  auto filtered = *sorted.FilterBy(mask);
  for (auto _ : state) {
    opt::PassStats stats;
    benchmark::DoNotOptimize(
        opt::DeduplicateNodes(&session, {filtered.node()}, &stats).ok());
  }
}
BENCHMARK(BM_OptimizerPass);

// ---------------- Intra-op thread sweep (BENCH_kernels.json) ----------------

/// Order-independent bit-exact checksum of a column (sum of value bit
/// patterns + a validity term). Identical checksums across thread counts
/// certify the morsel layer's determinism contract on real kernel output.
uint64_t Checksum(const df::Column& col) {
  uint64_t h = 0x9e3779b97f4a7c15ULL * col.size();
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsValid(i)) {
      h += 0x7f4a7c159e3779b9ULL;
      continue;
    }
    uint64_t bits = 0;
    switch (col.type()) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp:
        bits = static_cast<uint64_t>(col.IntAt(i));
        break;
      case df::DataType::kDouble: {
        double v = col.DoubleAt(i);
        std::memcpy(&bits, &v, sizeof(bits));
        break;
      }
      case df::DataType::kBool:
        bits = col.BoolAt(i) ? 1 : 2;
        break;
      default:
        bits = std::hash<std::string>{}(col.StringAt(i));
        break;
    }
    h += bits * 0x2545f4914f6cdd1dULL;
  }
  return h;
}

uint64_t Checksum(const df::DataFrame& frame) {
  uint64_t h = 0;
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    h = h * 31 + Checksum(*frame.column(c));
  }
  return h;
}

struct SweepRecord {
  std::string op;
  int64_t rows;
  int threads;
  double ns_per_row;
  uint64_t checksum;
};

int RunKernelThreadSweep() {
  const bool quick = std::getenv("LAFP_BENCH_QUICK") != nullptr;
  const int64_t rows = quick ? 200000 : 2000000;
  const int reps = quick ? 2 : 3;

  MemoryTracker tracker(0);
  std::vector<double> dbls(rows);
  std::vector<int64_t> keys(rows);
  for (int64_t i = 0; i < rows; ++i) {
    dbls[i] = 0.5 * static_cast<double>(i % 997) - 100.0;
    keys[i] = i % 31;
  }
  auto value = *df::Column::MakeDouble(std::move(dbls), {}, &tracker);
  auto grp = *df::Column::MakeInt(std::move(keys), {}, &tracker);
  auto frame = *df::DataFrame::Make({"grp", "value"}, {grp, value});
  std::vector<int64_t> take_idx(rows);
  for (int64_t i = 0; i < rows; ++i) take_idx[i] = rows - 1 - i;

  struct OpCase {
    const char* name;
    std::function<uint64_t()> run;
  };
  const std::vector<OpCase> ops = {
      {"arith_mul_add",
       [&] {
         auto sq = *df::ArithColumns(*value, df::ArithOp::kMul, *value);
         auto out = *df::ArithColumns(*sq, df::ArithOp::kAdd, *value);
         return Checksum(*out);
       }},
      {"compare_gt",
       [&] {
         auto out =
             *df::Compare(*value, df::CompareOp::kGt, df::Scalar::Double(0));
         return Checksum(*out);
       }},
      {"filter",
       [&] {
         auto mask =
             *df::Compare(*value, df::CompareOp::kGt, df::Scalar::Double(0));
         return Checksum(*df::Filter(frame, *mask));
       }},
      {"take",
       [&] { return Checksum(**value->Take(take_idx)); }},
      {"sum_kahan",
       [&] {
         double v = (*df::Reduce(*value, df::AggFunc::kSum)).double_value();
         uint64_t bits = 0;
         std::memcpy(&bits, &v, sizeof(bits));
         return bits;
       }},
      {"groupby_sum_mean",
       [&] {
         return Checksum(*df::GroupByAgg(frame, {"grp"},
                                         {{"value", df::AggFunc::kSum, "s"},
                                          {"value", df::AggFunc::kMean,
                                           "m"}}));
       }},
      // filter -> project -> (*2) -> (+2.5) -> abs, first as five separate
      // kernel calls with materialized intermediates, then as one kFusedMap
      // node running the whole chain in a single morsel pass. Same bytes
      // (the invariance suite pins that); the delta is the fusion win.
      {"unfused_chain",
       [&] {
         auto mask =
             *df::Compare(*value, df::CompareOp::kGt, df::Scalar::Double(0));
         auto filtered = *df::Filter(frame, *mask);
         auto col = *filtered.column("value");
         auto t = *df::Arith(*col, df::ArithOp::kMul, df::Scalar::Double(2.0));
         t = *df::Arith(*t, df::ArithOp::kAdd, df::Scalar::Double(2.5));
         t = *df::Abs(*t);
         return Checksum(*t);
       }},
      {"fused_chain",
       [&] {
         auto mask =
             *df::Compare(*value, df::CompareOp::kGt, df::Scalar::Double(0));
         exec::OpDesc step;
         step.kind = exec::OpKind::kArith;
         step.has_scalar = true;
         exec::OpDesc d;
         d.kind = exec::OpKind::kFusedMap;
         d.column = "value";
         step.arith_op = df::ArithOp::kMul;
         step.scalar = df::Scalar::Double(2.0);
         d.fused.push_back(step);
         step.arith_op = df::ArithOp::kAdd;
         step.scalar = df::Scalar::Double(2.5);
         d.fused.push_back(step);
         exec::OpDesc abs_step;
         abs_step.kind = exec::OpKind::kAbs;
         d.fused.push_back(abs_step);
         std::vector<exec::EagerValue> inputs;
         inputs.push_back(exec::EagerValue::Frame(frame));
         inputs.push_back(exec::EagerValue::Frame(
             *df::DataFrame::Make({"m"}, {mask})));
         auto out = *exec::ExecuteFusedMap(d, inputs, &tracker);
         return Checksum(*out.frame.column(size_t{0}));
       }},
  };

  std::vector<SweepRecord> records;
  bool checksums_agree = true;
  for (const auto& op : ops) {
    uint64_t reference = 0;
    for (int threads : {1, 2, 4, 8}) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
      df::KernelContext ctx(pool.get(), threads,
                            df::KernelContext::kDefaultMorselRows);
      df::KernelScope scope(&ctx);
      uint64_t checksum = 0;
      int64_t best_micros = 0;
      for (int r = 0; r < reps; ++r) {
        Timer timer;
        checksum = op.run();
        int64_t us = timer.ElapsedMicros();
        if (r == 0 || us < best_micros) best_micros = us;
      }
      if (threads == 1) {
        reference = checksum;
      } else if (checksum != reference) {
        checksums_agree = false;
        std::cerr << "CHECKSUM MISMATCH: " << op.name << " threads="
                  << threads << "\n";
      }
      records.push_back({op.name, rows, threads,
                         1000.0 * static_cast<double>(best_micros) /
                             static_cast<double>(rows),
                         checksum});
    }
  }

  std::ofstream json("BENCH_kernels.json");
  json << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    json << "  {\"op\": \"" << r.op << "\", \"rows\": " << r.rows
         << ", \"threads\": " << r.threads << ", \"ns_per_row\": "
         << r.ns_per_row << ", \"checksum\": \"" << std::hex << r.checksum
         << std::dec << "\"}" << (i + 1 < records.size() ? "," : "")
         << "\n";
  }
  json << "]\n";
  std::cout << "kernel thread sweep: " << records.size()
            << " records -> BENCH_kernels.json (checksums "
            << (checksums_agree ? "identical" : "DIVERGED") << ")\n";
  return checksums_agree ? 0 : 1;
}

}  // namespace
}  // namespace lafp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return lafp::RunKernelThreadSweep();
}
