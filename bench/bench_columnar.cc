// Native columnar storage benchmark (ROADMAP item 2): CSV parse vs LFC
// scan, and zone-map pruning on a selective predicate. A time-ordered
// taxi-like table is written both ways; the selective query keeps only
// the newest ~1% of rows, so nearly every chunk's `ts` zone map rules it
// out before any decode happens.
//
// Results land in BENCH_columnar.json. The shape that must hold: the
// full LFC scan beats the CSV parse (binary decode vs text parse), and
// the pruned selective scan beats the unpruned one (chunk skipping vs
// decode-then-filter). The exit code gates on both plus byte-count
// agreement between the pruned and unpruned pipelines.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "dataframe/ops.h"
#include "io/columnar.h"
#include "io/csv.h"

using namespace lafp;
using namespace lafp::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic taxi-like table: increasing `ts`, noisy `fare`, small
/// `passengers`, low-cardinality `payment` (dictionary-encoded).
df::DataFrame MakeTable(size_t rows, MemoryTracker* tracker) {
  std::vector<int64_t> ts, passengers;
  std::vector<double> fares;
  std::vector<std::string> payments;
  static const char* kPayments[] = {"card", "cash", "dispute", "voucher"};
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    ts.push_back(1700000000 + static_cast<int64_t>(i) * 7);
    fares.push_back(2.5 + static_cast<double>(state >> 40) / (1 << 16));
    passengers.push_back(1 + static_cast<int64_t>(state % 6));
    payments.push_back(kPayments[(state >> 20) % 4]);
  }
  auto c_ts = *df::Column::MakeInt(ts, {}, tracker);
  auto c_fare = *df::Column::MakeDouble(fares, {}, tracker);
  auto c_pass = *df::Column::MakeInt(passengers, {}, tracker);
  auto c_paystr = *df::Column::MakeString(payments, {}, tracker);
  auto c_pay = *df::CategorizeStrings(*c_paystr, tracker);
  return *df::DataFrame::Make({"ts", "fare", "passengers", "payment"},
                              {c_ts, c_fare, c_pass, c_pay});
}

struct Timed {
  double seconds = 0.0;
  size_t rows = 0;
};

/// Best-of-three wall time for one scan pipeline.
template <typename Fn>
Timed BestOf3(Fn&& fn) {
  Timed best;
  for (int rep = 0; rep < 3; ++rep) {
    double t0 = Now();
    size_t rows = fn();
    double dt = Now() - t0;
    if (rep == 0 || dt < best.seconds) best.seconds = dt;
    best.rows = rows;
  }
  return best;
}

}  // namespace

int main() {
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  const size_t rows =
      (quick != nullptr && quick[0] == '1') ? 200'000 : 2'000'000;
  const std::string dir = BenchScratchDir();
  const std::string csv_path = dir + "/columnar_taxi.csv";
  const std::string lfc_path = dir + "/columnar_taxi.lfc";

  MemoryTracker tracker;
  df::DataFrame table = MakeTable(rows, &tracker);
  if (!io::WriteCsv(table, csv_path).ok()) {
    std::fprintf(stderr, "CSV write failed\n");
    return 1;
  }
  io::LfcWriteOptions write_options;  // default 64Ki-row chunks
  if (!io::WriteLfcFile(table, lfc_path, write_options).ok()) {
    std::fprintf(stderr, "LFC write failed\n");
    return 1;
  }

  // The selective predicate: newest ~1% of the time-ordered rows.
  const int64_t cutoff =
      1700000000 + static_cast<int64_t>(rows - rows / 100) * 7;
  io::LfcPredicate selective{"ts", df::CompareOp::kGe,
                             df::Scalar::Int(cutoff)};

  // 1. Full-table CSV parse (what every query paid before LFC).
  Timed csv_parse = BestOf3([&] {
    auto frame = io::ReadCsv(csv_path, {}, &tracker);
    return frame.ok() ? frame->num_rows() : 0;
  });

  // 2. Full-table LFC scan of the same bytes.
  Timed lfc_full = BestOf3([&] {
    auto frame = io::ReadLfcFile(lfc_path, {}, &tracker);
    return frame.ok() ? frame->num_rows() : 0;
  });

  // 3/4. Selective scan + filter kernel, pruning off vs on. Both
  // pipelines must produce identical row counts (pruning only skips
  // chunks the predicate already rules out).
  io::LfcReadStats pruned_stats;
  auto selective_scan = [&](bool prune_enabled, io::LfcReadStats* stats) {
    io::LfcReadOptions options;
    options.prune.push_back(selective);
    options.prune_enabled = prune_enabled;
    auto frame = io::ReadLfcFile(lfc_path, options, &tracker, stats);
    if (!frame.ok()) return size_t{0};
    auto ts_col = frame->column("ts");
    if (!ts_col.ok()) return size_t{0};
    auto mask = df::Compare(**ts_col, selective.op, selective.scalar);
    if (!mask.ok()) return size_t{0};
    auto out = df::Filter(*frame, **mask);
    return out.ok() ? out->num_rows() : size_t{0};
  };
  Timed unpruned = BestOf3([&] { return selective_scan(false, nullptr); });
  Timed pruned = BestOf3([&] {
    pruned_stats = {};
    return selective_scan(true, &pruned_stats);
  });

  bool ok = true;
  if (csv_parse.rows != rows || lfc_full.rows != rows) {
    std::fprintf(stderr, "row-count mismatch: csv=%zu lfc=%zu want=%zu\n",
                 csv_parse.rows, lfc_full.rows, rows);
    ok = false;
  }
  if (pruned.rows != unpruned.rows || pruned.rows == 0) {
    std::fprintf(stderr,
                 "pruned pipeline diverged: pruned=%zu unpruned=%zu\n",
                 pruned.rows, unpruned.rows);
    ok = false;
  }

  const double csv_speedup =
      lfc_full.seconds > 0 ? csv_parse.seconds / lfc_full.seconds : 0;
  const double prune_speedup =
      pruned.seconds > 0 ? unpruned.seconds / pruned.seconds : 0;

  std::printf("Columnar storage: %zu rows, 4 columns\n\n", rows);
  std::printf("%-28s %10s %12s\n", "pipeline", "time (s)", "rows out");
  std::printf("%-28s %10.4f %12zu\n", "CSV parse (full)", csv_parse.seconds,
              csv_parse.rows);
  std::printf("%-28s %10.4f %12zu\n", "LFC scan (full)", lfc_full.seconds,
              lfc_full.rows);
  std::printf("%-28s %10.4f %12zu\n", "LFC selective (no prune)",
              unpruned.seconds, unpruned.rows);
  std::printf("%-28s %10.4f %12zu\n", "LFC selective (zone prune)",
              pruned.seconds, pruned.rows);
  std::printf("\nLFC vs CSV: %.1fx   prune skipped %zu/%zu chunks: %.1fx\n",
              csv_speedup, pruned_stats.chunks_skipped,
              pruned_stats.chunks_total, prune_speedup);

  if (csv_speedup <= 1.0) {
    std::fprintf(stderr, "LFC full scan did not beat CSV parse\n");
    ok = false;
  }
  if (prune_speedup <= 1.0) {
    std::fprintf(stderr, "pruned scan did not beat unpruned scan\n");
    ok = false;
  }

  std::ofstream json("BENCH_columnar.json");
  json << "[\n"
       << "  {\"phase\": \"csv_parse_full\", \"seconds\": "
       << csv_parse.seconds << ", \"rows\": " << csv_parse.rows << "},\n"
       << "  {\"phase\": \"lfc_scan_full\", \"seconds\": "
       << lfc_full.seconds << ", \"rows\": " << lfc_full.rows
       << ", \"speedup_vs_csv\": " << csv_speedup << "},\n"
       << "  {\"phase\": \"lfc_selective_unpruned\", \"seconds\": "
       << unpruned.seconds << ", \"rows\": " << unpruned.rows << "},\n"
       << "  {\"phase\": \"lfc_selective_pruned\", \"seconds\": "
       << pruned.seconds << ", \"rows\": " << pruned.rows
       << ", \"chunks_total\": " << pruned_stats.chunks_total
       << ", \"chunks_skipped\": " << pruned_stats.chunks_skipped
       << ", \"speedup_vs_unpruned\": " << prune_speedup << "}\n"
       << "]\n";
  std::printf("-> BENCH_columnar.json (LFC must beat CSV; pruned must beat "
              "unpruned)\n");
  return ok ? 0 : 1;
}
