// Reproduces the paper's §5.3 overhead measurement: the time taken by
// the JIT static-analysis phase (parse -> SCIRPy -> CFG -> LAA/LDA ->
// rewrite -> source regeneration) for each benchmark program. The paper
// reports 0.04s-0.59s, a small fraction of program run time.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"
#include "script/analyze.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  std::printf("JIT static-analysis overhead per program\n\n");
  std::printf("%-9s %12s %14s %10s %10s\n", "program", "analyze (s)",
              "LaFP run (s)", "overhead", "rewrites");
  double max_overhead = 0.0;
  for (const auto& program : ProgramNames()) {
    auto paths = GenerateForProgram(program, dir, /*scale=*/1);
    if (!paths.ok()) continue;
    auto source = ProgramSource(program, *paths);
    if (!source.ok()) continue;

    // Repeat the analysis to get a stable timing.
    constexpr int kReps = 20;
    double total = 0.0;
    int rewrites = 0;
    for (int i = 0; i < kReps; ++i) {
      auto analyzed = script::Analyze(*source);
      if (!analyzed.ok()) {
        std::fprintf(stderr, "analyze failed for %s: %s\n",
                     program.c_str(),
                     analyzed.status().ToString().c_str());
        return 1;
      }
      total += analyzed->analysis_seconds;
      rewrites = analyzed->stats.reads_pruned +
                 analyzed->stats.computes_inserted +
                 analyzed->stats.dtype_hints_added;
    }
    double analysis = total / kReps;

    BenchConfig config;
    config.backend = exec::BackendKind::kPandas;
    config.optimized = true;
    BenchResult run = RunBenchmark(program, *paths, config, dir);
    double frac = run.seconds > 0 ? analysis / run.seconds : 0.0;
    max_overhead = std::max(max_overhead, analysis);
    std::printf("%-9s %12.5f %14.3f %9.2f%% %10d\n", program.c_str(),
                analysis, run.seconds, 100.0 * frac, rewrites);
  }
  std::printf(
      "\nPaper reference: analysis+rewrite takes 0.04-0.59 s, a very\n"
      "small fraction of execution time. Shape to match: overhead well\n"
      "under the run time for every program (max here: %.4f s).\n",
      max_overhead);
  return 0;
}
