// Reproduces paper Figure 12: "Number of Programs Successfully Executed
// on Different Platforms" — 10 programs x {Pandas, LPandas, Modin,
// LModin, Dask, LDask} x {S, M, L} under a fixed memory budget standing
// in for the paper's 32 GB machine (sizes scaled 1:100, DESIGN.md).
//
// Also performs the §5.2 regression check: every successful run's
// checksum lines must equal the plain-Pandas reference.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  int64_t budget = DefaultMemoryBudget();
  std::printf("Figure 12: programs successfully executed "
              "(budget=%lld MB, sizes S/M/L = paper's 1.4/4.2/12.6 GB)\n\n",
              static_cast<long long>(budget / 1000000));
  std::printf("%-6s %-8s %-9s %-7s %-8s %-6s %-7s\n", "Size", "Pandas",
              "LPandas", "Modin", "LModin", "Dask", "LDask");

  int regression_failures = 0;
  int checked = 0;
  for (const auto& [size_name, scale] : BenchSizes()) {
    std::map<std::string, int> successes;
    for (const auto& program : ProgramNames()) {
      auto paths = GenerateForProgram(program, dir, scale);
      if (!paths.ok()) {
        std::fprintf(stderr, "datagen %s failed: %s\n", program.c_str(),
                     paths.status().ToString().c_str());
        return 1;
      }
      std::string reference;  // plain-Pandas checksum lines
      for (const auto& config : AllConfigs(budget)) {
        BenchResult r = RunBenchmark(program, *paths, config, dir);
        if (r.success) {
          ++successes[ConfigName(config)];
          // §5.2 regression: all successful configurations must produce
          // identical result hashes (row order canonicalized).
          if (reference.empty()) {
            reference = r.checksums;
          } else if (!r.checksums.empty() && r.checksums != reference) {
            std::fprintf(stderr,
                         "REGRESSION: %s/%s/%s checksum mismatch\n",
                         size_name.c_str(), program.c_str(),
                         ConfigName(config).c_str());
            ++regression_failures;
          } else {
            ++checked;
          }
        }
      }
    }
    std::printf("%-6s %-8d %-9d %-7d %-8d %-6d %-7d\n", size_name.c_str(),
                successes["Pandas"], successes["LPandas"],
                successes["Modin"], successes["LModin"], successes["Dask"],
                successes["LDask"]);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference (Fig. 12):\n"
      "S      10       10        10      10       10     10\n"
      "M      10       10        9       9        10     10\n"
      "L      2        7         4       7        8      9\n");
  std::printf("\nregression check: %d cross-backend comparisons, %d "
              "mismatches\n",
              checked, regression_failures);
  return regression_failures == 0 ? 0 : 1;
}
