// Per-optimization ablation (DESIGN.md design-choice breakdown): the taxi
// program on LDask with each LaFP optimization disabled in turn, showing
// each one's individual contribution to time and memory.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  int scale = (quick != nullptr && quick[0] == '1') ? 1 : 9;
  auto paths = GenerateForProgram("taxi", dir, scale);
  if (!paths.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }

  BenchConfig base;
  base.backend = exec::BackendKind::kDask;
  base.optimized = true;

  struct Row {
    const char* name;
    BenchConfig config;
  };
  std::vector<Row> rows;
  {
    BenchConfig plain = base;
    plain.optimized = false;
    rows.push_back({"plain Dask (no LaFP)", plain});
  }
  rows.push_back({"all optimizations", base});
  {
    BenchConfig c = base;
    c.enable_column_selection = false;
    rows.push_back({"- column selection (3.1)", c});
  }
  {
    BenchConfig c = base;
    c.enable_lazy_print = false;
    rows.push_back({"- lazy print (3.3)", c});
  }
  {
    BenchConfig c = base;
    c.enable_pushdown = false;
    rows.push_back({"- predicate pushdown (3.2)", c});
  }
  {
    BenchConfig c = base;
    c.enable_metadata = false;
    rows.push_back({"- metadata dtypes (3.6)", c});
  }
  {
    BenchConfig c = base;
    c.enable_caching = false;
    rows.push_back({"- reuse caching (3.5)", c});
  }

  std::printf(
      "Optimization ablation: taxi on the Dask backend (L dataset)\n\n");
  std::printf("%-28s %10s %12s\n", "configuration", "time (s)",
              "peak (MB)");
  for (const Row& row : rows) {
    BenchResult r = RunBenchmark("taxi", *paths, row.config, dir);
    if (!r.success) {
      std::printf("%-28s failed: %s\n", row.name,
                  r.status.ToString().c_str());
      continue;
    }
    std::printf("%-28s %10.3f %12.1f\n", row.name, r.seconds,
                r.peak_bytes / 1e6);
  }
  std::printf(
      "\nReading: each '-' row removes one optimization from the full\n"
      "configuration; the gap to 'all optimizations' is its contribution\n"
      "(the paper credits column selection as the largest single win).\n");
  return 0;
}
