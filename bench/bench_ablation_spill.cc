// Extension ablation for the paper's §5.4 future work: "Persisting Dask
// dataframes on disk". Runs stu (the reuse-heavy program) on LDask three
// ways: memory-resident persist (the paper's behavior), disk-spilled
// persist (the future-work extension), and no caching.
//
// Expected shape: spill keeps nearly all of the caching speedup while
// cutting the resident memory back near the no-persist level — the
// memory/speed trade the paper anticipates.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  int scale = (quick != nullptr && quick[0] == '1') ? 1 : 9;
  auto paths = GenerateForProgram("stu", dir, scale);
  if (!paths.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }

  BenchConfig memory_persist;
  memory_persist.backend = exec::BackendKind::kDask;
  memory_persist.optimized = true;

  BenchConfig disk_persist = memory_persist;
  disk_persist.spill_persisted = true;

  BenchConfig no_cache = memory_persist;
  no_cache.enable_caching = false;

  struct Row {
    const char* name;
    BenchConfig config;
  };
  Row rows[] = {{"persist in memory (paper)", memory_persist},
                {"persist spilled to disk", disk_persist},
                {"caching disabled", no_cache}};

  std::printf("Persist-placement ablation: stu on LDask (L dataset)\n\n");
  std::printf("%-28s %10s %12s\n", "configuration", "time (s)",
              "peak (MB)");
  for (const Row& row : rows) {
    BenchResult r = RunBenchmark("stu", *paths, row.config, dir);
    if (!r.success) {
      std::printf("%-28s failed: %s\n", row.name,
                  r.status.ToString().c_str());
      continue;
    }
    std::printf("%-28s %10.3f %12.1f\n", row.name, r.seconds,
                r.peak_bytes / 1e6);
  }
  std::printf(
      "\nShape: disk persist should sit between the other two — most of\n"
      "the reuse speedup (re-reading spilled partitions beats recomputing\n"
      "the chain) at a fraction of the resident memory.\n");
  return 0;
}
