// Query-service throughput/latency bench: an in-process QueryService on
// a loopback port, hammered by concurrent HTTP clients running the same
// PdScript workload. Reports per-request latency at client counts 1..C
// (the shared-pool multiplexing cost), warm-vs-cold cache effect, and
// admission-rejection behavior when offered load exceeds max_sessions.
// Results land in BENCH_serve.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "serve/server.h"

namespace lafp::bench {
namespace {

constexpr int kRows = 20000;

std::string WriteDataset(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::string path = dir + "/serve_bench_" + std::to_string(kRows) + ".csv";
  if (std::filesystem::exists(path)) return path;
  std::ofstream out(path);
  out << "fare,day,passengers\n";
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < kRows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out << static_cast<int>((state >> 33) % 100) << ","
        << static_cast<int>((state >> 17) % 7) << ","
        << static_cast<int>((state >> 7) % 6) + 1 << "\n";
  }
  return path;
}

std::string Program(const std::string& csv_path) {
  return "import lazyfatpandas.pandas as pd\n"
         "df = pd.read_csv(\"" + csv_path + "\")\n"
         "df = df[df.fare > 10]\n"
         "g = df.groupby([\"day\"])[\"passengers\"].sum()\n"
         "print(g)\n";
}

/// One blocking request; returns the HTTP status (-1 on socket failure).
int Request(int port, const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  std::string req = "POST /run HTTP/1.1\r\nHost: localhost\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t r = ::send(fd, req.data() + sent, req.size() - sent,
                       MSG_NOSIGNAL);
    if (r <= 0) break;
    sent += static_cast<size_t>(r);
  }
  std::string head;
  char buf[4096];
  while (true) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    head.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  if (head.size() < 12) return -1;
  return std::atoi(head.substr(9, 3).c_str());
}

struct LoadResult {
  int clients = 0;
  int requests = 0;
  int ok = 0;
  int rejected = 0;
  int failed = 0;
  double seconds = 0.0;
  double requests_per_second() const {
    return seconds > 0 ? ok / seconds : 0.0;
  }
  double avg_latency_ms() const {
    return ok > 0 ? seconds * 1000.0 * clients / ok : 0.0;
  }
};

/// `clients` threads each issue `per_client` sequential requests.
LoadResult RunLoad(int port, const std::string& body, int clients,
                   int per_client) {
  LoadResult result;
  result.clients = clients;
  result.requests = clients * per_client;
  std::atomic<int> ok{0}, rejected{0}, failed{0};
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < per_client; ++i) {
        int status = Request(port, body);
        if (status == 200) {
          ok.fetch_add(1);
        } else if (status == 429) {
          rejected.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.ok = ok.load();
  result.rejected = rejected.load();
  result.failed = failed.load();
  return result;
}

void EmitRecord(std::ofstream& json, bool* first, const char* scenario,
                const LoadResult& r) {
  json << (*first ? "" : ",\n") << "  {\"scenario\": \"" << scenario
       << "\", \"clients\": " << r.clients
       << ", \"requests\": " << r.requests << ", \"ok\": " << r.ok
       << ", \"rejected\": " << r.rejected << ", \"failed\": " << r.failed
       << ", \"seconds\": " << r.seconds
       << ", \"rps\": " << r.requests_per_second()
       << ", \"avg_latency_ms\": " << r.avg_latency_ms() << "}";
  *first = false;
  std::printf("  %-24s clients=%d ok=%d rejected=%d failed=%d "
              "rps=%.1f avg=%.2f ms\n",
              scenario, r.clients, r.ok, r.rejected, r.failed,
              r.requests_per_second(), r.avg_latency_ms());
}

int Main() {
  const bool quick = std::getenv("LAFP_BENCH_QUICK") != nullptr;
  const int per_client = quick ? 4 : 16;
  std::string csv_path = WriteDataset(BenchScratchDir());
  std::string body = Program(csv_path);

  serve::ServeOptions options;
  options.port = 0;
  options.worker_threads = 16;
  options.max_sessions = 8;
  options.session_threads = 2;
  serve::QueryService service(options);
  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("bench_serve: %d rows, %d requests/client, max_sessions=%d\n",
              kRows, per_client, options.max_sessions);

  std::ofstream json("BENCH_serve.json");
  json << "[\n";
  bool first = true;
  bool correct = true;

  // Cold single client first (fills the shared result cache), then the
  // same serial load warm: the delta is the cross-request cache win.
  LoadResult cold = RunLoad(service.port(), body, 1, per_client);
  EmitRecord(json, &first, "serial_cold", cold);
  LoadResult warm = RunLoad(service.port(), body, 1, per_client);
  EmitRecord(json, &first, "serial_warm", warm);
  correct = correct && cold.failed == 0 && warm.failed == 0;

  // Concurrency within admission capacity: every request must succeed.
  for (int clients : {2, 4, 8}) {
    LoadResult r = RunLoad(service.port(), body, clients, per_client);
    EmitRecord(json, &first, "concurrent", r);
    correct = correct && r.failed == 0 && r.rejected == 0;
  }

  // Offered load over max_sessions: overflow is rejected with 429, never
  // an error; admitted requests still all succeed.
  LoadResult over = RunLoad(service.port(), body, 16, per_client);
  EmitRecord(json, &first, "over_admission", over);
  correct = correct && over.failed == 0 && over.ok > 0;

  json << "\n]\n";
  service.Stop();
  std::printf("-> BENCH_serve.json (failed=0 everywhere gates the exit "
              "code; rejected>0 expected only over capacity)\n");
  return correct ? 0 : 1;
}

}  // namespace
}  // namespace lafp::bench

int main() { return lafp::bench::Main(); }
