#ifndef LAFP_BENCH_HARNESS_H_
#define LAFP_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/backend.h"
#include "lazy/result_cache.h"
#include "testing/datagen.h"

namespace lafp::bench {

// The synthetic dataset generator is shared with the tests and the
// differential fuzzer (src/testing/datagen.h); re-exported here so bench
// code keeps its historical unqualified names.
using testing::BaseRows;
using testing::Dataset;
using testing::DatasetsForProgram;
using testing::Generate;
using testing::GenerateForProgram;

/// The six evaluation configurations of the paper's Figures 12-15:
/// {Pandas, Modin, Dask} x {plain, LaFP-optimized}.
struct BenchConfig {
  exec::BackendKind backend = exec::BackendKind::kPandas;
  bool optimized = false;  // LPandas / LModin / LDask when true

  /// §3.5 knob for the caching ablation: forwarding live_df hints can be
  /// disabled while keeping every other optimization.
  bool enable_caching = true;

  // ---- per-optimization ablation knobs (optimized runs only) ----
  bool enable_column_selection = true;  // §3.1 usecols rewrite
  bool enable_lazy_print = true;        // §3.3 lazy print
  bool enable_pushdown = true;          // §3.2 graph predicate pushdown
  bool enable_metadata = true;          // §3.6 dtype/category hints
  /// §5.4 extension: persist Dask collections to disk instead of memory.
  bool spill_persisted = false;

  /// Deterministic stand-in for the machine's 32 GB RAM (DESIGN.md).
  /// 0 = unlimited.
  int64_t memory_budget = 0;

  size_t partition_rows = 8192;
  /// Simulated per-task scheduling overhead (µs); defaults below mirror
  /// the paper's observation that Dask/Modin trail Pandas in memory.
  int64_t task_overhead_us = -1;  // -1 = per-backend default

  /// Cross-query plan/result cache (lazy/result_cache.h) shared across
  /// RunBenchmark calls — the warm-vs-cold repeated-program comparison.
  /// Null = cross-query caching off (the default; unrelated to the §3.5
  /// enable_caching persist-hint knob above).
  std::shared_ptr<lazy::ResultCache> result_cache;
};

/// Display name ("Pandas", "LDask", ...) as used in the paper's figures.
std::string ConfigName(const BenchConfig& config);

/// All six configurations in figure order.
std::vector<BenchConfig> AllConfigs(int64_t memory_budget);

struct BenchResult {
  bool success = false;
  Status status;
  double seconds = 0.0;
  int64_t peak_bytes = 0;
  double analysis_seconds = 0.0;  // JIT static-analysis overhead
  std::string checksums;          // concatenated "checksum ..." lines
};

/// Run one benchmark program under one configuration: fresh tracker with
/// the budget, fresh session, full pipeline. Never fails hard — errors
/// (OOM in particular) are reported in the result, as in Figure 12.
BenchResult RunBenchmark(const std::string& program_name,
                         const std::map<std::string, std::string>& paths,
                         const BenchConfig& config,
                         const std::string& scratch_dir);

/// Shared scratch directory for generated datasets and metastores
/// (respects LAFP_BENCH_DIR, defaults to <temp>/lafp_bench).
std::string BenchScratchDir();

/// Scale factors for the paper's three dataset sizes (S=1, M=3, L=9,
/// mirroring 1.4/4.2/12.6 GB). Respects LAFP_BENCH_QUICK=1 for smoke
/// runs.
std::vector<std::pair<std::string, int>> BenchSizes();

/// The memory budget playing the role of the paper's 32 GB.
int64_t DefaultMemoryBudget();

}  // namespace lafp::bench

#endif  // LAFP_BENCH_HARNESS_H_
