// Reproduces paper Figure 15 (a-c): peak-memory reduction of the LaFP
// configuration vs its baseline, as a percentage of the original peak,
// per backend and dataset size. Negative values = the optimization used
// MORE memory (the paper's stu-on-Dask case, where persisting shared
// subexpressions trades memory for speed).
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  int64_t budget = DefaultMemoryBudget();
  for (const auto& [size_name, scale] : BenchSizes()) {
    std::printf("Figure 15 (%s dataset): peak memory reduction %%\n",
                size_name.c_str());
    std::printf("%-9s %10s %10s %10s\n", "program", "Pandas", "Modin",
                "Dask");
    for (const auto& program : ProgramNames()) {
      auto paths = GenerateForProgram(program, dir, scale);
      if (!paths.ok()) {
        std::fprintf(stderr, "datagen failed: %s\n",
                     paths.status().ToString().c_str());
        return 1;
      }
      std::printf("%-9s", program.c_str());
      for (auto backend :
           {exec::BackendKind::kPandas, exec::BackendKind::kModin,
            exec::BackendKind::kDask}) {
        BenchConfig base;
        base.backend = backend;
        base.optimized = false;
        base.memory_budget = budget;
        BenchConfig opt = base;
        opt.optimized = true;
        BenchResult rb = RunBenchmark(program, *paths, base, dir);
        BenchResult ro = RunBenchmark(program, *paths, opt, dir);
        if (!rb.success && !ro.success) {
          std::printf(" %10s", "n/a");
        } else if (!rb.success) {
          std::printf(" %10s", "100*");
        } else if (!ro.success) {
          std::printf(" %10s", "OOM!");
        } else {
          double reduction = 100.0 *
                             (static_cast<double>(rb.peak_bytes) -
                              static_cast<double>(ro.peak_bytes)) /
                             static_cast<double>(rb.peak_bytes);
          std::printf(" %9.1f%%", reduction);
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape to match the paper: >95%% where column selection dominates\n"
      "(Pandas); up to ~60%% on Modin and ~70%% on Dask; NEGATIVE for the\n"
      "stu program on Dask (persisted reuse costs memory, paper: 2.3x).\n");
  return 0;
}
