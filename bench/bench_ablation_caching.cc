// Reproduces the paper's §5.3/§5.4 caching ablation on the stu program:
// with common-computation-reuse (live_df persist hints) LaFP-on-Dask is
// much faster but holds the shared frame in memory; with caching off the
// speedup collapses while memory drops below the baseline's.
//
// Paper: caching on = 13x speedup, 2.3x memory increase;
//        caching off = 1.4x speedup, 0.8x memory.
//
// Part 2 measures the cross-query plan/result cache
// (lazy/result_cache.h): the same optimized program runs cold (fresh
// shared cache, inserts only) and then warm (spliced from the cache);
// results land in BENCH_cache.json.
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench/harness.h"
#include "bench/programs.h"
#include "lazy/result_cache.h"

using namespace lafp;
using namespace lafp::bench;

namespace {

/// Cold/warm repeated-program comparison on one backend. Returns false
/// on execution failure or a cold/warm checksum mismatch.
bool RunCrossQuery(const std::string& program,
                   const std::map<std::string, std::string>& paths,
                   exec::BackendKind backend, const std::string& dir,
                   std::ofstream& json, bool* first_record) {
  BenchConfig config;
  config.backend = backend;
  config.optimized = true;
  config.result_cache = std::make_shared<lazy::ResultCache>();

  BenchResult cold = RunBenchmark(program, paths, config, dir);
  const int64_t cold_hits = config.result_cache->hits();
  const int64_t inserts = config.result_cache->inserts();
  BenchResult warm = RunBenchmark(program, paths, config, dir);
  const int64_t warm_hits = config.result_cache->hits() - cold_hits;

  const char* name = exec::BackendKindName(backend);
  if (!cold.success || !warm.success) {
    std::fprintf(stderr, "%s cross-query run failed: %s / %s\n", name,
                 cold.status.ToString().c_str(),
                 warm.status.ToString().c_str());
    return false;
  }
  if (warm.checksums != cold.checksums) {
    std::fprintf(stderr, "%s warm run diverged from cold run\n", name);
    return false;
  }

  const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0;
  std::printf("%-22s %10.3f %10.3f %9.1fx %7lld %7lld\n", name,
              cold.seconds, warm.seconds, speedup,
              static_cast<long long>(inserts),
              static_cast<long long>(warm_hits));
  json << (*first_record ? "" : ",\n") << "  {\"program\": \"" << program
       << "\", \"backend\": \"" << name << "\", \"cold_seconds\": "
       << cold.seconds << ", \"warm_seconds\": " << warm.seconds
       << ", \"speedup\": " << speedup << ", \"inserts\": " << inserts
       << ", \"warm_hits\": " << warm_hits << ", \"cache_bytes\": "
       << config.result_cache->bytes() << "}";
  *first_record = false;
  return true;
}

}  // namespace

int main() {
  std::string dir = BenchScratchDir();
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  int scale = (quick != nullptr && quick[0] == '1') ? 1 : 9;
  auto paths = GenerateForProgram("stu", dir, scale);
  if (!paths.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }

  BenchConfig baseline;  // plain Dask
  baseline.backend = exec::BackendKind::kDask;
  baseline.optimized = false;
  BenchConfig cached = baseline;
  cached.optimized = true;
  BenchConfig uncached = cached;
  uncached.enable_caching = false;

  BenchResult rb = RunBenchmark("stu", *paths, baseline, dir);
  BenchResult rc = RunBenchmark("stu", *paths, cached, dir);
  BenchResult ru = RunBenchmark("stu", *paths, uncached, dir);
  if (!rb.success || !rc.success || !ru.success) {
    std::fprintf(stderr, "a configuration failed: %s / %s / %s\n",
                 rb.status.ToString().c_str(),
                 rc.status.ToString().c_str(),
                 ru.status.ToString().c_str());
    return 1;
  }

  std::printf("Caching ablation: stu program, Dask backend, L dataset\n\n");
  std::printf("%-22s %10s %12s\n", "configuration", "time (s)",
              "peak (MB)");
  std::printf("%-22s %10.3f %12.1f\n", "Dask (baseline)", rb.seconds,
              rb.peak_bytes / 1e6);
  std::printf("%-22s %10.3f %12.1f\n", "LDask (caching on)", rc.seconds,
              rc.peak_bytes / 1e6);
  std::printf("%-22s %10.3f %12.1f\n", "LDask (caching off)", ru.seconds,
              ru.peak_bytes / 1e6);
  std::printf("\nspeedup vs Dask:  caching on %.1fx, caching off %.1fx\n",
              rb.seconds / rc.seconds, rb.seconds / ru.seconds);
  std::printf("memory vs Dask:   caching on %.1fx, caching off %.1fx\n",
              static_cast<double>(rc.peak_bytes) / rb.peak_bytes,
              static_cast<double>(ru.peak_bytes) / rb.peak_bytes);
  std::printf(
      "\nPaper reference: caching on = 13x speedup at 2.3x memory;\n"
      "caching off = 1.4x speedup at 0.8x memory. The shape to match:\n"
      "caching buys a large speedup at a memory premium.\n");

  std::printf(
      "\nCross-query result cache: repeated optimized runs of stu\n\n");
  std::printf("%-22s %10s %10s %10s %7s %7s\n", "backend", "cold (s)",
              "warm (s)", "speedup", "insert", "hits");
  std::ofstream json("BENCH_cache.json");
  json << "[\n";
  bool first_record = true;
  bool ok = true;
  for (auto backend :
       {exec::BackendKind::kPandas, exec::BackendKind::kModin}) {
    ok = RunCrossQuery("stu", *paths, backend, dir, json, &first_record) &&
         ok;
  }
  json << "\n]\n";
  std::printf("\n-> BENCH_cache.json (warm runs splice cached subtrees;\n"
              "   warm output must checksum-match the cold run)\n");
  return ok ? 0 : 1;
}
