// Reproduces the paper's §5.3/§5.4 caching ablation on the stu program:
// with common-computation-reuse (live_df persist hints) LaFP-on-Dask is
// much faster but holds the shared frame in memory; with caching off the
// speedup collapses while memory drops below the baseline's.
//
// Paper: caching on = 13x speedup, 2.3x memory increase;
//        caching off = 1.4x speedup, 0.8x memory.
#include <cstdio>

#include "bench/harness.h"
#include "bench/programs.h"

using namespace lafp;
using namespace lafp::bench;

int main() {
  std::string dir = BenchScratchDir();
  const char* quick = std::getenv("LAFP_BENCH_QUICK");
  int scale = (quick != nullptr && quick[0] == '1') ? 1 : 9;
  auto paths = GenerateForProgram("stu", dir, scale);
  if (!paths.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }

  BenchConfig baseline;  // plain Dask
  baseline.backend = exec::BackendKind::kDask;
  baseline.optimized = false;
  BenchConfig cached = baseline;
  cached.optimized = true;
  BenchConfig uncached = cached;
  uncached.enable_caching = false;

  BenchResult rb = RunBenchmark("stu", *paths, baseline, dir);
  BenchResult rc = RunBenchmark("stu", *paths, cached, dir);
  BenchResult ru = RunBenchmark("stu", *paths, uncached, dir);
  if (!rb.success || !rc.success || !ru.success) {
    std::fprintf(stderr, "a configuration failed: %s / %s / %s\n",
                 rb.status.ToString().c_str(),
                 rc.status.ToString().c_str(),
                 ru.status.ToString().c_str());
    return 1;
  }

  std::printf("Caching ablation: stu program, Dask backend, L dataset\n\n");
  std::printf("%-22s %10s %12s\n", "configuration", "time (s)",
              "peak (MB)");
  std::printf("%-22s %10.3f %12.1f\n", "Dask (baseline)", rb.seconds,
              rb.peak_bytes / 1e6);
  std::printf("%-22s %10.3f %12.1f\n", "LDask (caching on)", rc.seconds,
              rc.peak_bytes / 1e6);
  std::printf("%-22s %10.3f %12.1f\n", "LDask (caching off)", ru.seconds,
              ru.peak_bytes / 1e6);
  std::printf("\nspeedup vs Dask:  caching on %.1fx, caching off %.1fx\n",
              rb.seconds / rc.seconds, rb.seconds / ru.seconds);
  std::printf("memory vs Dask:   caching on %.1fx, caching off %.1fx\n",
              static_cast<double>(rc.peak_bytes) / rb.peak_bytes,
              static_cast<double>(ru.peak_bytes) / rb.peak_bytes);
  std::printf(
      "\nPaper reference: caching on = 13x speedup at 2.3x memory;\n"
      "caching off = 1.4x speedup at 0.8x memory. The shape to match:\n"
      "caching buys a large speedup at a memory premium.\n");
  return 0;
}
