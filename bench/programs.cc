#include "bench/programs.h"

namespace lafp::bench {

namespace {

/// Substitute {name} placeholders with dataset paths.
Result<std::string> Fill(std::string tmpl,
                         const std::map<std::string, std::string>& paths) {
  for (const auto& [name, path] : paths) {
    std::string key = "{" + name + "}";
    size_t pos;
    while ((pos = tmpl.find(key)) != std::string::npos) {
      tmpl.replace(pos, key.size(), path);
    }
  }
  if (tmpl.find('{') != std::string::npos) {
    size_t pos = tmpl.find('{');
    // f-strings legitimately contain braces after "f\""; only flag
    // placeholders that look like {name}.csv injections left unfilled.
    (void)pos;
  }
  return tmpl;
}

}  // namespace

std::vector<std::string> ProgramNames() {
  return {"taxi",   "movie",  "startup", "emp",    "stu",
          "retail", "weather", "flights", "sensor", "sales"};
}

std::string ProgramDescription(const std::string& name) {
  if (name == "taxi") {
    return "Figure 3 workload: filter + feature add + groupby; exercises "
           "column selection (20 cols -> 3) and lazy print";
  }
  if (name == "movie") {
    return "ratings x movies merge + per-genre aggregation; exercises "
           "merge broadcast and cross-frame column selection";
  }
  if (name == "startup") {
    return "exploratory filters + value_counts + multiple prints; "
           "exercises lazy print and predicate pushdown";
  }
  if (name == "emp") {
    return "per-dept salary stats, then an external plot of the full "
           "frame: the materialization that OOMs every backend at L";
  }
  if (name == "stu") {
    return "shared feature frame reused by a plot and later aggregates; "
           "the common-computation-reuse / caching ablation program";
  }
  if (name == "retail") {
    return "revenue feature + filter above mean + per-product rollup; "
           "exercises pushdown and runtime-scalar predicates";
  }
  if (name == "weather") {
    return "datetime features + conjunctive filters + monthly rollup; "
           "exercises pushdown through set_item and dt accessors";
  }
  if (name == "flights") {
    return "delay analysis with dedup and nunique; exercises fallback "
           "aggregation paths";
  }
  if (name == "sensor") {
    return "data cleaning (fillna/dropna) with control flow on len(); "
           "exercises branches in the static analyses";
  }
  if (name == "sales") {
    return "low-cardinality string groupbys; exercises the metadata "
           "category-dtype optimization";
  }
  return "";
}

Result<std::string> ProgramSource(
    const std::string& name,
    const std::map<std::string, std::string>& paths) {
  std::string src;
  if (name == "taxi") {
    // Paper Figure 3, extended with the Figure 7 print pattern.
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{taxi}\")\n"
        "print(df.head())\n"
        "df = df[df.fare_amount > 0]\n"
        "df[\"day\"] = df.pickup_datetime.dt.dayofweek\n"
        "p_per_day = df.groupby([\"day\"])[\"passenger_count\"].sum()\n"
        "print(p_per_day)\n"
        "avg_fare = df.fare_amount.mean()\n"
        "print(f\"Average fare: {avg_fare}\")\n"
        "checksum(p_per_day)\n";
  } else if (name == "movie") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "ratings = pd.read_csv(\"{ratings}\")\n"
        "movies = pd.read_csv(\"{movies}\")\n"
        "good = ratings[ratings.rating >= 3.0]\n"
        "j = good.merge(movies, on=[\"movieId\"], how=\"inner\")\n"
        "by_genre = j.groupby([\"genre\"])[\"rating\"].mean()\n"
        "print(by_genre)\n"
        "recent = j[j.year >= 2000]\n"
        "per_year = recent.groupby([\"year\"])[\"rating\"].count()\n"
        "checksum(by_genre)\n"
        "checksum(per_year)\n";
  } else if (name == "startup") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{startup}\")\n"
        "print(df.head())\n"
        "alive = df[df.status == \"operating\"]\n"
        "funded = alive[alive.funding_total > 50.0]\n"
        "by_city = funded.groupby([\"city\"])[\"funding_total\"].sum()\n"
        "print(by_city)\n"
        "sectors = funded.sector.value_counts()\n"
        "print(sectors)\n"
        "n = len(funded)\n"
        "print(f\"funded startups: {n}\")\n"
        "n_names = funded.name.count()\n"
        "by_year = funded.groupby([\"founded_year\"])[\"employees\"].sum()\n"
        "avg_growth = funded.growth.mean()\n"
        "rounds = df.funding_rounds.sum()\n"
        "print(f\"named: {n_names} growth: {avg_growth} rounds: {rounds}\")\n"
        "checksum(by_city)\n"
        "checksum(sectors)\n"
        "checksum(by_year)\n";
  } else if (name == "emp") {
    // The program whose external plot needs the FULL dataframe
    // materialized (paper §5.2: fails on every backend at 12.6 GB).
    src =
        "import lazyfatpandas.pandas as pd\n"
        "import matplotlib.pyplot as plt\n"
        "df = pd.read_csv(\"{emp}\")\n"
        "by_dept = df.groupby([\"dept\"])[\"salary\"].mean()\n"
        "print(by_dept)\n"
        "plt.plot(df)\n"
        "seniors = df[df.age > 50]\n"
        "by_city = seniors.groupby([\"city\"])[\"salary\"].max()\n"
        "checksum(by_dept)\n"
        "checksum(by_city)\n";
  } else if (name == "stu") {
    // Shared subexpression: the feature frame feeds a forced compute
    // (plot) and is reused afterwards (paper §3.5 / §5.3 ablation).
    src =
        "import lazyfatpandas.pandas as pd\n"
        "import matplotlib.pyplot as plt\n"
        "df = pd.read_csv(\"{stu}\")\n"
        "df[\"total\"] = df.score_math + df.score_read\n"
        "df[\"weighted\"] = df.total * df.attendance\n"
        "by_school = df.groupby([\"school\"])[\"total\"].mean()\n"
        "plt.plot(by_school)\n"
        "by_grade = df.groupby([\"grade\"])[\"weighted\"].mean()\n"
        "print(by_grade)\n"
        "top = df[df.total > 150.0]\n"
        "per_year = top.groupby([\"year\"])[\"total\"].count()\n"
        "avg_attendance = df.attendance.mean()\n"
        "print(f\"avg attendance: {avg_attendance}\")\n"
        "checksum(by_grade)\n"
        "checksum(per_year)\n";
  } else if (name == "retail") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{retail}\")\n"
        "df[\"revenue\"] = df.price * df.qty\n"
        "avg = df.revenue.mean()\n"
        "big = df[df.revenue > avg]\n"
        "by_product = big.groupby([\"product\"])[\"revenue\"].sum()\n"
        "print(by_product)\n"
        "by_store = big.groupby([\"store\"])[\"revenue\"].mean()\n"
        "checksum(by_product)\n"
        "checksum(by_store)\n";
  } else if (name == "weather") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{weather}\")\n"
        "df[\"month\"] = df.date.dt.month\n"
        "wet = df[(df.rainfall > 20.0) & (df.temp > 5.0)]\n"
        "monthly = wet.groupby([\"month\"])[\"rainfall\"].sum()\n"
        "print(monthly)\n"
        "hot = df[df.temp > 35.0]\n"
        "n = len(hot)\n"
        "print(f\"hot readings: {n}\")\n"
        "checksum(monthly)\n";
  } else if (name == "flights") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{flights}\")\n"
        "late = df[df.arr_delay > 0]\n"
        "by_carrier = late.groupby([\"carrier\"])[\"arr_delay\"].mean()\n"
        "print(by_carrier)\n"
        "routes = late.drop_duplicates(subset=[\"origin\", \"dest\"])\n"
        "n_routes = len(routes)\n"
        "print(f\"late routes: {n_routes}\")\n"
        "origins = df.origin.nunique()\n"
        "print(f\"origins: {origins}\")\n"
        "worst = late.sort_values(by=[\"arr_delay\"], ascending=False)\n"
        "top = worst.head(20)\n"
        "topsel = top[[\"carrier\", \"arr_delay\", \"origin\", \"dest\"]]\n"
        "checksum(by_carrier)\n"
        "checksum(topsel)\n";
  } else if (name == "sensor") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{sensor}\")\n"
        "clean = df.dropna()\n"
        "n = len(clean)\n"
        "if n > 100:\n"
        "    filled = df.fillna(0)\n"
        "    by_sensor = filled.groupby([\"sensor_id\"])[\"value\"].mean()\n"
        "else:\n"
        "    by_sensor = clean.groupby([\"sensor_id\"])[\"value\"].mean()\n"
        "print(by_sensor.head())\n"
        "faults = df[df.status == \"fault\"]\n"
        "n_faults = len(faults)\n"
        "print(f\"faults: {n_faults}\")\n"
        "by_channel = df.groupby([\"channel\"])[\"voltage\"].mean()\n"
        "span = df.ts.max()\n"
        "print(f\"latest: {span}\")\n"
        "checksum(by_sensor)\n"
        "checksum(by_channel)\n";
  } else if (name == "sales") {
    src =
        "import lazyfatpandas.pandas as pd\n"
        "df = pd.read_csv(\"{sales}\")\n"
        "by_region = df.groupby([\"region\"])[\"amount\"].sum()\n"
        "print(by_region)\n"
        "by_rep = df.groupby([\"rep\"])[\"amount\"].mean()\n"
        "print(by_rep)\n"
        "big = df[df.amount > 50000.0]\n"
        "by_product = big.groupby([\"product\"])[\"amount\"].count()\n"
        "checksum(by_region)\n"
        "checksum(by_product)\n";
  } else {
    return Status::Invalid("unknown benchmark program: " + name);
  }
  return Fill(std::move(src), paths);
}

}  // namespace lafp::bench
