#ifndef LAFP_BENCH_PROGRAMS_H_
#define LAFP_BENCH_PROGRAMS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace lafp::bench {

/// The 10 benchmark programs (paper §5.1: real workloads over movie
/// ratings, taxi data, startup analysis, emp, stu, ...). Each is a
/// PdScript source parameterized by its dataset paths, ends with a
/// checksum() of its result frame (the §5.2 regression hash), and
/// exercises a documented mix of LaFP optimizations.
std::vector<std::string> ProgramNames();

/// Program source with dataset paths substituted.
Result<std::string> ProgramSource(
    const std::string& name,
    const std::map<std::string, std::string>& dataset_paths);

/// One-line description of the optimization mix the program exercises.
std::string ProgramDescription(const std::string& name);

}  // namespace lafp::bench

#endif  // LAFP_BENCH_PROGRAMS_H_
