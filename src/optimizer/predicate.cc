#include "optimizer/predicate.h"

namespace lafp::opt {

using exec::OpDesc;
using exec::OpKind;
using lazy::TaskGraph;
using lazy::TaskNodePtr;

void Predicate::CollectColumns(std::vector<std::string>* out) const {
  if (kind == Kind::kLeaf) {
    out->push_back(column);
    return;
  }
  for (const auto& child : children) child.CollectColumns(out);
}

void Predicate::RenameColumns(
    const std::map<std::string, std::string>& mapping) {
  if (kind == Kind::kLeaf) {
    auto it = mapping.find(column);
    if (it != mapping.end()) column = it->second;
    return;
  }
  for (auto& child : children) child.RenameColumns(mapping);
}

namespace {

bool IsLeafTest(OpKind kind) {
  return kind == OpKind::kCompare || kind == OpKind::kStrContains ||
         kind == OpKind::kIsNull || kind == OpKind::kIsIn;
}

}  // namespace

std::optional<Predicate> ExtractPredicate(const TaskNodePtr& mask,
                                          const TaskNodePtr& anchor) {
  if (mask == nullptr) return std::nullopt;
  switch (mask->desc.kind) {
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr: {
      auto left = ExtractPredicate(mask->inputs[0], anchor);
      auto right = ExtractPredicate(mask->inputs[1], anchor);
      if (!left.has_value() || !right.has_value()) return std::nullopt;
      Predicate out;
      out.kind = mask->desc.kind == OpKind::kBooleanAnd ? Predicate::Kind::kAnd
                                                        : Predicate::Kind::kOr;
      out.children.push_back(std::move(*left));
      out.children.push_back(std::move(*right));
      return out;
    }
    case OpKind::kBooleanNot: {
      auto child = ExtractPredicate(mask->inputs[0], anchor);
      if (!child.has_value()) return std::nullopt;
      Predicate out;
      out.kind = Predicate::Kind::kNot;
      out.children.push_back(std::move(*child));
      return out;
    }
    default: {
      if (!IsLeafTest(mask->desc.kind)) return std::nullopt;
      // A compare leaf must be against an embedded scalar — a second
      // (runtime) input is a barrier.
      if (mask->desc.kind == OpKind::kCompare && !mask->desc.has_scalar) {
        return std::nullopt;
      }
      if (mask->inputs.size() != 1) return std::nullopt;
      const TaskNodePtr& col = mask->inputs[0];
      if (col->desc.kind != OpKind::kGetColumn || col->inputs.size() != 1 ||
          col->inputs[0] != anchor) {
        return std::nullopt;
      }
      Predicate out;
      out.kind = Predicate::Kind::kLeaf;
      out.op = mask->desc;
      out.column = col->desc.column;
      return out;
    }
  }
}

TaskNodePtr BuildMask(TaskGraph* graph, const Predicate& pred,
                      const TaskNodePtr& anchor) {
  switch (pred.kind) {
    case Predicate::Kind::kLeaf: {
      OpDesc get;
      get.kind = OpKind::kGetColumn;
      get.column = pred.column;
      TaskNodePtr col = graph->NewNode(std::move(get), {anchor});
      return graph->NewNode(pred.op, {std::move(col)});
    }
    case Predicate::Kind::kNot: {
      TaskNodePtr child = BuildMask(graph, pred.children[0], anchor);
      OpDesc desc;
      desc.kind = OpKind::kBooleanNot;
      return graph->NewNode(std::move(desc), {std::move(child)});
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      TaskNodePtr left = BuildMask(graph, pred.children[0], anchor);
      TaskNodePtr right = BuildMask(graph, pred.children[1], anchor);
      OpDesc desc;
      desc.kind = pred.kind == Predicate::Kind::kAnd ? OpKind::kBooleanAnd
                                                     : OpKind::kBooleanOr;
      return graph->NewNode(std::move(desc),
                            {std::move(left), std::move(right)});
    }
  }
  return nullptr;
}

}  // namespace lafp::opt
