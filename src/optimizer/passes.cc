#include "optimizer/passes.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "optimizer/predicate.h"

namespace lafp::opt {

using exec::OpDesc;
using exec::OpKind;
using lazy::Session;
using lazy::TaskGraph;
using lazy::TaskNode;
using lazy::TaskNodePtr;

Status DeduplicateNodes(Session* session,
                        const std::vector<TaskNodePtr>& roots,
                        PassStats* stats) {
  std::vector<TaskNodePtr> order = TaskGraph::TopoSort(roots);
  std::unordered_map<std::string, TaskNodePtr> canon;
  std::unordered_map<const TaskNode*, TaskNodePtr> replacement;
  (void)session;
  for (const auto& node : order) {
    // Redirect inputs through earlier replacements first.
    for (auto& in : node->inputs) {
      auto it = replacement.find(in.get());
      if (it != replacement.end()) in = it->second;
    }
    if (node->is_print() || node->executed) continue;
    // Spliced cache payloads live on the TaskNode, not in OpDesc: two
    // cleared kMaterialized leaves have equal fingerprints but distinct
    // payloads, so they must never merge.
    if (node->desc.kind == OpKind::kMaterialized) continue;
    std::string key = node->desc.Fingerprint();
    for (const auto& in : node->inputs) {
      key += "#" + std::to_string(in->id);
    }
    auto [it, inserted] = canon.emplace(std::move(key), node);
    if (!inserted && it->second != node) {
      if (std::getenv("LAFP_DEBUG_DEDUP") != nullptr) {
        std::cerr << "[dedup] merge node " << node->id << " ("
                  << node->desc.ToString() << ") -> " << it->second->id
                  << "\n";
      }
      replacement[node.get()] = it->second;
      // Persistence intent carries over to the canonical node.
      if (node->persist) it->second->persist = true;
      if (stats != nullptr) ++stats->nodes_deduplicated;
    }
  }
  return Status::OK();
}

Status EliminateRedundantOps(Session* session,
                             const std::vector<TaskNodePtr>& roots,
                             PassStats* stats) {
  (void)session;
  for (const auto& node : TaskGraph::TopoSort(roots)) {
    if (node->executed || node->inputs.empty()) continue;
    const TaskNodePtr& in = node->inputs[0];
    if (in->executed) continue;
    bool removed = false;
    switch (node->desc.kind) {
      case OpKind::kHead:
        if (in->desc.kind == OpKind::kHead) {
          node->desc.n = std::min(node->desc.n, in->desc.n);
          node->inputs = in->inputs;
          removed = true;
        }
        break;
      case OpKind::kSelect:
        // select(select(X)) == select(X): the outer projection decides.
        if (in->desc.kind == OpKind::kSelect) {
          node->inputs = in->inputs;
          removed = true;
        }
        break;
      case OpKind::kAsType:
        if (in->desc.kind == OpKind::kAsType &&
            in->desc.dtype == node->desc.dtype) {
          node->inputs = in->inputs;
          removed = true;
        }
        break;
      case OpKind::kBooleanNot:
        if (in->desc.kind == OpKind::kBooleanNot) {
          // not(not(X)) == X: become X's op.
          const TaskNodePtr& inner = in->inputs[0];
          node->desc = inner->desc;
          node->inputs = inner->inputs;
          removed = true;
        }
        break;
      default:
        break;
    }
    if (removed && stats != nullptr) ++stats->redundant_ops_removed;
  }
  return Status::OK();
}

namespace {

bool IsPushableThrough(OpKind kind) {
  switch (kind) {
    case OpKind::kSetColumn:
    case OpKind::kSelect:
    case OpKind::kRename:
    case OpKind::kDropColumns:
    case OpKind::kSortValues:
    case OpKind::kDropDuplicates:
      return true;
    default:
      return false;
  }
}

bool ProducesScalar(const TaskNodePtr& node) {
  return node->desc.kind == OpKind::kReduce ||
         node->desc.kind == OpKind::kLen;
}

/// Attempt to push one filter node below its input operator. Mutates
/// `filter` in place so existing handles keep pointing at the (now
/// reordered) value. Returns true on success.
bool TryPushFilter(Session* session, const TaskNodePtr& filter) {
  if (filter->executed || filter->inputs.size() != 2) return false;
  const TaskNodePtr u = filter->inputs[0];
  if (u->executed || u->inputs.empty()) return false;
  if (!IsPushableThrough(u->desc.kind)) return false;
  if (!exec::IsRowwiseInvariant(u->desc.kind)) return false;
  // Condition (3): the filter must be u's only consumer — not counting
  // the filter's own mask chain, which necessarily reads from u
  // (df[df.b < 20]) and is re-anchored by the rewrite.
  std::unordered_set<const TaskNode*> mask_nodes;
  for (const auto& n : TaskGraph::TopoSort({filter->inputs[1]})) {
    mask_nodes.insert(n.get());
  }
  for (const auto& consumer : session->graph()->Consumers(u.get())) {
    if (consumer.get() == filter.get()) continue;
    if (mask_nodes.count(consumer.get()) > 0) continue;
    return false;
  }

  auto pred = ExtractPredicate(filter->inputs[1], u);
  if (!pred.has_value()) return false;
  std::vector<std::string> pred_cols;
  pred->CollectColumns(&pred_cols);

  // Condition (1): u must not modify/compute the predicate's columns.
  if (u->desc.kind == OpKind::kRename) {
    // Rename keeps values; map predicate columns back to pre-rename names.
    std::map<std::string, std::string> reverse;
    for (const auto& [from, to] : u->desc.rename) reverse[to] = from;
    pred->RenameColumns(reverse);
  } else {
    std::vector<std::string> used, modified;
    if (!exec::GetColumnEffects(u->desc, &used, &modified)) return false;
    for (const auto& c : pred_cols) {
      if (std::find(modified.begin(), modified.end(), c) !=
          modified.end()) {
        return false;
      }
    }
  }
  // drop_duplicates keeps the first row per key: filtering first is only
  // equivalent when duplicates agree on the predicate columns, i.e. the
  // predicate only reads subset columns (empty subset = all columns, safe).
  if (u->desc.kind == OpKind::kDropDuplicates && !u->desc.columns.empty()) {
    for (const auto& c : pred_cols) {
      if (std::find(u->desc.columns.begin(), u->desc.columns.end(), c) ==
          u->desc.columns.end()) {
        return false;
      }
    }
  }

  TaskGraph* graph = session->graph();
  const TaskNodePtr& anchor = u->inputs[0];
  TaskNodePtr mask = BuildMask(graph, *pred, anchor);

  // Filter every row-aligned frame input of u with the re-anchored mask.
  std::vector<TaskNodePtr> new_inputs;
  for (size_t i = 0; i < u->inputs.size(); ++i) {
    const TaskNodePtr& in = u->inputs[i];
    if (ProducesScalar(in)) {
      new_inputs.push_back(in);  // scalars have no rows to filter
      continue;
    }
    OpDesc fdesc;
    fdesc.kind = OpKind::kFilter;
    new_inputs.push_back(graph->NewNode(std::move(fdesc), {in, mask}));
  }
  // The user-visible filter node becomes u applied to filtered inputs.
  filter->desc = u->desc;
  filter->inputs = std::move(new_inputs);
  return true;
}

/// Flatten the kAnd spine of `pred` into compare-with-scalar conjuncts.
/// kOr/kNot subtrees and non-compare leaves (isna, str.contains)
/// contribute nothing — pruning on any subset of the conjunction is
/// still sound, since a chunk where one conjunct matches no row has no
/// row matching the whole predicate.
void CollectPruneConjuncts(const Predicate& pred,
                           std::vector<io::LfcPredicate>* out) {
  if (pred.kind == Predicate::Kind::kAnd) {
    for (const auto& child : pred.children) {
      CollectPruneConjuncts(child, out);
    }
    return;
  }
  if (pred.kind == Predicate::Kind::kLeaf &&
      pred.op.kind == OpKind::kCompare && pred.op.has_scalar) {
    out->push_back({pred.column, pred.op.compare_op, pred.op.scalar});
  }
}

}  // namespace

Status PruneZoneMaps(Session* session,
                     const std::vector<TaskNodePtr>& roots,
                     PassStats* stats) {
  TaskGraph* graph = session->graph();
  for (const auto& node : TaskGraph::TopoSort(roots)) {
    if (node->desc.kind != OpKind::kFilter) continue;
    if (node->executed || node->inputs.size() != 2) continue;
    const TaskNodePtr read = node->inputs[0];
    if (read->desc.kind != OpKind::kReadLfc || read->executed) continue;
    if (!read->desc.lfc_options.prune_enabled) continue;
    if (!read->desc.lfc_options.prune.empty()) continue;  // already pruned
    // Same sole-consumer condition as pushdown: if anything besides this
    // filter (and its own mask chain) reads the scan, a cloned pruned
    // read would run the IO twice.
    std::unordered_set<const TaskNode*> mask_nodes;
    for (const auto& n : TaskGraph::TopoSort({node->inputs[1]})) {
      mask_nodes.insert(n.get());
    }
    bool sole = true;
    for (const auto& consumer : graph->Consumers(read.get())) {
      if (consumer.get() == node.get()) continue;
      if (mask_nodes.count(consumer.get()) > 0) continue;
      sole = false;
      break;
    }
    if (!sole) continue;
    auto pred = ExtractPredicate(node->inputs[1], read);
    if (!pred.has_value()) continue;
    std::vector<io::LfcPredicate> conjuncts;
    CollectPruneConjuncts(*pred, &conjuncts);
    if (conjuncts.empty()) continue;
    // Clone rather than mutate: interior mask nodes can be user-held
    // variables forced in a later round, and those must keep seeing the
    // unpruned scan.
    OpDesc pruned_desc = read->desc;
    pruned_desc.lfc_options.prune = std::move(conjuncts);
    TaskNodePtr pruned_read = graph->NewNode(std::move(pruned_desc), {});
    TaskNodePtr mask = BuildMask(graph, *pred, pruned_read);
    node->inputs = {pruned_read, mask};
    if (stats != nullptr) ++stats->zone_prunes_attached;
  }
  return Status::OK();
}

namespace {

/// A step the fused evaluator can run per element: single-input elementwise
/// ops whose parameters are compile-time scalars. String needles/scalars
/// are excluded (not lane-representable, and the stringy kernels are not
/// worth fusing).
bool IsFusableStep(const TaskNodePtr& node) {
  if (node->executed || node->inputs.size() != 1) return false;
  const OpDesc& d = node->desc;
  switch (d.kind) {
    case OpKind::kArith:
    case OpKind::kCompare:
      if (!d.has_scalar) return false;
      return d.scalar.is_null() ||
             d.scalar.type() == df::DataType::kInt64 ||
             d.scalar.type() == df::DataType::kDouble ||
             d.scalar.type() == df::DataType::kBool;
    case OpKind::kAbs:
    case OpKind::kRound:
    case OpKind::kBooleanNot:
    case OpKind::kIsNull:
      return true;
    default:
      return false;
  }
}

/// True when `node` may be absorbed into a fused chain (disappear as a
/// standalone value): nothing else reads it, it is not persisted, and it
/// is not a user-visible root of this round.
bool Absorbable(Session* session, const TaskNodePtr& node,
                const TaskNode* sole_consumer,
                const std::unordered_set<const TaskNode*>& roots_set) {
  if (node->executed || node->persist) return false;
  if (roots_set.count(node.get()) > 0) return false;
  for (const auto& c : session->graph()->Consumers(node.get())) {
    if (c.get() != sole_consumer) return false;
  }
  return true;
}

}  // namespace

Status FuseElementwise(Session* session,
                       const std::vector<TaskNodePtr>& roots,
                       PassStats* stats) {
  std::vector<TaskNodePtr> order = TaskGraph::TopoSort(roots);
  std::unordered_set<const TaskNode*> roots_set;
  for (const auto& r : roots) roots_set.insert(r.get());
  // Nodes already absorbed into a fusion this sweep: never re-match them
  // (the topo list is a snapshot and still names them).
  std::unordered_set<const TaskNode*> absorbed;

  // Reverse topo order visits consumers before producers, so each chain is
  // matched at its maximal tail and absorbs the whole prefix in one step.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskNodePtr& tail = *it;
    if (absorbed.count(tail.get()) > 0) continue;

    // ---- Variant A tail: a run of fusable steps (possibly reaching a
    // filter+project below). ----
    if (IsFusableStep(tail)) {
      std::vector<TaskNodePtr> chain{tail};  // tail-first; reversed below
      TaskNodePtr cur = tail;
      while (true) {
        const TaskNodePtr& prev = cur->inputs[0];
        if (!IsFusableStep(prev) ||
            !Absorbable(session, prev, cur.get(), roots_set)) {
          break;
        }
        chain.push_back(prev);
        cur = prev;
      }
      const TaskNodePtr head = chain.back();
      const TaskNodePtr source = head->inputs[0];

      // filter -> get_column below the chain? Then the whole thing fuses
      // into the selection-vector variant.
      bool with_filter = false;
      if (source->desc.kind == OpKind::kGetColumn &&
          Absorbable(session, source, head.get(), roots_set) &&
          source->inputs.size() == 1 &&
          source->inputs[0]->desc.kind == OpKind::kFilter &&
          source->inputs[0]->inputs.size() == 2 &&
          Absorbable(session, source->inputs[0], source.get(), roots_set)) {
        with_filter = true;
      }
      // A pure series chain only pays off with >= 2 steps; a lone step
      // fuses to itself. Scalar-producing sources (reduce/len) are left
      // alone so their error shape matches the unfused plan.
      if (!with_filter &&
          (chain.size() < 2 || ProducesScalar(source))) {
        continue;
      }

      OpDesc fdesc;
      fdesc.kind = OpKind::kFusedMap;
      for (auto cit = chain.rbegin(); cit != chain.rend(); ++cit) {
        fdesc.fused.push_back((*cit)->desc);
      }
      std::vector<TaskNodePtr> new_inputs;
      if (with_filter) {
        const TaskNodePtr& get = source;
        const TaskNodePtr& filter = get->inputs[0];
        fdesc.column = get->desc.column;
        new_inputs = {filter->inputs[0], filter->inputs[1]};
        absorbed.insert(get.get());
        absorbed.insert(filter.get());
      } else {
        new_inputs = {source};
      }
      for (size_t i = 0; i + 1 < chain.size(); ++i) {
        absorbed.insert(chain[i + 1].get());  // every step but the tail
      }
      tail->desc = std::move(fdesc);
      tail->inputs = std::move(new_inputs);
      if (stats != nullptr) ++stats->chains_fused;
      continue;
    }

    // ---- Variant B tail: bare get_column directly on a filter (0 fused
    // steps). Still a win: only the projected column is gathered through
    // the selection vector instead of every column of the frame. ----
    if (tail->desc.kind == OpKind::kGetColumn && !tail->executed &&
        tail->inputs.size() == 1 &&
        tail->inputs[0]->desc.kind == OpKind::kFilter &&
        tail->inputs[0]->inputs.size() == 2 &&
        Absorbable(session, tail->inputs[0], tail.get(), roots_set)) {
      const TaskNodePtr filter = tail->inputs[0];
      OpDesc fdesc;
      fdesc.kind = OpKind::kFusedMap;
      fdesc.column = tail->desc.column;
      absorbed.insert(filter.get());
      tail->desc = std::move(fdesc);
      tail->inputs = {filter->inputs[0], filter->inputs[1]};
      if (stats != nullptr) ++stats->chains_fused;
    }
  }
  return Status::OK();
}

Status PushDownPredicates(Session* session,
                          const std::vector<TaskNodePtr>& roots,
                          PassStats* stats) {
  constexpr int kMaxRounds = 64;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (const auto& node : TaskGraph::TopoSort(roots)) {
      if (node->desc.kind != OpKind::kFilter) continue;
      if (TryPushFilter(session, node)) {
        changed = true;
        if (stats != nullptr) ++stats->predicates_pushed;
      }
    }
    if (!changed) break;
  }
  return Status::OK();
}

namespace {

using PassFn = Status (*)(Session*, const std::vector<TaskNodePtr>&,
                          PassStats*);

/// Adapter from the module's free-function passes to the session's
/// OptimizerPass registry. The live set participates so shared chains
/// between the compute target and later uses are physically merged
/// before the session's persist marking sees them.
lazy::OptimizerPassFn WrapPass(PassFn fn, PassStats* stats) {
  return [fn, stats](Session* s, const std::vector<TaskNodePtr>& roots,
                     const std::vector<TaskNodePtr>& live) {
    std::vector<TaskNodePtr> all = roots;
    all.insert(all.end(), live.begin(), live.end());
    return fn(s, all, stats);
  };
}

}  // namespace

void InstallDefaultOptimizer(Session* session,
                             const OptimizerOptions& options,
                             PassStats* cumulative_stats) {
  // Registered as named passes so each round's ExecutionReport lists
  // them (with per-pass wall time) under these names.
  session->ClearOptimizerPasses();
  // When no cumulative sink is supplied, stats land in a sacrificial
  // accumulator owned by the pass closures.
  auto local = std::make_shared<PassStats>();
  PassStats* stats = cumulative_stats != nullptr ? cumulative_stats
                                                 : local.get();
  auto add = [session, local](std::string name,
                              lazy::OptimizerPassFn hook) {
    session->RegisterOptimizerPass(lazy::MakeFunctionPass(
        std::move(name),
        [local, hook = std::move(hook)](
            Session* s, const std::vector<TaskNodePtr>& roots,
            const std::vector<TaskNodePtr>& live) {
          return hook(s, roots, live);
        }));
  };
  if (options.deduplicate) {
    add("dedup", WrapPass(&DeduplicateNodes, stats));
  }
  if (options.redundant) {
    add("redundant-elim", WrapPass(&EliminateRedundantOps, stats));
  }
  if (options.pushdown) {
    add("pushdown", WrapPass(&PushDownPredicates, stats));
  }
  if (options.zone_prune) {
    // After pushdown: filters have been sunk onto their scan leaves, so
    // the filter-directly-on-kReadLfc shape this pass matches exists.
    add("zone-prune", WrapPass(&PruneZoneMaps, stats));
  }
  if (options.fuse) {
    // After pushdown/zone-prune so fusion sees the final chain shapes;
    // before the final dedup so identical fused nodes still merge.
    add("fuse", WrapPass(&FuseElementwise, stats));
  }
  if (options.deduplicate) {
    // Pushdown can re-create structurally identical filter chains; a
    // final dedup merges them (same shape as the old fused pipeline).
    add("dedup-final", WrapPass(&DeduplicateNodes, stats));
  }
}

}  // namespace lafp::opt
