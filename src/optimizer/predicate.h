#ifndef LAFP_OPTIMIZER_PREDICATE_H_
#define LAFP_OPTIMIZER_PREDICATE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lazy/task_graph.h"

namespace lafp::opt {

/// A reified filter predicate: the boolean expression tree a filter's
/// mask subgraph computes, with every leaf reading a named column of one
/// anchor frame. Reifying the mask is what lets predicate pushdown (§3.2)
/// re-anchor the same predicate below a safe operator.
struct Predicate {
  enum class Kind { kLeaf, kAnd, kOr, kNot };

  Kind kind = Kind::kLeaf;
  /// For leaves: the unary test op (kCompare with scalar, kStrContains,
  /// kIsNull) and the column it reads.
  exec::OpDesc op;
  std::string column;
  std::vector<Predicate> children;

  /// Columns read by the predicate (the paper's used_attrs(f)).
  void CollectColumns(std::vector<std::string>* out) const;

  /// Rewrite leaf column names through `mapping` (used to push below a
  /// rename: new-name -> old-name).
  void RenameColumns(const std::map<std::string, std::string>& mapping);
};

/// Reify the predicate computed by `mask` if every leaf is a supported
/// test over a column of `anchor`. Returns nullopt for shapes pushdown
/// cannot reason about (UDF-ish masks, cross-frame comparisons, runtime
/// scalars) — those act as barriers, per §3.2.
std::optional<Predicate> ExtractPredicate(const lazy::TaskNodePtr& mask,
                                          const lazy::TaskNodePtr& anchor);

/// Build fresh task-graph nodes that evaluate `pred` over `anchor`,
/// returning the boolean mask node.
lazy::TaskNodePtr BuildMask(lazy::TaskGraph* graph, const Predicate& pred,
                            const lazy::TaskNodePtr& anchor);

}  // namespace lafp::opt

#endif  // LAFP_OPTIMIZER_PREDICATE_H_
