#ifndef LAFP_OPTIMIZER_PASSES_H_
#define LAFP_OPTIMIZER_PASSES_H_

#include <vector>

#include "lazy/session.h"

namespace lafp::opt {

/// Statistics reported by one optimization round (tests and the bench
/// harness read these).
struct PassStats {
  int predicates_pushed = 0;
  int nodes_deduplicated = 0;
  int redundant_ops_removed = 0;
  int zone_prunes_attached = 0;
  int chains_fused = 0;
};

/// Merge structurally identical nodes (same op fingerprint, same inputs)
/// so shared subexpressions execute once per round. Consumers inside the
/// reachable graph are redirected to a canonical node; executed nodes and
/// prints are never touched.
Status DeduplicateNodes(lazy::Session* session,
                        const std::vector<lazy::TaskNodePtr>& roots,
                        PassStats* stats);

/// Local algebraic cleanups: head(head), select(select), astype(astype)
/// with the same type, not(not).
Status EliminateRedundantOps(lazy::Session* session,
                             const std::vector<lazy::TaskNodePtr>& roots,
                             PassStats* stats);

/// Predicate pushdown with safe points (paper §3.2): each filter whose
/// mask reifies into a Predicate is pushed below safe row-wise operators
/// (set_item, select, rename, drop, sort_values, drop_duplicates) when
///   (1) the operator does not modify the predicate's columns,
///   (2) the operator is row-wise invariant, and
///   (3) the filter is the operator's only consumer.
/// Runs to a fixpoint.
Status PushDownPredicates(lazy::Session* session,
                          const std::vector<lazy::TaskNodePtr>& roots,
                          PassStats* stats);

/// Zone-map pruning for native columnar scans: for each filter sitting
/// directly on a kReadLfc leaf (after pushdown has sunk it there), reify
/// the mask into a Predicate and attach its top-level compare-with-scalar
/// conjuncts as `LfcReadOptions::prune`, so the scan skips chunks whose
/// zone maps prove no row can match. The shared read node is never
/// mutated: the filter is repointed at a cloned read (+ re-anchored mask)
/// so interior mask nodes held as user variables still observe the full
/// scan if forced later. Sound by construction — a chunk is only skipped
/// when *some* conjunct provably matches no row in it, and the filter
/// kernel still runs above the pruned scan.
Status PruneZoneMaps(lazy::Session* session,
                     const std::vector<lazy::TaskNodePtr>& roots,
                     PassStats* stats);

/// Operator fusion for elementwise chains (HiFrames-style compiled
/// pipelines, scaled to this engine): collapse
///   filter -> get_column -> (arith|compare|abs|round|not|isna)*
/// and pure series chains of >= 2 such steps into a single kFusedMap node
/// that runs the whole chain in one morsel pass over a selection vector,
/// with no intermediate column materialization. Interior nodes are only
/// absorbed when this chain is their sole consumer, they are not persisted,
/// and they are not user-visible roots; the chain tail is mutated in place
/// so existing handles keep observing the same (byte-identical) value.
Status FuseElementwise(lazy::Session* session,
                       const std::vector<lazy::TaskNodePtr>& roots,
                       PassStats* stats);

struct OptimizerOptions {
  bool deduplicate = true;
  bool pushdown = true;
  bool redundant = true;
  bool zone_prune = true;
  bool fuse = true;
};

/// Register the default pass pipeline with the session's OptimizerPass
/// registry (named passes "dedup" -> "redundant-elim" -> "pushdown" ->
/// "zone-prune" -> "fuse" -> "dedup-final", visible in each round's
/// ExecutionReport), replacing any previously registered passes.
/// Cumulative stats, if provided, must outlive the session.
void InstallDefaultOptimizer(lazy::Session* session,
                             const OptimizerOptions& options = {},
                             PassStats* cumulative_stats = nullptr);

}  // namespace lafp::opt

#endif  // LAFP_OPTIMIZER_PASSES_H_
