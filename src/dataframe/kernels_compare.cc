#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_set>

#include "common/macros.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"

namespace lafp::df {

namespace {

template <typename T>
bool ApplyCmp(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool IsStringy(DataType t) {
  return t == DataType::kString || t == DataType::kCategory;
}

/// Drive an elementwise bool-producing row loop over morsels of [0, n).
/// `body` must write only out-rows in its [begin, end) range.
Status ForEachRow(size_t n,
                  const std::function<Status(size_t, size_t)>& body) {
  return RunMorsels(n, body);
}

// ---------------------------------------------------------------------------
// Vectorization-friendly range loops: the CompareOp switch is hoisted out
// of the inner loop so each case is a tight branch-free compare over raw
// spans. Rows are computed unconditionally; invalid rows are patched to 0
// afterwards (identical to the legacy skip since `out` starts zeroed).
// NaN needs no special-casing except for kNe: IEEE comparisons with a NaN
// operand are false for every op but !=, and the kernels' contract is that
// NaN rows compare false everywhere — so kNe masks NaN via v == v.
// ---------------------------------------------------------------------------

/// out[i] = vals[i] <op> r over [b, e), double spans.
void CmpRangeDouble(CompareOp op, const double* vals, double r, uint8_t* out,
                    size_t b, size_t e) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = b; i < e; ++i) out[i] = vals[i] == r ? 1 : 0;
      break;
    case CompareOp::kNe:
      for (size_t i = b; i < e; ++i) {
        out[i] = (vals[i] != r) & (vals[i] == vals[i]) ? 1 : 0;
      }
      break;
    case CompareOp::kLt:
      for (size_t i = b; i < e; ++i) out[i] = vals[i] < r ? 1 : 0;
      break;
    case CompareOp::kLe:
      for (size_t i = b; i < e; ++i) out[i] = vals[i] <= r ? 1 : 0;
      break;
    case CompareOp::kGt:
      for (size_t i = b; i < e; ++i) out[i] = vals[i] > r ? 1 : 0;
      break;
    case CompareOp::kGe:
      for (size_t i = b; i < e; ++i) out[i] = vals[i] >= r ? 1 : 0;
      break;
  }
}

/// out[i] = (double)vals[i] <op> r over [b, e), int64 span vs double
/// scalar (the legacy loop widened per element; NaN is impossible here).
void CmpRangeIntVsDouble(CompareOp op, const int64_t* vals, double r,
                         uint8_t* out, size_t b, size_t e) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(vals[i]) == r ? 1 : 0;
      }
      break;
    case CompareOp::kNe:
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(vals[i]) != r ? 1 : 0;
      }
      break;
    case CompareOp::kLt:
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(vals[i]) < r ? 1 : 0;
      }
      break;
    case CompareOp::kLe:
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(vals[i]) <= r ? 1 : 0;
      }
      break;
    case CompareOp::kGt:
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(vals[i]) > r ? 1 : 0;
      }
      break;
    case CompareOp::kGe:
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(vals[i]) >= r ? 1 : 0;
      }
      break;
  }
}

/// out[i] = a[i] <op> b[i] over [lo, hi), double spans; either-NaN rows
/// compare false for every op (kNe included — legacy skipped NaN rows).
void CmpRangeCols(CompareOp op, const double* a, const double* b,
                  uint8_t* out, size_t lo, size_t hi) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] == b[i] ? 1 : 0;
      break;
    case CompareOp::kNe:
      for (size_t i = lo; i < hi; ++i) {
        out[i] = (a[i] != b[i]) & (a[i] == a[i]) & (b[i] == b[i]) ? 1 : 0;
      }
      break;
    case CompareOp::kLt:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] < b[i] ? 1 : 0;
      break;
    case CompareOp::kLe:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] <= b[i] ? 1 : 0;
      break;
    case CompareOp::kGt:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] > b[i] ? 1 : 0;
      break;
    case CompareOp::kGe:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] >= b[i] ? 1 : 0;
      break;
  }
}

/// Zero out rows whose validity byte is unset over [b, e); no-op when the
/// column is all-valid. Branch-free select so the loop vectorizes.
void PatchInvalidToZero(const Column& col, uint8_t* out, size_t b,
                        size_t e) {
  const uint8_t* valid = col.validity_data();
  if (valid == nullptr) return;
  for (size_t i = b; i < e; ++i) out[i] = valid[i] != 0 ? out[i] : 0;
}

}  // namespace

Result<ColumnPtr> Compare(const Column& col, CompareOp op,
                          const Scalar& rhs) {
  const size_t n = col.size();
  std::vector<uint8_t> out(n, 0);
  if (rhs.is_null()) {
    // Comparisons against null are all-false (pandas NaN semantics),
    // except != which pandas makes all-true for non-null entries.
    if (op == CompareOp::kNe) {
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        const uint8_t* valid = col.validity_data();
        if (valid == nullptr) {
          std::memset(out.data() + b, 1, e - b);
        } else {
          for (size_t i = b; i < e; ++i) out[i] = valid[i] != 0 ? 1 : 0;
        }
        return Status::OK();
      }));
    }
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  if (IsStringy(col.type())) {
    if (rhs.type() != DataType::kString) {
      return Status::TypeError("comparing string column with non-string");
    }
    const std::string& needle = rhs.string_value();
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (!col.IsValid(i)) continue;
        out[i] = ApplyCmp<std::string>(op, col.StringAt(i), needle) ? 1 : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  if (col.type() == DataType::kTimestamp &&
      rhs.type() == DataType::kString) {
    LAFP_ASSIGN_OR_RETURN(int64_t ts, ParseTimestamp(rhs.string_value()));
    const int64_t* vals = col.int_data();
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
      switch (op) {
        case CompareOp::kEq:
          for (size_t i = b; i < e; ++i) out[i] = vals[i] == ts ? 1 : 0;
          break;
        case CompareOp::kNe:
          for (size_t i = b; i < e; ++i) out[i] = vals[i] != ts ? 1 : 0;
          break;
        case CompareOp::kLt:
          for (size_t i = b; i < e; ++i) out[i] = vals[i] < ts ? 1 : 0;
          break;
        case CompareOp::kLe:
          for (size_t i = b; i < e; ++i) out[i] = vals[i] <= ts ? 1 : 0;
          break;
        case CompareOp::kGt:
          for (size_t i = b; i < e; ++i) out[i] = vals[i] > ts ? 1 : 0;
          break;
        case CompareOp::kGe:
          for (size_t i = b; i < e; ++i) out[i] = vals[i] >= ts ? 1 : 0;
          break;
      }
      PatchInvalidToZero(col, out.data(), b, e);
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  LAFP_ASSIGN_OR_RETURN(double r, rhs.AsDouble());
  // Fast paths for the common typed columns.
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      const int64_t* vals = col.int_data();
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        CmpRangeIntVsDouble(op, vals, r, out.data(), b, e);
        PatchInvalidToZero(col, out.data(), b, e);
        return Status::OK();
      }));
      break;
    }
    case DataType::kDouble: {
      const double* vals = col.double_data();
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        CmpRangeDouble(op, vals, r, out.data(), b, e);
        PatchInvalidToZero(col, out.data(), b, e);
        return Status::OK();
      }));
      break;
    }
    case DataType::kBool: {
      const uint8_t* vals = col.bool_data();
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          if (!col.IsValid(i)) continue;
          out[i] = ApplyCmp<double>(op, vals[i] ? 1.0 : 0.0, r) ? 1 : 0;
        }
        return Status::OK();
      }));
      break;
    }
    default:
      return Status::TypeError("cannot compare column of type " +
                               std::string(DataTypeName(col.type())));
  }
  return Column::MakeBool(std::move(out), {}, col.tracker());
}

Result<ColumnPtr> CompareColumns(const Column& lhs, CompareOp op,
                                 const Column& rhs) {
  if (lhs.size() != rhs.size()) {
    return Status::Invalid("compare: length mismatch");
  }
  const size_t n = lhs.size();
  std::vector<uint8_t> out(n, 0);
  if (IsStringy(lhs.type()) && IsStringy(rhs.type())) {
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (!lhs.IsValid(i) || !rhs.IsValid(i)) continue;
        out[i] = ApplyCmp<std::string>(op, lhs.StringAt(i), rhs.StringAt(i))
                     ? 1
                     : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, lhs.tracker());
  }
  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::TypeError("cannot compare columns of types " +
                             std::string(DataTypeName(lhs.type())) + " and " +
                             DataTypeName(rhs.type()));
  }
  if (lhs.type() == DataType::kDouble && rhs.type() == DataType::kDouble) {
    // Both contiguous doubles: compare straight off the spans, then zero
    // rows where either side is invalid.
    const double* a = lhs.double_data();
    const double* b = rhs.double_data();
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t lo, size_t hi) {
      CmpRangeCols(op, a, b, out.data(), lo, hi);
      PatchInvalidToZero(lhs, out.data(), lo, hi);
      PatchInvalidToZero(rhs, out.data(), lo, hi);
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, lhs.tracker());
  }
  LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (!lhs.IsValid(i) || !rhs.IsValid(i)) continue;
      LAFP_ASSIGN_OR_RETURN(double a, lhs.NumericAt(i));
      LAFP_ASSIGN_OR_RETURN(double bv, rhs.NumericAt(i));
      if (std::isnan(a) || std::isnan(bv)) continue;
      out[i] = ApplyCmp<double>(op, a, bv) ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, lhs.tracker());
}

namespace {

Status CheckBoolPair(const Column& a, const Column& b) {
  if (a.type() != DataType::kBool || b.type() != DataType::kBool) {
    return Status::TypeError("boolean op requires bool columns");
  }
  if (a.size() != b.size()) {
    return Status::Invalid("boolean op: length mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<ColumnPtr> BooleanAnd(const Column& a, const Column& b) {
  LAFP_RETURN_NOT_OK(CheckBoolPair(a, b));
  std::vector<uint8_t> out(a.size());
  const uint8_t* ad = a.bool_data();
  const uint8_t* bd = b.bool_data();
  const uint8_t* av = a.validity_data();
  const uint8_t* bv = b.validity_data();
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    if (av == nullptr && bv == nullptr) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = (ad[i] != 0) & (bd[i] != 0) ? 1 : 0;
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        const bool lok = (av == nullptr || av[i] != 0) && ad[i] != 0;
        const bool rok = (bv == nullptr || bv[i] != 0) && bd[i] != 0;
        out[i] = lok && rok ? 1 : 0;
      }
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> BooleanOr(const Column& a, const Column& b) {
  LAFP_RETURN_NOT_OK(CheckBoolPair(a, b));
  std::vector<uint8_t> out(a.size());
  const uint8_t* ad = a.bool_data();
  const uint8_t* bd = b.bool_data();
  const uint8_t* av = a.validity_data();
  const uint8_t* bv = b.validity_data();
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    if (av == nullptr && bv == nullptr) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = (ad[i] != 0) | (bd[i] != 0) ? 1 : 0;
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        const bool lok = (av == nullptr || av[i] != 0) && ad[i] != 0;
        const bool rok = (bv == nullptr || bv[i] != 0) && bd[i] != 0;
        out[i] = lok || rok ? 1 : 0;
      }
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> BooleanNot(const Column& a) {
  if (a.type() != DataType::kBool) {
    return Status::TypeError("boolean not requires a bool column");
  }
  std::vector<uint8_t> out(a.size());
  const uint8_t* ad = a.bool_data();
  const uint8_t* av = a.validity_data();
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    if (av == nullptr) {
      for (size_t i = begin; i < end; ++i) out[i] = ad[i] != 0 ? 0 : 1;
    } else {
      for (size_t i = begin; i < end; ++i) {
        out[i] = (av[i] != 0) & (ad[i] != 0) ? 0 : 1;
      }
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> IsNull(const Column& a) {
  std::vector<uint8_t> out(a.size(), 0);
  const uint8_t* av = a.validity_data();
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    if (a.type() == DataType::kDouble) {
      const double* v = a.double_data();
      for (size_t i = begin; i < end; ++i) {
        out[i] = ((av != nullptr && av[i] == 0) | (v[i] != v[i])) ? 1 : 0;
      }
    } else if (av != nullptr) {
      for (size_t i = begin; i < end; ++i) out[i] = av[i] != 0 ? 0 : 1;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> StrContains(const Column& col, const std::string& needle) {
  if (!IsStringy(col.type())) {
    return Status::TypeError("str.contains requires a string column");
  }
  std::vector<uint8_t> out(col.size(), 0);
  LAFP_RETURN_NOT_OK(ForEachRow(col.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!col.IsValid(i)) continue;
      out[i] = col.StringAt(i).find(needle) != std::string::npos ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, col.tracker());
}

Result<ColumnPtr> IsIn(const Column& col,
                       const std::vector<Scalar>& values) {
  std::vector<uint8_t> out(col.size(), 0);
  if (IsStringy(col.type())) {
    std::unordered_set<std::string> members;
    for (const auto& v : values) {
      if (v.type() == DataType::kString || v.type() == DataType::kCategory) {
        members.insert(v.string_value());
      }
    }
    // The membership set is built once, then only read: morsel bodies may
    // probe it concurrently.
    LAFP_RETURN_NOT_OK(ForEachRow(col.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (!col.IsValid(i)) continue;
        out[i] = members.count(col.StringAt(i)) > 0 ? 1 : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  if (!IsNumeric(col.type())) {
    return Status::TypeError("isin on unsupported column type");
  }
  std::unordered_set<double> members;
  for (const auto& v : values) {
    auto d = v.AsDouble();
    if (d.ok()) members.insert(*d);
  }
  LAFP_RETURN_NOT_OK(ForEachRow(col.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!col.IsValid(i)) continue;
      LAFP_ASSIGN_OR_RETURN(double v, col.NumericAt(i));
      if (std::isnan(v)) continue;
      out[i] = members.count(v) > 0 ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, col.tracker());
}

/// The mask -> row-index step shared by Filter, FilterColumn and the fused
/// evaluator, morsel-parallelized in two passes: count selected rows per
/// morsel, exclusive-prefix-sum the counts into write offsets, then fill
/// each morsel's disjoint output range. Output order is ascending row
/// order — exactly the serial push_back result — for every thread count.
Result<std::vector<int64_t>> MaskToIndices(const Column& mask) {
  const size_t n = mask.size();
  const size_t morsels = NumMorsels(n);
  const uint8_t* vals = mask.bool_data();
  const uint8_t* valid = mask.validity_data();
  auto selected = [vals, valid](size_t i) {
    return (valid == nullptr || valid[i] != 0) && vals[i] != 0;
  };
  if (morsels <= 1) {
    std::vector<int64_t> indices;
    indices.reserve(n / 2);
    for (size_t i = 0; i < n; ++i) {
      if (selected(i)) indices.push_back(static_cast<int64_t>(i));
    }
    return indices;
  }
  const size_t morsel_rows = KernelContext::Current().morsel_rows();
  std::vector<size_t> counts(morsels, 0);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    // Branchless popcount-style pass: sums of 0/1 bytes autovectorize.
    size_t c = 0;
    if (valid == nullptr) {
      for (size_t i = begin; i < end; ++i) c += vals[i] != 0 ? 1 : 0;
    } else {
      for (size_t i = begin; i < end; ++i) {
        c += (valid[i] != 0) & (vals[i] != 0) ? 1 : 0;
      }
    }
    counts[begin / morsel_rows] = c;
    return Status::OK();
  }));
  std::vector<size_t> offsets(morsels, 0);
  std::exclusive_scan(counts.begin(), counts.end(), offsets.begin(),
                      size_t{0});
  std::vector<int64_t> indices(offsets.back() + counts.back());
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    size_t w = offsets[begin / morsel_rows];
    for (size_t i = begin; i < end; ++i) {
      if (selected(i)) indices[w++] = static_cast<int64_t>(i);
    }
    return Status::OK();
  }));
  return indices;
}

Result<ColumnPtr> FilterColumn(const Column& col, const Column& mask) {
  if (mask.type() != DataType::kBool) {
    return Status::TypeError("filter mask must be bool");
  }
  if (mask.size() != col.size()) {
    return Status::Invalid("filter mask length mismatch");
  }
  LAFP_ASSIGN_OR_RETURN(std::vector<int64_t> indices, MaskToIndices(mask));
  return col.Take(indices);
}

Result<DataFrame> Filter(const DataFrame& df, const Column& mask) {
  if (mask.type() != DataType::kBool) {
    return Status::TypeError("filter mask must be bool");
  }
  if (mask.size() != df.num_rows()) {
    return Status::Invalid("filter mask length mismatch");
  }
  LAFP_ASSIGN_OR_RETURN(std::vector<int64_t> indices, MaskToIndices(mask));
  return df.TakeRows(indices);
}

Result<DataFrame> Head(const DataFrame& df, size_t n) {
  return df.SliceRows(0, std::min(n, df.num_rows()));
}

}  // namespace lafp::df
