#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_set>

#include "common/macros.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"

namespace lafp::df {

namespace {

template <typename T>
bool ApplyCmp(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool IsStringy(DataType t) {
  return t == DataType::kString || t == DataType::kCategory;
}

/// Drive an elementwise bool-producing row loop over morsels of [0, n).
/// `body` must write only out-rows in its [begin, end) range.
Status ForEachRow(size_t n,
                  const std::function<Status(size_t, size_t)>& body) {
  return RunMorsels(n, body);
}

}  // namespace

Result<ColumnPtr> Compare(const Column& col, CompareOp op,
                          const Scalar& rhs) {
  const size_t n = col.size();
  std::vector<uint8_t> out(n, 0);
  if (rhs.is_null()) {
    // Comparisons against null are all-false (pandas NaN semantics),
    // except != which pandas makes all-true for non-null entries.
    if (op == CompareOp::kNe) {
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out[i] = col.IsValid(i) ? 1 : 0;
        return Status::OK();
      }));
    }
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  if (IsStringy(col.type())) {
    if (rhs.type() != DataType::kString) {
      return Status::TypeError("comparing string column with non-string");
    }
    const std::string& needle = rhs.string_value();
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (!col.IsValid(i)) continue;
        out[i] = ApplyCmp<std::string>(op, col.StringAt(i), needle) ? 1 : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  if (col.type() == DataType::kTimestamp &&
      rhs.type() == DataType::kString) {
    LAFP_ASSIGN_OR_RETURN(int64_t ts, ParseTimestamp(rhs.string_value()));
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (!col.IsValid(i)) continue;
        out[i] = ApplyCmp<int64_t>(op, col.IntAt(i), ts) ? 1 : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  LAFP_ASSIGN_OR_RETURN(double r, rhs.AsDouble());
  // Fast paths for the common typed columns.
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      const auto& vals = col.ints();
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          if (!col.IsValid(i)) continue;
          out[i] =
              ApplyCmp<double>(op, static_cast<double>(vals[i]), r) ? 1 : 0;
        }
        return Status::OK();
      }));
      break;
    }
    case DataType::kDouble: {
      const auto& vals = col.doubles();
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          if (!col.IsValid(i) || std::isnan(vals[i])) continue;
          out[i] = ApplyCmp<double>(op, vals[i], r) ? 1 : 0;
        }
        return Status::OK();
      }));
      break;
    }
    case DataType::kBool: {
      const auto& vals = col.bools();
      LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          if (!col.IsValid(i)) continue;
          out[i] = ApplyCmp<double>(op, vals[i] ? 1.0 : 0.0, r) ? 1 : 0;
        }
        return Status::OK();
      }));
      break;
    }
    default:
      return Status::TypeError("cannot compare column of type " +
                               std::string(DataTypeName(col.type())));
  }
  return Column::MakeBool(std::move(out), {}, col.tracker());
}

Result<ColumnPtr> CompareColumns(const Column& lhs, CompareOp op,
                                 const Column& rhs) {
  if (lhs.size() != rhs.size()) {
    return Status::Invalid("compare: length mismatch");
  }
  const size_t n = lhs.size();
  std::vector<uint8_t> out(n, 0);
  if (IsStringy(lhs.type()) && IsStringy(rhs.type())) {
    LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (!lhs.IsValid(i) || !rhs.IsValid(i)) continue;
        out[i] = ApplyCmp<std::string>(op, lhs.StringAt(i), rhs.StringAt(i))
                     ? 1
                     : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, lhs.tracker());
  }
  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::TypeError("cannot compare columns of types " +
                             std::string(DataTypeName(lhs.type())) + " and " +
                             DataTypeName(rhs.type()));
  }
  LAFP_RETURN_NOT_OK(ForEachRow(n, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (!lhs.IsValid(i) || !rhs.IsValid(i)) continue;
      LAFP_ASSIGN_OR_RETURN(double a, lhs.NumericAt(i));
      LAFP_ASSIGN_OR_RETURN(double bv, rhs.NumericAt(i));
      if (std::isnan(a) || std::isnan(bv)) continue;
      out[i] = ApplyCmp<double>(op, a, bv) ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, lhs.tracker());
}

namespace {

Status CheckBoolPair(const Column& a, const Column& b) {
  if (a.type() != DataType::kBool || b.type() != DataType::kBool) {
    return Status::TypeError("boolean op requires bool columns");
  }
  if (a.size() != b.size()) {
    return Status::Invalid("boolean op: length mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<ColumnPtr> BooleanAnd(const Column& a, const Column& b) {
  LAFP_RETURN_NOT_OK(CheckBoolPair(a, b));
  std::vector<uint8_t> out(a.size());
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = (a.IsValid(i) && b.IsValid(i) && a.BoolAt(i) && b.BoolAt(i))
                   ? 1
                   : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> BooleanOr(const Column& a, const Column& b) {
  LAFP_RETURN_NOT_OK(CheckBoolPair(a, b));
  std::vector<uint8_t> out(a.size());
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      bool av = a.IsValid(i) && a.BoolAt(i);
      bool bv = b.IsValid(i) && b.BoolAt(i);
      out[i] = (av || bv) ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> BooleanNot(const Column& a) {
  if (a.type() != DataType::kBool) {
    return Status::TypeError("boolean not requires a bool column");
  }
  std::vector<uint8_t> out(a.size());
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = (a.IsValid(i) && a.BoolAt(i)) ? 0 : 1;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> IsNull(const Column& a) {
  std::vector<uint8_t> out(a.size(), 0);
  LAFP_RETURN_NOT_OK(ForEachRow(a.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      bool null = !a.IsValid(i);
      if (!null && a.type() == DataType::kDouble &&
          std::isnan(a.DoubleAt(i))) {
        null = true;
      }
      out[i] = null ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, a.tracker());
}

Result<ColumnPtr> StrContains(const Column& col, const std::string& needle) {
  if (!IsStringy(col.type())) {
    return Status::TypeError("str.contains requires a string column");
  }
  std::vector<uint8_t> out(col.size(), 0);
  LAFP_RETURN_NOT_OK(ForEachRow(col.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!col.IsValid(i)) continue;
      out[i] = col.StringAt(i).find(needle) != std::string::npos ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, col.tracker());
}

Result<ColumnPtr> IsIn(const Column& col,
                       const std::vector<Scalar>& values) {
  std::vector<uint8_t> out(col.size(), 0);
  if (IsStringy(col.type())) {
    std::unordered_set<std::string> members;
    for (const auto& v : values) {
      if (v.type() == DataType::kString || v.type() == DataType::kCategory) {
        members.insert(v.string_value());
      }
    }
    // The membership set is built once, then only read: morsel bodies may
    // probe it concurrently.
    LAFP_RETURN_NOT_OK(ForEachRow(col.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (!col.IsValid(i)) continue;
        out[i] = members.count(col.StringAt(i)) > 0 ? 1 : 0;
      }
      return Status::OK();
    }));
    return Column::MakeBool(std::move(out), {}, col.tracker());
  }
  if (!IsNumeric(col.type())) {
    return Status::TypeError("isin on unsupported column type");
  }
  std::unordered_set<double> members;
  for (const auto& v : values) {
    auto d = v.AsDouble();
    if (d.ok()) members.insert(*d);
  }
  LAFP_RETURN_NOT_OK(ForEachRow(col.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!col.IsValid(i)) continue;
      LAFP_ASSIGN_OR_RETURN(double v, col.NumericAt(i));
      if (std::isnan(v)) continue;
      out[i] = members.count(v) > 0 ? 1 : 0;
    }
    return Status::OK();
  }));
  return Column::MakeBool(std::move(out), {}, col.tracker());
}

namespace {

/// The mask -> row-index step shared by Filter and FilterColumn, morsel-
/// parallelized in two passes: count selected rows per morsel, exclusive-
/// prefix-sum the counts into write offsets, then fill each morsel's
/// disjoint output range. Output order is ascending row order — exactly
/// the serial push_back result — for every thread count.
Result<std::vector<int64_t>> MaskToIndices(const Column& mask) {
  const size_t n = mask.size();
  const size_t morsels = NumMorsels(n);
  auto selected = [&mask](size_t i) {
    return mask.IsValid(i) && mask.BoolAt(i);
  };
  if (morsels <= 1) {
    std::vector<int64_t> indices;
    indices.reserve(n / 2);
    for (size_t i = 0; i < n; ++i) {
      if (selected(i)) indices.push_back(static_cast<int64_t>(i));
    }
    return indices;
  }
  const size_t morsel_rows = KernelContext::Current().morsel_rows();
  std::vector<size_t> counts(morsels, 0);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    size_t c = 0;
    for (size_t i = begin; i < end; ++i) c += selected(i) ? 1 : 0;
    counts[begin / morsel_rows] = c;
    return Status::OK();
  }));
  std::vector<size_t> offsets(morsels, 0);
  std::exclusive_scan(counts.begin(), counts.end(), offsets.begin(),
                      size_t{0});
  std::vector<int64_t> indices(offsets.back() + counts.back());
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    size_t w = offsets[begin / morsel_rows];
    for (size_t i = begin; i < end; ++i) {
      if (selected(i)) indices[w++] = static_cast<int64_t>(i);
    }
    return Status::OK();
  }));
  return indices;
}

}  // namespace

Result<ColumnPtr> FilterColumn(const Column& col, const Column& mask) {
  if (mask.type() != DataType::kBool) {
    return Status::TypeError("filter mask must be bool");
  }
  if (mask.size() != col.size()) {
    return Status::Invalid("filter mask length mismatch");
  }
  LAFP_ASSIGN_OR_RETURN(std::vector<int64_t> indices, MaskToIndices(mask));
  return col.Take(indices);
}

Result<DataFrame> Filter(const DataFrame& df, const Column& mask) {
  if (mask.type() != DataType::kBool) {
    return Status::TypeError("filter mask must be bool");
  }
  if (mask.size() != df.num_rows()) {
    return Status::Invalid("filter mask length mismatch");
  }
  LAFP_ASSIGN_OR_RETURN(std::vector<int64_t> indices, MaskToIndices(mask));
  return df.TakeRows(indices);
}

Result<DataFrame> Head(const DataFrame& df, size_t n) {
  return df.SliceRows(0, std::min(n, df.num_rows()));
}

}  // namespace lafp::df
