#ifndef LAFP_DATAFRAME_KAHAN_H_
#define LAFP_DATAFRAME_KAHAN_H_

#include <cmath>

namespace lafp::df {

/// Kahan-Babuska-Neumaier compensated summation. Every sum in the engine
/// (whole-column reductions, per-group aggregates, partition partials)
/// accumulates through this, so single-pass and partitioned two-phase
/// aggregation agree to ~1 ulp — a requirement for the cross-backend
/// regression hashing (§5.2) and simply better numerics.
class KahanSum {
 public:
  void Add(double v) {
    double t = sum_ + v;
    if (std::fabs(sum_) >= std::fabs(v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  double Total() const { return sum_ + comp_; }

  /// Fold another accumulator's state into this one (morsel/partition
  /// partial merge). Feeding the partial's running sum and compensation
  /// through Add keeps the merged compensation meaningful, and — done in a
  /// fixed order, e.g. morsel order — makes the combined total a pure
  /// function of the partial states, which is what the kernel layer's
  /// thread-count-invariance contract rests on.
  void MergeFrom(const KahanSum& other) {
    Add(other.sum_);
    Add(other.comp_);
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_KAHAN_H_
