#ifndef LAFP_DATAFRAME_COLUMN_H_
#define LAFP_DATAFRAME_COLUMN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "dataframe/types.h"

namespace lafp::df {

class Column;
using ColumnPtr = std::shared_ptr<const Column>;
using Dictionary = std::vector<std::string>;
using DictionaryPtr = std::shared_ptr<const Dictionary>;

/// An immutable, typed, nullable column. Storage is one contiguous typed
/// vector plus an optional validity vector (empty == all valid, else one
/// byte per row). Category columns store int32 codes into a shared
/// dictionary (paper §3.6).
///
/// Every column registers its footprint with a MemoryTracker at
/// construction and releases it on destruction, which is how the benchmark
/// harness observes "peak memory" and how ops hit the budget (OOM).
class Column {
 public:
  ~Column();

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  // ---- Factories. Fail with kOutOfMemory if the tracker budget is hit. ----
  static Result<ColumnPtr> MakeInt(std::vector<int64_t> values,
                                   std::vector<uint8_t> validity,
                                   MemoryTracker* tracker);
  static Result<ColumnPtr> MakeTimestamp(std::vector<int64_t> values,
                                         std::vector<uint8_t> validity,
                                         MemoryTracker* tracker);
  static Result<ColumnPtr> MakeDouble(std::vector<double> values,
                                      std::vector<uint8_t> validity,
                                      MemoryTracker* tracker);
  static Result<ColumnPtr> MakeString(std::vector<std::string> values,
                                      std::vector<uint8_t> validity,
                                      MemoryTracker* tracker);
  static Result<ColumnPtr> MakeBool(std::vector<uint8_t> values,
                                    std::vector<uint8_t> validity,
                                    MemoryTracker* tracker);
  static Result<ColumnPtr> MakeCategory(std::vector<int32_t> codes,
                                        std::vector<uint8_t> validity,
                                        DictionaryPtr dictionary,
                                        MemoryTracker* tracker);

  /// Column of `n` copies of `value` (used by setitem with a scalar).
  static Result<ColumnPtr> MakeConstant(const Scalar& value, size_t n,
                                        MemoryTracker* tracker);

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  MemoryTracker* tracker() const { return tracker_; }
  int64_t footprint_bytes() const { return reservation_.bytes(); }

  bool has_nulls() const { return !validity_.empty(); }
  bool IsValid(size_t i) const {
    return validity_.empty() || validity_[i] != 0;
  }
  size_t null_count() const;

  // ---- Typed accessors; caller must respect type(). ----
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  /// For kString returns the string; for kCategory resolves the code.
  const std::string& StringAt(size_t i) const {
    return type_ == DataType::kCategory ? (*dictionary_)[codes_[i]]
                                        : strings_[i];
  }
  int32_t CodeAt(size_t i) const { return codes_[i]; }
  const DictionaryPtr& dictionary() const { return dictionary_; }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<int32_t>& codes() const { return codes_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

  // ---- Raw contiguous spans for the vectorized kernels. The typed data
  // pointers alias the vectors above; validity_data() is nullptr when the
  // column has no nulls, which is the kernels' all-valid fast-path gate. ----
  const int64_t* int_data() const { return ints_.data(); }
  const double* double_data() const { return doubles_.data(); }
  const uint8_t* bool_data() const { return bools_.data(); }
  const int32_t* code_data() const { return codes_.data(); }
  const uint8_t* validity_data() const {
    return validity_.empty() ? nullptr : validity_.data();
  }

  /// Value at `i` boxed as a Scalar (null-aware).
  Scalar ScalarAt(size_t i) const;

  /// Numeric value widened to double. Fails on string/category columns.
  /// Null rows yield NaN; check IsValid first where it matters.
  Result<double> NumericAt(size_t i) const;

  /// Take rows by index (the gather kernel behind filter/sort/join).
  Result<ColumnPtr> Take(const std::vector<int64_t>& indices) const;

  /// Contiguous row slice [offset, offset+length).
  Result<ColumnPtr> Slice(size_t offset, size_t length) const;

  /// Value repr used by print / CSV / hashing ("NaN" for nulls).
  std::string ValueString(size_t i) const;

 private:
  Column() = default;

  /// Compute footprint and reserve it; called once by factories.
  Status FinishConstruction(MemoryTracker* tracker);
  int64_t ComputeFootprint() const;

  DataType type_ = DataType::kNull;
  size_t size_ = 0;
  std::vector<uint8_t> validity_;  // empty == all valid
  std::vector<int64_t> ints_;      // kInt64 and kTimestamp
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
  std::vector<int32_t> codes_;  // kCategory
  DictionaryPtr dictionary_;
  MemoryTracker* tracker_ = nullptr;
  ScopedReservation reservation_;
};

/// Append-oriented builder producing a Column of a fixed type. CSV parsing
/// and most kernels build outputs through this.
class ColumnBuilder {
 public:
  ColumnBuilder(DataType type, MemoryTracker* tracker);

  void Reserve(size_t n);

  void AppendNull();
  void AppendInt(int64_t v);        // kInt64 / kTimestamp
  void AppendDouble(double v);      // kDouble
  void AppendBool(bool v);          // kBool
  void AppendString(std::string v); // kString (not kCategory)

  /// Append any scalar, converting between numeric widths; null appends
  /// null. Fails on an impossible conversion (e.g. string -> int).
  Status AppendScalar(const Scalar& v);

  /// Append row `i` of `src` (types must match exactly).
  void AppendFrom(const Column& src, size_t i);

  size_t size() const { return count_; }
  DataType type() const { return type_; }

  /// Build the column, registering its footprint. The builder is consumed.
  Result<ColumnPtr> Finish();

 private:
  DataType type_;
  MemoryTracker* tracker_;
  size_t count_ = 0;
  bool saw_null_ = false;
  std::vector<uint8_t> validity_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
};

/// Dictionary-encode a string column into a category column. The dictionary
/// lists distinct values in first-appearance order.
Result<ColumnPtr> CategorizeStrings(const Column& strings,
                                    MemoryTracker* tracker);

/// Decode a category column back to plain strings (used when an op does not
/// support categories, and by the Pandas-fallback path).
Result<ColumnPtr> DecategorizeToStrings(const Column& cat,
                                        MemoryTracker* tracker);

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_COLUMN_H_
