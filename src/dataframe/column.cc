#include "dataframe/column.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "dataframe/kernel_context.h"

namespace lafp::df {

namespace {
// Per-std::string bookkeeping overhead charged against the budget, on top
// of character payload (approximates libstdc++ SSO + heap headers).
constexpr int64_t kStringOverhead = 16;
}  // namespace

Column::~Column() = default;  // reservation_ releases via RAII

Status Column::FinishConstruction(MemoryTracker* tracker) {
  if (tracker == nullptr) tracker = MemoryTracker::Default();
  tracker_ = tracker;
  return ScopedReservation::Make(tracker, ComputeFootprint(), &reservation_);
}

int64_t Column::ComputeFootprint() const {
  int64_t bytes = static_cast<int64_t>(validity_.size());
  bytes += static_cast<int64_t>(ints_.size()) * 8;
  bytes += static_cast<int64_t>(doubles_.size()) * 8;
  bytes += static_cast<int64_t>(bools_.size());
  bytes += static_cast<int64_t>(codes_.size()) * 4;
  for (const auto& s : strings_) {
    bytes += static_cast<int64_t>(s.size()) + kStringOverhead;
  }
  // The dictionary is shared; charge it once per referencing column, which
  // is conservative but keeps accounting local.
  if (dictionary_) {
    for (const auto& s : *dictionary_) {
      bytes += static_cast<int64_t>(s.size()) + kStringOverhead;
    }
  }
  return bytes;
}

#define LAFP_COLUMN_FACTORY_BODY(field, dtype)                     \
  auto col = std::shared_ptr<Column>(new Column());                \
  col->type_ = (dtype);                                            \
  col->size_ = values.size();                                      \
  col->field = std::move(values);                                  \
  col->validity_ = std::move(validity);                            \
  LAFP_CHECK(col->validity_.empty() ||                             \
             col->validity_.size() == col->size_);                 \
  LAFP_RETURN_NOT_OK(col->FinishConstruction(tracker));            \
  return ColumnPtr(col)

Result<ColumnPtr> Column::MakeInt(std::vector<int64_t> values,
                                  std::vector<uint8_t> validity,
                                  MemoryTracker* tracker) {
  LAFP_COLUMN_FACTORY_BODY(ints_, DataType::kInt64);
}

Result<ColumnPtr> Column::MakeTimestamp(std::vector<int64_t> values,
                                        std::vector<uint8_t> validity,
                                        MemoryTracker* tracker) {
  LAFP_COLUMN_FACTORY_BODY(ints_, DataType::kTimestamp);
}

Result<ColumnPtr> Column::MakeDouble(std::vector<double> values,
                                     std::vector<uint8_t> validity,
                                     MemoryTracker* tracker) {
  LAFP_COLUMN_FACTORY_BODY(doubles_, DataType::kDouble);
}

Result<ColumnPtr> Column::MakeString(std::vector<std::string> values,
                                     std::vector<uint8_t> validity,
                                     MemoryTracker* tracker) {
  LAFP_COLUMN_FACTORY_BODY(strings_, DataType::kString);
}

Result<ColumnPtr> Column::MakeBool(std::vector<uint8_t> values,
                                   std::vector<uint8_t> validity,
                                   MemoryTracker* tracker) {
  LAFP_COLUMN_FACTORY_BODY(bools_, DataType::kBool);
}

#undef LAFP_COLUMN_FACTORY_BODY

Result<ColumnPtr> Column::MakeCategory(std::vector<int32_t> codes,
                                       std::vector<uint8_t> validity,
                                       DictionaryPtr dictionary,
                                       MemoryTracker* tracker) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = DataType::kCategory;
  col->size_ = codes.size();
  col->codes_ = std::move(codes);
  col->validity_ = std::move(validity);
  col->dictionary_ = std::move(dictionary);
  LAFP_CHECK(col->dictionary_ != nullptr);
  LAFP_CHECK(col->validity_.empty() ||
             col->validity_.size() == col->size_);
  LAFP_RETURN_NOT_OK(col->FinishConstruction(tracker));
  return ColumnPtr(col);
}

Result<ColumnPtr> Column::MakeConstant(const Scalar& value, size_t n,
                                       MemoryTracker* tracker) {
  switch (value.type()) {
    case DataType::kNull: {
      // Represent an all-null column as double NaNs with null validity.
      return MakeDouble(std::vector<double>(n, 0.0),
                        std::vector<uint8_t>(n, 0), tracker);
    }
    case DataType::kBool:
      return MakeBool(std::vector<uint8_t>(n, value.bool_value() ? 1 : 0), {},
                      tracker);
    case DataType::kInt64:
      return MakeInt(std::vector<int64_t>(n, value.int_value()), {}, tracker);
    case DataType::kTimestamp:
      return MakeTimestamp(std::vector<int64_t>(n, value.int_value()), {},
                           tracker);
    case DataType::kDouble:
      return MakeDouble(std::vector<double>(n, value.double_value()), {},
                        tracker);
    case DataType::kString:
    case DataType::kCategory:
      return MakeString(std::vector<std::string>(n, value.string_value()),
                        {}, tracker);
  }
  return Status::Invalid("bad scalar type");
}

size_t Column::null_count() const {
  if (validity_.empty()) return 0;
  size_t n = 0;
  for (uint8_t v : validity_) n += (v == 0);
  return n;
}

Scalar Column::ScalarAt(size_t i) const {
  if (!IsValid(i)) return Scalar::Null();
  switch (type_) {
    case DataType::kBool:
      return Scalar::Bool(BoolAt(i));
    case DataType::kInt64:
      return Scalar::Int(IntAt(i));
    case DataType::kTimestamp:
      return Scalar::Timestamp(IntAt(i));
    case DataType::kDouble:
      return Scalar::Double(DoubleAt(i));
    case DataType::kString:
    case DataType::kCategory:
      return Scalar::String(StringAt(i));
    case DataType::kNull:
      break;
  }
  return Scalar::Null();
}

Result<double> Column::NumericAt(size_t i) const {
  if (!IsValid(i)) return std::nan("");
  switch (type_) {
    case DataType::kBool:
      return BoolAt(i) ? 1.0 : 0.0;
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(IntAt(i));
    case DataType::kDouble:
      return DoubleAt(i);
    default:
      return Status::TypeError(std::string("column of type ") +
                               DataTypeName(type_) + " is not numeric");
  }
}

namespace {

/// Morsel-parallel gather of `indices` from `src` into a fresh vector.
/// Each morsel writes a disjoint range of the output, so the result is
/// positionally identical for any thread count.
template <typename T>
Result<std::vector<T>> GatherRows(const std::vector<T>& src,
                                  const std::vector<int64_t>& indices) {
  std::vector<T> out(indices.size());
  LAFP_RETURN_NOT_OK(
      RunMorsels(indices.size(), [&](size_t begin, size_t end) {
        for (size_t k = begin; k < end; ++k) out[k] = src[indices[k]];
        return Status::OK();
      }));
  return out;
}

}  // namespace

Result<ColumnPtr> Column::Take(const std::vector<int64_t>& indices) const {
  std::vector<uint8_t> validity;
  if (!validity_.empty()) {
    LAFP_ASSIGN_OR_RETURN(validity, GatherRows(validity_, indices));
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      LAFP_ASSIGN_OR_RETURN(std::vector<int64_t> out,
                            GatherRows(ints_, indices));
      return type_ == DataType::kInt64
                 ? MakeInt(std::move(out), std::move(validity), tracker_)
                 : MakeTimestamp(std::move(out), std::move(validity),
                                 tracker_);
    }
    case DataType::kDouble: {
      LAFP_ASSIGN_OR_RETURN(std::vector<double> out,
                            GatherRows(doubles_, indices));
      return MakeDouble(std::move(out), std::move(validity), tracker_);
    }
    case DataType::kString: {
      LAFP_ASSIGN_OR_RETURN(std::vector<std::string> out,
                            GatherRows(strings_, indices));
      return MakeString(std::move(out), std::move(validity), tracker_);
    }
    case DataType::kBool: {
      LAFP_ASSIGN_OR_RETURN(std::vector<uint8_t> out,
                            GatherRows(bools_, indices));
      return MakeBool(std::move(out), std::move(validity), tracker_);
    }
    case DataType::kCategory: {
      LAFP_ASSIGN_OR_RETURN(std::vector<int32_t> out,
                            GatherRows(codes_, indices));
      return MakeCategory(std::move(out), std::move(validity), dictionary_,
                          tracker_);
    }
    case DataType::kNull:
      break;
  }
  return Status::Invalid("Take on null-typed column");
}

Result<ColumnPtr> Column::Slice(size_t offset, size_t length) const {
  LAFP_CHECK(offset + length <= size_);
  std::vector<uint8_t> validity;
  if (!validity_.empty()) {
    validity.assign(validity_.begin() + offset,
                    validity_.begin() + offset + length);
  }
  switch (type_) {
    case DataType::kInt64:
      return MakeInt({ints_.begin() + offset, ints_.begin() + offset + length},
                     std::move(validity), tracker_);
    case DataType::kTimestamp:
      return MakeTimestamp(
          {ints_.begin() + offset, ints_.begin() + offset + length},
          std::move(validity), tracker_);
    case DataType::kDouble:
      return MakeDouble(
          {doubles_.begin() + offset, doubles_.begin() + offset + length},
          std::move(validity), tracker_);
    case DataType::kString:
      return MakeString(
          {strings_.begin() + offset, strings_.begin() + offset + length},
          std::move(validity), tracker_);
    case DataType::kBool:
      return MakeBool(
          {bools_.begin() + offset, bools_.begin() + offset + length},
          std::move(validity), tracker_);
    case DataType::kCategory:
      return MakeCategory(
          {codes_.begin() + offset, codes_.begin() + offset + length},
          std::move(validity), dictionary_, tracker_);
    case DataType::kNull:
      break;
  }
  return Status::Invalid("Slice on null-typed column");
}

std::string Column::ValueString(size_t i) const {
  if (!IsValid(i)) return "NaN";
  switch (type_) {
    case DataType::kBool:
      return BoolAt(i) ? "True" : "False";
    case DataType::kInt64:
      return std::to_string(IntAt(i));
    case DataType::kTimestamp:
      return FormatTimestamp(IntAt(i));
    case DataType::kDouble: {
      double v = DoubleAt(i);
      if (std::isnan(v)) return "NaN";
      return FormatDouble(v);
    }
    case DataType::kString:
    case DataType::kCategory:
      return StringAt(i);
    case DataType::kNull:
      break;
  }
  return "NaN";
}

// ---- ColumnBuilder ----

ColumnBuilder::ColumnBuilder(DataType type, MemoryTracker* tracker)
    : type_(type),
      tracker_(tracker != nullptr ? tracker : MemoryTracker::Default()) {
  LAFP_CHECK(type != DataType::kNull && type != DataType::kCategory)
      << "build strings then CategorizeStrings()";
}

void ColumnBuilder::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
    default:
      break;
  }
}

void ColumnBuilder::AppendNull() {
  saw_null_ = true;
  if (validity_.size() < count_) validity_.resize(count_, 1);
  validity_.push_back(0);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(std::nan(""));
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
    default:
      break;
  }
  ++count_;
}

void ColumnBuilder::AppendInt(int64_t v) {
  LAFP_DCHECK(type_ == DataType::kInt64 || type_ == DataType::kTimestamp);
  if (saw_null_) validity_.push_back(1);
  ints_.push_back(v);
  ++count_;
}

void ColumnBuilder::AppendDouble(double v) {
  LAFP_DCHECK(type_ == DataType::kDouble);
  if (saw_null_) validity_.push_back(1);
  doubles_.push_back(v);
  ++count_;
}

void ColumnBuilder::AppendBool(bool v) {
  LAFP_DCHECK(type_ == DataType::kBool);
  if (saw_null_) validity_.push_back(1);
  bools_.push_back(v ? 1 : 0);
  ++count_;
}

void ColumnBuilder::AppendString(std::string v) {
  LAFP_DCHECK(type_ == DataType::kString);
  if (saw_null_) validity_.push_back(1);
  strings_.push_back(std::move(v));
  ++count_;
}

Status ColumnBuilder::AppendScalar(const Scalar& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      LAFP_ASSIGN_OR_RETURN(double d, v.AsDouble());
      AppendInt(static_cast<int64_t>(d));
      return Status::OK();
    }
    case DataType::kDouble: {
      LAFP_ASSIGN_OR_RETURN(double d, v.AsDouble());
      AppendDouble(d);
      return Status::OK();
    }
    case DataType::kBool: {
      if (v.type() != DataType::kBool) {
        return Status::TypeError("cannot append non-bool to bool column");
      }
      AppendBool(v.bool_value());
      return Status::OK();
    }
    case DataType::kString: {
      if (v.type() == DataType::kString || v.type() == DataType::kCategory) {
        AppendString(v.string_value());
      } else {
        AppendString(v.ToString());
      }
      return Status::OK();
    }
    default:
      return Status::Invalid("bad builder type");
  }
}

void ColumnBuilder::AppendFrom(const Column& src, size_t i) {
  if (!src.IsValid(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      AppendInt(src.IntAt(i));
      break;
    case DataType::kDouble:
      AppendDouble(src.DoubleAt(i));
      break;
    case DataType::kBool:
      AppendBool(src.BoolAt(i));
      break;
    case DataType::kString:
      AppendString(src.StringAt(i));
      break;
    default:
      break;
  }
}

Result<ColumnPtr> ColumnBuilder::Finish() {
  if (saw_null_ && validity_.size() < count_) {
    validity_.resize(count_, 1);
  }
  switch (type_) {
    case DataType::kInt64:
      return Column::MakeInt(std::move(ints_), std::move(validity_),
                             tracker_);
    case DataType::kTimestamp:
      return Column::MakeTimestamp(std::move(ints_), std::move(validity_),
                                   tracker_);
    case DataType::kDouble:
      return Column::MakeDouble(std::move(doubles_), std::move(validity_),
                                tracker_);
    case DataType::kString:
      return Column::MakeString(std::move(strings_), std::move(validity_),
                                tracker_);
    case DataType::kBool:
      return Column::MakeBool(std::move(bools_), std::move(validity_),
                              tracker_);
    default:
      return Status::Invalid("bad builder type");
  }
}

Result<ColumnPtr> CategorizeStrings(const Column& strings,
                                    MemoryTracker* tracker) {
  if (strings.type() == DataType::kCategory) {
    // Already categorical: rebuild with the same dictionary (registers a
    // fresh reservation under `tracker`).
    return Column::MakeCategory(strings.codes(), strings.validity(),
                                strings.dictionary(), tracker);
  }
  if (strings.type() != DataType::kString) {
    return Status::TypeError("categorize requires a string column");
  }
  auto dict = std::make_shared<Dictionary>();
  std::unordered_map<std::string, int32_t> index;
  std::vector<int32_t> codes(strings.size(), 0);
  std::vector<uint8_t> validity;
  if (strings.has_nulls()) validity = strings.validity();
  for (size_t i = 0; i < strings.size(); ++i) {
    if (!strings.IsValid(i)) continue;
    const std::string& s = strings.StringAt(i);
    auto [it, inserted] =
        index.emplace(s, static_cast<int32_t>(dict->size()));
    if (inserted) dict->push_back(s);
    codes[i] = it->second;
  }
  return Column::MakeCategory(std::move(codes), std::move(validity),
                              std::move(dict), tracker);
}

Result<ColumnPtr> DecategorizeToStrings(const Column& cat,
                                        MemoryTracker* tracker) {
  if (cat.type() == DataType::kString) {
    return Column::MakeString(cat.strings(), cat.validity(), tracker);
  }
  if (cat.type() != DataType::kCategory) {
    return Status::TypeError("decategorize requires a category column");
  }
  std::vector<std::string> out(cat.size());
  for (size_t i = 0; i < cat.size(); ++i) {
    if (cat.IsValid(i)) out[i] = cat.StringAt(i);
  }
  return Column::MakeString(std::move(out), cat.validity(), tracker);
}

}  // namespace lafp::df
