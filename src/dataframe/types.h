#ifndef LAFP_DATAFRAME_TYPES_H_
#define LAFP_DATAFRAME_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace lafp::df {

/// Physical column types of the eager engine. kTimestamp is an int64 epoch
/// in seconds; kCategory is a dictionary-encoded string column (int32 codes
/// into a shared dictionary), the paper's §3.6 space optimization.
enum class DataType : int {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kTimestamp = 5,
  kCategory = 6,
};

const char* DataTypeName(DataType t);

/// Parse a dtype name as written in PdScript / metadata files
/// ("int64", "float64", "str", "bool", "datetime", "category").
Result<DataType> DataTypeFromName(const std::string& name);

bool IsNumeric(DataType t);

/// A single nullable value. Strings own their storage.
class Scalar {
 public:
  Scalar() = default;  // null

  static Scalar Null() { return Scalar(); }
  static Scalar Bool(bool v) { return Scalar(DataType::kBool, v); }
  static Scalar Int(int64_t v) { return Scalar(DataType::kInt64, v); }
  static Scalar Double(double v) { return Scalar(DataType::kDouble, v); }
  static Scalar String(std::string v) {
    return Scalar(DataType::kString, std::move(v));
  }
  static Scalar Timestamp(int64_t epoch_seconds) {
    return Scalar(DataType::kTimestamp, epoch_seconds);
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const {
    return std::get<std::string>(value_);
  }

  /// Numeric widening view (int/bool/timestamp -> double). Fails on
  /// strings/null.
  Result<double> AsDouble() const;

  /// Repr used by print / CSV output / hashing.
  std::string ToString() const;

  bool Equals(const Scalar& other) const;

 private:
  Scalar(DataType t, bool v) : type_(t), value_(v) {}
  Scalar(DataType t, int64_t v) : type_(t), value_(v) {}
  Scalar(DataType t, double v) : type_(t), value_(v) {}
  Scalar(DataType t, std::string v) : type_(t), value_(std::move(v)) {}

  DataType type_ = DataType::kNull;
  std::variant<std::monostate, bool, int64_t, double, std::string> value_;
};

/// Comparison operators for filter predicates.
enum class CompareOp : int { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

/// Aggregate functions for groupby / reductions.
enum class AggFunc : int { kSum, kMean, kCount, kMin, kMax, kNunique };

const char* AggFuncName(AggFunc f);
Result<AggFunc> AggFuncFromName(const std::string& name);

/// Binary arithmetic for column expressions.
enum class ArithOp : int { kAdd, kSub, kMul, kDiv, kMod };

const char* ArithOpSymbol(ArithOp op);

// ---- Civil-time helpers (timestamps are epoch seconds, UTC) ----

/// Days from civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Parse "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS" into epoch seconds.
Result<int64_t> ParseTimestamp(const std::string& s);

/// Format epoch seconds as "YYYY-MM-DD HH:MM:SS".
std::string FormatTimestamp(int64_t epoch_seconds);

/// Weekday for an epoch value: Monday=0 ... Sunday=6 (pandas dt.dayofweek).
int DayOfWeek(int64_t epoch_seconds);
int HourOfDay(int64_t epoch_seconds);
int MonthOf(int64_t epoch_seconds);
int YearOf(int64_t epoch_seconds);
int DayOfMonth(int64_t epoch_seconds);

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_TYPES_H_
