#ifndef LAFP_DATAFRAME_DATAFRAME_H_
#define LAFP_DATAFRAME_DATAFRAME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataframe/column.h"

namespace lafp::df {

/// An eager, immutable dataframe: named columns of equal length with an
/// implicit 0..n-1 row index (pandas RangeIndex). Cheap to copy: columns
/// are shared. "Mutation" APIs return new frames.
class DataFrame {
 public:
  DataFrame() = default;  // 0 columns, 0 rows

  /// `names` and `columns` must be the same length; all columns the same
  /// row count; names unique.
  static Result<DataFrame> Make(std::vector<std::string> names,
                                std::vector<ColumnPtr> columns);

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }
  size_t num_columns() const { return columns_.size(); }

  const std::vector<std::string>& names() const { return names_; }
  const std::vector<ColumnPtr>& columns() const { return columns_; }

  /// Index of `name` or -1.
  int ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name) >= 0;
  }

  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  Result<ColumnPtr> column(const std::string& name) const;

  /// The memory tracker shared by this frame's columns (Default() if the
  /// frame is empty).
  MemoryTracker* tracker() const;

  /// Projection; preserves the requested order. KeyError on a missing name.
  Result<DataFrame> Select(const std::vector<std::string>& names) const;

  /// Replace or append a column (pandas setitem). The new column must match
  /// num_rows (unless the frame is empty).
  Result<DataFrame> WithColumn(const std::string& name,
                               ColumnPtr column) const;

  Result<DataFrame> Drop(const std::vector<std::string>& names) const;

  Result<DataFrame> Rename(
      const std::map<std::string, std::string>& mapping) const;

  /// Rows [offset, offset+length) of every column.
  Result<DataFrame> SliceRows(size_t offset, size_t length) const;

  /// Gather rows by index across all columns.
  Result<DataFrame> TakeRows(const std::vector<int64_t>& indices) const;

  /// Sum of column footprints as registered with the tracker.
  int64_t footprint_bytes() const;

  /// Pandas-style repr (header + up to max_rows rows, "..." elision).
  std::string ToString(size_t max_rows = 10) const;

  /// Deterministic dump for regression hashing (§5.2): header then all rows
  /// as comma-joined value strings. If `sort_rows` is set, rows are emitted
  /// in lexicographic order — used when comparing against backends that do
  /// not preserve row order (Dask).
  std::string CanonicalString(bool sort_rows) const;

 private:
  std::vector<std::string> names_;
  std::vector<ColumnPtr> columns_;
};

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_DATAFRAME_H_
