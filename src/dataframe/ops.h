#ifndef LAFP_DATAFRAME_OPS_H_
#define LAFP_DATAFRAME_OPS_H_

#include <string>
#include <vector>

#include "dataframe/dataframe.h"

namespace lafp::df {

// ---------------- Comparison and boolean kernels ----------------

/// Elementwise `col <op> rhs` producing a bool column. Nulls compare false.
/// Numeric scalars compare against numeric columns with widening; strings
/// against string/category columns.
Result<ColumnPtr> Compare(const Column& col, CompareOp op, const Scalar& rhs);

/// Elementwise column-vs-column comparison (both numeric, or both string).
Result<ColumnPtr> CompareColumns(const Column& lhs, CompareOp op,
                                 const Column& rhs);

Result<ColumnPtr> BooleanAnd(const Column& a, const Column& b);
Result<ColumnPtr> BooleanOr(const Column& a, const Column& b);
Result<ColumnPtr> BooleanNot(const Column& a);

/// True where the value is null (or NaN for doubles) — pandas isna().
Result<ColumnPtr> IsNull(const Column& a);

/// Bool column: string column contains `needle` as a substring.
Result<ColumnPtr> StrContains(const Column& col, const std::string& needle);

/// Bool column: value membership in `values` (pandas isin). Numeric
/// values compare with widening; nulls are never members.
Result<ColumnPtr> IsIn(const Column& col, const std::vector<Scalar>& values);

// ---------------- Row selection ----------------

/// Keep rows where `mask` is true (nulls drop the row).
Result<DataFrame> Filter(const DataFrame& df, const Column& mask);
Result<ColumnPtr> FilterColumn(const Column& col, const Column& mask);

/// The mask -> ascending row-index selection vector behind Filter /
/// FilterColumn (nulls deselect). Exposed for the fused-map evaluator,
/// which gathers through it without materializing filtered columns.
Result<std::vector<int64_t>> MaskToIndices(const Column& mask);

Result<DataFrame> Head(const DataFrame& df, size_t n);

// ---------------- Arithmetic ----------------

Result<ColumnPtr> Arith(const Column& lhs, ArithOp op, const Scalar& rhs);
Result<ColumnPtr> ArithScalarLeft(const Scalar& lhs, ArithOp op,
                                  const Column& rhs);
Result<ColumnPtr> ArithColumns(const Column& lhs, ArithOp op,
                               const Column& rhs);
Result<ColumnPtr> Abs(const Column& col);
Result<ColumnPtr> Round(const Column& col, int digits);

// ---------------- Null handling and casting ----------------

Result<ColumnPtr> FillNaColumn(const Column& col, const Scalar& value);
Result<DataFrame> FillNa(const DataFrame& df, const Scalar& value);
/// Drop rows that contain any null.
Result<DataFrame> DropNa(const DataFrame& df);

/// Cast a column. Supported directions: numeric<->numeric, anything->str,
/// str->numeric (parse, null on failure), str<->category, str->datetime.
Result<ColumnPtr> AsType(const Column& col, DataType to);

// ---------------- Datetime ----------------

/// Parse strings (or pass through timestamps / reinterpret ints as epoch
/// seconds) into a timestamp column; unparseable values become null.
Result<ColumnPtr> ToDatetime(const Column& col);

enum class DtField { kDayOfWeek, kHour, kMonth, kYear, kDay };
Result<DtField> DtFieldFromName(const std::string& name);
const char* DtFieldName(DtField f);

/// Extract an integer field from a timestamp column.
Result<ColumnPtr> DtAccessor(const Column& col, DtField field);

// ---------------- Reductions and aggregation ----------------

/// Whole-column reduction. sum/mean/min/max skip nulls and NaNs; count is
/// the number of non-null values; min/max on strings compare
/// lexicographically.
Result<Scalar> Reduce(const Column& col, AggFunc func);

/// One output aggregate: `out_name = func(column)` within each group.
struct AggSpec {
  std::string column;
  AggFunc func;
  std::string out_name;
};

/// Hash group-by. Output: key columns (first-appearance order) followed by
/// one column per AggSpec. Null keys form their own group (simplification
/// vs pandas' dropna default; deterministic either way).
Result<DataFrame> GroupByAgg(const DataFrame& df,
                             const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs);

// ---------------- Sorting and duplicates ----------------

/// Stable multi-key sort. `ascending` is per-key (size 1 broadcasts).
Result<DataFrame> SortValues(const DataFrame& df,
                             const std::vector<std::string>& by,
                             const std::vector<bool>& ascending);

/// First occurrence of each distinct key tuple. Empty subset = all columns.
Result<DataFrame> DropDuplicates(const DataFrame& df,
                                 const std::vector<std::string>& subset);

Result<ColumnPtr> Unique(const Column& col);

/// Distinct values with counts, descending by count then by value; columns
/// named {value_name, "count"}.
Result<DataFrame> ValueCounts(const Column& col,
                              const std::string& value_name);

// ---------------- Join ----------------

enum class JoinType { kInner, kLeft };

/// Hash join on equal-named key columns. Overlapping non-key columns get
/// pandas' "_x"/"_y" suffixes. Builds a hash table on `right`, streams
/// `left` (the Dask backend relies on this asymmetry to broadcast the
/// smaller side).
Result<DataFrame> Merge(const DataFrame& left, const DataFrame& right,
                        const std::vector<std::string>& on, JoinType how);

// ---------------- Assembly ----------------

/// Vertical concatenation; frames must have identical schemas.
Result<DataFrame> Concat(const std::vector<DataFrame>& frames);

/// Numeric summary (count/mean/std/min/max) — pandas describe(). First
/// column "stat" holds row labels.
Result<DataFrame> Describe(const DataFrame& df);

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_OPS_H_
