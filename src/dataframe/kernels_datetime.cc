#include "common/macros.h"
#include "common/string_util.h"
#include "dataframe/ops.h"

namespace lafp::df {

Result<DtField> DtFieldFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "dayofweek" || n == "weekday") return DtField::kDayOfWeek;
  if (n == "hour") return DtField::kHour;
  if (n == "month") return DtField::kMonth;
  if (n == "year") return DtField::kYear;
  if (n == "day") return DtField::kDay;
  return Status::Invalid("unknown dt accessor: " + name);
}

const char* DtFieldName(DtField f) {
  switch (f) {
    case DtField::kDayOfWeek:
      return "dayofweek";
    case DtField::kHour:
      return "hour";
    case DtField::kMonth:
      return "month";
    case DtField::kYear:
      return "year";
    case DtField::kDay:
      return "day";
  }
  return "?";
}

Result<ColumnPtr> ToDatetime(const Column& col) {
  switch (col.type()) {
    case DataType::kTimestamp:
      return col.Slice(0, col.size());
    case DataType::kInt64:
      // Reinterpret as epoch seconds.
      return Column::MakeTimestamp(col.ints(), col.validity(),
                                   col.tracker());
    case DataType::kString:
    case DataType::kCategory: {
      ColumnBuilder builder(DataType::kTimestamp, col.tracker());
      builder.Reserve(col.size());
      for (size_t i = 0; i < col.size(); ++i) {
        if (!col.IsValid(i)) {
          builder.AppendNull();
          continue;
        }
        auto parsed = ParseTimestamp(col.StringAt(i));
        if (!parsed.ok()) {
          builder.AppendNull();  // errors='coerce' semantics
        } else {
          builder.AppendInt(*parsed);
        }
      }
      return builder.Finish();
    }
    default:
      return Status::TypeError("to_datetime on column of type " +
                               std::string(DataTypeName(col.type())));
  }
}

Result<ColumnPtr> DtAccessor(const Column& col, DtField field) {
  if (col.type() != DataType::kTimestamp) {
    return Status::TypeError(".dt accessor requires a datetime column");
  }
  std::vector<int64_t> out(col.size(), 0);
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsValid(i)) continue;
    int64_t ts = col.IntAt(i);
    switch (field) {
      case DtField::kDayOfWeek:
        out[i] = DayOfWeek(ts);
        break;
      case DtField::kHour:
        out[i] = HourOfDay(ts);
        break;
      case DtField::kMonth:
        out[i] = MonthOf(ts);
        break;
      case DtField::kYear:
        out[i] = YearOf(ts);
        break;
      case DtField::kDay:
        out[i] = DayOfMonth(ts);
        break;
    }
  }
  return Column::MakeInt(std::move(out), col.validity(), col.tracker());
}

}  // namespace lafp::df
