#include "common/macros.h"
#include "common/string_util.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"

namespace lafp::df {

Result<DtField> DtFieldFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "dayofweek" || n == "weekday") return DtField::kDayOfWeek;
  if (n == "hour") return DtField::kHour;
  if (n == "month") return DtField::kMonth;
  if (n == "year") return DtField::kYear;
  if (n == "day") return DtField::kDay;
  return Status::Invalid("unknown dt accessor: " + name);
}

const char* DtFieldName(DtField f) {
  switch (f) {
    case DtField::kDayOfWeek:
      return "dayofweek";
    case DtField::kHour:
      return "hour";
    case DtField::kMonth:
      return "month";
    case DtField::kYear:
      return "year";
    case DtField::kDay:
      return "day";
  }
  return "?";
}

Result<ColumnPtr> ToDatetime(const Column& col) {
  switch (col.type()) {
    case DataType::kTimestamp:
      return col.Slice(0, col.size());
    case DataType::kInt64:
      // Reinterpret as epoch seconds.
      return Column::MakeTimestamp(col.ints(), col.validity(),
                                   col.tracker());
    case DataType::kString:
    case DataType::kCategory: {
      // Range-parameterized parse (errors='coerce'): each morsel fills its
      // disjoint slice of the value/valid arrays; the validity vector is
      // attached only if some row is null, matching the builder's output.
      const size_t n = col.size();
      std::vector<int64_t> out(n, 0);
      std::vector<uint8_t> valid(n, 1);
      LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (!col.IsValid(i)) {
            valid[i] = 0;
            continue;
          }
          auto parsed = ParseTimestamp(col.StringAt(i));
          if (!parsed.ok()) {
            valid[i] = 0;
          } else {
            out[i] = *parsed;
          }
        }
        return Status::OK();
      }));
      bool any_null = false;
      for (uint8_t v : valid) {
        if (v == 0) {
          any_null = true;
          break;
        }
      }
      if (!any_null) valid.clear();
      return Column::MakeTimestamp(std::move(out), std::move(valid),
                                   col.tracker());
    }
    default:
      return Status::TypeError("to_datetime on column of type " +
                               std::string(DataTypeName(col.type())));
  }
}

Result<ColumnPtr> DtAccessor(const Column& col, DtField field) {
  if (col.type() != DataType::kTimestamp) {
    return Status::TypeError(".dt accessor requires a datetime column");
  }
  std::vector<int64_t> out(col.size(), 0);
  LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!col.IsValid(i)) continue;
      int64_t ts = col.IntAt(i);
      switch (field) {
        case DtField::kDayOfWeek:
          out[i] = DayOfWeek(ts);
          break;
        case DtField::kHour:
          out[i] = HourOfDay(ts);
          break;
        case DtField::kMonth:
          out[i] = MonthOf(ts);
          break;
        case DtField::kYear:
          out[i] = YearOf(ts);
          break;
        case DtField::kDay:
          out[i] = DayOfMonth(ts);
          break;
      }
    }
    return Status::OK();
  }));
  return Column::MakeInt(std::move(out), col.validity(), col.tracker());
}

}  // namespace lafp::df
