#ifndef LAFP_DATAFRAME_ARITH_SEMANTICS_H_
#define LAFP_DATAFRAME_ARITH_SEMANTICS_H_

#include <cmath>
#include <cstdint>

#include "dataframe/types.h"

namespace lafp::df {

// Scalar arithmetic semantics shared by the column kernels and the
// PdScript interpreter: NumPy int64 wraparound and Python/pandas floored
// modulo. Centralized so the engine kernels and script-level scalar
// folding can never drift apart.

/// int64 add with NumPy's two's-complement wraparound. Signed overflow is
/// UB in C++; the unsigned round trip is defined and (since C++20 mandates
/// two's complement) produces exactly the bits NumPy stores.
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

/// abs with NumPy semantics: abs(INT64_MIN) wraps back to INT64_MIN
/// (std::abs would be UB there).
inline int64_t WrapAbs(int64_t a) { return a < 0 ? WrapSub(0, a) : a; }

/// Python/pandas floored modulo for int64: the result takes the divisor's
/// sign (-7 % 3 == 2, 7 % -3 == -2). NumPy's int64 x % 0 is 0 (with a
/// RuntimeWarning we do not model), and INT64_MIN % -1 is 0 — the b == -1
/// early-out also sidesteps the hardware trap on INT64_MIN / -1.
inline int64_t FlooredModInt(int64_t a, int64_t b) {
  if (b == 0 || b == -1) return 0;
  int64_t r = a % b;
  // |r| < |b|, so the adjustment cannot overflow.
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

/// Python/pandas floored modulo for doubles: fmod adjusted so the result
/// takes the divisor's sign; an exactly-zero result carries the divisor's
/// sign bit (6.0 % -3.0 == -0.0). x % 0.0, inf % y and NaN operands all
/// yield NaN via fmod and pass through the adjustment unchanged.
inline double FlooredModDouble(double a, double b) {
  double r = std::fmod(a, b);
  if (r != 0.0) {
    if ((r < 0.0) != (b < 0.0)) r += b;
  } else {
    r = std::copysign(0.0, b);
  }
  return r;
}

/// Scalar double arithmetic with pandas semantics (kMod is floored).
/// The canonical per-element form of the vectorized kernel loops; the
/// fused evaluator and the interpreter's constant folding share it.
inline double ApplyArith(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    case ArithOp::kMul:
      return a * b;
    case ArithOp::kDiv:
      return a / b;  // inf/NaN semantics match pandas' float division
    case ArithOp::kMod:
      return FlooredModDouble(a, b);
  }
  return std::nan("");
}

/// Scalar int64 arithmetic with NumPy wrap + floored-mod semantics.
/// kDiv never reaches here (pandas / is true division).
inline int64_t ApplyArithInt(ArithOp op, int64_t a, int64_t b) {
  switch (op) {
    case ArithOp::kAdd:
      return WrapAdd(a, b);
    case ArithOp::kSub:
      return WrapSub(a, b);
    case ArithOp::kMul:
      return WrapMul(a, b);
    case ArithOp::kMod:
      return FlooredModInt(a, b);
    case ArithOp::kDiv:
      break;
  }
  return 0;
}

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_ARITH_SEMANTICS_H_
