#include "dataframe/types.h"

#include <cstdio>

#include "common/string_util.h"

namespace lafp::df {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "float64";
    case DataType::kString:
      return "str";
    case DataType::kTimestamp:
      return "datetime";
    case DataType::kCategory:
      return "category";
  }
  return "?";
}

Result<DataType> DataTypeFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "bool") return DataType::kBool;
  if (n == "int" || n == "int64" || n == "int32") return DataType::kInt64;
  if (n == "float" || n == "float64" || n == "float32" || n == "double") {
    return DataType::kDouble;
  }
  if (n == "str" || n == "string" || n == "object") return DataType::kString;
  if (n == "datetime" || n == "datetime64" || n == "timestamp") {
    return DataType::kTimestamp;
  }
  if (n == "category") return DataType::kCategory;
  return Status::Invalid("unknown dtype name: " + name);
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kBool || t == DataType::kTimestamp;
}

Result<double> Scalar::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    default:
      return Status::TypeError(std::string("scalar of type ") +
                               DataTypeName(type_) + " is not numeric");
  }
}

std::string Scalar::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NaN";
    case DataType::kBool:
      return bool_value() ? "True" : "False";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble:
      return FormatDouble(double_value());
    case DataType::kString:
    case DataType::kCategory:
      return string_value();
    case DataType::kTimestamp:
      return FormatTimestamp(int_value());
  }
  return "?";
}

bool Scalar::Equals(const Scalar& other) const {
  if (type_ != other.type_) return false;
  return value_ == other.value_;
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMean:
      return "mean";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kNunique:
      return "nunique";
  }
  return "?";
}

Result<AggFunc> AggFuncFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "sum") return AggFunc::kSum;
  if (n == "mean" || n == "avg") return AggFunc::kMean;
  if (n == "count" || n == "size") return AggFunc::kCount;
  if (n == "min") return AggFunc::kMin;
  if (n == "max") return AggFunc::kMax;
  if (n == "nunique") return AggFunc::kNunique;
  return Status::Invalid("unknown aggregate function: " + name);
}

const char* ArithOpSymbol(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int64_t> ParseTimestamp(const std::string& s) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, sec = 0;
  int n = std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi,
                      &sec);
  if (n != 3 && n != 6) {
    return Status::Invalid("cannot parse timestamp: '" + s + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || sec < 0 || sec > 60) {
    return Status::Invalid("timestamp out of range: '" + s + "'");
  }
  return DaysFromCivil(y, mo, d) * 86400 + h * 3600 + mi * 60 + sec;
}

std::string FormatTimestamp(int64_t ts) {
  int64_t days = ts / 86400;
  int64_t rem = ts % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", y, m, d,
                static_cast<int>(rem / 3600),
                static_cast<int>((rem % 3600) / 60),
                static_cast<int>(rem % 60));
  return buf;
}

int DayOfWeek(int64_t ts) {
  int64_t days = ts / 86400;
  if (ts % 86400 < 0) days -= 1;
  // 1970-01-01 was a Thursday (pandas dayofweek: Monday=0 -> Thursday=3).
  int64_t dow = (days + 3) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

int HourOfDay(int64_t ts) {
  int64_t rem = ts % 86400;
  if (rem < 0) rem += 86400;
  return static_cast<int>(rem / 3600);
}

int MonthOf(int64_t ts) {
  int64_t days = ts / 86400;
  if (ts % 86400 < 0) days -= 1;
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return m;
}

int YearOf(int64_t ts) {
  int64_t days = ts / 86400;
  if (ts % 86400 < 0) days -= 1;
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

int DayOfMonth(int64_t ts) {
  int64_t days = ts / 86400;
  if (ts % 86400 < 0) days -= 1;
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return d;
}

}  // namespace lafp::df
