#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "dataframe/ops.h"

namespace lafp::df {

namespace {

/// Three-way comparison of two rows of one column. Nulls sort last
/// regardless of direction (pandas na_position='last' is handled by the
/// caller; here nulls are "greatest").
int CompareCell(const Column& col, size_t a, size_t b) {
  bool va = col.IsValid(a), vb = col.IsValid(b);
  if (!va && !vb) return 0;
  if (!va) return 1;
  if (!vb) return -1;
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t x = col.IntAt(a), y = col.IntAt(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDouble: {
      double x = col.DoubleAt(a), y = col.DoubleAt(b);
      bool nx = std::isnan(x), ny = std::isnan(y);
      if (nx && ny) return 0;
      if (nx) return 1;
      if (ny) return -1;
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kBool: {
      int x = col.BoolAt(a) ? 1 : 0, y = col.BoolAt(b) ? 1 : 0;
      return x - y;
    }
    case DataType::kString:
    case DataType::kCategory:
      return col.StringAt(a).compare(col.StringAt(b));
    case DataType::kNull:
      return 0;
  }
  return 0;
}

}  // namespace

Result<DataFrame> SortValues(const DataFrame& df,
                             const std::vector<std::string>& by,
                             const std::vector<bool>& ascending) {
  if (by.empty()) return Status::Invalid("sort_values requires keys");
  std::vector<bool> asc = ascending;
  if (asc.empty()) asc.assign(by.size(), true);
  if (asc.size() == 1 && by.size() > 1) asc.assign(by.size(), asc[0]);
  if (asc.size() != by.size()) {
    return Status::Invalid("sort_values: ascending arity mismatch");
  }
  std::vector<const Column*> key_cols;
  for (const auto& k : by) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, df.column(k));
    key_cols.push_back(c.get());
  }
  std::vector<int64_t> order(df.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto row_is_null = [](const Column& col, size_t r) {
    if (!col.IsValid(r)) return true;
    return col.type() == DataType::kDouble && std::isnan(col.DoubleAt(r));
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t a, int64_t b) {
                     for (size_t k = 0; k < key_cols.size(); ++k) {
                       // Nulls/NaNs sort last regardless of direction
                       // (pandas na_position='last').
                       bool na = row_is_null(*key_cols[k], a);
                       bool nb = row_is_null(*key_cols[k], b);
                       if (na != nb) return nb;
                       if (na && nb) continue;
                       int c = CompareCell(*key_cols[k], a, b);
                       if (c != 0) return asc[k] ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return df.TakeRows(order);
}

}  // namespace lafp::df
