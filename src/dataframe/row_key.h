#ifndef LAFP_DATAFRAME_ROW_KEY_H_
#define LAFP_DATAFRAME_ROW_KEY_H_

#include <string>
#include <vector>

#include "dataframe/column.h"

namespace lafp::df::internal {

/// Append an unambiguous encoding of row `row` of `col` to `*key`.
/// Used to build composite hash keys for groupby / join / drop_duplicates.
inline void AppendRowKey(const Column& col, size_t row, std::string* key) {
  if (!col.IsValid(row)) {
    key->append("\x02N\x03");
    return;
  }
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t v = col.IntAt(row);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.DoubleAt(row);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kBool:
      key->push_back(col.BoolAt(row) ? '\x01' : '\x00');
      break;
    case DataType::kString:
    case DataType::kCategory:
      key->append(col.StringAt(row));
      break;
    case DataType::kNull:
      key->append("\x02N\x03");
      break;
  }
  key->push_back('\x1f');  // field separator
}

inline std::string RowKey(const std::vector<const Column*>& cols,
                          size_t row) {
  std::string key;
  for (const Column* c : cols) AppendRowKey(*c, row, &key);
  return key;
}

}  // namespace lafp::df::internal

#endif  // LAFP_DATAFRAME_ROW_KEY_H_
