#ifndef LAFP_DATAFRAME_KERNEL_CONTEXT_H_
#define LAFP_DATAFRAME_KERNEL_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"

namespace lafp::df {

/// Counters describing the kernel work launched from one thread while a
/// KernelCountersScope is active. The session's ExecNode wraps each
/// backend Execute in such a scope, which is how ExecutionReport learns
/// per-node kernel time and morsel counts.
struct KernelCounters {
  int64_t morsels = 0;           // morsels executed through RunMorsels
  int64_t parallel_kernels = 0;  // kernels that actually forked onto a pool
  int64_t kernel_micros = 0;     // wall time spent inside RunMorsels

  void Merge(const KernelCounters& other) {
    morsels += other.morsels;
    parallel_kernels += other.parallel_kernels;
    kernel_micros += other.kernel_micros;
  }
};

/// Atomic accumulator for kernel counters gathered on pool threads. A
/// launcher that fans work out to partition workers (the Modin backend)
/// hands each worker a local KernelCounters via KernelCountersScope, has
/// the worker Add() its totals here, and after the join merges the sum
/// back into its own thread's sink with MergeIntoCurrentSink — this is
/// how cross-thread kernel work attributes to the owning node's
/// NodeStats.
class SharedKernelCounters {
 public:
  void Add(const KernelCounters& c) {
    morsels_.fetch_add(c.morsels, std::memory_order_relaxed);
    parallel_kernels_.fetch_add(c.parallel_kernels,
                                std::memory_order_relaxed);
    kernel_micros_.fetch_add(c.kernel_micros, std::memory_order_relaxed);
  }

  KernelCounters Snapshot() const {
    KernelCounters c;
    c.morsels = morsels_.load(std::memory_order_relaxed);
    c.parallel_kernels = parallel_kernels_.load(std::memory_order_relaxed);
    c.kernel_micros = kernel_micros_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  std::atomic<int64_t> morsels_{0};
  std::atomic<int64_t> parallel_kernels_{0};
  std::atomic<int64_t> kernel_micros_{0};
};

/// Add `c` into the calling thread's active KernelCounters sink (no-op
/// when none is installed).
void MergeIntoCurrentSink(const KernelCounters& c);

/// Intra-operator parallelism context for the kernel layer (morsel-driven
/// parallelism, HiFrames-style). A backend builds one KernelContext from
/// its config and installs it thread-locally (KernelScope) around kernel
/// execution; every hot kernel then drives its row range through
/// RunMorsels below.
///
/// Determinism contract: morsel boundaries are a pure function of
/// (row count, morsel_rows) — never of num_threads — and merges of morsel
/// partials always happen in morsel order on the launching thread. So for
/// a fixed morsel_rows, results are bit-identical for every thread count,
/// including the Kahan-compensated aggregate sums.
///
/// The default-constructed context is serial; threads that never had a
/// scope installed (e.g. pool workers running morsel bodies or Modin
/// partition tasks) see the serial context, which is what prevents nested
/// oversubscription: partition-level parallelism automatically suppresses
/// kernel-level splitting because the context does not propagate across
/// threads.
class KernelContext {
 public:
  /// Fixed default morsel size. Matches BackendConfig::partition_rows'
  /// default so a Modin partition is exactly one morsel.
  static constexpr size_t kDefaultMorselRows = 65536;

  /// Serial context: kernels run inline, single morsel spans all rows
  /// (the byte-identical legacy path).
  KernelContext() = default;

  /// Morsel-driven context. `pool` may be shared with other users (the
  /// Modin partition pool); RunMorsels only ever blocks the launching
  /// thread, never a pool worker, so sharing cannot deadlock as long as
  /// the launching thread is not itself a worker of `pool`.
  KernelContext(ThreadPool* pool, int num_threads, size_t morsel_rows);

  bool parallel() const { return pool_ != nullptr && num_threads_ > 1; }
  int num_threads() const { return num_threads_; }
  size_t morsel_rows() const { return morsel_rows_; }
  ThreadPool* pool() const { return pool_; }

  /// The context installed on this thread (serial if none).
  static const KernelContext& Current();

 private:
  ThreadPool* pool_ = nullptr;
  int num_threads_ = 1;
  size_t morsel_rows_ = 0;  // 0 = single morsel spanning all rows (serial)
};

/// RAII installation of a KernelContext as this thread's Current().
/// Nestable; restores the previous context on destruction.
class KernelScope {
 public:
  explicit KernelScope(const KernelContext* ctx);
  ~KernelScope();

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  const KernelContext* prev_;
};

/// RAII capture of this thread's kernel counters into `sink` (additive).
/// Nestable; the innermost scope wins.
class KernelCountersScope {
 public:
  explicit KernelCountersScope(KernelCounters* sink);
  ~KernelCountersScope();

  KernelCountersScope(const KernelCountersScope&) = delete;
  KernelCountersScope& operator=(const KernelCountersScope&) = delete;

 private:
  KernelCounters* prev_;
};

/// Number of morsels the current context splits `n` rows into (>= 1 for
/// n > 0). Independent of thread count by construction.
size_t NumMorsels(size_t n);

/// Run body(begin, end) over every morsel of [0, n), in parallel when the
/// current context allows, inline (in morsel order) otherwise. Bodies
/// must write only to disjoint per-range state. All morsels run even
/// after a failure; the lowest-morsel failure is returned (the Status a
/// serial loop would surface). Updates the active KernelCounters.
Status RunMorsels(size_t n, const std::function<Status(size_t, size_t)>& body);

}  // namespace lafp::df

#endif  // LAFP_DATAFRAME_KERNEL_CONTEXT_H_
