#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "dataframe/arith_semantics.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"

namespace lafp::df {

namespace {

bool BothIntsStayInt(ArithOp op, DataType a, DataType b) {
  if (op == ArithOp::kDiv) return false;  // pandas / is true division
  return a == DataType::kInt64 && b == DataType::kInt64;
}

// ---------------------------------------------------------------------------
// Vectorization-friendly range loops. The ArithOp switch is hoisted out of
// the inner loop so each case body is a tight contiguous raw-pointer loop
// the compiler autovectorizes (checked with -fopt-info-vec). Validity is
// handled outside these loops: callers compute unconditionally over the
// stored values (defined for doubles and for the wrap int ops) and patch
// invalid rows afterwards, which keeps the hot loops branch-free.
// ---------------------------------------------------------------------------

/// out[i] = out[i] <op> r over [b, e).
void ArithRangeRhs(ArithOp op, double* out, double r, size_t b, size_t e) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = b; i < e; ++i) out[i] = out[i] + r;
      break;
    case ArithOp::kSub:
      for (size_t i = b; i < e; ++i) out[i] = out[i] - r;
      break;
    case ArithOp::kMul:
      for (size_t i = b; i < e; ++i) out[i] = out[i] * r;
      break;
    case ArithOp::kDiv:
      for (size_t i = b; i < e; ++i) out[i] = out[i] / r;
      break;
    case ArithOp::kMod:
      for (size_t i = b; i < e; ++i) out[i] = FlooredModDouble(out[i], r);
      break;
  }
}

/// out[i] = l <op> out[i] over [b, e).
void ArithRangeLhs(ArithOp op, double l, double* out, size_t b, size_t e) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = b; i < e; ++i) out[i] = l + out[i];
      break;
    case ArithOp::kSub:
      for (size_t i = b; i < e; ++i) out[i] = l - out[i];
      break;
    case ArithOp::kMul:
      for (size_t i = b; i < e; ++i) out[i] = l * out[i];
      break;
    case ArithOp::kDiv:
      for (size_t i = b; i < e; ++i) out[i] = l / out[i];
      break;
    case ArithOp::kMod:
      for (size_t i = b; i < e; ++i) out[i] = FlooredModDouble(l, out[i]);
      break;
  }
}

/// out[i] = a[i] <op> b[i] over [lo, hi), all-double.
void ArithRangeCols(ArithOp op, const double* a, const double* b, double* out,
                    size_t lo, size_t hi) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] + b[i];
      break;
    case ArithOp::kSub:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] - b[i];
      break;
    case ArithOp::kMul:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] * b[i];
      break;
    case ArithOp::kDiv:
      for (size_t i = lo; i < hi; ++i) out[i] = a[i] / b[i];
      break;
    case ArithOp::kMod:
      for (size_t i = lo; i < hi; ++i) out[i] = FlooredModDouble(a[i], b[i]);
      break;
  }
}

/// out[i] = a[i] <op> r over [b, e), int64 with wrap semantics. The
/// loop-invariant divisor cases of kMod (0 and -1 are identically zero)
/// are hoisted so the remaining mod loop only carries the sign fixup.
void ArithIntRangeRhs(ArithOp op, const int64_t* a, int64_t r, int64_t* out,
                      size_t b, size_t e) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = b; i < e; ++i) out[i] = WrapAdd(a[i], r);
      break;
    case ArithOp::kSub:
      for (size_t i = b; i < e; ++i) out[i] = WrapSub(a[i], r);
      break;
    case ArithOp::kMul:
      for (size_t i = b; i < e; ++i) out[i] = WrapMul(a[i], r);
      break;
    case ArithOp::kMod:
      if (r == 0 || r == -1) {
        for (size_t i = b; i < e; ++i) out[i] = 0;
      } else {
        for (size_t i = b; i < e; ++i) out[i] = FlooredModInt(a[i], r);
      }
      break;
    case ArithOp::kDiv:
      break;  // unreachable: int fast path excludes division
  }
}

/// out[i] = a[i] <op> b[i] over [lo, hi), int64 with wrap semantics.
void ArithIntRangeCols(ArithOp op, const int64_t* a, const int64_t* b,
                       int64_t* out, size_t lo, size_t hi) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = lo; i < hi; ++i) out[i] = WrapAdd(a[i], b[i]);
      break;
    case ArithOp::kSub:
      for (size_t i = lo; i < hi; ++i) out[i] = WrapSub(a[i], b[i]);
      break;
    case ArithOp::kMul:
      for (size_t i = lo; i < hi; ++i) out[i] = WrapMul(a[i], b[i]);
      break;
    case ArithOp::kMod:
      for (size_t i = lo; i < hi; ++i) out[i] = FlooredModInt(a[i], b[i]);
      break;
    case ArithOp::kDiv:
      break;  // unreachable
  }
}

/// Widen the stored values of rows [b, e) into dst[0 .. e-b). No validity
/// handling: stored values at invalid rows are copied as-is (callers patch
/// them afterwards).
void WidenRange(const Column& col, size_t b, size_t e, double* dst) {
  switch (col.type()) {
    case DataType::kDouble:
      std::memcpy(dst, col.double_data() + b, (e - b) * sizeof(double));
      break;
    case DataType::kInt64:
    case DataType::kTimestamp: {
      const int64_t* v = col.int_data() + b;
      const size_t m = e - b;
      for (size_t i = 0; i < m; ++i) dst[i] = static_cast<double>(v[i]);
      break;
    }
    case DataType::kBool: {
      const uint8_t* v = col.bool_data() + b;
      const size_t m = e - b;
      for (size_t i = 0; i < m; ++i) dst[i] = v[i] != 0 ? 1.0 : 0.0;
      break;
    }
    default:
      break;  // callers pre-check IsNumeric
  }
}

/// Overwrite invalid rows of `out` with NaN over [b, e) — the double
/// arith kernels' null representation. Branch-free select so the loop
/// vectorizes; no-op when the column is all-valid.
void PatchInvalidToNan(const Column& col, size_t b, size_t e, double* out) {
  const uint8_t* valid = col.validity_data();
  if (valid == nullptr) return;
  const double nan = std::nan("");
  for (size_t i = b; i < e; ++i) out[i] = valid[i] != 0 ? out[i] : nan;
}

}  // namespace

Result<ColumnPtr> Arith(const Column& lhs, ArithOp op, const Scalar& rhs) {
  const size_t n = lhs.size();
  if ((lhs.type() == DataType::kString ||
       lhs.type() == DataType::kCategory) &&
      op == ArithOp::kAdd && rhs.type() == DataType::kString) {
    // String concatenation.
    std::vector<std::string> out(n);
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (lhs.IsValid(i)) out[i] = lhs.StringAt(i) + rhs.string_value();
      }
      return Status::OK();
    }));
    return Column::MakeString(std::move(out), lhs.validity(), lhs.tracker());
  }
  if (!IsNumeric(lhs.type())) {
    return Status::TypeError("arithmetic on non-numeric column");
  }
  if (rhs.is_null()) {
    return Column::MakeDouble(std::vector<double>(n, std::nan("")),
                              std::vector<uint8_t>(n, 0), lhs.tracker());
  }
  if (BothIntsStayInt(op, lhs.type(),
                      rhs.type() == DataType::kInt64 ? DataType::kInt64
                                                     : DataType::kDouble)) {
    std::vector<int64_t> out(n);
    const int64_t r = rhs.int_value();
    const int64_t* a = lhs.int_data();
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      ArithIntRangeRhs(op, a, r, out.data(), begin, end);
      return Status::OK();
    }));
    return Column::MakeInt(std::move(out), lhs.validity(), lhs.tracker());
  }
  LAFP_ASSIGN_OR_RETURN(double r, rhs.AsDouble());
  std::vector<double> out(n);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    WidenRange(lhs, begin, end, out.data() + begin);
    ArithRangeRhs(op, out.data(), r, begin, end);
    PatchInvalidToNan(lhs, begin, end, out.data());
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), lhs.validity(), lhs.tracker());
}

Result<ColumnPtr> ArithScalarLeft(const Scalar& lhs, ArithOp op,
                                  const Column& rhs) {
  const size_t n = rhs.size();
  if (!IsNumeric(rhs.type())) {
    return Status::TypeError("arithmetic on non-numeric column");
  }
  if (lhs.is_null()) {
    return Column::MakeDouble(std::vector<double>(n, std::nan("")),
                              std::vector<uint8_t>(n, 0), rhs.tracker());
  }
  LAFP_ASSIGN_OR_RETURN(double l, lhs.AsDouble());
  std::vector<double> out(n);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    WidenRange(rhs, begin, end, out.data() + begin);
    ArithRangeLhs(op, l, out.data(), begin, end);
    PatchInvalidToNan(rhs, begin, end, out.data());
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), rhs.validity(), rhs.tracker());
}

Result<ColumnPtr> ArithColumns(const Column& lhs, ArithOp op,
                               const Column& rhs) {
  if (lhs.size() != rhs.size()) {
    return Status::Invalid("arith: length mismatch");
  }
  const size_t n = lhs.size();
  if ((lhs.type() == DataType::kString ||
       lhs.type() == DataType::kCategory) &&
      (rhs.type() == DataType::kString ||
       rhs.type() == DataType::kCategory) &&
      op == ArithOp::kAdd) {
    std::vector<std::string> out(n);
    std::vector<uint8_t> validity;
    bool any_null = lhs.has_nulls() || rhs.has_nulls();
    if (any_null) validity.assign(n, 1);
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (!lhs.IsValid(i) || !rhs.IsValid(i)) {
          if (any_null) validity[i] = 0;
          continue;
        }
        out[i] = lhs.StringAt(i) + rhs.StringAt(i);
      }
      return Status::OK();
    }));
    return Column::MakeString(std::move(out), std::move(validity),
                              lhs.tracker());
  }
  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::TypeError("arithmetic on non-numeric columns");
  }
  if (BothIntsStayInt(op, lhs.type(), rhs.type())) {
    // int x int stays int64 regardless of validity-vector presence, matching
    // the scalar fast path above. Gating on has_nulls() here would make the
    // result dtype — and mod-by-zero values (int 0%0 == 0, double fmod(0,0)
    // == NaN) — depend on how the operands were materialized: a whole-file
    // CSV read attaches a validity vector that per-partition chunk reads
    // lack, so the same program would diverge across backends. The wrapped
    // int ops are total functions, safe to run over invalid slots; the
    // result validity is the AND of the inputs'.
    std::vector<int64_t> out(n);
    std::vector<uint8_t> validity;
    const bool any_null = lhs.has_nulls() || rhs.has_nulls();
    if (any_null) validity.assign(n, 1);
    const int64_t* a = lhs.int_data();
    const int64_t* b = rhs.int_data();
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      ArithIntRangeCols(op, a, b, out.data(), begin, end);
      if (any_null) {
        const uint8_t* va = lhs.validity_data();
        const uint8_t* vb = rhs.validity_data();
        for (size_t i = begin; i < end; ++i) {
          validity[i] = ((va == nullptr || va[i] != 0) &&
                         (vb == nullptr || vb[i] != 0))
                            ? 1
                            : 0;
        }
      }
      return Status::OK();
    }));
    return Column::MakeInt(std::move(out), std::move(validity),
                           lhs.tracker());
  }
  std::vector<double> out(n);
  std::vector<uint8_t> validity;
  const bool any_null = lhs.has_nulls() || rhs.has_nulls();
  if (any_null) validity.assign(n, 1);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    if (lhs.type() == DataType::kDouble && rhs.type() == DataType::kDouble) {
      // Both sides contiguous doubles: compute straight off the spans.
      ArithRangeCols(op, lhs.double_data(), rhs.double_data(), out.data(),
                     begin, end);
    } else {
      // Mixed numeric types: widen the rhs into a morsel-local scratch,
      // the lhs into the output, then combine in place.
      std::vector<double> scratch(end - begin);
      WidenRange(rhs, begin, end, scratch.data());
      WidenRange(lhs, begin, end, out.data() + begin);
      ArithRangeCols(op, out.data() + begin, scratch.data(),
                     out.data() + begin, 0, end - begin);
    }
    if (any_null) {
      const uint8_t* va = lhs.validity_data();
      const uint8_t* vb = rhs.validity_data();
      const double nan = std::nan("");
      for (size_t i = begin; i < end; ++i) {
        const bool ok = (va == nullptr || va[i] != 0) &&
                        (vb == nullptr || vb[i] != 0);
        out[i] = ok ? out[i] : nan;
        validity[i] = ok ? 1 : 0;
      }
    }
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), std::move(validity),
                            lhs.tracker());
}

Result<ColumnPtr> Abs(const Column& col) {
  switch (col.type()) {
    case DataType::kInt64: {
      std::vector<int64_t> out(col.size());
      const int64_t* v = col.int_data();
      LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t b, size_t e) {
        // WrapAbs: abs(INT64_MIN) stays INT64_MIN (NumPy), not UB.
        for (size_t i = b; i < e; ++i) out[i] = WrapAbs(v[i]);
        return Status::OK();
      }));
      return Column::MakeInt(std::move(out), col.validity(), col.tracker());
    }
    case DataType::kDouble: {
      std::vector<double> out(col.size());
      const double* v = col.double_data();
      LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out[i] = std::fabs(v[i]);
        return Status::OK();
      }));
      return Column::MakeDouble(std::move(out), col.validity(),
                                col.tracker());
    }
    default:
      return Status::TypeError("abs on non-numeric column");
  }
}

Result<ColumnPtr> Round(const Column& col, int digits) {
  if (col.type() == DataType::kInt64) {
    return Column::MakeInt(col.ints(), col.validity(), col.tracker());
  }
  if (col.type() != DataType::kDouble) {
    return Status::TypeError("round on non-numeric column");
  }
  double scale = std::pow(10.0, digits);
  std::vector<double> out(col.size());
  const double* v = col.double_data();
  LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      out[i] = std::round(v[i] * scale) / scale;
    }
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), col.validity(), col.tracker());
}

Result<ColumnPtr> FillNaColumn(const Column& col, const Scalar& value) {
  ColumnBuilder builder(col.type() == DataType::kCategory
                            ? DataType::kString
                            : col.type(),
                        col.tracker());
  builder.Reserve(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    bool null = !col.IsValid(i);
    if (!null && col.type() == DataType::kDouble &&
        std::isnan(col.DoubleAt(i))) {
      null = true;
    }
    if (null) {
      LAFP_RETURN_NOT_OK(builder.AppendScalar(value));
    } else {
      builder.AppendFrom(col, i);
    }
  }
  return builder.Finish();
}

Result<DataFrame> FillNa(const DataFrame& df, const Scalar& value) {
  std::vector<ColumnPtr> cols;
  cols.reserve(df.num_columns());
  for (size_t i = 0; i < df.num_columns(); ++i) {
    const Column& c = *df.column(i);
    bool scalar_compatible =
        value.is_null() ||
        (IsNumeric(c.type()) && IsNumeric(value.type())) ||
        ((c.type() == DataType::kString || c.type() == DataType::kCategory) &&
         value.type() == DataType::kString);
    bool needs_fill =
        scalar_compatible &&
        (c.has_nulls() || c.type() == DataType::kDouble);
    if (!needs_fill) {
      // pandas fillna returns a copy of the whole frame; untouched
      // columns are duplicated too (their footprint is re-charged).
      LAFP_ASSIGN_OR_RETURN(ColumnPtr copy, c.Slice(0, c.size()));
      cols.push_back(std::move(copy));
      continue;
    }
    LAFP_ASSIGN_OR_RETURN(ColumnPtr filled, FillNaColumn(c, value));
    cols.push_back(std::move(filled));
  }
  return DataFrame::Make(df.names(), std::move(cols));
}

Result<DataFrame> DropNa(const DataFrame& df) {
  std::vector<int64_t> keep;
  for (size_t r = 0; r < df.num_rows(); ++r) {
    bool any_null = false;
    for (size_t c = 0; c < df.num_columns(); ++c) {
      const Column& col = *df.column(c);
      if (!col.IsValid(r) || (col.type() == DataType::kDouble &&
                              std::isnan(col.DoubleAt(r)))) {
        any_null = true;
        break;
      }
    }
    if (!any_null) keep.push_back(static_cast<int64_t>(r));
  }
  return df.TakeRows(keep);
}

Result<ColumnPtr> AsType(const Column& col, DataType to) {
  if (col.type() == to) {
    // Rebuild (cheap) to keep the immutability contract simple.
    return col.Slice(0, col.size());
  }
  MemoryTracker* tracker = col.tracker();
  if (to == DataType::kCategory) return CategorizeStrings(col, tracker);
  if (col.type() == DataType::kCategory) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr strs, DecategorizeToStrings(col, tracker));
    if (to == DataType::kString) return strs;
    return AsType(*strs, to);
  }
  if (to == DataType::kTimestamp) return ToDatetime(col);
  if (to == DataType::kString) {
    std::vector<std::string> out(col.size());
    for (size_t i = 0; i < col.size(); ++i) {
      if (col.IsValid(i)) out[i] = col.ValueString(i);
    }
    return Column::MakeString(std::move(out), col.validity(), tracker);
  }
  if (col.type() == DataType::kString) {
    // Parse; failures become null.
    ColumnBuilder builder(to, tracker);
    builder.Reserve(col.size());
    for (size_t i = 0; i < col.size(); ++i) {
      if (!col.IsValid(i)) {
        builder.AppendNull();
        continue;
      }
      auto parsed = ParseDouble(col.StringAt(i));
      if (!parsed.has_value()) {
        builder.AppendNull();
        continue;
      }
      if (to == DataType::kInt64) {
        builder.AppendInt(static_cast<int64_t>(*parsed));
      } else if (to == DataType::kDouble) {
        builder.AppendDouble(*parsed);
      } else if (to == DataType::kBool) {
        builder.AppendBool(*parsed != 0.0);
      } else {
        return Status::TypeError("unsupported cast target");
      }
    }
    return builder.Finish();
  }
  // Numeric to numeric.
  ColumnBuilder builder(to, tracker);
  builder.Reserve(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsValid(i)) {
      builder.AppendNull();
      continue;
    }
    LAFP_ASSIGN_OR_RETURN(double v, col.NumericAt(i));
    switch (to) {
      case DataType::kInt64:
        builder.AppendInt(static_cast<int64_t>(v));
        break;
      case DataType::kDouble:
        builder.AppendDouble(v);
        break;
      case DataType::kBool:
        builder.AppendBool(v != 0.0);
        break;
      default:
        return Status::TypeError("unsupported cast target");
    }
  }
  return builder.Finish();
}

}  // namespace lafp::df
