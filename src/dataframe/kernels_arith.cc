#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"

namespace lafp::df {

namespace {

double ApplyArith(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    case ArithOp::kMul:
      return a * b;
    case ArithOp::kDiv:
      return a / b;  // inf/NaN semantics match pandas' float division
    case ArithOp::kMod:
      return std::fmod(a, b);
  }
  return std::nan("");
}

bool BothIntsStayInt(ArithOp op, DataType a, DataType b) {
  if (op == ArithOp::kDiv) return false;  // pandas / is true division
  return a == DataType::kInt64 && b == DataType::kInt64;
}

int64_t ApplyArithInt(ArithOp op, int64_t a, int64_t b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    case ArithOp::kMul:
      return a * b;
    case ArithOp::kMod:
      return b == 0 ? 0 : a % b;
    case ArithOp::kDiv:
      break;
  }
  return 0;
}

}  // namespace

Result<ColumnPtr> Arith(const Column& lhs, ArithOp op, const Scalar& rhs) {
  const size_t n = lhs.size();
  if ((lhs.type() == DataType::kString ||
       lhs.type() == DataType::kCategory) &&
      op == ArithOp::kAdd && rhs.type() == DataType::kString) {
    // String concatenation.
    std::vector<std::string> out(n);
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (lhs.IsValid(i)) out[i] = lhs.StringAt(i) + rhs.string_value();
      }
      return Status::OK();
    }));
    return Column::MakeString(std::move(out), lhs.validity(), lhs.tracker());
  }
  if (!IsNumeric(lhs.type())) {
    return Status::TypeError("arithmetic on non-numeric column");
  }
  if (rhs.is_null()) {
    return Column::MakeDouble(std::vector<double>(n, std::nan("")),
                              std::vector<uint8_t>(n, 0), lhs.tracker());
  }
  if (BothIntsStayInt(op, lhs.type(),
                      rhs.type() == DataType::kInt64 ? DataType::kInt64
                                                     : DataType::kDouble)) {
    std::vector<int64_t> out(n);
    int64_t r = rhs.int_value();
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = ApplyArithInt(op, lhs.IntAt(i), r);
      }
      return Status::OK();
    }));
    return Column::MakeInt(std::move(out), lhs.validity(), lhs.tracker());
  }
  LAFP_ASSIGN_OR_RETURN(double r, rhs.AsDouble());
  std::vector<double> out(n);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!lhs.IsValid(i)) {
        out[i] = std::nan("");
        continue;
      }
      LAFP_ASSIGN_OR_RETURN(double a, lhs.NumericAt(i));
      out[i] = ApplyArith(op, a, r);
    }
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), lhs.validity(), lhs.tracker());
}

Result<ColumnPtr> ArithScalarLeft(const Scalar& lhs, ArithOp op,
                                  const Column& rhs) {
  const size_t n = rhs.size();
  if (!IsNumeric(rhs.type())) {
    return Status::TypeError("arithmetic on non-numeric column");
  }
  if (lhs.is_null()) {
    return Column::MakeDouble(std::vector<double>(n, std::nan("")),
                              std::vector<uint8_t>(n, 0), rhs.tracker());
  }
  LAFP_ASSIGN_OR_RETURN(double l, lhs.AsDouble());
  std::vector<double> out(n);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!rhs.IsValid(i)) {
        out[i] = std::nan("");
        continue;
      }
      LAFP_ASSIGN_OR_RETURN(double b, rhs.NumericAt(i));
      out[i] = ApplyArith(op, l, b);
    }
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), rhs.validity(), rhs.tracker());
}

Result<ColumnPtr> ArithColumns(const Column& lhs, ArithOp op,
                               const Column& rhs) {
  if (lhs.size() != rhs.size()) {
    return Status::Invalid("arith: length mismatch");
  }
  const size_t n = lhs.size();
  if ((lhs.type() == DataType::kString ||
       lhs.type() == DataType::kCategory) &&
      (rhs.type() == DataType::kString ||
       rhs.type() == DataType::kCategory) &&
      op == ArithOp::kAdd) {
    std::vector<std::string> out(n);
    std::vector<uint8_t> validity;
    bool any_null = lhs.has_nulls() || rhs.has_nulls();
    if (any_null) validity.assign(n, 1);
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (!lhs.IsValid(i) || !rhs.IsValid(i)) {
          if (any_null) validity[i] = 0;
          continue;
        }
        out[i] = lhs.StringAt(i) + rhs.StringAt(i);
      }
      return Status::OK();
    }));
    return Column::MakeString(std::move(out), std::move(validity),
                              lhs.tracker());
  }
  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::TypeError("arithmetic on non-numeric columns");
  }
  if (BothIntsStayInt(op, lhs.type(), rhs.type()) && !lhs.has_nulls() &&
      !rhs.has_nulls()) {
    std::vector<int64_t> out(n);
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = ApplyArithInt(op, lhs.IntAt(i), rhs.IntAt(i));
      }
      return Status::OK();
    }));
    return Column::MakeInt(std::move(out), {}, lhs.tracker());
  }
  std::vector<double> out(n);
  std::vector<uint8_t> validity;
  if (lhs.has_nulls() || rhs.has_nulls()) validity.assign(n, 1);
  LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!lhs.IsValid(i) || !rhs.IsValid(i)) {
        out[i] = std::nan("");
        if (!validity.empty()) validity[i] = 0;
        continue;
      }
      LAFP_ASSIGN_OR_RETURN(double a, lhs.NumericAt(i));
      LAFP_ASSIGN_OR_RETURN(double b, rhs.NumericAt(i));
      out[i] = ApplyArith(op, a, b);
    }
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), std::move(validity),
                            lhs.tracker());
}

Result<ColumnPtr> Abs(const Column& col) {
  switch (col.type()) {
    case DataType::kInt64: {
      std::vector<int64_t> out(col.size());
      LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out[i] = std::abs(col.IntAt(i));
        return Status::OK();
      }));
      return Column::MakeInt(std::move(out), col.validity(), col.tracker());
    }
    case DataType::kDouble: {
      std::vector<double> out(col.size());
      LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out[i] = std::fabs(col.DoubleAt(i));
        return Status::OK();
      }));
      return Column::MakeDouble(std::move(out), col.validity(),
                                col.tracker());
    }
    default:
      return Status::TypeError("abs on non-numeric column");
  }
}

Result<ColumnPtr> Round(const Column& col, int digits) {
  if (col.type() == DataType::kInt64) {
    return Column::MakeInt(col.ints(), col.validity(), col.tracker());
  }
  if (col.type() != DataType::kDouble) {
    return Status::TypeError("round on non-numeric column");
  }
  double scale = std::pow(10.0, digits);
  std::vector<double> out(col.size());
  LAFP_RETURN_NOT_OK(RunMorsels(col.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      out[i] = std::round(col.DoubleAt(i) * scale) / scale;
    }
    return Status::OK();
  }));
  return Column::MakeDouble(std::move(out), col.validity(), col.tracker());
}

Result<ColumnPtr> FillNaColumn(const Column& col, const Scalar& value) {
  ColumnBuilder builder(col.type() == DataType::kCategory
                            ? DataType::kString
                            : col.type(),
                        col.tracker());
  builder.Reserve(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    bool null = !col.IsValid(i);
    if (!null && col.type() == DataType::kDouble &&
        std::isnan(col.DoubleAt(i))) {
      null = true;
    }
    if (null) {
      LAFP_RETURN_NOT_OK(builder.AppendScalar(value));
    } else {
      builder.AppendFrom(col, i);
    }
  }
  return builder.Finish();
}

Result<DataFrame> FillNa(const DataFrame& df, const Scalar& value) {
  std::vector<ColumnPtr> cols;
  cols.reserve(df.num_columns());
  for (size_t i = 0; i < df.num_columns(); ++i) {
    const Column& c = *df.column(i);
    bool scalar_compatible =
        value.is_null() ||
        (IsNumeric(c.type()) && IsNumeric(value.type())) ||
        ((c.type() == DataType::kString || c.type() == DataType::kCategory) &&
         value.type() == DataType::kString);
    bool needs_fill =
        scalar_compatible &&
        (c.has_nulls() || c.type() == DataType::kDouble);
    if (!needs_fill) {
      // pandas fillna returns a copy of the whole frame; untouched
      // columns are duplicated too (their footprint is re-charged).
      LAFP_ASSIGN_OR_RETURN(ColumnPtr copy, c.Slice(0, c.size()));
      cols.push_back(std::move(copy));
      continue;
    }
    LAFP_ASSIGN_OR_RETURN(ColumnPtr filled, FillNaColumn(c, value));
    cols.push_back(std::move(filled));
  }
  return DataFrame::Make(df.names(), std::move(cols));
}

Result<DataFrame> DropNa(const DataFrame& df) {
  std::vector<int64_t> keep;
  for (size_t r = 0; r < df.num_rows(); ++r) {
    bool any_null = false;
    for (size_t c = 0; c < df.num_columns(); ++c) {
      const Column& col = *df.column(c);
      if (!col.IsValid(r) || (col.type() == DataType::kDouble &&
                              std::isnan(col.DoubleAt(r)))) {
        any_null = true;
        break;
      }
    }
    if (!any_null) keep.push_back(static_cast<int64_t>(r));
  }
  return df.TakeRows(keep);
}

Result<ColumnPtr> AsType(const Column& col, DataType to) {
  if (col.type() == to) {
    // Rebuild (cheap) to keep the immutability contract simple.
    return col.Slice(0, col.size());
  }
  MemoryTracker* tracker = col.tracker();
  if (to == DataType::kCategory) return CategorizeStrings(col, tracker);
  if (col.type() == DataType::kCategory) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr strs, DecategorizeToStrings(col, tracker));
    if (to == DataType::kString) return strs;
    return AsType(*strs, to);
  }
  if (to == DataType::kTimestamp) return ToDatetime(col);
  if (to == DataType::kString) {
    std::vector<std::string> out(col.size());
    for (size_t i = 0; i < col.size(); ++i) {
      if (col.IsValid(i)) out[i] = col.ValueString(i);
    }
    return Column::MakeString(std::move(out), col.validity(), tracker);
  }
  if (col.type() == DataType::kString) {
    // Parse; failures become null.
    ColumnBuilder builder(to, tracker);
    builder.Reserve(col.size());
    for (size_t i = 0; i < col.size(); ++i) {
      if (!col.IsValid(i)) {
        builder.AppendNull();
        continue;
      }
      auto parsed = ParseDouble(col.StringAt(i));
      if (!parsed.has_value()) {
        builder.AppendNull();
        continue;
      }
      if (to == DataType::kInt64) {
        builder.AppendInt(static_cast<int64_t>(*parsed));
      } else if (to == DataType::kDouble) {
        builder.AppendDouble(*parsed);
      } else if (to == DataType::kBool) {
        builder.AppendBool(*parsed != 0.0);
      } else {
        return Status::TypeError("unsupported cast target");
      }
    }
    return builder.Finish();
  }
  // Numeric to numeric.
  ColumnBuilder builder(to, tracker);
  builder.Reserve(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsValid(i)) {
      builder.AppendNull();
      continue;
    }
    LAFP_ASSIGN_OR_RETURN(double v, col.NumericAt(i));
    switch (to) {
      case DataType::kInt64:
        builder.AppendInt(static_cast<int64_t>(v));
        break;
      case DataType::kDouble:
        builder.AppendDouble(v);
        break;
      case DataType::kBool:
        builder.AppendBool(v != 0.0);
        break;
      default:
        return Status::TypeError("unsupported cast target");
    }
  }
  return builder.Finish();
}

}  // namespace lafp::df
