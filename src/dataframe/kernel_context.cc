#include "dataframe/kernel_context.h"

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace lafp::df {

namespace {

thread_local const KernelContext* tls_context = nullptr;
thread_local KernelCounters* tls_counters = nullptr;

const KernelContext& SerialContext() {
  static const KernelContext serial;
  return serial;
}

}  // namespace

KernelContext::KernelContext(ThreadPool* pool, int num_threads,
                             size_t morsel_rows)
    : pool_(num_threads > 1 ? pool : nullptr),
      num_threads_(num_threads > 1 ? num_threads : 1),
      morsel_rows_(morsel_rows > 0 ? morsel_rows : kDefaultMorselRows) {}

const KernelContext& KernelContext::Current() {
  return tls_context != nullptr ? *tls_context : SerialContext();
}

KernelScope::KernelScope(const KernelContext* ctx) : prev_(tls_context) {
  tls_context = ctx;
}

KernelScope::~KernelScope() { tls_context = prev_; }

KernelCountersScope::KernelCountersScope(KernelCounters* sink)
    : prev_(tls_counters) {
  tls_counters = sink;
}

KernelCountersScope::~KernelCountersScope() { tls_counters = prev_; }

void MergeIntoCurrentSink(const KernelCounters& c) {
  if (tls_counters != nullptr) tls_counters->Merge(c);
}

size_t NumMorsels(size_t n) {
  if (n == 0) return 0;
  const size_t morsel = KernelContext::Current().morsel_rows();
  if (morsel == 0) return 1;  // serial context: one morsel spans all rows
  return (n + morsel - 1) / morsel;
}

Status RunMorsels(size_t n,
                  const std::function<Status(size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  const KernelContext& ctx = KernelContext::Current();
  const size_t chunks = NumMorsels(n);
  // Disabled-tracer cost here is one relaxed load (Span stays inert).
  trace::Span span("kernel", "kernel");
  Timer timer;
  Status status;
  bool forked = false;
  if (chunks == 1) {
    status = body(0, n);
  } else {
    const int64_t grain = static_cast<int64_t>(ctx.morsel_rows());
    forked = ctx.parallel();
    status = ParallelForStatus(
        forked ? ctx.pool() : nullptr, int64_t{0}, static_cast<int64_t>(n),
        grain, [&body](int64_t begin, int64_t end) {
          return body(static_cast<size_t>(begin), static_cast<size_t>(end));
        });
    if (forked && tls_counters != nullptr) ++tls_counters->parallel_kernels;
  }
  const int64_t elapsed = timer.ElapsedMicros();
  if (tls_counters != nullptr) {
    tls_counters->morsels += static_cast<int64_t>(chunks);
    tls_counters->kernel_micros += elapsed;
  }
  if (span.active()) {
    span.AddArg("morsels", static_cast<int64_t>(chunks));
    span.AddArg("rows", static_cast<int64_t>(n));
    span.AddArg("parallel", forked ? 1 : 0);
    static auto* morsel_counter =
        metrics::Registry::Global()->GetCounter("kernel.morsels");
    static auto* kernel_hist =
        metrics::Registry::Global()->GetHistogram("kernel.micros");
    morsel_counter->Add(static_cast<int64_t>(chunks));
    kernel_hist->Observe(elapsed);
  }
  return status;
}

}  // namespace lafp::df
