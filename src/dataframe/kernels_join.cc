#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "dataframe/ops.h"
#include "dataframe/row_key.h"

namespace lafp::df {

namespace {

/// Build an output column by taking `indices` from `src`, where -1 emits a
/// null (the unmatched side of a left join).
Result<ColumnPtr> TakeWithNulls(const Column& src,
                                const std::vector<int64_t>& indices) {
  DataType t = src.type();
  if (t == DataType::kCategory) t = DataType::kString;
  ColumnBuilder builder(t, src.tracker());
  builder.Reserve(indices.size());
  for (int64_t idx : indices) {
    if (idx < 0) {
      builder.AppendNull();
    } else {
      builder.AppendFrom(src, static_cast<size_t>(idx));
    }
  }
  return builder.Finish();
}

}  // namespace

Result<DataFrame> Merge(const DataFrame& left, const DataFrame& right,
                        const std::vector<std::string>& on, JoinType how) {
  if (on.empty()) return Status::Invalid("merge requires key columns");
  std::vector<const Column*> lkeys, rkeys;
  for (const auto& k : on) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr lc, left.column(k));
    LAFP_ASSIGN_OR_RETURN(ColumnPtr rc, right.column(k));
    lkeys.push_back(lc.get());
    rkeys.push_back(rc.get());
  }

  // Build phase on the right side. The hash table is charged against the
  // budget while the join runs (large build sides OOM, matching pandas).
  ScopedReservation scratch;
  LAFP_RETURN_NOT_OK(ScopedReservation::Make(
      right.tracker(), static_cast<int64_t>(right.num_rows()) * 56,
      &scratch));
  std::unordered_map<std::string, std::vector<int64_t>> table;
  table.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    table[internal::RowKey(rkeys, r)].push_back(static_cast<int64_t>(r));
  }

  // Probe phase streaming the left side.
  std::vector<int64_t> left_idx, right_idx;
  for (size_t r = 0; r < left.num_rows(); ++r) {
    auto it = table.find(internal::RowKey(lkeys, r));
    if (it == table.end()) {
      if (how == JoinType::kLeft) {
        left_idx.push_back(static_cast<int64_t>(r));
        right_idx.push_back(-1);
      }
      continue;
    }
    for (int64_t rr : it->second) {
      left_idx.push_back(static_cast<int64_t>(r));
      right_idx.push_back(rr);
    }
  }

  // Column naming: keys once, then left non-keys, then right non-keys;
  // overlapping non-key names get _x/_y suffixes (pandas default).
  auto is_key = [&](const std::string& n) {
    return std::find(on.begin(), on.end(), n) != on.end();
  };
  std::vector<std::string> out_names;
  std::vector<ColumnPtr> out_cols;
  for (const auto& k : on) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, left.column(k));
    LAFP_ASSIGN_OR_RETURN(ColumnPtr taken, c->Take(left_idx));
    out_names.push_back(k);
    out_cols.push_back(std::move(taken));
  }
  for (size_t i = 0; i < left.num_columns(); ++i) {
    const std::string& n = left.names()[i];
    if (is_key(n)) continue;
    std::string out_name = right.HasColumn(n) ? n + "_x" : n;
    LAFP_ASSIGN_OR_RETURN(ColumnPtr taken, left.column(i)->Take(left_idx));
    out_names.push_back(std::move(out_name));
    out_cols.push_back(std::move(taken));
  }
  for (size_t i = 0; i < right.num_columns(); ++i) {
    const std::string& n = right.names()[i];
    if (is_key(n)) continue;
    std::string out_name = left.HasColumn(n) ? n + "_y" : n;
    LAFP_ASSIGN_OR_RETURN(ColumnPtr taken,
                          TakeWithNulls(*right.column(i), right_idx));
    out_names.push_back(std::move(out_name));
    out_cols.push_back(std::move(taken));
  }
  return DataFrame::Make(std::move(out_names), std::move(out_cols));
}

Result<DataFrame> Concat(const std::vector<DataFrame>& frames) {
  if (frames.empty()) return DataFrame();
  const DataFrame& first = frames[0];
  for (const auto& f : frames) {
    if (f.names() != first.names()) {
      return Status::Invalid("concat: schema mismatch");
    }
  }
  std::vector<std::string> out_names = first.names();
  std::vector<ColumnPtr> out_cols;
  for (size_t c = 0; c < first.num_columns(); ++c) {
    DataType t = first.column(c)->type();
    // Widen int+double mixes to double; strings/categories to string.
    for (const auto& f : frames) {
      DataType ft = f.column(c)->type();
      if (ft == t) continue;
      if (IsNumeric(ft) && IsNumeric(t)) {
        t = DataType::kDouble;
      } else if ((ft == DataType::kCategory && t == DataType::kString) ||
                 (ft == DataType::kString && t == DataType::kCategory)) {
        t = DataType::kString;
      } else {
        return Status::TypeError("concat: column '" + out_names[c] +
                                 "' type mismatch");
      }
    }
    if (t == DataType::kCategory) t = DataType::kString;
    ColumnBuilder builder(t, first.tracker());
    size_t total = 0;
    for (const auto& f : frames) total += f.num_rows();
    builder.Reserve(total);
    for (const auto& f : frames) {
      const Column& src = *f.column(c);
      if (src.type() == t ||
          (t == DataType::kString && src.type() == DataType::kCategory)) {
        for (size_t r = 0; r < src.size(); ++r) {
          if (t == DataType::kString && src.type() == DataType::kCategory) {
            if (!src.IsValid(r)) {
              builder.AppendNull();
            } else {
              builder.AppendString(src.StringAt(r));
            }
          } else {
            builder.AppendFrom(src, r);
          }
        }
      } else {
        // Numeric widening path.
        for (size_t r = 0; r < src.size(); ++r) {
          if (!src.IsValid(r)) {
            builder.AppendNull();
            continue;
          }
          LAFP_ASSIGN_OR_RETURN(double v, src.NumericAt(r));
          builder.AppendDouble(v);
        }
      }
    }
    LAFP_ASSIGN_OR_RETURN(ColumnPtr col, builder.Finish());
    out_cols.push_back(std::move(col));
  }
  return DataFrame::Make(std::move(out_names), std::move(out_cols));
}

}  // namespace lafp::df
