#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "dataframe/arith_semantics.h"
#include "dataframe/kahan.h"
#include "dataframe/kernel_context.h"
#include "dataframe/ops.h"
#include "dataframe/row_key.h"

namespace lafp::df {

namespace {

/// Streaming accumulator for one aggregate over one group.
struct AggState {
  KahanSum sum;
  int64_t isum = 0;
  int64_t count = 0;  // non-null count
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
  std::string smin, smax;
  bool has_str = false;
  std::unordered_set<std::string> distinct;
};

bool IsStringy(DataType t) {
  return t == DataType::kString || t == DataType::kCategory;
}

// Approximate per-row cost of a hash table keyed by encoded row keys
// (node + key string), matching pandas' transient groupby/dedup footprint.
constexpr int64_t kHashScratchBytesPerRow = 48;

void Accumulate(AggState* st, AggFunc func, const Column& col, size_t row) {
  if (!col.IsValid(row)) return;
  if (func == AggFunc::kNunique) {
    std::string key;
    internal::AppendRowKey(col, row, &key);
    st->distinct.insert(std::move(key));
    return;
  }
  if (IsStringy(col.type())) {
    const std::string& s = col.StringAt(row);
    if (func == AggFunc::kCount) {
      ++st->count;
      return;
    }
    if (!st->has_str) {
      st->smin = st->smax = s;
      st->has_str = true;
    } else {
      if (s < st->smin) st->smin = s;
      if (s > st->smax) st->smax = s;
    }
    ++st->count;
    return;
  }
  double v;
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      // NumPy int64 sum wraps; plain += would be signed-overflow UB.
      st->isum = WrapAdd(st->isum, col.IntAt(row));
      v = static_cast<double>(col.IntAt(row));
      break;
    case DataType::kDouble:
      v = col.DoubleAt(row);
      if (std::isnan(v)) return;  // pandas skipna
      break;
    case DataType::kBool:
      v = col.BoolAt(row) ? 1.0 : 0.0;
      st->isum += col.BoolAt(row) ? 1 : 0;
      break;
    default:
      return;
  }
  st->sum.Add(v);
  ++st->count;
  if (v < st->dmin) st->dmin = v;
  if (v > st->dmax) st->dmax = v;
}

/// Accumulate rows [begin, end) of `col` into `st`: the Reduce hot loop
/// with the type switch and validity dispatch hoisted out of the inner
/// loop. Row order and the per-row operations match Accumulate exactly
/// (same Kahan add sequence, same min/max comparisons), so the resulting
/// state is bit-identical to the per-row path. Numeric columns accumulate
/// the same fields for every AggFunc (EmitAgg picks what it needs), so
/// the loop is func-independent; string/nunique fall back per row.
void AccumulateRange(AggState* st, AggFunc func, const Column& col,
                     size_t begin, size_t end) {
  if (func != AggFunc::kNunique && !IsStringy(col.type())) {
    const uint8_t* valid = col.validity_data();
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp: {
        const int64_t* vals = col.int_data();
        for (size_t i = begin; i < end; ++i) {
          if (valid != nullptr && valid[i] == 0) continue;
          st->isum = WrapAdd(st->isum, vals[i]);
          const double v = static_cast<double>(vals[i]);
          st->sum.Add(v);
          ++st->count;
          if (v < st->dmin) st->dmin = v;
          if (v > st->dmax) st->dmax = v;
        }
        return;
      }
      case DataType::kDouble: {
        const double* vals = col.double_data();
        for (size_t i = begin; i < end; ++i) {
          if (valid != nullptr && valid[i] == 0) continue;
          const double v = vals[i];
          if (std::isnan(v)) continue;  // pandas skipna
          st->sum.Add(v);
          ++st->count;
          if (v < st->dmin) st->dmin = v;
          if (v > st->dmax) st->dmax = v;
        }
        return;
      }
      case DataType::kBool: {
        const uint8_t* vals = col.bool_data();
        for (size_t i = begin; i < end; ++i) {
          if (valid != nullptr && valid[i] == 0) continue;
          const double v = vals[i] != 0 ? 1.0 : 0.0;
          st->isum += vals[i] != 0 ? 1 : 0;
          st->sum.Add(v);
          ++st->count;
          if (v < st->dmin) st->dmin = v;
          if (v > st->dmax) st->dmax = v;
        }
        return;
      }
      default:
        return;  // mirrors Accumulate's default: nothing to do
    }
  }
  for (size_t i = begin; i < end; ++i) Accumulate(st, func, col, i);
}

/// Fold a morsel-partial accumulator into `into`. Called serially in fixed
/// morsel order, so the merged state (including the Kahan compensation) is a
/// pure function of the morsel geometry, never of the thread count.
void MergeState(AggState* into, AggState* from) {
  into->sum.MergeFrom(from->sum);
  into->isum += from->isum;
  into->count += from->count;
  into->dmin = std::min(into->dmin, from->dmin);
  into->dmax = std::max(into->dmax, from->dmax);
  if (from->has_str) {
    if (!into->has_str) {
      into->smin = std::move(from->smin);
      into->smax = std::move(from->smax);
      into->has_str = true;
    } else {
      if (from->smin < into->smin) into->smin = std::move(from->smin);
      if (from->smax > into->smax) into->smax = std::move(from->smax);
    }
  }
  if (into->distinct.empty()) {
    into->distinct.swap(from->distinct);
  } else {
    for (auto& key : from->distinct) into->distinct.insert(key);
  }
}

/// Output column type for an aggregate over a source column type.
DataType AggOutputType(AggFunc func, DataType src) {
  switch (func) {
    case AggFunc::kCount:
    case AggFunc::kNunique:
      return DataType::kInt64;
    case AggFunc::kMean:
      return DataType::kDouble;
    case AggFunc::kSum:
      return (src == DataType::kInt64 || src == DataType::kBool)
                 ? DataType::kInt64
                 : DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (IsStringy(src)) return DataType::kString;
      return src == DataType::kDouble ? DataType::kDouble : src;
  }
  return DataType::kDouble;
}

Status EmitAgg(ColumnBuilder* builder, const AggState& st, AggFunc func,
               DataType src) {
  switch (func) {
    case AggFunc::kCount:
      builder->AppendInt(st.count);
      return Status::OK();
    case AggFunc::kNunique:
      builder->AppendInt(static_cast<int64_t>(st.distinct.size()));
      return Status::OK();
    case AggFunc::kSum:
      if (builder->type() == DataType::kInt64) {
        builder->AppendInt(st.isum);
      } else {
        builder->AppendDouble(st.sum.Total());
      }
      return Status::OK();
    case AggFunc::kMean:
      if (st.count == 0) {
        builder->AppendNull();
      } else {
        builder->AppendDouble(st.sum.Total() / static_cast<double>(st.count));
      }
      return Status::OK();
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (IsStringy(src)) {
        if (!st.has_str) {
          builder->AppendNull();
        } else {
          builder->AppendString(func == AggFunc::kMin ? st.smin : st.smax);
        }
        return Status::OK();
      }
      if (st.count == 0) {
        builder->AppendNull();
        return Status::OK();
      }
      double v = func == AggFunc::kMin ? st.dmin : st.dmax;
      if (builder->type() == DataType::kDouble) {
        builder->AppendDouble(v);
      } else {
        builder->AppendInt(static_cast<int64_t>(v));
      }
      return Status::OK();
    }
  }
  return Status::Invalid("bad aggregate");
}

}  // namespace

Result<Scalar> Reduce(const Column& col, AggFunc func) {
  const size_t n = col.size();
  AggState st;
  if (NumMorsels(n) <= 1) {
    // Single morsel: the legacy sequential accumulation, byte-for-byte.
    AccumulateRange(&st, func, col, 0, n);
  } else {
    // Partial aggregate per morsel, merged serially in morsel order. The
    // morsel boundaries depend only on (n, morsel_rows), so the result is
    // bit-identical across thread counts.
    const size_t morsel_rows = KernelContext::Current().morsel_rows();
    std::vector<AggState> partials(NumMorsels(n));
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      AccumulateRange(&partials[begin / morsel_rows], func, col, begin, end);
      return Status::OK();
    }));
    st = std::move(partials[0]);
    for (size_t m = 1; m < partials.size(); ++m) {
      MergeState(&st, &partials[m]);
    }
  }
  switch (func) {
    case AggFunc::kCount:
      return Scalar::Int(st.count);
    case AggFunc::kNunique:
      return Scalar::Int(static_cast<int64_t>(st.distinct.size()));
    case AggFunc::kSum:
      if (col.type() == DataType::kInt64 || col.type() == DataType::kBool) {
        return Scalar::Int(st.isum);
      }
      if (!IsNumeric(col.type())) {
        return Status::TypeError("sum on non-numeric column");
      }
      return Scalar::Double(st.sum.Total());
    case AggFunc::kMean:
      if (!IsNumeric(col.type())) {
        return Status::TypeError("mean on non-numeric column");
      }
      if (st.count == 0) return Scalar::Null();
      return Scalar::Double(st.sum.Total() / static_cast<double>(st.count));
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (IsStringy(col.type())) {
        if (!st.has_str) return Scalar::Null();
        return Scalar::String(func == AggFunc::kMin ? st.smin : st.smax);
      }
      if (st.count == 0) return Scalar::Null();
      double v = func == AggFunc::kMin ? st.dmin : st.dmax;
      if (col.type() == DataType::kInt64) {
        return Scalar::Int(static_cast<int64_t>(v));
      }
      if (col.type() == DataType::kTimestamp) {
        return Scalar::Timestamp(static_cast<int64_t>(v));
      }
      return Scalar::Double(v);
    }
  }
  return Status::Invalid("bad aggregate");
}

Result<DataFrame> GroupByAgg(const DataFrame& df,
                             const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs) {
  if (keys.empty()) return Status::Invalid("groupby requires key columns");
  std::vector<const Column*> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& k : keys) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, df.column(k));
    key_cols.push_back(c.get());
  }
  std::vector<const Column*> agg_cols;
  agg_cols.reserve(aggs.size());
  for (const auto& spec : aggs) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, df.column(spec.column));
    agg_cols.push_back(c.get());
  }

  // Hash-aggregation scratch space is charged against the budget for the
  // duration of the kernel: whole-frame group-bys on huge inputs are a
  // real OOM source that partitioned two-phase aggregation avoids.
  ScopedReservation scratch;
  LAFP_RETURN_NOT_OK(ScopedReservation::Make(
      df.tracker(),
      static_cast<int64_t>(df.num_rows()) * kHashScratchBytesPerRow,
      &scratch));

  // Group discovery: composite key -> dense group id.
  std::unordered_map<std::string, size_t> group_ids;
  std::vector<int64_t> representative_row;  // first row of each group
  std::vector<std::vector<AggState>> states;  // [group][agg]
  const size_t n = df.num_rows();
  if (NumMorsels(n) <= 1) {
    // Single morsel: the legacy sequential hash-aggregation, byte-for-byte.
    for (size_t r = 0; r < n; ++r) {
      std::string key = internal::RowKey(key_cols, r);
      auto [it, inserted] = group_ids.emplace(std::move(key), states.size());
      if (inserted) {
        representative_row.push_back(static_cast<int64_t>(r));
        states.emplace_back(aggs.size());
      }
      auto& group_states = states[it->second];
      for (size_t a = 0; a < aggs.size(); ++a) {
        Accumulate(&group_states[a], aggs[a].func, *agg_cols[a], r);
      }
    }
  } else {
    // Each morsel builds a private hash table over its row range; the
    // partials are then merged serially in morsel order, which reproduces
    // the global first-appearance group order (a group's first morsel is
    // visited first, and within a morsel insertion order is row order) and
    // keeps every per-group state a pure function of the morsel geometry.
    struct LocalGroups {
      std::unordered_map<std::string, size_t> ids;
      std::vector<const std::string*> key_in_order;  // stable map-node keys
      std::vector<int64_t> first_row;
      std::vector<std::vector<AggState>> states;
    };
    const size_t morsel_rows = KernelContext::Current().morsel_rows();
    std::vector<LocalGroups> locals(NumMorsels(n));
    LAFP_RETURN_NOT_OK(RunMorsels(n, [&](size_t begin, size_t end) {
      LocalGroups& loc = locals[begin / morsel_rows];
      for (size_t r = begin; r < end; ++r) {
        std::string key = internal::RowKey(key_cols, r);
        auto [it, inserted] = loc.ids.emplace(std::move(key),
                                              loc.states.size());
        if (inserted) {
          loc.key_in_order.push_back(&it->first);
          loc.first_row.push_back(static_cast<int64_t>(r));
          loc.states.emplace_back(aggs.size());
        }
        auto& group_states = loc.states[it->second];
        for (size_t a = 0; a < aggs.size(); ++a) {
          Accumulate(&group_states[a], aggs[a].func, *agg_cols[a], r);
        }
      }
      return Status::OK();
    }));
    for (auto& loc : locals) {
      for (size_t g = 0; g < loc.states.size(); ++g) {
        auto [it, inserted] =
            group_ids.emplace(*loc.key_in_order[g], states.size());
        if (inserted) {
          representative_row.push_back(loc.first_row[g]);
          states.push_back(std::move(loc.states[g]));
        } else {
          auto& dst = states[it->second];
          for (size_t a = 0; a < aggs.size(); ++a) {
            MergeState(&dst[a], &loc.states[g][a]);
          }
        }
      }
    }
  }

  std::vector<std::string> out_names;
  std::vector<ColumnPtr> out_cols;
  // Key columns: gather representative rows.
  for (size_t k = 0; k < keys.size(); ++k) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr keyed,
                          key_cols[k]->Take(representative_row));
    out_names.push_back(keys[k]);
    out_cols.push_back(std::move(keyed));
  }
  // Aggregate output columns.
  for (size_t a = 0; a < aggs.size(); ++a) {
    DataType out_type = AggOutputType(aggs[a].func, agg_cols[a]->type());
    ColumnBuilder builder(out_type, df.tracker());
    builder.Reserve(states.size());
    for (const auto& group_states : states) {
      LAFP_RETURN_NOT_OK(EmitAgg(&builder, group_states[a], aggs[a].func,
                                 agg_cols[a]->type()));
    }
    LAFP_ASSIGN_OR_RETURN(ColumnPtr out, builder.Finish());
    out_names.push_back(aggs[a].out_name);
    out_cols.push_back(std::move(out));
  }
  return DataFrame::Make(std::move(out_names), std::move(out_cols));
}

Result<DataFrame> DropDuplicates(const DataFrame& df,
                                 const std::vector<std::string>& subset) {
  std::vector<const Column*> key_cols;
  if (subset.empty()) {
    for (size_t i = 0; i < df.num_columns(); ++i) {
      key_cols.push_back(df.column(i).get());
    }
  } else {
    for (const auto& k : subset) {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr c, df.column(k));
      key_cols.push_back(c.get());
    }
  }
  ScopedReservation scratch;
  LAFP_RETURN_NOT_OK(ScopedReservation::Make(
      df.tracker(),
      static_cast<int64_t>(df.num_rows()) * kHashScratchBytesPerRow,
      &scratch));
  std::unordered_set<std::string> seen;
  std::vector<int64_t> keep;
  for (size_t r = 0; r < df.num_rows(); ++r) {
    std::string key = internal::RowKey(key_cols, r);
    if (seen.insert(std::move(key)).second) {
      keep.push_back(static_cast<int64_t>(r));
    }
  }
  return df.TakeRows(keep);
}

Result<ColumnPtr> Unique(const Column& col) {
  std::unordered_set<std::string> seen;
  std::vector<int64_t> keep;
  for (size_t r = 0; r < col.size(); ++r) {
    std::string key;
    internal::AppendRowKey(col, r, &key);
    if (seen.insert(std::move(key)).second) {
      keep.push_back(static_cast<int64_t>(r));
    }
  }
  return col.Take(keep);
}

Result<DataFrame> ValueCounts(const Column& col,
                              const std::string& value_name) {
  std::unordered_map<std::string, std::pair<int64_t, int64_t>>
      counts;  // key -> (first row, count)
  for (size_t r = 0; r < col.size(); ++r) {
    if (!col.IsValid(r)) continue;  // pandas value_counts drops NaN
    std::string key;
    internal::AppendRowKey(col, r, &key);
    auto [it, inserted] =
        counts.emplace(std::move(key),
                       std::make_pair(static_cast<int64_t>(r), int64_t{0}));
    ++it->second.second;
  }
  std::vector<std::pair<int64_t, int64_t>> rows(counts.size());
  size_t i = 0;
  for (const auto& [_, rc] : counts) rows[i++] = rc;
  // Descending count; ties by first appearance for determinism.
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<int64_t> take(rows.size());
  std::vector<int64_t> cnts(rows.size());
  for (size_t k = 0; k < rows.size(); ++k) {
    take[k] = rows[k].first;
    cnts[k] = rows[k].second;
  }
  LAFP_ASSIGN_OR_RETURN(ColumnPtr values, col.Take(take));
  LAFP_ASSIGN_OR_RETURN(
      ColumnPtr count_col,
      Column::MakeInt(std::move(cnts), {}, col.tracker()));
  return DataFrame::Make({value_name, "count"},
                         {std::move(values), std::move(count_col)});
}

Result<DataFrame> Describe(const DataFrame& df) {
  std::vector<std::string> out_names{"stat"};
  std::vector<ColumnPtr> out_cols;
  std::vector<std::string> stats{"count", "mean", "std", "min", "max"};
  {
    ColumnBuilder stat_col(DataType::kString, df.tracker());
    for (const auto& s : stats) stat_col.AppendString(s);
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, stat_col.Finish());
    out_cols.push_back(std::move(c));
  }
  for (size_t i = 0; i < df.num_columns(); ++i) {
    const Column& col = *df.column(i);
    if (!IsNumeric(col.type())) continue;
    KahanSum sum, sumsq;
    int64_t count = 0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsValid(r)) continue;
      LAFP_ASSIGN_OR_RETURN(double v, col.NumericAt(r));
      if (std::isnan(v)) continue;
      sum.Add(v);
      sumsq.Add(v * v);
      ++count;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    double total = sum.Total();
    double total_sq = sumsq.Total();
    double mean = count > 0 ? total / count : std::nan("");
    double var =
        count > 1
            ? std::max(0.0, (total_sq - total * total / count) / (count - 1))
            : std::nan("");
    ColumnBuilder b(DataType::kDouble, df.tracker());
    b.AppendDouble(static_cast<double>(count));
    b.AppendDouble(mean);
    b.AppendDouble(count > 1 ? std::sqrt(var) : std::nan(""));
    b.AppendDouble(count > 0 ? mn : std::nan(""));
    b.AppendDouble(count > 0 ? mx : std::nan(""));
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, b.Finish());
    out_names.push_back(df.names()[i]);
    out_cols.push_back(std::move(c));
  }
  return DataFrame::Make(std::move(out_names), std::move(out_cols));
}

}  // namespace lafp::df
