#include "dataframe/dataframe.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/macros.h"

namespace lafp::df {

Result<DataFrame> DataFrame::Make(std::vector<std::string> names,
                                  std::vector<ColumnPtr> columns) {
  if (names.size() != columns.size()) {
    return Status::Invalid("names/columns arity mismatch");
  }
  std::unordered_set<std::string> seen;
  for (const auto& n : names) {
    if (!seen.insert(n).second) {
      return Status::Invalid("duplicate column name: " + n);
    }
  }
  for (size_t i = 1; i < columns.size(); ++i) {
    if (columns[i]->size() != columns[0]->size()) {
      return Status::Invalid("column length mismatch at '" + names[i] + "'");
    }
  }
  DataFrame out;
  out.names_ = std::move(names);
  out.columns_ = std::move(columns);
  return out;
}

int DataFrame::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<ColumnPtr> DataFrame::column(const std::string& name) const {
  int idx = ColumnIndex(name);
  if (idx < 0) return Status::KeyError("no column named '" + name + "'");
  return columns_[idx];
}

MemoryTracker* DataFrame::tracker() const {
  return columns_.empty() ? MemoryTracker::Default()
                          : columns_[0]->tracker();
}

Result<DataFrame> DataFrame::Select(
    const std::vector<std::string>& names) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(names.size());
  for (const auto& n : names) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr c, column(n));
    cols.push_back(std::move(c));
  }
  return Make(names, std::move(cols));
}

Result<DataFrame> DataFrame::WithColumn(const std::string& name,
                                        ColumnPtr column) const {
  if (!columns_.empty() && column->size() != num_rows()) {
    return Status::Invalid("setitem length mismatch for '" + name + "'");
  }
  DataFrame out = *this;
  int idx = ColumnIndex(name);
  if (idx >= 0) {
    out.columns_[idx] = std::move(column);
  } else {
    out.names_.push_back(name);
    out.columns_.push_back(std::move(column));
  }
  return out;
}

Result<DataFrame> DataFrame::Drop(
    const std::vector<std::string>& names) const {
  for (const auto& n : names) {
    if (!HasColumn(n)) return Status::KeyError("no column named '" + n + "'");
  }
  DataFrame out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (std::find(names.begin(), names.end(), names_[i]) != names.end()) {
      continue;
    }
    out.names_.push_back(names_[i]);
    out.columns_.push_back(columns_[i]);
  }
  return out;
}

Result<DataFrame> DataFrame::Rename(
    const std::map<std::string, std::string>& mapping) const {
  DataFrame out = *this;
  for (const auto& [from, to] : mapping) {
    int idx = ColumnIndex(from);
    if (idx < 0) continue;  // pandas ignores unknown keys
    out.names_[idx] = to;
  }
  // Re-validate uniqueness.
  std::unordered_set<std::string> seen;
  for (const auto& n : out.names_) {
    if (!seen.insert(n).second) {
      return Status::Invalid("rename produced duplicate column: " + n);
    }
  }
  return out;
}

Result<DataFrame> DataFrame::SliceRows(size_t offset, size_t length) const {
  length = std::min(length, num_rows() > offset ? num_rows() - offset : 0);
  std::vector<ColumnPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr sliced, c->Slice(offset, length));
    cols.push_back(std::move(sliced));
  }
  return Make(names_, std::move(cols));
}

Result<DataFrame> DataFrame::TakeRows(
    const std::vector<int64_t>& indices) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr taken, c->Take(indices));
    cols.push_back(std::move(taken));
  }
  return Make(names_, std::move(cols));
}

int64_t DataFrame::footprint_bytes() const {
  int64_t total = 0;
  for (const auto& c : columns_) total += c->footprint_bytes();
  return total;
}

std::string DataFrame::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) os << "  ";
    os << names_[i];
  }
  os << "\n";
  size_t n = num_rows();
  size_t shown = std::min(n, max_rows);
  for (size_t r = 0; r < shown; ++r) {
    os << r << ": ";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << "  ";
      os << columns_[c]->ValueString(r);
    }
    os << "\n";
  }
  if (shown < n) {
    os << "... [" << n << " rows x " << num_columns() << " columns]\n";
  }
  return os.str();
}

std::string DataFrame::CanonicalString(bool sort_rows) const {
  std::ostringstream header;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) header << ",";
    header << names_[i];
  }
  header << "\n";
  std::vector<std::string> rows(num_rows());
  for (size_t r = 0; r < num_rows(); ++r) {
    std::string& line = rows[r];
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) line += ",";
      line += columns_[c]->ValueString(r);
    }
  }
  if (sort_rows) std::sort(rows.begin(), rows.end());
  std::string out = header.str();
  for (const auto& line : rows) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace lafp::df
