#ifndef LAFP_TESTING_PROGEN_H_
#define LAFP_TESTING_PROGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/tablegen.h"

namespace lafp::testing {

struct ProgramGenOptions {
  /// Random statements between the reads and the checksum epilogue.
  int max_statements = 12;
  /// Emit if / for / while statements.
  bool control_flow = true;
  /// Upper bound on generated table rows (kept small: the oracle runs
  /// every program many times).
  int64_t max_rows = 120;
};

/// A generated differential-test case: PdScript source with "{tN}" path
/// placeholders plus the table specs that satisfy them.
struct GeneratedProgram {
  std::string source;
  std::vector<TableSpec> tables;
};

/// Draw a random well-typed PdScript program over the full supported
/// surface (read_csv, filter chains, isin, column assigns, dt accessors,
/// groupby/agg, merge, sort_values, head, concat, dropna/fillna,
/// drop_duplicates, len / series reductions, if/for/while, print) ending
/// with a checksum() of every live frame. Deterministic in `seed`.
GeneratedProgram GenerateProgram(uint64_t seed,
                                 const ProgramGenOptions& options = {});

/// Substitute each "{tN}" placeholder with its table's CSV path.
std::string SubstitutePaths(
    std::string source,
    const std::vector<std::pair<std::string, std::string>>& paths);

}  // namespace lafp::testing

#endif  // LAFP_TESTING_PROGEN_H_
