#ifndef LAFP_TESTING_DATAGEN_H_
#define LAFP_TESTING_DATAGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace lafp::testing {

/// Synthetic datasets standing in for the paper's real workload data
/// (taxi trips, movie ratings, startup data, ...; DESIGN.md substitution
/// table). All generators are seeded and deterministic.
///
/// `rows` scales the dataset; the benchmark sizes S/M/L use 1x/3x/9x so
/// the size ratio matches the paper's 1.4/4.2/12.6 GB.
struct Dataset {
  std::string name;
  std::string path;
  int64_t rows = 0;
  int64_t bytes = 0;
};

/// Generate dataset `name` with ~`rows` rows into `dir`. Supported names:
/// taxi, movies, ratings, startup, emp, stu, retail, weather, flights,
/// sensor, sales, vendors (small lookup), schools (small lookup).
Result<Dataset> Generate(const std::string& name, const std::string& dir,
                         int64_t rows, uint64_t seed = 42);

/// Names of the datasets each benchmark program needs.
std::vector<std::string> DatasetsForProgram(const std::string& program);

/// Base row counts per dataset at scale factor 1 (size S).
int64_t BaseRows(const std::string& dataset);

/// Generate everything `program` needs at `scale`; returns name->path.
Result<std::map<std::string, std::string>> GenerateForProgram(
    const std::string& program, const std::string& dir, int scale);

}  // namespace lafp::testing

#endif  // LAFP_TESTING_DATAGEN_H_
