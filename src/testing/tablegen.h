#ifndef LAFP_TESTING_TABLEGEN_H_
#define LAFP_TESTING_TABLEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lafp::testing {

/// One column of a randomly drawn fuzz table.
struct FuzzColumn {
  std::string name;
  /// 'i' int64, 'f' double, 's' string, 't' timestamp.
  char kind = 'i';
  /// Probability of an empty (null) cell.
  double null_prob = 0.0;
  /// Distinct-value domain size; small domains produce the duplicate and
  /// skewed-key distributions the differential oracle needs.
  int domain = 8;
};

/// A reproducible table: everything (schema and cells) derives from
/// `seed`, so a corpus file only has to record this struct. `rows`
/// truncates and `keep` drops columns without changing any other cell —
/// the shrinker's two data-minimization axes.
struct TableSpec {
  std::string name;  // placeholder name, e.g. "t0" for "{t0}"
  uint64_t seed = 0;
  int64_t rows = 0;
  std::vector<std::string> keep;  // empty = keep every column

  /// Corpus-file directive ("#! table t0 seed=7 rows=40 keep=key,f0_t0").
  std::string ToDirective() const;
  static Result<TableSpec> FromDirective(const std::string& line);
};

/// The full drawn schema for `seed` (before `keep` filtering). The first
/// column is always an int "key" with a small skewed domain and the
/// second a low-cardinality string "cat_<name>"; both make generated
/// merges and groupbys meaningful.
std::vector<FuzzColumn> SchemaForSeed(uint64_t seed, const std::string& name);

/// Schema after applying `spec.keep`.
std::vector<FuzzColumn> SchemaForSpec(const TableSpec& spec);

/// Write the table as CSV into `dir`; returns the file path. Cells are
/// drawn row-major over the *full* schema so `rows`/`keep` shrinking
/// never perturbs surviving cells.
Result<std::string> WriteTable(const TableSpec& spec, const std::string& dir);

}  // namespace lafp::testing

#endif  // LAFP_TESTING_TABLEGEN_H_
