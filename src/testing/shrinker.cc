#include "testing/shrinker.h"

#include <algorithm>

#include "script/ast.h"

namespace lafp::testing {

namespace {

using script::Expr;
using script::Module;
using script::Stmt;

/// Visit every expression reachable from `expr`, counting int literals;
/// when the running count hits `target`, overwrite the literal and stop.
bool MutateIntLiterals(Expr* expr, int* counter, int target,
                       int64_t new_value) {
  if (expr == nullptr) return false;
  if (expr->kind == script::ExprKind::kIntLit) {
    if ((*counter)++ == target) {
      expr->int_value = new_value;
      return true;
    }
    return false;
  }
  if (MutateIntLiterals(expr->lhs.get(), counter, target, new_value) ||
      MutateIntLiterals(expr->rhs.get(), counter, target, new_value)) {
    return true;
  }
  for (auto& e : expr->elements) {
    if (MutateIntLiterals(e.get(), counter, target, new_value)) return true;
  }
  for (auto& e : expr->dict_keys) {
    if (MutateIntLiterals(e.get(), counter, target, new_value)) return true;
  }
  for (auto& e : expr->dict_values) {
    if (MutateIntLiterals(e.get(), counter, target, new_value)) return true;
  }
  for (auto& kw : expr->kwargs) {
    if (MutateIntLiterals(kw.value.get(), counter, target, new_value)) {
      return true;
    }
  }
  return false;
}

bool MutateIntLiterals(std::vector<script::StmtPtr>* stmts, int* counter,
                       int target, int64_t new_value) {
  for (auto& stmt : *stmts) {
    if (MutateIntLiterals(stmt->target.get(), counter, target, new_value) ||
        MutateIntLiterals(stmt->value.get(), counter, target, new_value) ||
        MutateIntLiterals(&stmt->body, counter, target, new_value) ||
        MutateIntLiterals(&stmt->else_body, counter, target, new_value)) {
      return true;
    }
  }
  return false;
}

/// Total number of int literals in the program (the mutation index
/// space). Mutating with an out-of-range target counts without changing.
int CountIntLiterals(Module* module) {
  int counter = 0;
  MutateIntLiterals(&module->stmts, &counter, -1, 0);
  return counter;
}

}  // namespace

ShrinkCase Shrink(ShrinkCase input, const ReproducesFn& reproduces,
                  int budget) {
  auto try_case = [&](const ShrinkCase& candidate) {
    if (budget <= 0) return false;
    --budget;
    return reproduces(candidate);
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;

    // 1. Whole-statement deletion, last statement first (later statements
    // are the likeliest to be dead weight after earlier deletions).
    {
      auto parsed = script::Parse(input.source);
      if (parsed.ok()) {
        size_t n = parsed->stmts.size();
        for (size_t i = n; i-- > 0 && budget > 0;) {
          auto candidate_module = script::Parse(input.source);
          if (!candidate_module.ok()) break;
          if (i >= candidate_module->stmts.size()) continue;
          candidate_module->stmts.erase(candidate_module->stmts.begin() +
                                        static_cast<long>(i));
          ShrinkCase candidate{candidate_module->ToSource(), input.tables};
          if (try_case(candidate)) {
            input = std::move(candidate);
            progress = true;
          }
        }
      }
    }

    // 2. Integer-literal simplification towards 1 then 0.
    {
      auto parsed = script::Parse(input.source);
      if (parsed.ok()) {
        int literals = CountIntLiterals(&*parsed);
        for (int idx = 0; idx < literals && budget > 0; ++idx) {
          for (int64_t target_value : {int64_t{1}, int64_t{0}}) {
            auto candidate_module = script::Parse(input.source);
            if (!candidate_module.ok()) break;
            int counter = 0;
            if (!MutateIntLiterals(&candidate_module->stmts, &counter, idx,
                                   target_value)) {
              break;
            }
            ShrinkCase candidate{candidate_module->ToSource(), input.tables};
            if (candidate.source == input.source) continue;  // already 0/1
            if (try_case(candidate)) {
              input = std::move(candidate);
              progress = true;
              break;
            }
          }
        }
      }
    }

    // Snapshot names: the loops below reassign `input`, so references
    // into input.tables would dangle.
    std::vector<std::string> table_names;
    for (const auto& t : input.tables) table_names.push_back(t.name);
    auto rows_of = [&](const std::string& name) -> int64_t {
      for (const auto& t : input.tables) {
        if (t.name == name) return t.rows;
      }
      return 0;
    };

    // 3. Row bisection per table.
    for (const auto& name : table_names) {
      while (rows_of(name) > 0 && budget > 0) {
        ShrinkCase candidate = input;
        for (auto& t : candidate.tables) {
          if (t.name == name) t.rows /= 2;
        }
        if (!try_case(candidate)) break;
        input = std::move(candidate);
        progress = true;
      }
      // Final linear trims catch off-by-one minima bisection skips.
      while (rows_of(name) > 0 && budget > 0) {
        ShrinkCase candidate = input;
        for (auto& t : candidate.tables) {
          if (t.name == name) t.rows -= 1;
        }
        if (!try_case(candidate)) break;
        input = std::move(candidate);
        progress = true;
      }
    }

    // 4. Column dropping per table (via keep lists).
    for (const auto& name : table_names) {
      TableSpec spec;
      for (const auto& t : input.tables) {
        if (t.name == name) spec = t;
      }
      std::vector<FuzzColumn> current = SchemaForSpec(spec);
      for (const auto& col : current) {
        if (budget <= 0) break;
        ShrinkCase candidate = input;
        for (auto& t : candidate.tables) {
          if (t.name != name) continue;
          t.keep.clear();
          for (const auto& c : current) {
            if (c.name != col.name) t.keep.push_back(c.name);
          }
        }
        if (try_case(candidate)) {
          input = std::move(candidate);
          progress = true;
          break;  // `current` is stale after a successful drop
        }
      }
    }
  }
  return input;
}

}  // namespace lafp::testing
