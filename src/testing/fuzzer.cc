#include "testing/fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "io/columnar.h"
#include "testing/rng.h"

namespace lafp::testing {

namespace {

std::string DefaultDataDir() {
  std::error_code ec;
  auto base = std::filesystem::temp_directory_path(ec);
  if (ec) base = ".";
  return (base / "lafp_fuzz").string();
}

std::string FirstLine(const std::string& text) {
  auto nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

}  // namespace

Result<std::string> MaterializeCase(const ShrinkCase& c,
                                    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> paths;
  for (const auto& table : c.tables) {
    auto path = WriteTable(table, dir);
    if (!path.ok()) return path.status();
    paths.emplace_back(table.name, *path);
  }
  return SubstitutePaths(c.source, paths);
}

CaseResult CheckCase(const ShrinkCase& c,
                     const std::vector<OracleConfig>& configs,
                     const std::string& data_dir) {
  CaseResult result;
  std::vector<std::pair<std::string, std::string>> csv_paths;
  for (const auto& table : c.tables) {
    auto path = WriteTable(table, data_dir);
    if (!path.ok()) {
      result.verdict = CaseVerdict::kReferenceFailed;
      result.detail = path.status().ToString();
      return result;
    }
    csv_paths.emplace_back(table.name, *path);
  }
  const std::string source = SubstitutePaths(c.source, csv_paths);
  RunOutcome reference = ExecuteUnderConfig(source, ReferenceConfig());
  if (!reference.status.ok()) {
    result.verdict = CaseVerdict::kReferenceFailed;
    result.detail = reference.status.ToString();
    return result;
  }
  // LFC configs replay the same program against native-columnar
  // conversions of the base tables (converted lazily, once per case).
  // Tiny chunks force multi-chunk column assembly and give the zone-prune
  // pass real chunk boundaries to skip.
  std::string lfc_source;
  bool lfc_converted = false;
  for (const auto& config : configs) {
    const std::string* src = &source;
    if (config.lfc) {
      if (!lfc_converted) {
        std::vector<std::pair<std::string, std::string>> lfc_paths;
        for (const auto& [name, csv] : csv_paths) {
          const std::string lfc = csv + ".lfc";
          io::LfcWriteOptions write_options;
          write_options.chunk_rows = 31;
          auto converted = io::ConvertCsvToLfc(csv, lfc, io::CsvReadOptions{},
                                               write_options, nullptr);
          if (!converted.ok()) {
            result.verdict = CaseVerdict::kDiverged;
            result.config_name = config.Name();
            result.detail =
                "lfc conversion failed for " + csv + ": " +
                converted.ToString();
            return result;
          }
          lfc_paths.emplace_back(name, lfc);
        }
        lfc_source = SubstitutePaths(c.source, lfc_paths);
        lfc_converted = true;
      }
      src = &lfc_source;
    }
    RunOutcome run = ExecuteUnderConfig(*src, config);
    auto divergence = CompareOutcomes(reference, run, config);
    if (divergence.has_value()) {
      result.verdict = CaseVerdict::kDiverged;
      result.config_name = config.Name();
      result.detail = *divergence;
      return result;
    }
  }
  return result;
}

FuzzStats RunFuzz(const FuzzOptions& options) {
  FuzzStats stats;
  const std::string data_dir =
      options.data_dir.empty() ? DefaultDataDir() : options.data_dir;
  SplitMix seeds(options.seed);
  const bool single = options.replay || !options.corpus_file.empty();
  const int iters = single ? 1 : options.iters;
  for (int i = 0; i < iters; ++i) {
    const uint64_t program_seed =
        options.replay ? options.replay_seed : seeds.Next();
    ShrinkCase original;
    if (!options.corpus_file.empty()) {
      auto from_file = ReadCorpusFile(options.corpus_file);
      if (!from_file.ok()) {
        if (options.log != nullptr) {
          *options.log << "[fuzz] " << from_file.status().ToString() << "\n";
        }
        return stats;
      }
      original = *std::move(from_file);
    } else {
      GeneratedProgram program =
          GenerateProgram(program_seed, options.progen);
      original = ShrinkCase{program.source, program.tables};
    }
    if (single && options.log != nullptr) {
      *options.log << "[fuzz] replaying "
                   << (options.corpus_file.empty()
                           ? "seed " + std::to_string(program_seed)
                           : options.corpus_file)
                   << ":\n";
      for (const auto& t : original.tables) {
        *options.log << t.ToDirective() << "\n";
      }
      *options.log << original.source << "\n";
    }
    std::vector<OracleConfig> configs =
        SampleConfigs(program_seed ^ 0x9e3779b97f4a7c15ull, options.matrix);
    if (options.faults) {
      const int n = std::max(2, options.matrix / 2);
      for (auto& c : FaultConfigs(program_seed, n)) {
        configs.push_back(std::move(c));
      }
    }
    if (options.cache) {
      const int n = std::max(2, options.matrix / 2);
      for (auto& c : CacheConfigs(program_seed, n)) {
        configs.push_back(std::move(c));
      }
    }
    if (options.lfc) {
      const int n = std::max(2, options.matrix / 2);
      for (auto& c : LfcConfigs(program_seed, n)) {
        configs.push_back(std::move(c));
      }
    }
    if (options.shards) {
      const int n = std::max(2, options.matrix / 2);
      for (auto& c : ShardConfigs(program_seed, n)) {
        configs.push_back(std::move(c));
      }
    }
    if (single) {
      // Replay is a debugging aid: widen the matrix and report every
      // config's verdict instead of stopping at the first divergence.
      for (const auto& c : RegressionConfigs()) configs.push_back(c);
      auto source = MaterializeCase(original, data_dir);
      if (source.ok()) {
        RunOutcome reference = ExecuteUnderConfig(*source, ReferenceConfig());
        if (reference.status.ok() && options.log != nullptr) {
          *options.log << "[replay] reference output:\n" << reference.output;
          for (const auto& config : configs) {
            // LFC configs run one at a time here so conversion failures
            // surface per-config; CheckCase below converts once per case.
            std::string verdict;
            RunOutcome run;
            if (config.lfc) {
              CaseResult one = CheckCase(original, {config}, data_dir);
              verdict = one.verdict == CaseVerdict::kOk
                            ? "ok"
                            : FirstLine(one.detail);
            } else {
              run = ExecuteUnderConfig(*source, config);
              auto diff = CompareOutcomes(reference, run, config);
              verdict = diff.has_value() ? FirstLine(*diff) : "ok";
            }
            *options.log << "[replay] " << config.Name() << ": " << verdict
                         << "\n";
            if (!config.lfc && verdict != "ok" && run.status.ok() &&
                run.output != reference.output) {
              *options.log << run.output;
            }
          }
        }
      }
    }
    CaseResult check = CheckCase(original, configs, data_dir);
    ++stats.iterations;

    if (check.verdict == CaseVerdict::kReferenceFailed) {
      ++stats.reference_failures;
      if (options.log != nullptr) {
        *options.log << "[fuzz] iter " << i << " seed " << program_seed
                     << " reference failed: " << FirstLine(check.detail)
                     << "\n";
      }
      continue;
    }
    if (check.verdict == CaseVerdict::kOk) {
      if (options.log != nullptr && (i + 1) % 50 == 0) {
        *options.log << "[fuzz] " << (i + 1) << "/" << options.iters
                     << " programs checked, "
                     << stats.divergences.size() << " divergences\n";
      }
      continue;
    }

    FuzzDivergence divergence;
    divergence.program_seed = program_seed;
    divergence.config_name = check.config_name;
    divergence.detail = check.detail;
    divergence.repro = original;
    if (options.log != nullptr) {
      *options.log << "[fuzz] DIVERGENCE at iter " << i << " seed "
                   << program_seed << " under " << check.config_name << "\n"
                   << check.detail << "\n";
    }

    if (options.shrink) {
      // Shrink against the diverging config only. Using the whole matrix
      // lets the minimizer wander into a *different* divergence class —
      // e.g. deleting the checksum epilogue exposes the intended §3.1
      // head()-print column pruning — and report that instead.
      std::vector<OracleConfig> shrink_configs;
      for (const auto& c : configs) {
        if (c.Name() == check.config_name) shrink_configs.push_back(c);
      }
      const std::string shrink_dir = data_dir + "/shrink";
      auto reproduces = [&](const ShrinkCase& candidate) {
        return CheckCase(candidate, shrink_configs, shrink_dir).verdict ==
               CaseVerdict::kDiverged;
      };
      divergence.repro =
          Shrink(original, reproduces, options.shrink_budget);
      // Re-derive the divergence text for the minimized case.
      CaseResult shrunk =
          CheckCase(divergence.repro, shrink_configs, shrink_dir);
      if (shrunk.verdict == CaseVerdict::kDiverged) {
        divergence.config_name = shrunk.config_name;
        divergence.detail = shrunk.detail;
      }
      if (options.log != nullptr) {
        *options.log << "[fuzz] shrunk repro (" << divergence.config_name
                     << "):\n" << divergence.repro.source << "\n";
      }
    }

    if (!options.corpus_dir.empty()) {
      std::string stem = "shrunk_seed" + std::to_string(program_seed);
      std::string comment =
          "divergence under " + divergence.config_name + ": " +
          FirstLine(divergence.detail);
      auto written = WriteCorpusFile(options.corpus_dir, stem,
                                     divergence.repro, comment);
      if (written.ok()) {
        divergence.corpus_path = *written;
        if (options.log != nullptr) {
          *options.log << "[fuzz] repro written to " << *written << "\n";
        }
      } else if (options.log != nullptr) {
        *options.log << "[fuzz] corpus write failed: "
                     << written.status().ToString() << "\n";
      }
    }
    stats.divergences.push_back(std::move(divergence));
  }
  return stats;
}

Result<std::string> WriteCorpusFile(const std::string& dir,
                                    const std::string& stem,
                                    const ShrinkCase& c,
                                    const std::string& comment) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = dir + "/" + stem + ".pds";
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot create " + path);
  if (!comment.empty()) out << "# " << comment << "\n";
  for (const auto& table : c.tables) out << table.ToDirective() << "\n";
  out << c.source;
  if (!c.source.empty() && c.source.back() != '\n') out << "\n";
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return path;
}

Result<ShrinkCase> ReadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  ShrinkCase c;
  std::string line;
  std::ostringstream source;
  while (std::getline(in, line)) {
    if (line.rfind("#!", 0) == 0) {
      auto spec = TableSpec::FromDirective(line);
      if (!spec.ok()) return spec.status();
      c.tables.push_back(*spec);
    } else if (line.rfind("#", 0) == 0) {
      continue;  // comment
    } else {
      source << line << "\n";
    }
  }
  c.source = source.str();
  return c;
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".pds") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace lafp::testing
