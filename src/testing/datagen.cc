#include "testing/datagen.h"

#include <filesystem>
#include <fstream>
#include <random>

#include "common/hash.h"
#include "common/macros.h"
#include "dataframe/types.h"

namespace lafp::testing {

namespace {

namespace fs = std::filesystem;

/// Deterministic helpers over a seeded engine.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  int64_t Int(int64_t lo, int64_t hi) {  // inclusive
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  double Double(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  template <typename T>
  const T& Pick(const std::vector<T>& options) {
    return options[static_cast<size_t>(Int(0, options.size() - 1))];
  }
  bool Chance(double p) { return Double(0, 1) < p; }

 private:
  std::mt19937_64 engine_;
};

std::string Timestamp(Rng* rng, int year) {
  int month = static_cast<int>(rng->Int(1, 12));
  int day = static_cast<int>(rng->Int(1, 28));
  int hour = static_cast<int>(rng->Int(0, 23));
  int minute = static_cast<int>(rng->Int(0, 59));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:00", year,
                month, day, hour, minute);
  return buf;
}

std::string Money(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

using RowWriter = void (*)(std::ofstream&, int64_t, Rng*);

struct Spec {
  const char* header;
  RowWriter writer;
};

// ---- taxi: 20 columns, 3-4 typically used (paper Figure 3 workload) ----
void TaxiRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kZones{"midtown", "airport",
                                               "downtown", "uptown",
                                               "harbor", "suburb"};
  static const std::vector<std::string> kPayment{"card", "cash", "app"};
  double fare = rng->Double(-5.0, 80.0);  // some invalid negatives
  out << i << ',' << Timestamp(rng, 2023) << ',' << Timestamp(rng, 2023)
      << ',' << rng->Int(1, 6) << ',' << Money(rng->Double(0.3, 30.0))
      << ',' << Money(fare) << ',' << Money(rng->Double(0, 10)) << ','
      << Money(rng->Double(0, 8)) << ',' << Money(rng->Double(0, 6)) << ','
      << Money(fare > 0 ? fare * 1.2 : 1.0) << ',' << rng->Int(1, 2) << ','
      << rng->Pick(kPayment) << ',' << rng->Pick(kZones) << ','
      << rng->Pick(kZones) << ',' << rng->Int(1, 5) << ','
      << (rng->Chance(0.5) ? "Y" : "N") << ',' << Money(rng->Double(0, 2))
      << ',' << Money(rng->Double(0, 1)) << ',' << rng->Int(0, 3) << ','
      << rng->Int(100, 999) << '\n';
}

// ---- movies + ratings (movie rating system domain) ----
void MoviesRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kGenres{
      "action", "comedy", "drama", "horror", "scifi", "romance", "doc"};
  out << i << ",movie_" << i << ',' << rng->Pick(kGenres) << ','
      << rng->Int(1960, 2024) << ',' << rng->Int(60, 220) << ','
      << Money(rng->Double(0.1, 300.0)) << '\n';
}

void RatingsRow(std::ofstream& out, int64_t i, Rng* rng) {
  (void)i;
  out << rng->Int(1, 20000) << ',' << rng->Int(0, BaseRows("movies") - 1)
      << ',' << Money(rng->Double(0.5, 5.0)) << ','
      << rng->Int(800000000, 1700000000) << ',' << rng->Int(0, 1) << '\n';
}

// ---- startup analysis ----
void StartupRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kCities{
      "bangalore", "mumbai", "delhi", "pune", "chennai", "hyderabad"};
  static const std::vector<std::string> kSectors{
      "fintech", "health", "edtech", "logistics", "saas", "retail"};
  static const std::vector<std::string> kStatus{"operating", "acquired",
                                                "closed"};
  out << "startup_" << i << ',' << rng->Pick(kCities) << ','
      << rng->Pick(kSectors) << ',' << Money(rng->Double(0.0, 500.0)) << ','
      << rng->Int(0, 9) << ',' << rng->Int(1995, 2024) << ','
      << rng->Pick(kStatus) << ',' << rng->Int(1, 5000) << ','
      << Money(rng->Double(-20, 80)) << '\n';
}

// ---- emp (the program that fails everywhere at L: external plot) ----
void EmpRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kDepts{"sales", "eng", "hr", "ops",
                                               "finance"};
  static const std::vector<std::string> kCities{"NY", "SF", "LA", "CHI",
                                                "SEA"};
  out << i << ",emp_" << i << ',' << rng->Pick(kDepts) << ','
      << Money(rng->Double(30000, 250000)) << ',' << rng->Int(21, 65) << ','
      << rng->Int(1990, 2024) << ',' << rng->Pick(kCities) << ','
      << Money(rng->Double(0, 40)) << ',' << rng->Int(0, 30) << '\n';
}

// ---- stu (the caching-ablation program §5.3) ----
void StuRow(std::ofstream& out, int64_t i, Rng* rng) {
  out << i << ",school_" << rng->Int(0, 49) << ',' << rng->Int(1, 12) << ','
      << Money(rng->Double(0, 100)) << ',' << Money(rng->Double(0, 100))
      << ',' << Money(rng->Double(0, 100)) << ','
      << Money(rng->Double(50, 100)) << ',' << rng->Int(2015, 2024) << ','
      << rng->Int(0, 1) << ',' << Money(rng->Double(0, 20)) << '\n';
}

// ---- retail orders ----
void RetailRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kProducts{
      "laptop", "phone", "tablet", "monitor", "keyboard", "mouse",
      "charger", "case"};
  static const std::vector<std::string> kCats{"electronics", "accessory"};
  static const std::vector<std::string> kStores{"north", "south", "east",
                                                "west", "online"};
  out << i << ',' << rng->Pick(kProducts) << ',' << rng->Pick(kCats) << ','
      << rng->Int(1, 12) << ',' << Money(rng->Double(5, 2500)) << ','
      << Timestamp(rng, 2024) << ',' << rng->Pick(kStores) << ','
      << rng->Int(10000, 99999) << ',' << Money(rng->Double(0, 0.4))
      << '\n';
}

// ---- weather ----
void WeatherRow(std::ofstream& out, int64_t i, Rng* rng) {
  (void)i;
  out << Timestamp(rng, 2023) << ",station_" << rng->Int(0, 39) << ','
      << Money(rng->Double(-15, 45)) << ',' << Money(rng->Double(5, 100))
      << ',' << Money(rng->Double(0, 120)) << ','
      << Money(rng->Double(0, 35)) << ',' << Money(rng->Double(950, 1050))
      << ',' << rng->Int(0, 10) << '\n';
}

// ---- flights ----
void FlightsRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kAirports{
      "JFK", "LAX", "ORD", "DFW", "DEN", "SFO", "SEA", "ATL"};
  static const std::vector<std::string> kCarriers{"AA", "DL", "UA", "WN",
                                                  "B6"};
  out << i << ',' << rng->Pick(kAirports) << ',' << rng->Pick(kAirports)
      << ',' << Timestamp(rng, 2024) << ',' << rng->Int(-20, 180) << ','
      << rng->Int(-15, 120) << ',' << rng->Pick(kCarriers) << ','
      << rng->Int(150, 4000) << ',' << rng->Int(50, 400) << ','
      << (rng->Chance(0.02) ? "1" : "0") << '\n';
}

// ---- sensor telemetry ----
void SensorRow(std::ofstream& out, int64_t i, Rng* rng) {
  (void)i;
  bool faulty = rng->Chance(0.03);
  out << rng->Int(0, 99) << ',' << rng->Int(1700000000, 1710000000) << ',';
  if (faulty) {
    out << "";  // missing reading
  } else {
    out << Money(rng->Double(-10, 110));
  }
  out << ',' << (faulty ? "fault" : "ok") << ','
      << Money(rng->Double(3.0, 4.2)) << ',' << rng->Int(0, 3) << '\n';
}

// ---- sales (category-dtype showcase: low-cardinality strings) ----
void SalesRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kRegions{"north", "south", "east",
                                                 "west"};
  static const std::vector<std::string> kReps{
      "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"};
  static const std::vector<std::string> kProducts{"basic", "plus", "pro",
                                                  "enterprise"};
  (void)i;
  out << rng->Pick(kRegions) << ',' << rng->Pick(kReps) << ','
      << rng->Pick(kProducts) << ',' << Money(rng->Double(100, 90000))
      << ',' << Timestamp(rng, 2024) << ',' << rng->Int(1, 40) << ','
      << Money(rng->Double(0, 0.3)) << ',' << rng->Int(0, 1) << '\n';
}

// ---- small lookup tables ----
void VendorsRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kRegions{"east", "west", "central"};
  out << (i + 1) << ",vendor_" << (i + 1) << ',' << rng->Pick(kRegions)
      << '\n';
}

void SchoolsRow(std::ofstream& out, int64_t i, Rng* rng) {
  static const std::vector<std::string> kDistricts{"urban", "rural",
                                                   "suburban"};
  out << "school_" << i << ',' << rng->Pick(kDistricts) << ','
      << rng->Int(1950, 2010) << '\n';
}

const std::map<std::string, Spec>& Specs() {
  static const auto* specs = new std::map<std::string, Spec>{
      {"taxi",
       {"trip_id,pickup_datetime,dropoff_datetime,passenger_count,"
        "trip_distance,fare_amount,tip_amount,tolls_amount,extra,"
        "total_amount,vendor_id,payment_type,pickup_zone,dropoff_zone,"
        "rate_code,store_fwd,mta_tax,improvement_surcharge,airport_fee,"
        "driver_id",
        TaxiRow}},
      {"movies",
       {"movieId,title,genre,year,runtime,revenue", MoviesRow}},
      {"ratings", {"userId,movieId,rating,ts,liked", RatingsRow}},
      {"startup",
       {"name,city,sector,funding_total,funding_rounds,founded_year,"
        "status,employees,growth",
        StartupRow}},
      {"emp",
       {"emp_id,name,dept,salary,age,join_year,city,bonus_pct,leaves",
        EmpRow}},
      {"stu",
       {"student_id,school,grade,score_math,score_read,score_write,"
        "attendance,year,scholarship,activity_hours",
        StuRow}},
      {"retail",
       {"order_id,product,category,qty,price,order_date,store,customer,"
        "discount",
        RetailRow}},
      {"weather",
       {"date,station,temp,humidity,rainfall,wind,pressure,cloud",
        WeatherRow}},
      {"flights",
       {"flight_id,origin,dest,dep_time,arr_delay,dep_delay,carrier,"
        "distance,seats,cancelled",
        FlightsRow}},
      {"sensor", {"sensor_id,ts,value,status,voltage,channel", SensorRow}},
      {"sales",
       {"region,rep,product,amount,date,units,discount,renewed", SalesRow}},
      {"vendors", {"vendor_id,vendor_name,region", VendorsRow}},
      {"schools", {"school,district,founded", SchoolsRow}},
  };
  return *specs;
}

}  // namespace

int64_t BaseRows(const std::string& dataset) {
  if (dataset == "taxi") return 40000;
  if (dataset == "movies") return 4000;
  if (dataset == "ratings") return 92000;
  if (dataset == "startup") return 110000;
  if (dataset == "emp") return 60000;
  if (dataset == "stu") return 50000;
  if (dataset == "retail") return 55000;
  if (dataset == "weather") return 56000;
  if (dataset == "flights") return 52500;
  if (dataset == "sensor") return 90000;
  if (dataset == "sales") return 60000;
  if (dataset == "vendors") return 2;
  if (dataset == "schools") return 50;
  return 10000;
}

Result<Dataset> Generate(const std::string& name, const std::string& dir,
                         int64_t rows, uint64_t seed) {
  auto it = Specs().find(name);
  if (it == Specs().end()) {
    return Status::Invalid("unknown dataset: " + name);
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  Dataset ds;
  ds.name = name;
  ds.rows = rows;
  ds.path = dir + "/" + name + "_" + std::to_string(rows) + ".csv";
  if (fs::exists(ds.path)) {  // cached across runs within a bench binary
    ds.bytes = static_cast<int64_t>(fs::file_size(ds.path, ec));
    return ds;
  }
  std::ofstream out(ds.path);
  if (!out.is_open()) {
    return Status::IOError("cannot create " + ds.path);
  }
  out << it->second.header << '\n';
  Rng rng(seed ^ Fnv1a64(name));
  for (int64_t i = 0; i < rows; ++i) {
    it->second.writer(out, i, &rng);
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + ds.path);
  ds.bytes = static_cast<int64_t>(fs::file_size(ds.path, ec));
  return ds;
}

std::vector<std::string> DatasetsForProgram(const std::string& program) {
  if (program == "movie") return {"ratings", "movies"};
  if (program == "stu") return {"stu", "schools"};
  if (program == "taxi") return {"taxi"};
  return {program};
}

Result<std::map<std::string, std::string>> GenerateForProgram(
    const std::string& program, const std::string& dir, int scale) {
  std::map<std::string, std::string> paths;
  for (const auto& name : DatasetsForProgram(program)) {
    int64_t rows = BaseRows(name);
    // Lookup tables stay small at every scale.
    if (name != "vendors" && name != "schools" && name != "movies") {
      rows *= scale;
    }
    LAFP_ASSIGN_OR_RETURN(Dataset ds, Generate(name, dir, rows));
    paths[name] = ds.path;
  }
  return paths;
}

}  // namespace lafp::testing
