#include "testing/progen.h"

#include <algorithm>

#include "common/string_util.h"
#include "testing/rng.h"

namespace lafp::testing {

namespace {

/// What the generator knows about a live frame variable: enough to keep
/// every emitted operation well typed.
struct FrameVar {
  std::string name;
  std::vector<FuzzColumn> cols;
  /// groupby/value_counts results: print/checksum/head only.
  bool reduced = false;
  /// Source table ordinal, -1 after a merge. Merges are only generated
  /// between frames of distinct roots so non-key column names never
  /// collide.
  int root = -1;
};

struct ScalarVar {
  std::string name;
};

class ProgramBuilder {
 public:
  ProgramBuilder(uint64_t seed, const ProgramGenOptions& options)
      : rng_(seed), options_(options) {}

  GeneratedProgram Build() {
    Line("import lazyfatpandas.pandas as pd");
    size_t num_tables = rng_.Chance(0.6) ? 2 : 1;
    for (size_t t = 0; t < num_tables; ++t) {
      TableSpec spec;
      spec.name = "t" + std::to_string(t);
      spec.seed = rng_.Next();
      // Mostly small tables; occasionally empty or single-row frames.
      if (rng_.Chance(0.04)) {
        spec.rows = static_cast<int64_t>(rng_.Below(2));
      } else {
        spec.rows = 1 + static_cast<int64_t>(
                            rng_.Below(static_cast<uint64_t>(
                                std::max<int64_t>(options_.max_rows, 1))));
      }
      tables_.push_back(spec);
      FrameVar frame;
      frame.name = "df" + std::to_string(t);
      frame.cols = SchemaForSeed(spec.seed, spec.name);
      frame.root = static_cast<int>(t);
      if (spec.rows == 0) {
        // A header-only CSV gives type inference nothing to work with, so
        // every column reads back as string; generate accordingly or the
        // reference itself rejects e.g. `empty.i0 < 11`.
        for (auto& c : frame.cols) c.kind = 's';
      }
      Line(frame.name + " = pd.read_csv(\"{" + spec.name + "}\")");
      frames_.push_back(std::move(frame));
    }

    int statements = 3 + static_cast<int>(rng_.Below(static_cast<uint64_t>(
                             std::max(options_.max_statements - 2, 1))));
    for (int i = 0; i < statements; ++i) EmitRandomStatement();

    // Epilogue: every live frame is checksummed (canonicalized frame
    // equality) and every scalar printed — the observable the oracle
    // compares across configurations.
    for (const auto& s : scalars_) {
      Line("print(f\"" + s.name + ": {" + s.name + "}\")");
    }
    for (const auto& f : frames_) Line("checksum(" + f.name + ")");

    GeneratedProgram out;
    out.source = source_;
    out.tables = tables_;
    return out;
  }

 private:
  // ---- emission helpers ----

  void Line(const std::string& text) {
    source_ += indent_;
    source_ += text;
    source_ += "\n";
  }

  std::string NewFrameName() {
    return "v" + std::to_string(next_frame_id_++);
  }
  std::string NewScalarName() {
    return "s" + std::to_string(next_scalar_id_++);
  }
  std::string NewColName() { return "x" + std::to_string(next_col_id_++); }

  FrameVar* PickFrame(bool allow_reduced = false) {
    std::vector<FrameVar*> candidates;
    for (auto& f : frames_) {
      if (f.reduced && !allow_reduced) continue;
      candidates.push_back(&f);
    }
    if (candidates.empty()) return nullptr;
    return candidates[rng_.Below(candidates.size())];
  }

  const FuzzColumn* PickCol(const FrameVar& frame, const char* kinds) {
    std::vector<const FuzzColumn*> candidates;
    for (const auto& c : frame.cols) {
      for (const char* k = kinds; *k != '\0'; ++k) {
        if (c.kind == *k) {
          candidates.push_back(&c);
          break;
        }
      }
    }
    if (candidates.empty()) return nullptr;
    return candidates[rng_.Below(candidates.size())];
  }

  /// A literal comparable against `col`, written in PdScript syntax.
  std::string LiteralFor(const FuzzColumn& col) {
    uint64_t idx = rng_.Below(static_cast<uint64_t>(col.domain));
    switch (col.kind) {
      case 'i':
        return std::to_string(static_cast<int64_t>(idx) - 1);
      case 'f':
        return FormatDouble(static_cast<double>(idx) * 0.25);
      case 's':
        return "\"v" + std::to_string(idx) + "\"";
      case 't':
        break;
    }
    return "0";
  }

  std::string CompareOp() {
    static const char* kOps[] = {">", ">=", "<", "<=", "==", "!="};
    return kOps[rng_.Below(6)];
  }

  std::string FilterExpr(const FrameVar& frame) {
    const FuzzColumn* col = PickCol(frame, rng_.Chance(0.3) ? "si" : "if");
    if (col == nullptr) col = &frame.cols[rng_.Below(frame.cols.size())];
    std::string base = frame.name + "." + col->name;
    switch (col->kind) {
      case 's': {
        if (rng_.Chance(0.4)) {
          // isin over a small literal list.
          std::string list = LiteralFor(*col);
          if (rng_.Chance(0.7)) list += ", " + LiteralFor(*col);
          return base + ".isin([" + list + "])";
        }
        return base + (rng_.Chance(0.5) ? " == " : " != ") +
               LiteralFor(*col);
      }
      case 'i':
        if (rng_.Chance(0.25)) {
          return base + ".isin([" + LiteralFor(*col) + ", " +
                 LiteralFor(*col) + "])";
        }
        [[fallthrough]];
      default:
        return base + " " + CompareOp() + " " + LiteralFor(*col);
    }
  }

  // ---- statement generators ----

  void EmitRandomStatement() {
    // Weighted surface coverage; generators that lack a precondition
    // (no timestamp column, only one table, ...) fall through to a
    // plain filter, which is always possible.
    switch (rng_.Below(14)) {
      case 0:
      case 1:
        EmitFilter();
        return;
      case 2:
        EmitConjFilter();
        return;
      case 3:
        EmitAssign();
        return;
      case 4:
        EmitDtAssign();
        return;
      case 5:
        EmitGroupBy();
        return;
      case 6:
        EmitMerge();
        return;
      case 7:
        EmitSortOrHead();
        return;
      case 8:
        EmitConcat();
        return;
      case 9:
        EmitCleaning();
        return;
      case 10:
        EmitScalar();
        return;
      case 11:
        EmitPrint();
        return;
      case 12:
        if (options_.control_flow) {
          EmitControlFlow();
          return;
        }
        EmitFilter();
        return;
      default:
        EmitDropDuplicates();
        return;
    }
  }

  void EmitFilter() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    FrameVar out = *src;
    out.name = NewFrameName();
    Line(out.name + " = " + src->name + "[" + FilterExpr(*src) + "]");
    AddFrame(std::move(out));
  }

  void EmitConjFilter() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    FrameVar out = *src;
    out.name = NewFrameName();
    Line(out.name + " = " + src->name + "[(" + FilterExpr(*src) + ") & (" +
         FilterExpr(*src) + ")]");
    AddFrame(std::move(out));
  }

  void EmitAssign() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    const FuzzColumn* a = PickCol(*src, "if");
    if (a == nullptr) {
      EmitFilter();
      return;
    }
    static const char* kOps[] = {"+", "-", "*", "%"};
    std::string op = kOps[rng_.Below(4)];
    FuzzColumn added;
    added.name = NewColName();
    std::string rhs;
    if (rng_.Chance(0.25)) {
      rhs = src->name + "." + a->name + ".abs()";
      added.kind = a->kind;
    } else if (rng_.Chance(0.5)) {
      const FuzzColumn* b = PickCol(*src, "if");
      rhs = src->name + "." + a->name + " " + op + " " + src->name + "." +
            b->name;
      added.kind = (a->kind == 'f' || b->kind == 'f') ? 'f' : 'i';
    } else {
      // Span negative operands so floored-mod sign handling and signed
      // wraparound stay under differential test (pandas `%` follows the
      // divisor's sign; literal 0 is legal — int mod-by-zero yields 0).
      int64_t mag = op == "%" ? static_cast<int64_t>(rng_.Below(5))
                              : 1 + static_cast<int64_t>(rng_.Below(4));
      std::string lit =
          std::to_string(rng_.Chance(0.4) ? -mag : mag);
      rhs = src->name + "." + a->name + " " + op + " " + lit;
      added.kind = a->kind;
    }
    added.domain = 64;
    Line(src->name + "[\"" + added.name + "\"] = " + rhs);
    src->cols.push_back(added);
  }

  void EmitDtAssign() {
    FrameVar* src = PickFrame();
    const FuzzColumn* ts = src != nullptr ? PickCol(*src, "t") : nullptr;
    if (ts == nullptr) {
      EmitFilter();
      return;
    }
    static const char* kFields[] = {"month", "year", "day", "dayofweek",
                                    "hour"};
    FuzzColumn added;
    added.name = NewColName();
    added.kind = 'i';
    added.domain = 32;
    Line(src->name + "[\"" + added.name + "\"] = " + src->name + "." +
         ts->name + ".dt." + kFields[rng_.Below(5)]);
    src->cols.push_back(added);
  }

  void EmitGroupBy() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    const FuzzColumn* key = PickCol(*src, rng_.Chance(0.5) ? "s" : "i");
    const FuzzColumn* value = PickCol(*src, "if");
    if (key == nullptr || value == nullptr || key->name == value->name) {
      EmitFilter();
      return;
    }
    static const char* kAggs[] = {"sum", "mean", "count", "min", "max"};
    FrameVar out;
    out.name = NewFrameName();
    out.cols = {*key, *value};
    out.reduced = true;
    Line(out.name + " = " + src->name + ".groupby([\"" + key->name +
         "\"])[\"" + value->name + "\"]." + kAggs[rng_.Below(5)] + "()");
    AddFrame(std::move(out));
  }

  void EmitMerge() {
    // Two frames with distinct roots (so non-key names cannot collide),
    // both still carrying the shared "key" column.
    std::vector<std::pair<FrameVar*, FrameVar*>> pairs;
    for (auto& a : frames_) {
      if (a.reduced || a.root < 0 || !HasKey(a)) continue;
      for (auto& b : frames_) {
        if (b.reduced || b.root < 0 || b.root == a.root || !HasKey(b)) {
          continue;
        }
        pairs.push_back({&a, &b});
      }
    }
    if (pairs.empty()) {
      EmitFilter();
      return;
    }
    auto [left, right] = pairs[rng_.Below(pairs.size())];
    FrameVar out;
    out.name = NewFrameName();
    out.root = -1;
    out.cols = left->cols;
    for (const auto& c : right->cols) {
      if (c.name != "key") out.cols.push_back(c);
    }
    std::string how = rng_.Chance(0.3) ? "left" : "inner";
    Line(out.name + " = " + left->name + ".merge(" + right->name +
         ", on=[\"key\"], how=\"" + how + "\")");
    AddFrame(std::move(out));
  }

  void EmitSortOrHead() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    FrameVar out = *src;
    out.name = NewFrameName();
    if (rng_.Chance(0.55)) {
      const FuzzColumn* by = PickCol(*src, "ifst");
      if (by == nullptr) return;
      std::string asc = rng_.Chance(0.5) ? "True" : "False";
      Line(out.name + " = " + src->name + ".sort_values(by=[\"" + by->name +
           "\"], ascending=" + asc + ")");
    } else {
      Line(out.name + " = " + src->name + ".head(" +
           std::to_string(2 + rng_.Below(20)) + ")");
    }
    AddFrame(std::move(out));
  }

  void EmitConcat() {
    // Candidates must have identical column lists; self-concat is the
    // always-available degenerate case.
    FrameVar* a = PickFrame();
    if (a == nullptr) return;
    FrameVar* b = nullptr;
    for (auto& f : frames_) {
      if (&f != a && !f.reduced && SameColumns(f, *a) && rng_.Chance(0.5)) {
        b = &f;
        break;
      }
    }
    if (b == nullptr) b = a;
    FrameVar out = *a;
    out.name = NewFrameName();
    Line(out.name + " = pd.concat([" + a->name + ", " + b->name + "])");
    AddFrame(std::move(out));
  }

  void EmitCleaning() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    FrameVar out = *src;
    out.name = NewFrameName();
    Line(out.name + " = " + src->name +
         (rng_.Chance(0.5) ? ".dropna()" : ".fillna(0)"));
    AddFrame(std::move(out));
  }

  void EmitDropDuplicates() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    const FuzzColumn* by = PickCol(*src, "is");
    if (by == nullptr) {
      EmitFilter();
      return;
    }
    FrameVar out = *src;
    out.name = NewFrameName();
    Line(out.name + " = " + src->name + ".drop_duplicates(subset=[\"" +
         by->name + "\"])");
    AddFrame(std::move(out));
  }

  void EmitScalar() {
    FrameVar* src = PickFrame();
    if (src == nullptr) return;
    ScalarVar s;
    s.name = NewScalarName();
    if (rng_.Chance(0.4)) {
      Line(s.name + " = len(" + src->name + ")");
    } else {
      const FuzzColumn* col = PickCol(*src, "if");
      if (col == nullptr) {
        Line(s.name + " = len(" + src->name + ")");
      } else {
        static const char* kAggs[] = {"sum", "mean", "min", "max", "count",
                                      "nunique"};
        Line(s.name + " = " + src->name + "." + col->name + "." +
             kAggs[rng_.Below(6)] + "()");
      }
    }
    scalars_.push_back(std::move(s));
  }

  void EmitPrint() {
    if (!scalars_.empty() && rng_.Chance(0.35)) {
      const ScalarVar& s = scalars_[rng_.Below(scalars_.size())];
      Line("print(f\"mid " + s.name + ": {" + s.name + "}\")");
      return;
    }
    FrameVar* f = PickFrame(/*allow_reduced=*/true);
    if (f == nullptr) return;
    if (f->reduced && rng_.Chance(0.6)) {
      Line("print(" + f->name + ")");
    } else {
      Line("print(" + f->name + ".head())");
    }
  }

  void EmitControlFlow() {
    switch (rng_.Below(3)) {
      case 0: {  // if/else: both branches define the same fresh frame.
        FrameVar* src = PickFrame();
        if (src == nullptr) return;
        ScalarVar cond;
        cond.name = NewScalarName();
        Line(cond.name + " = len(" + src->name + ")");
        scalars_.push_back(cond);
        FrameVar out = *src;
        out.name = NewFrameName();
        Line("if " + cond.name + " > " + std::to_string(rng_.Below(40)) +
             ":");
        indent_ = "    ";
        Line(out.name + " = " + src->name + "[" + FilterExpr(*src) + "]");
        indent_ = "";
        Line("else:");
        indent_ = "    ";
        Line(out.name + " = " + src->name + ".head(" +
             std::to_string(1 + rng_.Below(10)) + ")");
        indent_ = "";
        AddFrame(std::move(out));
        return;
      }
      case 1: {  // bounded for over range: repeated schema-preserving op.
        FrameVar* src = PickFrame();
        if (src == nullptr) return;
        Line("for i in range(" + std::to_string(2 + rng_.Below(2)) + "):");
        indent_ = "    ";
        Line(src->name + " = " + src->name + ".head(" +
             std::to_string(5 + rng_.Below(30)) + ")");
        indent_ = "";
        return;
      }
      default: {  // counter-driven while (always terminates).
        ScalarVar acc;
        acc.name = NewScalarName();
        std::string counter = acc.name + "k";
        Line(acc.name + " = 0");
        Line(counter + " = " + std::to_string(2 + rng_.Below(3)));
        Line("while " + counter + " > 0:");
        indent_ = "    ";
        Line(acc.name + " = " + acc.name + " + " + counter);
        Line(counter + " = " + counter + " - 1");
        indent_ = "";
        scalars_.push_back(acc);
        return;
      }
    }
  }

  // ---- bookkeeping ----

  static bool HasKey(const FrameVar& frame) {
    for (const auto& c : frame.cols) {
      if (c.name == "key") return true;
    }
    return false;
  }

  static bool SameColumns(const FrameVar& a, const FrameVar& b) {
    if (a.cols.size() != b.cols.size()) return false;
    for (size_t i = 0; i < a.cols.size(); ++i) {
      if (a.cols[i].name != b.cols[i].name) return false;
    }
    return true;
  }

  void AddFrame(FrameVar frame) {
    frames_.push_back(std::move(frame));
    // Bound the live set so programs stay readable and rounds stay small.
    if (frames_.size() > 8) frames_.erase(frames_.begin() + 2);
  }

  SplitMix rng_;
  ProgramGenOptions options_;
  std::string source_;
  std::string indent_;
  std::vector<TableSpec> tables_;
  std::vector<FrameVar> frames_;
  std::vector<ScalarVar> scalars_;
  int next_frame_id_ = 1;
  int next_scalar_id_ = 1;
  int next_col_id_ = 1;
};

}  // namespace

GeneratedProgram GenerateProgram(uint64_t seed,
                                 const ProgramGenOptions& options) {
  return ProgramBuilder(seed, options).Build();
}

std::string SubstitutePaths(
    std::string source,
    const std::vector<std::pair<std::string, std::string>>& paths) {
  for (const auto& [name, path] : paths) {
    std::string placeholder = "{" + name + "}";
    size_t pos;
    while ((pos = source.find(placeholder)) != std::string::npos) {
      source.replace(pos, placeholder.size(), path);
    }
  }
  return source;
}

}  // namespace lafp::testing
