#ifndef LAFP_TESTING_SHRINKER_H_
#define LAFP_TESTING_SHRINKER_H_

#include <functional>
#include <string>
#include <vector>

#include "testing/tablegen.h"

namespace lafp::testing {

/// A candidate repro: program source (with "{tN}" placeholders) plus the
/// table specs backing it.
struct ShrinkCase {
  std::string source;
  std::vector<TableSpec> tables;
};

/// Predicate: does this candidate still reproduce the divergence? The
/// callback owns table materialization and oracle runs; it must return
/// false for candidates whose reference run fails (an invalid program is
/// not a repro).
using ReproducesFn = std::function<bool(const ShrinkCase&)>;

/// Minimize a diverging case. Strategies, iterated to a fixpoint:
///   - whole-statement deletion (parse -> drop stmt -> regenerate source)
///   - integer-literal simplification (towards 0 / 1)
///   - per-table row bisection (halving while the divergence survives)
///   - per-table column dropping (via TableSpec::keep)
/// `budget` caps the number of predicate evaluations.
ShrinkCase Shrink(ShrinkCase input, const ReproducesFn& reproduces,
                  int budget = 400);

}  // namespace lafp::testing

#endif  // LAFP_TESTING_SHRINKER_H_
