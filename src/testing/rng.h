#ifndef LAFP_TESTING_RNG_H_
#define LAFP_TESTING_RNG_H_

#include <cstdint>

namespace lafp::testing {

/// splitmix64: tiny, fully specified, platform-independent. Fuzz programs
/// and tables must replay from a seed alone, forever, so no <random>
/// distributions (their value mapping is implementation defined).
class SplitMix {
 public:
  explicit SplitMix(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1p-53; }
  bool Chance(double p) { return Unit() < p; }

 private:
  uint64_t state_;
};

}  // namespace lafp::testing

#endif  // LAFP_TESTING_RNG_H_
