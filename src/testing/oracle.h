#ifndef LAFP_TESTING_ORACLE_H_
#define LAFP_TESTING_ORACLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/backend.h"

namespace lafp::testing {

/// How a fuzzed program executes: plain eager statements, the lazy
/// runtime with forcing prints (hand-ported Dask style), or full LaFP
/// (lazy + lazy print + JIT static analysis).
enum class OracleMode : int { kEager = 0, kLazy = 1, kLafp = 2 };

/// One point of the differential configuration matrix.
struct OracleConfig {
  exec::BackendKind backend = exec::BackendKind::kPandas;
  OracleMode mode = OracleMode::kEager;
  /// Graph-optimizer pass subset (lazy::Session OptimizerPass registry);
  /// applied in non-eager modes only.
  bool dedup = false;
  bool redundant = false;
  bool pushdown = false;
  /// Elementwise-chain fusion (kFusedMap) pass.
  bool fuse = false;
  /// ExecutionOptions sweep (DAG scheduler / morsel geometry).
  int num_threads = 1;
  int intra_op_threads = 0;
  size_t morsel_rows = 65536;
  size_t partition_rows = 8192;
  /// Dask spill-to-disk persistence.
  bool spill = false;
  /// Fault-injection specs (LAFP_FAULTS grammar) armed only while the
  /// program executes under this config — the fault axis of the matrix.
  /// The oracle contract with faults armed: the run either produces
  /// reference-identical output or fails with a clean Status; it must
  /// never crash, hang, or print a truncated frame that checksums ok.
  std::string faults;
  /// Plan/result-cache axis: the program runs twice against one fresh
  /// ResultCache — a cold pass that populates it and a warm pass that
  /// splices cached subtrees. The warm outcome is compared against the
  /// reference, and any cold/warm self-mismatch is reported as a failed
  /// Status (which the oracle treats as a divergence since cache configs
  /// never arm faults).
  bool cache = false;
  /// Native-columnar axis: the program replays against LFC conversions of
  /// its base tables (the fuzz harness substitutes `.lfc` paths for this
  /// config; read_csv transparently dispatches on the magic). `lfc_prune`
  /// toggles the zone-map pruning optimizer pass so both the pruned and
  /// unpruned scan paths are cross-checked against the CSV reference.
  bool lfc = false;
  bool lfc_prune = true;
  /// Shared-nothing axis: > 0 runs the program on the shard backend with
  /// that many forked worker processes (overrides `backend`). 0 = off.
  int shards = 0;

  /// Compact display name, e.g. "lafp-modin+dp t4 m1".
  std::string Name() const;
};

/// The oracle baseline: the eager Pandas interpreter with every
/// optimization off — the semantics LaFP promises to preserve.
OracleConfig ReferenceConfig();

/// A deterministic sample of `n` matrix points (always includes the full
/// LaFP config on each backend; the rest drawn from the cross product).
std::vector<OracleConfig> SampleConfigs(uint64_t seed, int n);

/// The small fixed matrix the regression corpus replays: all three
/// backends, every single-pass and all-pass subset, serial and parallel.
std::vector<OracleConfig> RegressionConfigs();

/// `n` matrix points with a fault spec armed (the --faults axis): base
/// configs drawn like SampleConfigs, each crossed with one injection
/// site; spill faults force a spilling Dask config so the site is hit.
std::vector<OracleConfig> FaultConfigs(uint64_t seed, int n);

/// `n` matrix points with the result-cache axis armed (the --cache axis):
/// base configs drawn like SampleConfigs, forced into a lazy mode (the
/// splicer only runs in lazy sessions) with `cache = true` and no faults.
std::vector<OracleConfig> CacheConfigs(uint64_t seed, int n);

/// `n` matrix points with the native-columnar axis armed (the --lfc
/// axis): base configs drawn like SampleConfigs with `lfc = true` and no
/// faults; alternate points disable the zone-prune pass so pruned and
/// unpruned LFC scans are both differentially checked.
std::vector<OracleConfig> LfcConfigs(uint64_t seed, int n);

/// `n` matrix points with the shared-nothing axis armed (the --shards
/// axis): base configs drawn like SampleConfigs, forced onto the shard
/// backend with 1/2/4 worker processes and no faults, so any divergence
/// from the single-process reference is a real cross-process bug.
std::vector<OracleConfig> ShardConfigs(uint64_t seed, int n);

/// Result of one program execution.
struct RunOutcome {
  Status status;           // program-level failure (not a divergence)
  std::string output;      // full printed output
  std::string checksums;   // just the "checksum ..." lines
};

/// Execute `source` (placeholders already substituted) under `config`
/// with a fresh session, tracker, and output stream.
RunOutcome ExecuteUnderConfig(const std::string& source,
                              const OracleConfig& config);

/// Compare a run against the reference. Returns a human-readable
/// divergence description, or nullopt when the run is observationally
/// identical. Frame payloads (checksum lines, canonicalized row order)
/// must match everywhere; full printed output must additionally match for
/// order-preserving backends (Dask legitimately reorders rows, §5.2).
std::optional<std::string> CompareOutcomes(const RunOutcome& reference,
                                           const RunOutcome& run,
                                           const OracleConfig& config);

/// Extract the "checksum ..." lines from captured output.
std::string ChecksumLines(const std::string& output);

}  // namespace lafp::testing

#endif  // LAFP_TESTING_ORACLE_H_
