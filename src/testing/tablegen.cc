#include "testing/tablegen.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/hash.h"
#include "common/string_util.h"
#include "testing/rng.h"

namespace lafp::testing {

namespace {

std::string TimestampForIndex(uint64_t idx) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "2024-%02d-%02d %02d:00:00",
                static_cast<int>(idx % 12 + 1), static_cast<int>(idx % 28 + 1),
                static_cast<int>(idx % 24));
  return buf;
}

/// One cell; always consumes exactly two draws (null decision + value) so
/// the stream stays aligned across rows/keep shrinking.
std::string Cell(const FuzzColumn& col, SplitMix* rng, bool skewed) {
  bool null = rng->Chance(col.null_prob);
  uint64_t raw = rng->Next();
  if (null) return "";
  uint64_t domain = static_cast<uint64_t>(col.domain);
  uint64_t idx = raw % domain;
  if (skewed) {
    // Quadratic skew toward 0: duplicates + hot keys for joins/groupbys.
    double u = static_cast<double>(raw >> 11) * 0x1p-53;
    idx = static_cast<uint64_t>(static_cast<double>(domain) * u * u);
    if (idx >= domain) idx = domain - 1;
  }
  switch (col.kind) {
    case 'i':
      return std::to_string(static_cast<int64_t>(idx) - 1);  // a few -1s
    case 'f':
      // Quarter steps are exact in binary: CSV round-trips bit-identically.
      return FormatDouble(static_cast<double>(idx) * 0.25);
    case 's':
      return "v" + std::to_string(idx);
    case 't':
      return TimestampForIndex(idx);
  }
  return "";
}

}  // namespace

std::vector<FuzzColumn> SchemaForSeed(uint64_t seed,
                                      const std::string& name) {
  SplitMix rng(seed ^ Fnv1a64("schema"));
  std::vector<FuzzColumn> cols;
  static const int kKeyDomains[] = {2, 3, 5, 8};
  static const int kCatDomains[] = {2, 3, 4, 6};
  cols.push_back({"key", 'i', 0.0, kKeyDomains[rng.Below(4)]});
  cols.push_back({"cat_" + name, 's', rng.Chance(0.3) ? 0.1 : 0.0,
                  kCatDomains[rng.Below(4)]});
  static const char kKinds[] = {'i', 'f', 'f', 's', 't'};
  static const double kNullProbs[] = {0.0, 0.0, 0.05, 0.2};
  static const int kDomains[] = {4, 8, 16, 40};
  size_t extras = 2 + rng.Below(3);
  int counter_by_kind[128] = {};
  for (size_t j = 0; j < extras; ++j) {
    FuzzColumn col;
    col.kind = kKinds[rng.Below(5)];
    col.name = std::string(1, col.kind) +
               std::to_string(counter_by_kind[static_cast<int>(col.kind)]++) +
               "_" + name;
    col.null_prob = kNullProbs[rng.Below(4)];
    col.domain = kDomains[rng.Below(4)];
    cols.push_back(col);
  }
  return cols;
}

std::vector<FuzzColumn> SchemaForSpec(const TableSpec& spec) {
  std::vector<FuzzColumn> full = SchemaForSeed(spec.seed, spec.name);
  if (spec.keep.empty()) return full;
  std::vector<FuzzColumn> out;
  for (const auto& col : full) {
    for (const auto& k : spec.keep) {
      if (col.name == k) {
        out.push_back(col);
        break;
      }
    }
  }
  return out;
}

Result<std::string> WriteTable(const TableSpec& spec,
                               const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::vector<FuzzColumn> full = SchemaForSeed(spec.seed, spec.name);
  std::vector<bool> kept(full.size(), spec.keep.empty());
  if (!spec.keep.empty()) {
    for (size_t c = 0; c < full.size(); ++c) {
      for (const auto& k : spec.keep) {
        if (full[c].name == k) kept[c] = true;
      }
    }
  }
  std::string path = dir + "/" + spec.name + ".csv";
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot create " + path);
  bool first = true;
  for (size_t c = 0; c < full.size(); ++c) {
    if (!kept[c]) continue;
    if (!first) out << ',';
    first = false;
    out << full[c].name;
  }
  out << '\n';
  SplitMix rng(spec.seed ^ Fnv1a64("cells"));
  for (int64_t r = 0; r < spec.rows; ++r) {
    first = true;
    for (size_t c = 0; c < full.size(); ++c) {
      std::string cell = Cell(full[c], &rng, /*skewed=*/c == 0);
      if (!kept[c]) continue;
      if (!first) out << ',';
      first = false;
      out << cell;
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return path;
}

std::string TableSpec::ToDirective() const {
  std::string line = "#! table " + name + " seed=" + std::to_string(seed) +
                     " rows=" + std::to_string(rows);
  if (!keep.empty()) {
    line += " keep=";
    for (size_t i = 0; i < keep.size(); ++i) {
      if (i > 0) line += ",";
      line += keep[i];
    }
  }
  return line;
}

Result<TableSpec> TableSpec::FromDirective(const std::string& line) {
  std::vector<std::string> tokens = Split(Trim(line), ' ');
  if (tokens.size() < 3 || tokens[0] != "#!" || tokens[1] != "table") {
    return Status::Invalid("not a table directive: " + line);
  }
  TableSpec spec;
  spec.name = std::string(tokens[2]);
  for (size_t i = 3; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    auto eq = tok.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("bad table directive field: " + line);
    }
    std::string key = tok.substr(0, eq);
    std::string value = tok.substr(eq + 1);
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rows") {
      spec.rows = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "keep") {
      for (const std::string& col : Split(value, ',')) {
        if (!col.empty()) spec.keep.push_back(col);
      }
    } else {
      return Status::Invalid("unknown table directive field: " + line);
    }
  }
  return spec;
}

}  // namespace lafp::testing
