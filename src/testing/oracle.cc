#include "testing/oracle.h"

#include <sstream>

#include "common/memory_tracker.h"
#include "lazy/session.h"
#include "optimizer/passes.h"
#include "script/analyze.h"
#include "testing/rng.h"

namespace lafp::testing {

std::string OracleConfig::Name() const {
  std::string name;
  switch (mode) {
    case OracleMode::kEager:
      name = "eager-";
      break;
    case OracleMode::kLazy:
      name = "lazy-";
      break;
    case OracleMode::kLafp:
      name = "lafp-";
      break;
  }
  name += exec::BackendKindName(backend);
  if (dedup || redundant || pushdown || fuse) {
    name += "+";
    if (dedup) name += "d";
    if (redundant) name += "r";
    if (pushdown) name += "p";
    if (fuse) name += "f";
  }
  name += " t" + std::to_string(num_threads);
  if (intra_op_threads != 0) {
    name += " k" + std::to_string(intra_op_threads);
  }
  if (morsel_rows != 65536) name += " m" + std::to_string(morsel_rows);
  if (partition_rows != 8192) name += " pr" + std::to_string(partition_rows);
  if (spill) name += " spill";
  if (!faults.empty()) name += " faults[" + faults + "]";
  if (cache) name += " cache";
  if (lfc) name += lfc_prune ? " lfc" : " lfc-np";
  if (shards > 0) name += " sh" + std::to_string(shards);
  return name;
}

OracleConfig ReferenceConfig() {
  return OracleConfig{};  // eager Pandas, no passes, serial everywhere
}

std::vector<OracleConfig> SampleConfigs(uint64_t seed, int n) {
  std::vector<OracleConfig> configs;
  // Anchor: the full LaFP pipeline on every backend — the paper's actual
  // claim — always present regardless of the sample size.
  for (auto backend :
       {exec::BackendKind::kPandas, exec::BackendKind::kModin,
        exec::BackendKind::kDask}) {
    OracleConfig c;
    c.backend = backend;
    c.mode = OracleMode::kLafp;
    c.dedup = c.redundant = c.pushdown = c.fuse = true;
    c.num_threads = backend == exec::BackendKind::kModin ? 4 : 1;
    configs.push_back(c);
  }
  SplitMix rng(seed);
  while (static_cast<int>(configs.size()) < n) {
    OracleConfig c;
    switch (rng.Below(3)) {
      case 0:
        c.backend = exec::BackendKind::kPandas;
        break;
      case 1:
        c.backend = exec::BackendKind::kModin;
        break;
      default:
        c.backend = exec::BackendKind::kDask;
        break;
    }
    if (c.backend == exec::BackendKind::kDask) {
      // Dask is a lazy engine: its plan caches are driven through the
      // lazy runtime in every real configuration.
      c.mode = rng.Chance(0.5) ? OracleMode::kLazy : OracleMode::kLafp;
      c.spill = rng.Chance(0.3);
    } else {
      switch (rng.Below(3)) {
        case 0:
          c.mode = OracleMode::kEager;
          break;
        case 1:
          c.mode = OracleMode::kLazy;
          break;
        default:
          c.mode = OracleMode::kLafp;
          break;
      }
    }
    if (c.mode != OracleMode::kEager) {
      unsigned mask = static_cast<unsigned>(rng.Below(16));
      c.dedup = (mask & 1) != 0;
      c.redundant = (mask & 2) != 0;
      c.pushdown = (mask & 4) != 0;
      c.fuse = (mask & 8) != 0;
    }
    c.num_threads = rng.Chance(0.5) ? 1 : 4;
    static const int kIntraOp[] = {0, 1, 8};
    c.intra_op_threads = kIntraOp[rng.Below(3)];
    if (c.intra_op_threads != 0 && rng.Chance(0.4)) c.morsel_rows = 1;
    static const size_t kPartitionRows[] = {8192, 7, 32};
    c.partition_rows = kPartitionRows[rng.Below(3)];
    configs.push_back(c);
  }
  return configs;
}

std::vector<OracleConfig> FaultConfigs(uint64_t seed, int n) {
  static const char* kSites[] = {"spill.write", "spill.read",  "csv.read",
                                 "csv.write",   "mem.reserve", "backend.execute"};
  std::vector<OracleConfig> base = SampleConfigs(seed ^ 0xfa1u, n);
  SplitMix rng(seed * 0x9e3779b9ULL + 0xfa);
  std::vector<OracleConfig> configs;
  for (int i = 0; i < n; ++i) {
    OracleConfig c = base[static_cast<size_t>(i) % base.size()];
    const std::string site = kSites[rng.Below(6)];
    if (site.rfind("spill.", 0) == 0) {
      // Spill sites are only reachable from a spilling Dask round.
      c.backend = exec::BackendKind::kDask;
      if (c.mode == OracleMode::kEager) c.mode = OracleMode::kLazy;
      c.spill = true;
      c.partition_rows = 16;
    }
    std::string spec = site;
    if (rng.Chance(0.3)) {
      spec += ":p=0.5,seed=" + std::to_string(seed + i) + ",fires=2";
    } else {
      spec += ":nth=" + std::to_string(1 + rng.Below(4));
    }
    if (site == "mem.reserve") {
      spec += ",code=oom";  // budget denial must look like real OOM
    } else if (site == "backend.execute") {
      spec += ",code=exec";
    }
    c.faults = spec;
    configs.push_back(std::move(c));
  }
  return configs;
}

std::vector<OracleConfig> CacheConfigs(uint64_t seed, int n) {
  std::vector<OracleConfig> configs = SampleConfigs(seed ^ 0xcac4eull, n);
  for (auto& c : configs) {
    // The cache splicer only runs in lazy sessions; eager points would
    // exercise nothing. Faults stay off so a failed Status is always a
    // genuine divergence under this axis.
    if (c.mode == OracleMode::kEager) c.mode = OracleMode::kLafp;
    c.cache = true;
    c.faults.clear();
  }
  return configs;
}

std::vector<OracleConfig> LfcConfigs(uint64_t seed, int n) {
  std::vector<OracleConfig> configs = SampleConfigs(seed ^ 0x1fcull, n);
  size_t i = 0;
  for (auto& c : configs) {
    // The harness points these configs at LFC conversions of the base
    // tables; faults stay off so a failed Status is always a genuine
    // divergence. Alternate points run with zone-map pruning disabled so
    // the unpruned native scan is cross-checked too.
    c.lfc = true;
    c.lfc_prune = (i++ % 2) == 0;
    c.faults.clear();
  }
  return configs;
}

std::vector<OracleConfig> ShardConfigs(uint64_t seed, int n) {
  std::vector<OracleConfig> configs = SampleConfigs(seed ^ 0x54a7dull, n);
  SplitMix rng(seed * 0x9e3779b9ULL + 0x54);
  for (auto& c : configs) {
    // The shard count (1 included: the degenerate single-worker cluster
    // must also match) is the variable under test; faults stay off so a
    // failed Status is always a genuine divergence under this axis.
    static const int kShardCounts[] = {1, 2, 4};
    c.backend = exec::BackendKind::kShard;
    c.shards = kShardCounts[rng.Below(3)];
    c.spill = false;
    c.faults.clear();
  }
  return configs;
}

std::vector<OracleConfig> RegressionConfigs() {
  std::vector<OracleConfig> configs;
  for (auto backend :
       {exec::BackendKind::kPandas, exec::BackendKind::kModin,
        exec::BackendKind::kDask}) {
    const bool dask = backend == exec::BackendKind::kDask;
    for (unsigned mask : {0u, 1u, 2u, 4u, 8u, 15u}) {
      OracleConfig c;
      c.backend = backend;
      c.mode = dask ? OracleMode::kLazy : OracleMode::kEager;
      if (mask != 0) c.mode = OracleMode::kLafp;
      c.dedup = (mask & 1) != 0;
      c.redundant = (mask & 2) != 0;
      c.pushdown = (mask & 4) != 0;
      c.fuse = (mask & 8) != 0;
      c.num_threads = backend == exec::BackendKind::kModin ? 4 : 1;
      c.partition_rows = 16;  // several partitions even on tiny repros
      configs.push_back(c);
    }
    // Threading / morsel-geometry points for the full-pass pipeline.
    OracleConfig threads;
    threads.backend = backend;
    threads.mode = dask ? OracleMode::kLazy : OracleMode::kLafp;
    threads.dedup = threads.redundant = threads.pushdown = threads.fuse =
        !dask;
    threads.num_threads = 4;
    threads.intra_op_threads = 8;
    threads.morsel_rows = 1;
    threads.partition_rows = 16;
    threads.spill = dask;
    configs.push_back(threads);
  }
  return configs;
}

namespace {

/// One session run; `cache` (when non-null) is shared into the session so
/// successive calls can exercise cold/warm cache behaviour.
RunOutcome ExecuteOnce(const std::string& source, const OracleConfig& config,
                       const std::shared_ptr<lazy::ResultCache>& cache) {
  RunOutcome outcome;
  MemoryTracker tracker(0);
  std::stringstream output;

  lazy::SessionOptions opts;
  opts.backend = config.backend;
  opts.tracker = &tracker;
  opts.output = &output;
  opts.mode = config.mode == OracleMode::kEager ? lazy::ExecutionMode::kEager
                                                : lazy::ExecutionMode::kLazy;
  opts.lazy_print = config.mode == OracleMode::kLafp;
  opts.exec.num_threads = config.num_threads;
  opts.exec.intra_op_threads = config.intra_op_threads;
  opts.exec.morsel_rows = config.morsel_rows;
  opts.backend_config.partition_rows = config.partition_rows;
  opts.backend_config.spill_persisted = config.spill;
  if (config.shards > 0) {
    opts.backend = exec::BackendKind::kShard;
    opts.backend_config.shards = config.shards;
  }
  // Faults arm via the session so they cover exactly the program's
  // execution: the table CSVs were materialized before this call, and the
  // session's FaultScope restores (with fresh counters) on return —
  // replay and shrink see identical firing sequences.
  opts.fault_config = config.faults;
  if (cache != nullptr) {
    opts.cache.enabled = true;
    opts.cache.cache = cache;
  }

  lazy::Session session(opts);
  // LFC configs install the optimizer even with every rewrite pass off so
  // the zone-prune pass can run (it is the only path that attaches prune
  // predicates to native scans); lfc_prune=false checks the unpruned scan.
  if (config.mode != OracleMode::kEager &&
      (config.dedup || config.redundant || config.pushdown || config.fuse ||
       config.lfc)) {
    opt::OptimizerOptions pass_options;
    pass_options.deduplicate = config.dedup;
    pass_options.redundant = config.redundant;
    pass_options.pushdown = config.pushdown;
    pass_options.fuse = config.fuse;
    pass_options.zone_prune = config.lfc_prune;
    opt::InstallDefaultOptimizer(&session, pass_options);
  }

  script::RunOptions run_opts;
  run_opts.analyze = config.mode == OracleMode::kLafp;

  outcome.status = script::RunProgram(source, &session, run_opts);
  outcome.output = output.str();
  outcome.checksums = ChecksumLines(outcome.output);
  return outcome;
}

}  // namespace

RunOutcome ExecuteUnderConfig(const std::string& source,
                              const OracleConfig& config) {
  if (!config.cache) return ExecuteOnce(source, config, nullptr);
  // Cache axis: cold pass populates a fresh shared cache, warm pass
  // splices from it; the warm outcome is what the matrix compares. A
  // cold/warm self-mismatch can hide from the reference comparison (the
  // warm run may be the correct one), so it is reported as a failed
  // Status — cache configs never arm faults, making that a divergence.
  auto cache = std::make_shared<lazy::ResultCache>();
  RunOutcome cold = ExecuteOnce(source, config, cache);
  RunOutcome warm = ExecuteOnce(source, config, cache);
  const bool order_preserving = config.backend != exec::BackendKind::kDask;
  const bool mismatch =
      cold.status.ok() != warm.status.ok() ||
      cold.checksums != warm.checksums ||
      (order_preserving && cold.status.ok() && cold.output != warm.output);
  if (mismatch) {
    RunOutcome outcome;
    outcome.status = Status::Invalid(
        "cache cold/warm self-mismatch: cold " + cold.status.ToString() +
        " vs warm " + warm.status.ToString() + "\n--- cold ---\n" +
        cold.output + "--- warm ---\n" + warm.output);
    return outcome;
  }
  return warm;
}

std::string ChecksumLines(const std::string& output) {
  std::istringstream in(output);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      out += line;
      out += "\n";
    }
  }
  return out;
}

std::optional<std::string> CompareOutcomes(const RunOutcome& reference,
                                           const RunOutcome& run,
                                           const OracleConfig& config) {
  if (!reference.status.ok()) {
    // Callers should skip the matrix when the reference fails; a failing
    // reference gives the oracle nothing to compare against.
    return std::nullopt;
  }
  if (!run.status.ok()) {
    if (!config.faults.empty()) {
      // With faults armed a clean Status is an acceptable outcome — the
      // oracle only rejects crashes/hangs (which never reach here) and
      // wrong output from runs that claim success.
      return std::nullopt;
    }
    return "status: reference ok but " + config.Name() + " failed: " +
           run.status.ToString();
  }
  if (run.checksums != reference.checksums) {
    return "frame checksums differ under " + config.Name() +
           "\n--- reference ---\n" + reference.checksums + "--- " +
           config.Name() + " ---\n" + run.checksums;
  }
  // Dask reorders rows (§5.2), so only the canonicalized checksum payload
  // is comparable; every order-preserving backend must reproduce the
  // printed output byte for byte.
  if (config.backend != exec::BackendKind::kDask &&
      run.output != reference.output) {
    return "printed output differs under " + config.Name() +
           "\n--- reference ---\n" + reference.output + "--- " +
           config.Name() + " ---\n" + run.output;
  }
  return std::nullopt;
}

}  // namespace lafp::testing
