#ifndef LAFP_TESTING_FUZZER_H_
#define LAFP_TESTING_FUZZER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "testing/oracle.h"
#include "testing/progen.h"
#include "testing/shrinker.h"

namespace lafp::testing {

struct FuzzOptions {
  uint64_t seed = 0;
  int iters = 100;
  /// When set, skip seed derivation and check exactly one program with
  /// this generator seed (divergence debugging).
  bool replay = false;
  uint64_t replay_seed = 0;
  /// When non-empty, check this corpus file instead of generating
  /// programs (verbose per-config verdicts, like replay).
  std::string corpus_file;
  /// Matrix points sampled per program (on top of the reference run).
  int matrix = 8;
  /// Scratch directory for generated CSVs; empty = under the system
  /// temp directory.
  std::string data_dir;
  /// Where shrunk repros are written; empty = don't write corpus files.
  std::string corpus_dir;
  bool shrink = true;
  int shrink_budget = 400;
  /// Add the fault axis: each program is additionally checked under
  /// FaultConfigs() points (injected IO/OOM/exec faults). The oracle
  /// accepts reference-identical output or a clean Status from those
  /// runs; crashes, hangs, and wrong successful output are divergences.
  bool faults = false;
  /// Add the result-cache axis: each program is additionally checked
  /// under CacheConfigs() points (cold pass populating a fresh cache,
  /// warm pass splicing from it; the warm outcome must match the
  /// reference and the cold pass byte for byte).
  bool cache = false;
  /// Add the native-columnar axis: each program is additionally checked
  /// under LfcConfigs() points. The harness converts the materialized
  /// base-table CSVs to LFC (deliberately tiny chunks so multi-chunk
  /// assembly and zone-map pruning both engage) and substitutes the
  /// `.lfc` paths for those configs; the reference keeps reading CSV.
  bool lfc = false;
  /// Add the shared-nothing axis: each program is additionally checked
  /// under ShardConfigs() points, which run it on the shard backend with
  /// 1/2/4 forked worker processes. Output must match the single-process
  /// reference byte for byte — any cross-process drift is a divergence.
  bool shards = false;
  /// Progress / divergence log; null = silent.
  std::ostream* log = nullptr;
  ProgramGenOptions progen;
};

struct FuzzDivergence {
  uint64_t program_seed = 0;
  std::string config_name;
  /// Human-readable description from CompareOutcomes (pre-shrink).
  std::string detail;
  /// The minimized case (== the original when shrinking is off).
  ShrinkCase repro;
  std::string corpus_path;  // empty when no corpus dir was given
};

struct FuzzStats {
  int iterations = 0;
  /// Programs whose reference run failed; generator bugs, not engine
  /// divergences — the matrix is skipped for them.
  int reference_failures = 0;
  std::vector<FuzzDivergence> divergences;
};

/// Outcome of checking one case against a config matrix.
enum class CaseVerdict : int { kOk = 0, kReferenceFailed = 1, kDiverged = 2 };

struct CaseResult {
  CaseVerdict verdict = CaseVerdict::kOk;
  std::string config_name;  // set when diverged
  std::string detail;       // set when diverged / reference failed
};

/// Materialize the case's tables into `dir` and return the source with
/// placeholders substituted.
Result<std::string> MaterializeCase(const ShrinkCase& c,
                                    const std::string& dir);

/// Run the case under the reference config and every matrix point,
/// reporting the first divergence found.
CaseResult CheckCase(const ShrinkCase& c,
                     const std::vector<OracleConfig>& configs,
                     const std::string& data_dir);

/// The main differential-fuzzing loop: generate, cross-check, shrink,
/// and (optionally) persist repros.
FuzzStats RunFuzz(const FuzzOptions& options);

/// Corpus files: "#" comment lines, "#! table ..." directives, then the
/// PdScript source with "{tN}" placeholders.
Result<std::string> WriteCorpusFile(const std::string& dir,
                                    const std::string& stem,
                                    const ShrinkCase& c,
                                    const std::string& comment);
Result<ShrinkCase> ReadCorpusFile(const std::string& path);
/// Sorted paths of the "*.pds" corpus files under `dir`.
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace lafp::testing

#endif  // LAFP_TESTING_FUZZER_H_
