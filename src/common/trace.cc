#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace lafp::trace {

namespace {

/// Thread context. The shard pointer is per-thread state of the single
/// global tracer; the span id is the innermost installed span.
thread_local uint64_t tls_current_span = 0;
thread_local int tls_thread_id = 0;  // 0 = unassigned (ids start at 1)

std::atomic<int> g_next_thread_id{1};

int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendArgsJson(std::string* out, const std::vector<EventArg>& args) {
  *out += "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\"";
    AppendJsonEscaped(out, args[i].key);
    *out += "\":";
    if (args[i].is_string) {
      *out += "\"";
      AppendJsonEscaped(out, args[i].string_value);
      *out += "\"";
    } else {
      *out += std::to_string(args[i].int_value);
    }
  }
  *out += "}";
}

void DumpGlobalAtExit() {
  Tracer* tracer = Tracer::Global();
  std::string path = tracer->export_path();
  if (path.empty()) return;
  // Best effort: exit-time dump has no caller to report to.
  (void)tracer->WriteChromeTrace(path);
  // Multi-session processes additionally get one sink per session
  // ("<path>.s<session id>.json"): the merged dump interleaves every
  // session, so concurrent sessions would otherwise have no per-session
  // artifact at all (and tools that post-process "the session's trace"
  // would read whichever session happened to dominate — effectively
  // last-writer-wins).
  std::vector<Event> events = tracer->Snapshot();
  std::vector<const Event*> session_roots;
  for (const Event& e : events) {
    if (e.category == "session" && e.parent_id == 0 && e.span_id != 0) {
      session_roots.push_back(&e);
    }
  }
  if (session_roots.size() < 2) return;
  for (const Event* root : session_roots) {
    int64_t session_id = static_cast<int64_t>(root->span_id);
    for (const EventArg& a : root->args) {
      if (a.key == "session_id" && !a.is_string) session_id = a.int_value;
    }
    (void)tracer->WriteChromeTraceForRoot(
        path + ".s" + std::to_string(session_id) + ".json", root->span_id);
  }
}

}  // namespace

Tracer::Tracer() : epoch_nanos_(SteadyNanos()) {}

Tracer* Tracer::Global() {
  // Leaky singleton: worker threads may record during static destruction.
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    if (const char* env = std::getenv("LAFP_TRACE")) {
      if (env[0] != '\0') {
        t->set_enabled(true);
        t->set_export_path(env);
        std::atexit(DumpGlobalAtExit);
      }
    }
    return t;
  }();
  return tracer;
}

void Tracer::set_export_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  export_path_ = std::move(path);
}

std::string Tracer::export_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return export_path_;
}

int64_t Tracer::NowMicros() const {
  return (SteadyNanos() - epoch_nanos_) / 1000;
}

uint64_t Tracer::CurrentSpanId() { return tls_current_span; }

int Tracer::CurrentThreadId() {
  if (tls_thread_id == 0) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

Tracer::Shard* Tracer::ThisThreadShard() {
  // One shard per (thread, tracer). There is a single global tracer, so a
  // plain thread_local pointer suffices; shards are owned by the tracer
  // and survive thread exit (their events still export).
  thread_local Shard* shard = nullptr;
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  return shard;
}

void Tracer::Record(Event event) {
  event.tid = CurrentThreadId();
  Shard* shard = ThisThreadShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->events.push_back(std::move(event));
}

std::vector<Event> Tracer::Snapshot() const {
  std::vector<Event> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      merged.insert(merged.end(), shard->events.begin(),
                    shard->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Event& a, const Event& b) {
    if (a.ts_micros != b.ts_micros) return a.ts_micros < b.ts_micros;
    return a.span_id < b.span_id;
  });
  return merged;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->events.clear();
  }
}

std::vector<Event> Tracer::SnapshotSubtree(uint64_t root_span_id) const {
  std::vector<Event> events = Snapshot();
  if (root_span_id == 0) return {};
  // Membership by parent link. Events are sorted by start time and a
  // parent span *starts* before its children, but it is *recorded* at
  // destruction — so a single forward pass over start-ordered events sees
  // every child after its parent's start, which is all membership needs:
  // iterate to a fixed point to stay robust against clock-equal starts.
  std::unordered_set<uint64_t> members{root_span_id};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Event& e : events) {
      if (e.span_id == 0 || members.count(e.span_id) > 0) continue;
      if (members.count(e.parent_id) > 0) {
        members.insert(e.span_id);
        grew = true;
      }
    }
  }
  std::vector<Event> out;
  for (Event& e : events) {
    const bool span_member = e.span_id != 0 && members.count(e.span_id) > 0;
    const bool instant_member =
        e.span_id == 0 && members.count(e.parent_id) > 0;
    if (span_member || instant_member) out.push_back(std::move(e));
  }
  return out;
}

std::string Tracer::EventsToChromeJson(const std::vector<Event>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, e.category);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":" + std::to_string(e.ts_micros);
    if (e.dur_micros >= 0) {
      out += ",\"ph\":\"X\",\"dur\":" + std::to_string(e.dur_micros);
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out += ",\"args\":";
    // Span identity rides in args: Chrome's nesting is per-tid only, and
    // the cross-thread parent link is exactly what we need to preserve.
    std::vector<EventArg> args;
    args.push_back(IntArg("span_id", static_cast<int64_t>(e.span_id)));
    args.push_back(IntArg("parent", static_cast<int64_t>(e.parent_id)));
    args.insert(args.end(), e.args.begin(), e.args.end());
    AppendArgsJson(&out, args);
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::ChromeTraceJson() const {
  return EventsToChromeJson(Snapshot());
}

namespace {

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace output " + path);
  }
  out << body;
  out.flush();
  if (!out.good()) return Status::IOError("failed writing trace " + path);
  return Status::OK();
}

}  // namespace

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(path, ChromeTraceJson());
}

Status Tracer::WriteChromeTraceForRoot(const std::string& path,
                                       uint64_t root_span_id) const {
  return WriteStringToFile(path,
                           EventsToChromeJson(SnapshotSubtree(root_span_id)));
}

namespace {

std::string RenderReportFromEvents(const std::vector<Event>& events) {
  // EXPLAIN ANALYZE-style tree: spans grouped under their parents,
  // children in start order, instants (faults) inline.
  std::unordered_map<uint64_t, std::vector<const Event*>> children;
  std::vector<const Event*> roots;
  for (const Event& e : events) {
    uint64_t parent = e.parent_id;
    bool parent_known = false;
    if (parent != 0) {
      for (const Event& p : events) {
        if (p.span_id == parent && p.dur_micros >= 0) {
          parent_known = true;
          break;
        }
      }
    }
    if (parent_known) {
      children[parent].push_back(&e);
    } else {
      roots.push_back(&e);
    }
  }
  std::ostringstream os;
  os << "trace report (" << events.size() << " events)\n";
  std::function<void(const Event*, int)> render = [&](const Event* e,
                                                      int depth) {
    for (int i = 0; i < depth; ++i) os << "  ";
    os << e->category << " " << e->name;
    if (e->dur_micros >= 0) {
      os << ": " << e->dur_micros << "us";
    } else {
      os << " @" << e->ts_micros << "us";
    }
    for (const EventArg& a : e->args) {
      os << " " << a.key << "=";
      if (a.is_string) {
        os << a.string_value;
      } else {
        os << a.int_value;
      }
    }
    os << " [tid " << e->tid << "]\n";
    if (e->span_id != 0) {
      auto it = children.find(e->span_id);
      if (it != children.end()) {
        for (const Event* c : it->second) render(c, depth + 1);
      }
    }
  };
  for (const Event* r : roots) render(r, 1);
  return os.str();
}

}  // namespace

std::string Tracer::RenderReport() const {
  return RenderReportFromEvents(Snapshot());
}

std::string Tracer::RenderReportForRoot(uint64_t root_span_id) const {
  return RenderReportFromEvents(SnapshotSubtree(root_span_id));
}

SpanContextScope::SpanContextScope(uint64_t span_id)
    : prev_(tls_current_span) {
  tls_current_span = span_id;
}

SpanContextScope::~SpanContextScope() { tls_current_span = prev_; }

Span::Span(std::string_view name, std::string_view category) {
  if (!Tracer::Global()->enabled()) return;
  Begin(name, category, tls_current_span, /*install=*/true);
}

Span::Span(std::string_view name, std::string_view category,
           uint64_t parent_id, bool install) {
  if (!Tracer::Global()->enabled()) return;
  Begin(name, category, parent_id, install);
}

void Span::Begin(std::string_view name, std::string_view category,
                 uint64_t parent_id, bool install) {
  Tracer* tracer = Tracer::Global();
  active_ = true;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.span_id = tracer->NextSpanId();
  event_.parent_id = parent_id;
  event_.ts_micros = tracer->NowMicros();
  if (install) {
    installed_ = true;
    prev_current_ = tls_current_span;
    tls_current_span = event_.span_id;
  }
}

Span::~Span() {
  if (!active_) return;
  if (installed_) tls_current_span = prev_current_;
  Tracer* tracer = Tracer::Global();
  event_.dur_micros = tracer->NowMicros() - event_.ts_micros;
  tracer->Record(std::move(event_));
}

void Span::AddArg(std::string_view key, int64_t value) {
  if (!active_) return;
  event_.args.push_back(IntArg(key, value));
}

void Span::AddArg(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.args.push_back(StrArg(key, value));
}

void Instant(std::string_view name, std::string_view category,
             std::vector<EventArg> args) {
  Tracer* tracer = Tracer::Global();
  if (!tracer->enabled()) return;
  Event e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_micros = tracer->NowMicros();
  e.dur_micros = -1;
  e.parent_id = Tracer::CurrentSpanId();
  e.args = std::move(args);
  tracer->Record(std::move(e));
}

}  // namespace lafp::trace
