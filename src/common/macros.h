#ifndef LAFP_COMMON_MACROS_H_
#define LAFP_COMMON_MACROS_H_

/// Propagate a non-OK Status from the current function.
#define LAFP_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::lafp::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

#define LAFP_CONCAT_IMPL(x, y) x##y
#define LAFP_CONCAT(x, y) LAFP_CONCAT_IMPL(x, y)

/// Evaluate an expression yielding Result<T>; on error propagate the Status,
/// otherwise move the value into `lhs` (which may be a declaration).
#define LAFP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

#define LAFP_ASSIGN_OR_RETURN(lhs, rexpr) \
  LAFP_ASSIGN_OR_RETURN_IMPL(LAFP_CONCAT(_res_, __LINE__), lhs, rexpr)

#endif  // LAFP_COMMON_MACROS_H_
