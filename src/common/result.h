#ifndef LAFP_COMMON_RESULT_H_
#define LAFP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace lafp {

/// Value-or-error holder, modeled on arrow::Result. A Result is either a
/// non-OK Status or a T; constructing one from an OK Status is a programming
/// error (asserted in debug builds, degraded to an Invalid status otherwise).
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Invalid("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace lafp

#endif  // LAFP_COMMON_RESULT_H_
