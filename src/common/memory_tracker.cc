#include "common/memory_tracker.h"

#include <algorithm>
#include <sstream>

#include "common/fault.h"
#include "common/macros.h"

namespace lafp {

Status MemoryTracker::Reserve(int64_t bytes) {
  if (bytes < 0) return Status::Invalid("negative reservation");
  // Budget-denial injection site: a fired fault is indistinguishable from
  // a genuine budget rejection (usage stays unchanged either way).
  LAFP_RETURN_NOT_OK(FaultPoint("mem.reserve"));
  return ReserveChain(bytes);
}

Status MemoryTracker::ReserveChain(int64_t bytes) {
  // Charge ancestors first: if this tracker's own budget then rejects,
  // the ancestor charge is rolled back and the whole chain is unchanged.
  if (parent_ != nullptr) LAFP_RETURN_NOT_OK(parent_->ReserveChain(bytes));
  const int64_t budget = budget_.load(std::memory_order_relaxed);
  int64_t cur = current_.load(std::memory_order_relaxed);
  while (true) {
    int64_t next = cur + bytes;
    if (budget > 0 && next > budget) {
      if (parent_ != nullptr) parent_->Release(bytes);  // roll back
      std::ostringstream msg;
      msg << "memory budget exceeded: in use " << cur << " + request "
          << bytes << " > budget " << budget;
      return Status::OutOfMemory(msg.str());
    }
    if (current_.compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
      // Peak update: monotonic max, both lifetime and round-epoch.
      int64_t prev_peak = peak_.load(std::memory_order_relaxed);
      while (next > prev_peak && !peak_.compare_exchange_weak(
                                     prev_peak, next,
                                     std::memory_order_relaxed)) {
      }
      int64_t prev_round = round_peak_.load(std::memory_order_relaxed);
      while (next > prev_round && !round_peak_.compare_exchange_weak(
                                      prev_round, next,
                                      std::memory_order_relaxed)) {
      }
      return Status::OK();
    }
  }
}

void MemoryTracker::Release(int64_t bytes) {
  if (bytes <= 0) return;
  ReleaseLocal(bytes);
  if (parent_ != nullptr) parent_->Release(bytes);
}

void MemoryTracker::ReleaseLocal(int64_t bytes) {
  int64_t cur = current_.load(std::memory_order_relaxed);
  while (true) {
    int64_t next = std::max<int64_t>(0, cur - bytes);
    if (current_.compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
      return;
    }
  }
}

void MemoryTracker::Reset() {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  round_peak_.store(0, std::memory_order_relaxed);
}

std::string MemoryTracker::ToString() const {
  std::ostringstream os;
  os << "MemoryTracker{current=" << current() << ", peak=" << peak()
     << ", budget=" << budget() << "}";
  return os.str();
}

MemoryTracker* MemoryTracker::Default() {
  static MemoryTracker* tracker = new MemoryTracker(0);
  return tracker;
}

Status ScopedReservation::Make(MemoryTracker* tracker, int64_t bytes,
                               ScopedReservation* out) {
  LAFP_RETURN_NOT_OK(tracker->Reserve(bytes));
  *out = ScopedReservation(tracker, bytes);
  return Status::OK();
}

}  // namespace lafp
