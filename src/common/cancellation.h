#ifndef LAFP_COMMON_CANCELLATION_H_
#define LAFP_COMMON_CANCELLATION_H_

#include <atomic>

#include "common/status.h"

namespace lafp {

/// Cooperative cancellation flag shared between a driver and its workers.
/// The first failure (or an external caller) flips it; long-running tasks
/// check it at their next safe point and abandon their work with
/// StatusCode::kCancelled instead of running to completion.
///
/// Thread-safe. Cancel() uses release ordering and cancelled() acquire, so
/// state written before the cancel (e.g. the root-cause Status, recorded
/// under the scheduler's lock) is visible to any task that observes the
/// flag.
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while live; Status::Cancelled once the token is tripped. Usable
  /// directly with LAFP_RETURN_NOT_OK at task entry points.
  Status Check() const {
    if (!cancelled()) return Status::OK();
    return Status::Cancelled("work abandoned: round already failed");
  }

  /// Re-arm for the next round (single-owner use only, between runs).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace lafp

#endif  // LAFP_COMMON_CANCELLATION_H_
