#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lafp {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s.size() > 31) return std::nullopt;
  char buf[32];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  int64_t v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return std::nullopt;
  return v;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s.size() > 63) return std::nullopt;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return std::nullopt;
  if (std::isinf(v) && s.find("inf") == std::string_view::npos &&
      s.find("INF") == std::string_view::npos) {
    return std::nullopt;  // overflow
  }
  return v;
}

bool IsBlank(std::string_view s) { return Trim(s).empty(); }

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.0",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string out(buf);
  // Strip trailing zeros but keep one digit after the point.
  size_t dot = out.find('.');
  if (dot != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace lafp
