#ifndef LAFP_COMMON_THREAD_POOL_H_
#define LAFP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lafp {

/// Fixed-size worker pool used by the Modin backend for partition-parallel
/// execution. Tasks are plain std::function<void()>; result plumbing and
/// error collection are the caller's responsibility (see ParallelFor).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes WaitIdle
  int active_ = 0;
  bool shutdown_ = false;
};

/// Run fn(i) for i in [0, n) on the pool, blocking until all are done.
/// fn must be internally synchronized for any shared state.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace lafp

#endif  // LAFP_COMMON_THREAD_POOL_H_
