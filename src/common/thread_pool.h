#ifndef LAFP_COMMON_THREAD_POOL_H_
#define LAFP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace lafp {

/// Fixed-size worker pool used by the Modin backend for partition-parallel
/// execution. Tasks are plain std::function<void()>; result plumbing and
/// error collection are the caller's responsibility (see ParallelFor).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes WaitIdle
  int active_ = 0;
  bool shutdown_ = false;
};

/// Completion counter for dynamic task sets (Go's sync.WaitGroup): Add()
/// before submitting a task, Done() as the task's last action, Wait()
/// blocks until the count returns to zero. Unlike ThreadPool::WaitIdle,
/// which drains the whole pool, a WaitGroup tracks one logical group of
/// tasks, so several independent waiters (e.g. concurrent scheduler
/// rounds and backend ParallelFor calls) can share a pool. Tasks may
/// Add() for follow-up tasks they spawn, as long as every Add() happens
/// before the count could reach zero (i.e. before the spawning task's own
/// Done()).
class WaitGroup {
 public:
  void Add(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    // Notify while holding the lock: once Wait() observes zero and
    // returns, the caller may destroy this WaitGroup, so the notify must
    // not touch cv_ after the unlock that releases the waiter.
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// Run fn(i) for i in [0, n) on the pool, blocking until all are done.
/// fn must be internally synchronized for any shared state.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn);

/// Status-collecting ParallelFor: every fn(i) runs (no early cancellation,
/// so per-index side effects stay deterministic), and the failure of the
/// lowest failing index is returned — the same Status the serial loop
/// `for i: RETURN_NOT_OK(fn(i))` would surface once the earlier iterations
/// succeed. Use this instead of hand-rolled status vectors so worker
/// errors can never be dropped on the floor.
Status ParallelForStatus(ThreadPool* pool, int n,
                         const std::function<Status(int)>& fn);

/// Range/grain-size overload: split [begin, end) into chunks of at most
/// `grain` elements ([begin, begin+grain), [begin+grain, ...)) and run
/// fn(chunk_begin, chunk_end) for each chunk on the pool. Chunk geometry
/// is a pure function of (begin, end, grain) — never of the pool's thread
/// count — which is what lets callers (the morsel-driven kernels) promise
/// bit-identical results for any number of threads. A null pool, or a
/// range that fits one chunk, degrades to an inline serial loop.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Status-collecting range variant; returns the failure of the chunk with
/// the lowest begin index (serial-equivalent error selection).
Status ParallelForStatus(
    ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
    const std::function<Status(int64_t, int64_t)>& fn);

}  // namespace lafp

#endif  // LAFP_COMMON_THREAD_POOL_H_
