#ifndef LAFP_COMMON_MEMORY_TRACKER_H_
#define LAFP_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace lafp {

/// Deterministic memory accountant standing in for physical RAM in the
/// paper's experiments (see DESIGN.md, substitution table). Every dataframe
/// column registers its footprint here; when the budget would be exceeded
/// the reservation fails with StatusCode::kOutOfMemory, which the harness
/// reports exactly like the paper reports a process OOM.
///
/// Thread-safe: the Modin backend reserves from worker threads.
///
/// Trackers form a tree: a child carved from a parent charges every
/// reservation to both, so per-session budgets draw down one global
/// budget (the query service carves one child per admitted session). A
/// reservation fails if *any* tracker on the chain would exceed its
/// budget, and a failed child reservation leaves every ancestor
/// unchanged.
class MemoryTracker {
 public:
  /// `budget_bytes` == 0 means unlimited.
  explicit MemoryTracker(int64_t budget_bytes = 0) : budget_(budget_bytes) {}

  /// Child tracker drawing from `parent`'s budget. `parent` must outlive
  /// the child; the child's own budget (0 = unlimited) caps this scope on
  /// top of whatever the ancestors enforce.
  MemoryTracker(MemoryTracker* parent, int64_t budget_bytes)
      : budget_(budget_bytes), parent_(parent) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Reserve `bytes`; fails (leaving usage unchanged) if it would exceed the
  /// budget.
  Status Reserve(int64_t bytes);

  /// Release a previous reservation. Releasing more than reserved clamps to
  /// zero (robustness over strictness: double-release must not corrupt
  /// later accounting).
  void Release(int64_t bytes);

  int64_t current() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t budget() const { return budget_.load(std::memory_order_relaxed); }

  /// High-water mark since the last ResetRoundPeak(). The scheduler resets
  /// this at the start of each execution round so
  /// ExecutionReport::peak_tracked_bytes reports the round's own peak, while
  /// peak() stays the process-lifetime maximum (the bench harness depends
  /// on that for Fig. 15-style whole-program numbers).
  int64_t round_peak() const {
    return round_peak_.load(std::memory_order_relaxed);
  }

  /// Start a new round epoch: the round peak restarts from what is
  /// currently reserved (live frames carried into the round still count).
  void ResetRoundPeak() {
    round_peak_.store(current_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  void set_budget(int64_t budget_bytes) {
    budget_.store(budget_bytes, std::memory_order_relaxed);
  }

  /// Reset current and peak usage to zero (between benchmark runs).
  void Reset();

  std::string ToString() const;

  MemoryTracker* parent() const { return parent_; }

  /// Process-wide default tracker (unlimited budget). Sessions use this
  /// unless given their own tracker.
  static MemoryTracker* Default();

 private:
  /// Reserve without the fault-injection check (the chain charges
  /// ancestors exactly once per logical reservation; only the entry
  /// tracker consults the injector).
  Status ReserveChain(int64_t bytes);
  void ReleaseLocal(int64_t bytes);

  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> round_peak_{0};
  /// Atomic so Reserve() on kernel/partition workers can race with a
  /// set_budget() from the driving thread without UB. current_/peak_ use
  /// CAS loops (peak is a monotonic max), so concurrent reserve/release
  /// from morsel-parallel column construction stays exact.
  std::atomic<int64_t> budget_{0};
  /// Non-owning; null for a root tracker. Never reseated after
  /// construction, so the chain walk needs no synchronization.
  MemoryTracker* const parent_ = nullptr;
};

/// RAII reservation: reserves in the constructor-equivalent factory and
/// releases on destruction. Movable, not copyable.
class ScopedReservation {
 public:
  ScopedReservation() = default;
  ScopedReservation(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {}
  ScopedReservation(ScopedReservation&& other) noexcept { Swap(other); }
  ScopedReservation& operator=(ScopedReservation&& other) noexcept {
    if (this != &other) {
      Free();
      Swap(other);
    }
    return *this;
  }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  ~ScopedReservation() { Free(); }

  /// Attempt the reservation; on success returns a live reservation.
  static Status Make(MemoryTracker* tracker, int64_t bytes,
                     ScopedReservation* out);

  int64_t bytes() const { return bytes_; }

  void Free() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

 private:
  void Swap(ScopedReservation& other) {
    std::swap(tracker_, other.tracker_);
    std::swap(bytes_, other.bytes_);
  }

  MemoryTracker* tracker_ = nullptr;
  int64_t bytes_ = 0;
};

}  // namespace lafp

#endif  // LAFP_COMMON_MEMORY_TRACKER_H_
