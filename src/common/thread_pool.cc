#include "common/thread_pool.h"

namespace lafp {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  WaitGroup wg;
  wg.Add(n);
  for (int i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      fn(i);
      wg.Done();
    });
  }
  wg.Wait();
}

}  // namespace lafp
