#include "common/thread_pool.h"

#include <algorithm>

#include "common/fault.h"
#include "common/macros.h"

namespace lafp {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Pools are shared across concurrent sessions, so per-session execution
  // context must travel with the task, not live on the worker: capture the
  // submitter's current fault injector and install it around the body
  // (trace span context is propagated the same way by the callers that
  // need it — see SpanContextScope captures in scheduler/backends).
  FaultInjector* injector = FaultInjector::Current();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back([injector, task = std::move(task)] {
      ScopedFaultInjector fault_ctx(injector);
      task();
    });
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  WaitGroup wg;
  wg.Add(n);
  for (int i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      fn(i);
      wg.Done();
    });
  }
  wg.Wait();
}

Status ParallelForStatus(ThreadPool* pool, int n,
                         const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  std::vector<Status> statuses(n);
  ParallelFor(pool, n, [&](int i) { statuses[i] = fn(i); });
  for (auto& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

namespace {

int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  if (grain < 1) grain = 1;
  return (end - begin + grain - 1) / grain;
}

}  // namespace

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (grain < 1) grain = 1;
  int64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return;
  if (pool == nullptr || chunks == 1) {
    for (int64_t b = begin; b < end; b += grain) {
      fn(b, std::min(b + grain, end));
    }
    return;
  }
  WaitGroup wg;
  wg.Add(static_cast<int>(chunks));
  for (int64_t b = begin; b < end; b += grain) {
    int64_t e = std::min(b + grain, end);
    pool->Submit([&, b, e] {
      fn(b, e);
      wg.Done();
    });
  }
  wg.Wait();
}

Status ParallelForStatus(
    ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
    const std::function<Status(int64_t, int64_t)>& fn) {
  if (grain < 1) grain = 1;
  int64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return Status::OK();
  if (pool == nullptr || chunks == 1) {
    for (int64_t b = begin; b < end; b += grain) {
      LAFP_RETURN_NOT_OK(fn(b, std::min(b + grain, end)));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(chunks);
  WaitGroup wg;
  wg.Add(static_cast<int>(chunks));
  int64_t chunk = 0;
  for (int64_t b = begin; b < end; b += grain, ++chunk) {
    int64_t e = std::min(b + grain, end);
    Status* slot = &statuses[chunk];
    pool->Submit([&, b, e, slot] {
      *slot = fn(b, e);
      wg.Done();
    });
  }
  wg.Wait();
  for (auto& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace lafp
