#ifndef LAFP_COMMON_METRICS_H_
#define LAFP_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lafp::metrics {

/// Process-wide metrics (DESIGN.md "Observability"). Three instrument
/// kinds, all built on the same sharding scheme: each thread registers a
/// private cache-line-sized cell of atomics on first touch (one mutex
/// acquisition per thread per instrument, ever) and afterwards updates it
/// with relaxed atomic ops — no contention on the hot path. Scrape() sums
/// the cells. Instruments live in the leaky global Registry and are never
/// destroyed, so cached pointers (including function-local statics at
/// call sites) stay valid for the process lifetime.

/// Monotonic counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(int64_t delta) {
    ThisThreadCell()->fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  std::atomic<int64_t>* ThisThreadCell();

  std::string name_;
  mutable std::mutex mu_;  // cell registration only
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Last-write-wins gauge (a single atomic; gauges are set, not summed).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Power-of-two-bucket histogram for non-negative samples. Bucket i
/// counts samples in [2^(i-1), 2^i) (bucket 0 counts zeros), capped at
/// kBuckets-1 for the overflow tail.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Observe(int64_t sample);

  struct Snapshot {
    std::array<int64_t, kBuckets> buckets{};
    int64_t count = 0;
    int64_t sum = 0;
  };
  Snapshot Snap() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<int64_t>, kBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
  };
  Cell* ThisThreadCell();

  std::string name_;
  mutable std::mutex mu_;  // cell registration only
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Name-keyed instrument registry. GetCounter/GetGauge/GetHistogram
/// create on first use and always return the same pointer for a name;
/// instruments are never removed. Hot call sites should cache the
/// pointer (e.g. `static auto* c = Registry::Global()->GetCounter(...)`).
///
/// Registries are plain objects: scoped instances (per test, per service)
/// can be constructed freely, with Global() as the process-wide default
/// every built-in instrumentation point reports to — and the instance the
/// query service's /metrics endpoint scrapes. Instruments inside a scoped
/// registry live until the registry is destroyed; the global registry is
/// leaky, so its instrument pointers stay valid for the process lifetime.
class Registry {
 public:
  Registry() = default;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default instance (leaky).
  static Registry* Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Current value of every instrument, sorted by name. Histograms
  /// contribute "<name>.count" and "<name>.sum" entries.
  std::map<std::string, int64_t> Scrape() const;

  /// Human-readable dump of the scrape, one "name value" line each.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace lafp::metrics

#endif  // LAFP_COMMON_METRICS_H_
