#include "common/fault.h"

#include <cstdlib>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace lafp {

namespace {

/// The calling thread's injector override (ScopedFaultInjector); null
/// means the Global() default applies.
thread_local FaultInjector* tls_injector = nullptr;

}  // namespace

FaultInjector* FaultInjector::Current() {
  return tls_injector != nullptr ? tls_injector : Global();
}

void FaultInjector::ResetForkedChild() {
  // The forked child starts with a copy-on-write image of the parent's
  // fault state: the calling thread's tls_injector may point at a parent
  // session's private injector, and the copied Global() registry may hold
  // coordinator-side specs. Neither belongs in a worker — fault injection
  // for the shard protocol happens on the coordinator side of the socket.
  tls_injector = nullptr;
  Global()->Clear();
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector)
    : prev_(tls_injector) {
  tls_injector = injector;
}

ScopedFaultInjector::~ScopedFaultInjector() { tls_injector = prev_; }

namespace {

/// splitmix64 finalizer — the per-hit probability draw mixes (seed, site
/// hash, hit index) through this so firing is a pure function of the
/// configuration and the hit sequence.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status ParseCode(std::string_view value, StatusCode* out) {
  if (value == "io") {
    *out = StatusCode::kIOError;
  } else if (value == "oom") {
    *out = StatusCode::kOutOfMemory;
  } else if (value == "exec") {
    *out = StatusCode::kExecutionError;
  } else if (value == "notimpl") {
    *out = StatusCode::kNotImplemented;
  } else if (value == "invalid") {
    *out = StatusCode::kInvalid;
  } else if (value == "cancelled") {
    *out = StatusCode::kCancelled;
  } else {
    return Status::Invalid("LAFP_FAULTS: unknown code '" +
                           std::string(value) + "'");
  }
  return Status::OK();
}

}  // namespace

Status FaultInjector::Parse(const std::string& config,
                            std::vector<FaultSpec>* out) {
  out->clear();
  for (const std::string& entry : Split(config, ';')) {
    std::string_view spec_text = Trim(entry);
    if (spec_text.empty()) continue;
    auto colon = spec_text.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::Invalid("LAFP_FAULTS: expected site:key=value in '" +
                             std::string(spec_text) + "'");
    }
    FaultSpec spec;
    spec.site = std::string(Trim(spec_text.substr(0, colon)));
    for (const std::string& kv_text :
         Split(spec_text.substr(colon + 1), ',')) {
      std::string_view kv = Trim(kv_text);
      if (kv.empty()) continue;
      auto eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return Status::Invalid("LAFP_FAULTS: expected key=value in '" +
                               std::string(kv) + "'");
      }
      std::string_view key = Trim(kv.substr(0, eq));
      std::string_view value = Trim(kv.substr(eq + 1));
      if (key == "nth") {
        auto n = ParseInt64(value);
        if (!n.has_value() || *n <= 0) {
          return Status::Invalid("LAFP_FAULTS: bad nth '" +
                                 std::string(value) + "'");
        }
        spec.nth = static_cast<int>(*n);
      } else if (key == "p") {
        auto p = ParseDouble(value);
        if (!p.has_value() || *p <= 0.0 || *p > 1.0) {
          return Status::Invalid("LAFP_FAULTS: bad probability '" +
                                 std::string(value) + "'");
        }
        spec.probability = *p;
      } else if (key == "seed") {
        auto s = ParseInt64(value);
        if (!s.has_value()) {
          return Status::Invalid("LAFP_FAULTS: bad seed '" +
                                 std::string(value) + "'");
        }
        spec.seed = static_cast<uint64_t>(*s);
      } else if (key == "fires") {
        auto f = ParseInt64(value);
        if (!f.has_value() || *f == 0 || *f < -1) {
          return Status::Invalid("LAFP_FAULTS: bad fires '" +
                                 std::string(value) + "'");
        }
        spec.max_fires = static_cast<int>(*f);
      } else if (key == "code") {
        LAFP_RETURN_NOT_OK(ParseCode(value, &spec.code));
      } else {
        return Status::Invalid("LAFP_FAULTS: unknown key '" +
                               std::string(key) + "'");
      }
    }
    if (spec.nth <= 0 && spec.probability <= 0.0) {
      spec.nth = 1;  // bare "site:" arms an immediate single-shot fault
    }
    out->push_back(std::move(spec));
  }
  return Status::OK();
}

FaultInjector* FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("LAFP_FAULTS")) {
      // Env errors cannot surface through a Status here; a malformed
      // LAFP_FAULTS simply arms nothing (InstallFromString validates
      // before mutating state).
      (void)inj->InstallFromString(env);
    }
    return inj;
  }();
  return injector;
}

void FaultInjector::Install(std::vector<FaultSpec> specs) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  for (auto& spec : specs) {
    SiteState state;
    state.spec = std::move(spec);
    sites_[state.spec.site] = std::move(state);
  }
  enabled_.store(!sites_.empty(), std::memory_order_relaxed);
}

Status FaultInjector::InstallFromString(const std::string& config) {
  std::vector<FaultSpec> specs;
  LAFP_RETURN_NOT_OK(Parse(config, &specs));
  Install(std::move(specs));
  return Status::OK();
}

Status FaultInjector::Hit(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return Status::OK();
  SiteState& state = it->second;
  const FaultSpec& spec = state.spec;
  const int64_t hit = ++state.hits;
  if (spec.max_fires >= 0 && state.fires >= spec.max_fires) {
    return Status::OK();
  }
  bool fire = false;
  if (spec.nth > 0) {
    fire = hit >= spec.nth;
  } else if (spec.probability > 0.0) {
    uint64_t draw =
        Mix64(spec.seed ^ HashSite(site) ^ static_cast<uint64_t>(hit));
    fire = (static_cast<double>(draw >> 11) * 0x1.0p-53) < spec.probability;
  }
  if (!fire) return Status::OK();
  ++state.fires;
  // Every injected fault is observable: an instant trace event (parented
  // to whatever span the faulting thread is inside) plus a counter. Safe
  // under mu_ — the trace/metrics layers never call back into the
  // injector.
  trace::Instant("fault:" + std::string(site), "fault",
                 {trace::IntArg("hit", hit),
                  trace::StrArg("code", StatusCodeToString(spec.code))});
  static auto* fault_counter =
      metrics::Registry::Global()->GetCounter("fault.fired");
  fault_counter->Increment();
  return Status(spec.code, "injected fault at " + std::string(site) +
                               " (hit " + std::to_string(hit) + ")");
}

int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<FaultSpec> FaultInjector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSpec> out;
  out.reserve(sites_.size());
  for (const auto& [_, state] : sites_) out.push_back(state.spec);
  return out;
}

FaultScope::FaultScope(const std::string& config)
    : previous_(FaultInjector::Global()->Snapshot()) {
  std::vector<FaultSpec> specs;
  status_ = FaultInjector::Parse(config, &specs);
  if (status_.ok()) {
    FaultInjector::Global()->Install(std::move(specs));
    installed_ = true;
  }
}

FaultScope::FaultScope(std::vector<FaultSpec> specs)
    : previous_(FaultInjector::Global()->Snapshot()) {
  FaultInjector::Global()->Install(std::move(specs));
  installed_ = true;
}

FaultScope::~FaultScope() {
  if (installed_) FaultInjector::Global()->Install(std::move(previous_));
}

}  // namespace lafp
