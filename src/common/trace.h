#ifndef LAFP_COMMON_TRACE_H_
#define LAFP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lafp::trace {

/// One argument attached to a trace event ("rows_out": 500, "op": "head").
struct EventArg {
  std::string key;
  bool is_string = false;
  int64_t int_value = 0;
  std::string string_value;
};

inline EventArg IntArg(std::string_view key, int64_t value) {
  EventArg a;
  a.key = std::string(key);
  a.int_value = value;
  return a;
}

inline EventArg StrArg(std::string_view key, std::string_view value) {
  EventArg a;
  a.key = std::string(key);
  a.is_string = true;
  a.string_value = std::string(value);
  return a;
}

/// One recorded trace event: a completed span (dur_micros >= 0) or an
/// instant marker (dur_micros < 0, e.g. an injected fault). Span identity
/// and parentage are explicit (span_id / parent_id) so hierarchy survives
/// cross-thread execution: a kernel morsel batch run by a Modin partition
/// worker still points at the scheduler node that owns it.
struct Event {
  std::string name;
  std::string category;  // session|round|pass|node|task|kernel|io|fault|...
  int64_t ts_micros = 0;    // start, relative to the tracer epoch
  int64_t dur_micros = -1;  // -1 = instant event
  int tid = 0;              // dense per-process thread index
  uint64_t span_id = 0;     // 0 for instants
  uint64_t parent_id = 0;   // 0 = root
  std::vector<EventArg> args;
};

/// Low-overhead structured tracer (the observability layer, DESIGN.md
/// "Observability"). Disabled (the default) every instrumentation point
/// reduces to one relaxed atomic load; enabled, events are appended to
/// per-thread shards (one uncontended mutex each, merged on export).
///
/// Two exporters:
///   - WriteChromeTrace / ChromeTraceJson: Chrome trace_event JSON, load
///     in chrome://tracing or Perfetto for a flamegraph view;
///   - RenderReport: plain-text EXPLAIN ANALYZE-style tree (span
///     hierarchy with wall/kernel time, rows, fallback + fault events).
///
/// Enablement: Session options (ExecutionOptions::trace), explicitly via
/// set_enabled, or the LAFP_TRACE=<path> env knob — the first Global()
/// call arms it and registers an at-exit Chrome-JSON dump to <path>, so
/// any binary (tests, benches, lafp_fuzz) can ship trace artifacts.
class Tracer {
 public:
  /// Process-global tracer; first use arms LAFP_TRACE.
  static Tracer* Global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Destination of the at-exit dump (empty = none armed).
  void set_export_path(std::string path);
  std::string export_path() const;

  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append one event to the calling thread's shard.
  void Record(Event event);

  /// Merged view of every shard, ordered by (ts, span_id). Safe to call
  /// while other threads record (their shard lock serializes).
  std::vector<Event> Snapshot() const;

  /// The events of one span subtree (the root span, every span reachable
  /// through parent links, and instants parented inside it). This is the
  /// per-session view: pass a session span's id and get exactly that
  /// session's activity even when other sessions recorded concurrently.
  std::vector<Event> SnapshotSubtree(uint64_t root_span_id) const;

  /// Chrome trace_event JSON for an explicit event set (Snapshot or
  /// SnapshotSubtree output).
  static std::string EventsToChromeJson(const std::vector<Event>& events);

  /// Write one span subtree as Chrome trace JSON (per-session sinks: each
  /// traced session exports its own subtree to its own path, so
  /// concurrent sessions never clobber a shared dump).
  Status WriteChromeTraceForRoot(const std::string& path,
                                 uint64_t root_span_id) const;

  /// EXPLAIN ANALYZE-style report limited to one span subtree.
  std::string RenderReportForRoot(uint64_t root_span_id) const;

  /// Drop every recorded event (shards stay registered).
  void Clear();

  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;
  std::string RenderReport() const;

  /// Microseconds since the tracer epoch (process start of tracing).
  int64_t NowMicros() const;

  /// The calling thread's innermost installed span (0 = none). This is
  /// the parent a new Span adopts, and the context captured into task
  /// closures for cross-thread attribution.
  static uint64_t CurrentSpanId();
  /// Dense id of the calling thread (assigned on first trace activity).
  static int CurrentThreadId();

 private:
  Tracer();

  struct Shard {
    std::mutex mu;
    std::vector<Event> events;
  };
  Shard* ThisThreadShard();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  int64_t epoch_nanos_ = 0;
  mutable std::mutex mu_;  // shard registration + export path
  std::vector<std::unique_ptr<Shard>> shards_;
  std::string export_path_;
};

/// RAII installation of an explicit parent span id as the calling
/// thread's current context. Capture Tracer::CurrentSpanId() into a task
/// closure, install it on the worker, and spans opened there attribute to
/// the owning span even across pool threads.
class SpanContextScope {
 public:
  explicit SpanContextScope(uint64_t span_id);
  ~SpanContextScope();

  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  uint64_t prev_;
};

/// RAII span: records a complete event on destruction when the global
/// tracer is enabled at construction; otherwise fully inert. Installs
/// itself as the thread's current context (strict LIFO per thread).
class Span {
 public:
  /// Parent = the thread's current context.
  Span(std::string_view name, std::string_view category);
  /// Explicit parent (cross-thread or stored-span parenting). `install`
  /// controls whether this span becomes the thread's current context —
  /// pass false for spans whose lifetime is not LIFO on this thread
  /// (e.g. a session-lifetime span held as a member).
  Span(std::string_view name, std::string_view category, uint64_t parent_id,
       bool install);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddArg(std::string_view key, int64_t value);
  void AddArg(std::string_view key, std::string_view value);

  bool active() const { return active_; }
  /// This span's id (0 when the tracer was disabled at construction).
  uint64_t id() const { return active_ ? event_.span_id : 0; }

 private:
  void Begin(std::string_view name, std::string_view category,
             uint64_t parent_id, bool install);

  bool active_ = false;
  bool installed_ = false;
  uint64_t prev_current_ = 0;
  Event event_;
};

/// Record an instant event (no duration), e.g. an injected fault.
void Instant(std::string_view name, std::string_view category,
             std::vector<EventArg> args = {});

}  // namespace lafp::trace

#endif  // LAFP_COMMON_TRACE_H_
