#ifndef LAFP_COMMON_STATUS_H_
#define LAFP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace lafp {

/// Machine-readable category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalid = 1,         // malformed argument or request
  kOutOfMemory = 2,     // memory budget exceeded (recoverable by design)
  kIOError = 3,         // file system / CSV failures
  kKeyError = 4,        // unknown column / variable
  kTypeError = 5,       // operation applied to wrong type
  kIndexError = 6,      // out-of-range positional access
  kParseError = 7,      // PdScript front-end errors
  kNotImplemented = 8,  // unsupported API surface
  kExecutionError = 9,  // runtime failure while evaluating a task graph
  kCancelled = 10,      // work abandoned after a sibling task failed
};

/// Returns the canonical lowercase name for a code ("ok", "key error", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Cheap to pass around: the OK state is
/// a null pointer; error states carry a code and message on the heap.
///
/// Public APIs in this project return Status (or Result<T>) instead of
/// throwing; out-of-memory in particular is an ordinary recoverable error
/// because the benchmark harness records OOM outcomes (paper Fig. 12).
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsExecutionError() const {
    return code() == StatusCode::kExecutionError;
  }
  bool IsInvalid() const { return code() == StatusCode::kInvalid; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null == OK
};

}  // namespace lafp

#endif  // LAFP_COMMON_STATUS_H_
