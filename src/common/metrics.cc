#include "common/metrics.h"

#include <sstream>

namespace lafp::metrics {

namespace {

/// Per-thread cell caches. Keyed by instrument pointer: instruments are
/// never destroyed (leaky registry), so a stale key cannot alias a new
/// instrument. A plain map is fine — lookups happen once per call site
/// thanks to function-local static instrument pointers, and misses are
/// once per (thread, instrument).
template <typename Instrument, typename Cell>
Cell* CachedCell(const Instrument* key, Cell* (*make)(Instrument*)) {
  thread_local std::map<const void*, Cell*> cache;
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  Cell* cell = make(const_cast<Instrument*>(key));
  cache.emplace(key, cell);
  return cell;
}

}  // namespace

std::atomic<int64_t>* Counter::ThisThreadCell() {
  return CachedCell<Counter, std::atomic<int64_t>>(
      this, +[](Counter* c) {
        auto cell = std::make_unique<Cell>();
        std::atomic<int64_t>* ptr = &cell->value;
        std::lock_guard<std::mutex> lock(c->mu_);
        c->cells_.push_back(std::move(cell));
        return ptr;
      });
}

int64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Observe(int64_t sample) {
  if (sample < 0) sample = 0;
  int bucket = 0;
  while (bucket < kBuckets - 1 && (int64_t{1} << bucket) <= sample) ++bucket;
  Cell* cell = ThisThreadCell();
  cell->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  cell->sum.fetch_add(sample, std::memory_order_relaxed);
}

Histogram::Cell* Histogram::ThisThreadCell() {
  return CachedCell<Histogram, Cell>(this, +[](Histogram* h) {
    auto cell = std::make_unique<Cell>();
    Cell* ptr = cell.get();
    std::lock_guard<std::mutex> lock(h->mu_);
    h->cells_.push_back(std::move(cell));
    return ptr;
  });
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& cell : cells_) {
    for (int i = 0; i < kBuckets; ++i) {
      snap.buckets[i] += cell->buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += cell->count.load(std::memory_order_relaxed);
    snap.sum += cell->sum.load(std::memory_order_relaxed);
  }
  return snap;
}

Registry* Registry::Global() {
  // Leaky: instruments must outlive worker threads that cached cells.
  static Registry* registry = new Registry();
  return registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  auto counter = std::make_unique<Counter>(std::string(name));
  Counter* ptr = counter.get();
  counters_.emplace(std::string(name), std::move(counter));
  return ptr;
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  auto gauge = std::make_unique<Gauge>(std::string(name));
  Gauge* ptr = gauge.get();
  gauges_.emplace(std::string(name), std::move(gauge));
  return ptr;
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  auto histogram = std::make_unique<Histogram>(std::string(name));
  Histogram* ptr = histogram.get();
  histograms_.emplace(std::string(name), std::move(histogram));
  return ptr;
}

std::map<std::string, int64_t> Registry::Scrape() const {
  // Copy instrument pointers under the registry lock, then read values
  // outside it: Counter::Value() takes the counter's own mutex and must
  // not nest under mu_ while another thread registers a cell.
  std::vector<const Counter*> counters;
  std::vector<const Gauge*> gauges;
  std::vector<const Histogram*> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters.push_back(c.get());
    for (const auto& [name, g] : gauges_) gauges.push_back(g.get());
    for (const auto& [name, h] : histograms_) histograms.push_back(h.get());
  }
  std::map<std::string, int64_t> out;
  for (const Counter* c : counters) out[c->name()] = c->Value();
  for (const Gauge* g : gauges) out[g->name()] = g->Value();
  for (const Histogram* h : histograms) {
    Histogram::Snapshot snap = h->Snap();
    out[h->name() + ".count"] = snap.count;
    out[h->name() + ".sum"] = snap.sum;
  }
  return out;
}

std::string Registry::RenderText() const {
  std::ostringstream os;
  for (const auto& [name, value] : Scrape()) {
    os << name << " " << value << "\n";
  }
  return os.str();
}

}  // namespace lafp::metrics
