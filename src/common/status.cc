#include "common/status.h"

namespace lafp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalid:
      return "invalid";
    case StatusCode::kOutOfMemory:
      return "out of memory";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kKeyError:
      return "key error";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kIndexError:
      return "index error";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kExecutionError:
      return "execution error";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace lafp
