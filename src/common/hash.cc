#include "common/hash.h"

#include <algorithm>
#include <array>

namespace lafp {

namespace {

constexpr std::array<uint32_t, 64> kMd5K = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::array<uint32_t, 64> kMd5Shift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

inline uint32_t RotLeft(uint32_t x, uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

}  // namespace

Md5::Md5() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
}

void Md5::ProcessBlock(const uint8_t block[64]) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[i * 4]) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 3]) << 24);
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (uint32_t i = 0; i < 64; ++i) {
    uint32_t f, g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t tmp = d;
    d = c;
    c = b;
    b = b + RotLeft(a + f + kMd5K[i] + m[g], kMd5Shift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  bit_count_ += static_cast<uint64_t>(len) * 8;
  while (len > 0) {
    size_t take = std::min<size_t>(64 - buffer_len_, len);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

std::string Md5::HexDigest() {
  uint64_t bits = bit_count_;
  const uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>((bits >> (8 * i)) & 0xff);
  }
  // Bypass bit_count_ accounting for the trailer itself.
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  buffer_len_ += 8;
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint32_t s : state_) {
    for (int i = 0; i < 4; ++i) {
      uint8_t byte = static_cast<uint8_t>((s >> (8 * i)) & 0xff);
      out.push_back(hex[byte >> 4]);
      out.push_back(hex[byte & 0xf]);
    }
  }
  return out;
}

std::string Md5::Of(std::string_view s) {
  Md5 md5;
  md5.Update(s);
  return md5.HexDigest();
}

}  // namespace lafp
