#ifndef LAFP_COMMON_TIMER_H_
#define LAFP_COMMON_TIMER_H_

#include <chrono>

namespace lafp {

/// Monotonic stopwatch for the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lafp

#endif  // LAFP_COMMON_TIMER_H_
