#ifndef LAFP_COMMON_LOGGING_H_
#define LAFP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lafp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// library users see problems but not chatter.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace lafp

#define LAFP_LOG(level)                                                \
  if (::lafp::LogLevel::k##level < ::lafp::GetLogLevel()) {            \
  } else                                                               \
    ::lafp::internal::LogMessage(::lafp::LogLevel::k##level, __FILE__, \
                                 __LINE__)                             \
        .stream()

/// Invariant check: aborts with a message on failure. For programming
/// errors only — recoverable conditions go through Status.
#define LAFP_CHECK(expr)                                              \
  if (expr) {                                                         \
  } else                                                              \
    ::lafp::internal::FatalMessage(__FILE__, __LINE__, #expr).stream()

#define LAFP_DCHECK(expr) LAFP_CHECK(expr)

#endif  // LAFP_COMMON_LOGGING_H_
