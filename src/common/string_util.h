#ifndef LAFP_COMMON_STRING_UTIL_H_
#define LAFP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lafp {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer parse: the whole (trimmed) string must be consumed.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Strict floating-point parse; accepts the usual decimal/exponent forms.
std::optional<double> ParseDouble(std::string_view s);

/// True if `s` trims to "" (CSV null).
bool IsBlank(std::string_view s);

/// Format a double the way the dataframe printer does: integers without a
/// trailing ".0" are preserved as "x.0"; up to 6 significant decimals
/// otherwise, trailing zeros stripped.
std::string FormatDouble(double v);

}  // namespace lafp

#endif  // LAFP_COMMON_STRING_UTIL_H_
