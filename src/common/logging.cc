#include "common/logging.h"

#include <atomic>

namespace lafp {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  (void)level_;
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace lafp
