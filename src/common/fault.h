#ifndef LAFP_COMMON_FAULT_H_
#define LAFP_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace lafp {

/// One armed fault: fires at a named injection site with deterministic
/// trigger rules. Exactly one of `nth` / `probability` selects the firing
/// mode:
///   - nth > 0: fire on the nth hit of the site (1-based), then on every
///     following hit until `max_fires` is exhausted;
///   - probability in (0, 1]: fire per hit with a seeded, hit-indexed
///     pseudo-random draw (same seed + same hit sequence => same fires).
struct FaultSpec {
  std::string site;
  StatusCode code = StatusCode::kIOError;
  int nth = 0;
  double probability = 0.0;
  uint64_t seed = 0;
  /// Fires before the spec goes quiet; -1 = unlimited.
  int max_fires = 1;
};

/// Process-wide registry of fault-injection sites (the deterministic
/// failure-hardening harness, see DESIGN.md "Fault injection & graceful
/// degradation"). Production code marks its failure-prone boundaries with
/// FaultPoint("site"); when a spec for that site is armed, the call
/// returns the configured error Status and the caller exercises its real
/// error path — no actual disk-full / OOM required.
///
/// Disabled (the default) the check is one relaxed atomic load; tests and
/// the fuzzer arm specs via FaultScope or LAFP_FAULTS. Thread-safe: sites
/// are hit concurrently from scheduler and kernel-pool workers.
///
/// Config string grammar (also the LAFP_FAULTS env format):
///   spec[;spec...]   spec = site:key=value[,key=value...]
/// keys: nth=N | p=0.25 | seed=N | fires=N (-1 = unlimited) |
///       code=io|oom|exec|notimpl|invalid|cancelled
/// Example: LAFP_FAULTS="spill.write:nth=1;csv.read:p=0.01,seed=7"
/// Injector state is *instantiable*: the process-global instance (armed
/// from LAFP_FAULTS) is only the default. A session that arms its own
/// fault config owns a private FaultInjector and installs it as the
/// calling thread's *current* injector (ScopedFaultInjector) for the
/// duration of its execution rounds; ThreadPool::Submit captures the
/// submitter's current injector into every task, so scheduler workers,
/// partition workers and kernel-morsel workers all hit the session that
/// launched them — concurrent sessions with different fault configs no
/// longer stomp one global registry.
class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-global registry. First use arms any LAFP_FAULTS specs.
  static FaultInjector* Global();

  /// The calling thread's current injector: the innermost
  /// ScopedFaultInjector, or Global() when none is installed.
  static FaultInjector* Current();

  /// Reinitialize fault state in a freshly forked child process (shard
  /// workers). fork() copies the parent's thread-local injector pointer
  /// and the armed Global() specs into the child, where both are stale:
  /// the pointed-to session injector belongs to a parent session the
  /// child is not part of, and coordinator-side fault configs
  /// (shard.send, spill.write, ...) must fire in the coordinator, not be
  /// double-counted in every worker. Call this first thing in the child;
  /// it clears the thread-local override and disarms the (copied) global
  /// registry so the child starts fault-free.
  static void ResetForkedChild();

  /// Replace every armed spec (counters reset) and enable the registry;
  /// an empty list disables it.
  void Install(std::vector<FaultSpec> specs);
  Status InstallFromString(const std::string& config);
  void Clear() { Install({}); }

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The injection check. OK when disarmed or the spec does not fire.
  Status Hit(std::string_view site);

  /// Observability for tests: lifetime hit / fire counts for a site
  /// since its spec was installed (0 if not armed).
  int64_t hits(const std::string& site) const;
  int64_t fires(const std::string& site) const;

  /// Current specs (for FaultScope snapshot/restore).
  std::vector<FaultSpec> Snapshot() const;

  /// Parse a config string without installing (validation helper).
  static Status Parse(const std::string& config,
                      std::vector<FaultSpec>* out);

 private:
  struct SiteState {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// RAII installation of an injector as the calling thread's current one
/// (thread-scoped, nestable; null restores the Global() default for the
/// scope). This is the per-session arming path: unlike FaultScope below
/// it mutates no process-global state, so concurrent sessions can run
/// with different fault configs.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* prev_;
};

/// Convenience wrapper used at injection sites:
///   LAFP_RETURN_NOT_OK(FaultPoint("spill.write"));
inline Status FaultPoint(std::string_view site) {
  FaultInjector* injector = FaultInjector::Current();
  if (!injector->enabled()) return Status::OK();
  return injector->Hit(site);
}

/// RAII arming of the global registry: installs `config` on construction,
/// restores the previous specs (with fresh counters) on destruction.
/// Nesting works; a parse failure leaves the registry unchanged and is
/// reported via status().
class FaultScope {
 public:
  explicit FaultScope(const std::string& config);
  explicit FaultScope(std::vector<FaultSpec> specs);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  const Status& status() const { return status_; }

 private:
  std::vector<FaultSpec> previous_;
  bool installed_ = false;
  Status status_;
};

}  // namespace lafp

#endif  // LAFP_COMMON_FAULT_H_
