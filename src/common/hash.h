#ifndef LAFP_COMMON_HASH_H_
#define LAFP_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace lafp {

/// FNV-1a 64-bit hash; used for hash joins / groupby bucketing.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // boost::hash_combine recipe widened to 64 bits.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Incremental MD5, used for the paper's regression-hash check (§5.2):
/// outputs of optimized programs are md5-compared against plain Pandas.
class Md5 {
 public:
  Md5();

  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalize and return the 32-char lowercase hex digest. The object must
  /// not be updated afterwards.
  std::string HexDigest();

  /// One-shot convenience.
  static std::string Of(std::string_view s);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace lafp

#endif  // LAFP_COMMON_HASH_H_
