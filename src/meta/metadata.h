#ifndef LAFP_META_METADATA_H_
#define LAFP_META_METADATA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataframe/types.h"

namespace lafp::meta {

/// Per-column statistics gathered by sampling a source file (paper §3.6).
/// min/max are stored as value strings; distinct counts are exact within
/// the sample and therefore lower bounds for the file.
struct ColumnMeta {
  std::string name;
  df::DataType type = df::DataType::kString;
  int64_t sample_distinct = 0;
  std::string min_value;
  std::string max_value;
  double avg_value_bytes = 8.0;  // in-memory width estimate per value
};

/// Metadata for one CSV dataset: modification time (staleness check),
/// approximate cardinality and row width, plus per-column stats.
struct FileMetadata {
  std::string path;
  int64_t modified_time = 0;  // seconds since epoch
  int64_t file_bytes = 0;
  int64_t approx_rows = 0;
  double avg_row_bytes = 0.0;  // on-disk
  int64_t sample_rows = 0;
  std::vector<ColumnMeta> columns;

  const ColumnMeta* FindColumn(const std::string& name) const;

  /// Estimated in-memory bytes to load `usecols` (all columns if empty)
  /// eagerly — the signal the paper uses for backend choice.
  int64_t EstimateMemoryBytes(const std::vector<std::string>& usecols) const;

  /// Columns that are category candidates: string-typed with at most
  /// `max_distinct` distinct values in the sample.
  std::vector<std::string> CategoryCandidates(int64_t max_distinct) const;

  /// dtype map for read_csv: each column's inferred type, with category
  /// substituted for candidates that are also in `read_only_columns`
  /// (the safety condition from §3.6: never categorize a column the
  /// program may assign novel values into).
  std::map<std::string, df::DataType> DtypeHints(
      const std::vector<std::string>& read_only_columns,
      int64_t max_distinct) const;

  std::string Serialize() const;
  static Result<FileMetadata> Deserialize(const std::string& text);
};

/// Options for the sampling pass.
struct ComputeOptions {
  int64_t sample_rows = 1000;
};

/// Scan (a sample of) `csv_path` and compute its metadata.
Result<FileMetadata> ComputeFileMetadata(const std::string& csv_path,
                                         const ComputeOptions& options = {});

/// On-disk store of FileMetadata, one sidecar file per dataset, in
/// `store_dir`. Lookup validates the dataset's current mtime and refuses
/// stale entries (paper: "metadata computed before the last update is not
/// used").
class MetaStore {
 public:
  explicit MetaStore(std::string store_dir);

  /// Stored metadata if present and fresh; nullopt otherwise.
  Result<std::optional<FileMetadata>> Lookup(const std::string& csv_path);

  /// Compute, persist and return metadata for the dataset.
  Result<FileMetadata> ComputeAndStore(const std::string& csv_path,
                                       const ComputeOptions& options = {});

  /// Lookup; on miss (or staleness) compute and store.
  Result<FileMetadata> GetOrCompute(const std::string& csv_path,
                                    const ComputeOptions& options = {});

  const std::string& store_dir() const { return store_dir_; }

 private:
  std::string SidecarPath(const std::string& csv_path) const;

  std::string store_dir_;
};

/// Current mtime of a file in seconds since epoch (0 if missing).
int64_t FileModifiedTime(const std::string& path);
int64_t FileSizeBytes(const std::string& path);

}  // namespace lafp::meta

#endif  // LAFP_META_METADATA_H_
