#include "meta/metadata.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "io/csv.h"

namespace lafp::meta {

namespace fs = std::filesystem;

int64_t FileModifiedTime(const std::string& path) {
  std::error_code ec;
  auto t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(
             t.time_since_epoch())
      .count();
}

int64_t FileSizeBytes(const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return 0;
  return static_cast<int64_t>(size);
}

const ColumnMeta* FileMetadata::FindColumn(const std::string& name) const {
  for (const auto& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

int64_t FileMetadata::EstimateMemoryBytes(
    const std::vector<std::string>& usecols) const {
  double per_row = 0.0;
  for (const auto& c : columns) {
    if (!usecols.empty() &&
        std::find(usecols.begin(), usecols.end(), c.name) == usecols.end()) {
      continue;
    }
    per_row += c.avg_value_bytes;
  }
  return static_cast<int64_t>(per_row * static_cast<double>(approx_rows));
}

std::vector<std::string> FileMetadata::CategoryCandidates(
    int64_t max_distinct) const {
  std::vector<std::string> out;
  for (const auto& c : columns) {
    if (c.type == df::DataType::kString && c.sample_distinct > 0 &&
        c.sample_distinct <= max_distinct) {
      out.push_back(c.name);
    }
  }
  return out;
}

std::map<std::string, df::DataType> FileMetadata::DtypeHints(
    const std::vector<std::string>& read_only_columns,
    int64_t max_distinct) const {
  std::map<std::string, df::DataType> hints;
  auto is_read_only = [&](const std::string& n) {
    return std::find(read_only_columns.begin(), read_only_columns.end(),
                     n) != read_only_columns.end();
  };
  for (const auto& c : columns) {
    df::DataType t = c.type;
    if (t == df::DataType::kString && c.sample_distinct > 0 &&
        c.sample_distinct <= max_distinct && is_read_only(c.name)) {
      t = df::DataType::kCategory;
    }
    hints[c.name] = t;
  }
  return hints;
}

std::string FileMetadata::Serialize() const {
  std::ostringstream os;
  os << "path=" << path << "\n";
  os << "mtime=" << modified_time << "\n";
  os << "file_bytes=" << file_bytes << "\n";
  os << "approx_rows=" << approx_rows << "\n";
  os << "avg_row_bytes=" << avg_row_bytes << "\n";
  os << "sample_rows=" << sample_rows << "\n";
  os << "ncols=" << columns.size() << "\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    const auto& c = columns[i];
    os << "col." << i << ".name=" << c.name << "\n";
    os << "col." << i << ".type=" << df::DataTypeName(c.type) << "\n";
    os << "col." << i << ".distinct=" << c.sample_distinct << "\n";
    os << "col." << i << ".min=" << c.min_value << "\n";
    os << "col." << i << ".max=" << c.max_value << "\n";
    os << "col." << i << ".avg_bytes=" << c.avg_value_bytes << "\n";
  }
  return os.str();
}

Result<FileMetadata> FileMetadata::Deserialize(const std::string& text) {
  FileMetadata md;
  std::map<std::string, std::string> kv;
  for (const auto& line : Split(text, '\n')) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("bad metadata line: " + line);
    }
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  auto get = [&](const std::string& key) -> Result<std::string> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return Status::ParseError("metadata missing key: " + key);
    }
    return it->second;
  };
  LAFP_ASSIGN_OR_RETURN(md.path, get("path"));
  LAFP_ASSIGN_OR_RETURN(std::string mtime, get("mtime"));
  md.modified_time = ParseInt64(mtime).value_or(0);
  LAFP_ASSIGN_OR_RETURN(std::string fb, get("file_bytes"));
  md.file_bytes = ParseInt64(fb).value_or(0);
  LAFP_ASSIGN_OR_RETURN(std::string rows, get("approx_rows"));
  md.approx_rows = ParseInt64(rows).value_or(0);
  LAFP_ASSIGN_OR_RETURN(std::string rb, get("avg_row_bytes"));
  md.avg_row_bytes = ParseDouble(rb).value_or(0.0);
  LAFP_ASSIGN_OR_RETURN(std::string sr, get("sample_rows"));
  md.sample_rows = ParseInt64(sr).value_or(0);
  LAFP_ASSIGN_OR_RETURN(std::string ncols_s, get("ncols"));
  int64_t ncols = ParseInt64(ncols_s).value_or(0);
  for (int64_t i = 0; i < ncols; ++i) {
    std::string prefix = "col." + std::to_string(i) + ".";
    ColumnMeta c;
    LAFP_ASSIGN_OR_RETURN(c.name, get(prefix + "name"));
    LAFP_ASSIGN_OR_RETURN(std::string type_name, get(prefix + "type"));
    LAFP_ASSIGN_OR_RETURN(c.type, df::DataTypeFromName(type_name));
    LAFP_ASSIGN_OR_RETURN(std::string d, get(prefix + "distinct"));
    c.sample_distinct = ParseInt64(d).value_or(0);
    LAFP_ASSIGN_OR_RETURN(c.min_value, get(prefix + "min"));
    LAFP_ASSIGN_OR_RETURN(c.max_value, get(prefix + "max"));
    LAFP_ASSIGN_OR_RETURN(std::string ab, get(prefix + "avg_bytes"));
    c.avg_value_bytes = ParseDouble(ab).value_or(8.0);
    md.columns.push_back(std::move(c));
  }
  return md;
}

Result<FileMetadata> ComputeFileMetadata(const std::string& csv_path,
                                         const ComputeOptions& options) {
  FileMetadata md;
  md.path = csv_path;
  md.modified_time = FileModifiedTime(csv_path);
  md.file_bytes = FileSizeBytes(csv_path);

  MemoryTracker scratch(0);
  io::CsvReadOptions read_opts;
  read_opts.nrows = static_cast<size_t>(options.sample_rows);
  read_opts.infer_rows =
      static_cast<size_t>(std::min<int64_t>(options.sample_rows, 256));
  LAFP_ASSIGN_OR_RETURN(df::DataFrame sample,
                        io::ReadCsv(csv_path, read_opts, &scratch));
  md.sample_rows = static_cast<int64_t>(sample.num_rows());

  // On-disk average row width from the sampled prefix: count bytes of the
  // first sample_rows lines.
  {
    std::ifstream in(csv_path);
    std::string line;
    std::getline(in, line);  // header
    int64_t bytes = 0, lines = 0;
    while (lines < md.sample_rows && std::getline(in, line)) {
      bytes += static_cast<int64_t>(line.size()) + 1;
      ++lines;
    }
    md.avg_row_bytes = lines > 0 ? static_cast<double>(bytes) / lines : 0.0;
    int64_t header_bytes = 0;
    {
      std::ifstream hin(csv_path);
      std::string h;
      std::getline(hin, h);
      header_bytes = static_cast<int64_t>(h.size()) + 1;
    }
    md.approx_rows =
        md.avg_row_bytes > 0
            ? static_cast<int64_t>((md.file_bytes - header_bytes) /
                                   md.avg_row_bytes)
            : 0;
  }

  for (size_t ci = 0; ci < sample.num_columns(); ++ci) {
    const df::Column& col = *sample.column(ci);
    ColumnMeta cm;
    cm.name = sample.names()[ci];
    cm.type = col.type();
    std::set<std::string> distinct;
    int64_t value_bytes = 0;
    std::string minv, maxv;
    bool have_range = false;
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsValid(r)) continue;
      std::string v = col.ValueString(r);
      if (distinct.size() < 4096) distinct.insert(v);
      switch (col.type()) {
        case df::DataType::kInt64:
        case df::DataType::kDouble:
        case df::DataType::kTimestamp:
          value_bytes += 8;
          break;
        case df::DataType::kBool:
          value_bytes += 1;
          break;
        default:
          value_bytes += static_cast<int64_t>(v.size()) + 16;
          break;
      }
      // Range tracking uses the engine's sort semantics: numeric by value,
      // strings lexicographic.
      if (!have_range) {
        minv = maxv = v;
        have_range = true;
      } else if (df::IsNumeric(col.type())) {
        auto cur = ParseDouble(v);
        auto lo = ParseDouble(minv);
        auto hi = ParseDouble(maxv);
        if (cur && lo && *cur < *lo) minv = v;
        if (cur && hi && *cur > *hi) maxv = v;
      } else {
        if (v < minv) minv = v;
        if (v > maxv) maxv = v;
      }
    }
    cm.sample_distinct = static_cast<int64_t>(distinct.size());
    cm.min_value = minv;
    cm.max_value = maxv;
    cm.avg_value_bytes =
        col.size() > 0
            ? static_cast<double>(value_bytes) / static_cast<double>(
                                                     col.size())
            : 8.0;
    md.columns.push_back(std::move(cm));
  }
  return md;
}

MetaStore::MetaStore(std::string store_dir)
    : store_dir_(std::move(store_dir)) {
  std::error_code ec;
  fs::create_directories(store_dir_, ec);
}

std::string MetaStore::SidecarPath(const std::string& csv_path) const {
  // Hash the absolute path so unrelated files with the same basename do
  // not collide in the store.
  std::string base = fs::path(csv_path).filename().string();
  return store_dir_ + "/" + base + "." +
         std::to_string(Fnv1a64(csv_path)) + ".meta";
}

Result<std::optional<FileMetadata>> MetaStore::Lookup(
    const std::string& csv_path) {
  std::ifstream in(SidecarPath(csv_path));
  if (!in.is_open()) return std::optional<FileMetadata>();
  std::stringstream buffer;
  buffer << in.rdbuf();
  LAFP_ASSIGN_OR_RETURN(FileMetadata md,
                        FileMetadata::Deserialize(buffer.str()));
  if (md.modified_time != FileModifiedTime(csv_path)) {
    return std::optional<FileMetadata>();  // stale
  }
  return std::optional<FileMetadata>(std::move(md));
}

Result<FileMetadata> MetaStore::ComputeAndStore(
    const std::string& csv_path, const ComputeOptions& options) {
  LAFP_ASSIGN_OR_RETURN(FileMetadata md,
                        ComputeFileMetadata(csv_path, options));
  std::ofstream out(SidecarPath(csv_path));
  if (!out.is_open()) {
    return Status::IOError("cannot write metadata sidecar for " + csv_path);
  }
  out << md.Serialize();
  out.flush();
  if (!out.good()) {
    return Status::IOError("metadata write failed for " + csv_path);
  }
  return md;
}

Result<FileMetadata> MetaStore::GetOrCompute(const std::string& csv_path,
                                             const ComputeOptions& options) {
  LAFP_ASSIGN_OR_RETURN(auto cached, Lookup(csv_path));
  if (cached.has_value()) return std::move(*cached);
  return ComputeAndStore(csv_path, options);
}

}  // namespace lafp::meta
