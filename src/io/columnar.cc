#include "io/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "common/fault.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dataframe/column.h"

namespace lafp::io {

namespace {

constexpr uint8_t kFlagDictEncoded = 1;
constexpr uint8_t kFlagWasCategory = 2;
constexpr size_t kTrailerBytes = 24;  // footer_len + footer_checksum + magic

struct ChunkMeta {
  uint64_t offset = 0;          // absolute file offset of validity/payload
  uint64_t validity_bytes = 0;  // 0 = chunk is all-valid
  uint64_t payload_bytes = 0;
  LfcZoneMap zone;
};

struct ColumnEntry {
  std::string name;
  df::DataType physical = df::DataType::kNull;
  bool dict_encoded = false;
  bool was_category = false;
  uint64_t dict_offset = 0;
  uint64_t dict_bytes = 0;
  uint32_t dict_count = 0;
  df::DictionaryPtr dict;  // decoded eagerly at Open
  std::vector<ChunkMeta> chunks;
};

uint64_t PayloadWidth(const ColumnEntry& col) {
  if (col.dict_encoded) return 4;  // uint32 dictionary codes
  switch (col.physical) {
    case df::DataType::kInt64:
    case df::DataType::kTimestamp:
    case df::DataType::kDouble:
      return 8;
    case df::DataType::kBool:
      return 1;
    default:
      return 0;
  }
}

template <typename T>
void AppendPod(std::string* buf, T v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Bounds-checked reader over a byte range; every length decoded from
/// disk is clamped against what is actually left before it is used.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  template <typename T>
  bool Read(T* v) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(v, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  bool ReadString(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return true;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

/// Delete a partially written tmp file; a truncated LFC file must never
/// become visible at the final path (same discipline as spill writes).
Status FailWrite(std::ofstream* out, const std::string& tmp,
                 const Status& cause) {
  const int saved_errno = errno;
  out->close();
  std::error_code ec;
  std::filesystem::remove(tmp, ec);  // best effort; report the root cause
  if (!cause.ok()) return cause;
  std::string detail = "lfc write failed: " + tmp;
  if (saved_errno != 0) {
    detail += " (";
    detail += std::strerror(saved_errno);
    detail += ")";
  }
  return Status::IOError(detail);
}

LfcZoneMap ComputeZone(const df::Column& col, size_t r0, size_t r1) {
  LfcZoneMap z;
  for (size_t i = r0; i < r1; ++i) {
    if (!col.IsValid(i)) {
      ++z.null_count;
      continue;
    }
    switch (col.type()) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp: {
        const int64_t v = col.IntAt(i);
        if (!z.has_bounds || v < z.min_i) z.min_i = v;
        if (!z.has_bounds || v > z.max_i) z.max_i = v;
        z.has_bounds = true;
        break;
      }
      case df::DataType::kDouble: {
        const double v = col.DoubleAt(i);
        if (std::isnan(v)) break;  // NaN never satisfies a predicate
        if (!z.has_bounds || v < z.min_d) z.min_d = v;
        if (!z.has_bounds || v > z.max_d) z.max_d = v;
        z.has_bounds = true;
        break;
      }
      case df::DataType::kBool: {
        const int64_t v = col.BoolAt(i) ? 1 : 0;
        if (!z.has_bounds || v < z.min_i) z.min_i = v;
        if (!z.has_bounds || v > z.max_i) z.max_i = v;
        z.has_bounds = true;
        break;
      }
      default:
        break;  // dictionary columns carry no ordering bounds
    }
  }
  return z;
}

/// Mirror of kernels_compare.cc's double-space compare for the prune
/// decision over the interval [lo, hi] of a chunk's valid non-NaN
/// values. Returns true when NO value in the interval can satisfy `op`.
bool IntervalNeverMatches(df::CompareOp op, double lo, double hi, double r) {
  if (std::isnan(r)) {
    // x <op> NaN is false for everything except !=, which is true for
    // every valid non-NaN row — and a chunk reaching this point has one.
    return op != df::CompareOp::kNe;
  }
  switch (op) {
    case df::CompareOp::kEq:
      return r < lo || r > hi;
    case df::CompareOp::kNe:
      return lo == hi && lo == r;
    case df::CompareOp::kLt:
      return lo >= r;
    case df::CompareOp::kLe:
      return lo > r;
    case df::CompareOp::kGt:
      return hi <= r;
    case df::CompareOp::kGe:
      return hi < r;
  }
  return false;
}

bool IntervalNeverMatchesInt(df::CompareOp op, int64_t lo, int64_t hi,
                             int64_t r) {
  switch (op) {
    case df::CompareOp::kEq:
      return r < lo || r > hi;
    case df::CompareOp::kNe:
      return lo == hi && lo == r;
    case df::CompareOp::kLt:
      return lo >= r;
    case df::CompareOp::kLe:
      return lo > r;
    case df::CompareOp::kGt:
      return hi <= r;
    case df::CompareOp::kGe:
      return hi < r;
  }
  return false;
}

/// Zone-map verdict for one predicate against one chunk. `true` means
/// the chunk provably contains no matching row; every indeterminate
/// case (unknown type pairing the compare kernel would reject, parse
/// failures) conservatively keeps the chunk.
bool ChunkNeverMatches(const ColumnEntry& col, const ChunkMeta& chunk,
                       uint64_t rows, const LfcPredicate& p) {
  const LfcZoneMap& z = chunk.zone;
  if (p.scalar.is_null()) {
    // Compare-with-null: all-false, except != which is true exactly on
    // the valid rows (NaN included — the kernel's null-scalar branch
    // precedes its NaN check).
    if (p.op != df::CompareOp::kNe) return true;
    return z.null_count == rows;
  }
  // From here on null rows never match (the kernel skips them), so an
  // all-null chunk is prunable for every op and scalar type.
  if (z.null_count == rows) return true;

  if (col.dict_encoded) {
    // String/category semantics: lexical compare against a string
    // scalar; anything else is a TypeError the filter must surface.
    if (p.scalar.type() != df::DataType::kString) return false;
    const std::string& needle = p.scalar.string_value();
    const df::Dictionary& dict = *col.dict;
    if (p.op == df::CompareOp::kEq) {
      // File-level dictionary membership: a value absent from the
      // dictionary appears in no chunk.
      return std::find(dict.begin(), dict.end(), needle) == dict.end();
    }
    if (p.op == df::CompareOp::kNe) {
      // Prunable only when every valid value in the file equals needle.
      return dict.size() == 1 && dict[0] == needle;
    }
    return false;  // no ordering metadata for dictionary columns
  }

  if (!z.has_bounds) return true;  // every valid value is NaN

  if (col.physical == df::DataType::kTimestamp &&
      p.scalar.type() == df::DataType::kString) {
    // Timestamp vs string compares in exact int64 epoch space.
    auto ts = df::ParseTimestamp(p.scalar.string_value());
    if (!ts.ok()) return false;  // the kernel reports the parse error
    return IntervalNeverMatchesInt(p.op, z.min_i, z.max_i, *ts);
  }

  auto r = p.scalar.AsDouble();
  if (!r.ok()) return false;  // TypeError surfaces from the kernel
  double lo, hi;
  if (col.physical == df::DataType::kDouble) {
    lo = z.min_d;
    hi = z.max_d;
  } else {
    // int64/timestamp/bool compare as double in the kernel; the cast is
    // monotonic, so the cast bounds bound every cast value.
    lo = static_cast<double>(z.min_i);
    hi = static_cast<double>(z.max_i);
  }
  return IntervalNeverMatches(p.op, lo, hi, *r);
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IOError("corrupt lfc file " + path + ": " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Status WriteLfcFile(const df::DataFrame& frame, const std::string& path,
                    const LfcWriteOptions& options) {
  trace::Span span("lfc:write", "io");
  if (span.active()) {
    span.AddArg("rows", static_cast<int64_t>(frame.num_rows()));
  }
  static auto* lfc_writes =
      metrics::Registry::Global()->GetCounter("lfc.writes");
  lfc_writes->Increment();

  const size_t chunk_rows = options.chunk_rows == 0 ? 65536
                                                    : options.chunk_rows;
  const size_t nrows = frame.num_rows();
  const size_t ncols = frame.num_columns();
  const size_t nchunks = nrows == 0 ? 0 : (nrows + chunk_rows - 1) / chunk_rows;

  // Per-column encodings. String columns dictionary-encode into
  // first-appearance order; category columns keep their codes and
  // dictionary verbatim so a round trip is exact.
  std::vector<ColumnEntry> metas(ncols);
  std::vector<std::vector<uint32_t>> codes(ncols);
  std::vector<const df::Dictionary*> dicts(ncols, nullptr);
  std::vector<df::Dictionary> built_dicts(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    const df::Column& col = *frame.column(c);
    ColumnEntry& m = metas[c];
    m.name = frame.names()[c];
    m.physical = col.type();
    switch (col.type()) {
      case df::DataType::kNull:
        return Status::Invalid("cannot write a null-typed column to lfc: " +
                               m.name);
      case df::DataType::kString: {
        m.dict_encoded = true;
        std::unordered_map<std::string, uint32_t> index;
        codes[c].resize(col.size(), 0);
        for (size_t i = 0; i < col.size(); ++i) {
          if (!col.IsValid(i)) continue;
          auto [it, inserted] = index.emplace(
              col.StringAt(i), static_cast<uint32_t>(built_dicts[c].size()));
          if (inserted) built_dicts[c].push_back(col.StringAt(i));
          codes[c][i] = it->second;
        }
        dicts[c] = &built_dicts[c];
        break;
      }
      case df::DataType::kCategory: {
        m.dict_encoded = true;
        m.was_category = true;
        const df::Dictionary& dict = *col.dictionary();
        codes[c].resize(col.size(), 0);
        for (size_t i = 0; i < col.size(); ++i) {
          const int32_t code = col.CodeAt(i);
          if (!col.IsValid(i)) continue;
          if (code < 0 || static_cast<size_t>(code) >= dict.size()) {
            return Status::Invalid("category code out of range in column " +
                                   m.name);
          }
          codes[c][i] = static_cast<uint32_t>(code);
        }
        dicts[c] = &dict;
        break;
      }
      default:
        break;
    }
    if (dicts[c] != nullptr) {
      m.dict_count = static_cast<uint32_t>(dicts[c]->size());
    }
  }

  const std::string tmp = path + ".tmp";
  errno = 0;
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot create lfc file " + tmp);
  }
  uint64_t pos = 0;
  auto write_raw = [&](const void* data, size_t n) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    pos += n;
  };
  write_raw(&kLfcMagic, sizeof(kLfcMagic));

  // ---- chunk data section ----
  for (size_t chunk = 0; chunk < nchunks; ++chunk) {
    const size_t r0 = chunk * chunk_rows;
    const size_t r1 = std::min(nrows, r0 + chunk_rows);
    const size_t n = r1 - r0;
    for (size_t c = 0; c < ncols; ++c) {
      // ENOSPC/EIO injection, once per column-chunk so a fault lands
      // mid-file — the partial-write shape a full disk produces.
      Status injected = FaultPoint("lfc.write");
      if (!injected.ok()) return FailWrite(&out, tmp, injected);
      const df::Column& col = *frame.column(c);
      ChunkMeta cm;
      cm.offset = pos;
      cm.zone = ComputeZone(col, r0, r1);
      if (cm.zone.null_count > 0) {
        std::vector<uint8_t> bitmap((n + 7) / 8, 0);
        for (size_t i = 0; i < n; ++i) {
          if (col.IsValid(r0 + i)) bitmap[i / 8] |= uint8_t(1u << (i % 8));
        }
        cm.validity_bytes = bitmap.size();
        write_raw(bitmap.data(), bitmap.size());
      }
      switch (col.type()) {
        case df::DataType::kInt64:
        case df::DataType::kTimestamp:
          cm.payload_bytes = n * 8;
          write_raw(col.ints().data() + r0, n * 8);
          break;
        case df::DataType::kDouble:
          cm.payload_bytes = n * 8;
          write_raw(col.doubles().data() + r0, n * 8);
          break;
        case df::DataType::kBool:
          cm.payload_bytes = n;
          write_raw(col.bools().data() + r0, n);
          break;
        case df::DataType::kString:
        case df::DataType::kCategory:
          cm.payload_bytes = n * 4;
          write_raw(codes[c].data() + r0, n * 4);
          break;
        case df::DataType::kNull:
          break;  // rejected above
      }
      if (!out.good()) return FailWrite(&out, tmp, Status::OK());
      metas[c].chunks.push_back(cm);
    }
  }

  // ---- dictionary section ----
  for (size_t c = 0; c < ncols; ++c) {
    if (dicts[c] == nullptr) continue;
    metas[c].dict_offset = pos;
    for (const std::string& s : *dicts[c]) {
      const uint32_t len = static_cast<uint32_t>(s.size());
      write_raw(&len, sizeof(len));
      write_raw(s.data(), s.size());
    }
    metas[c].dict_bytes = pos - metas[c].dict_offset;
    if (!out.good()) return FailWrite(&out, tmp, Status::OK());
  }

  // ---- footer + trailer ----
  std::string footer;
  AppendPod(&footer, kLfcVersion);
  AppendPod(&footer, static_cast<uint64_t>(nrows));
  AppendPod(&footer, static_cast<uint64_t>(chunk_rows));
  AppendPod(&footer, static_cast<uint32_t>(ncols));
  AppendPod(&footer, static_cast<uint32_t>(nchunks));
  for (size_t chunk = 0; chunk < nchunks; ++chunk) {
    const size_t r0 = chunk * chunk_rows;
    AppendPod(&footer,
              static_cast<uint64_t>(std::min(nrows, r0 + chunk_rows) - r0));
  }
  for (const ColumnEntry& m : metas) {
    AppendPod(&footer, static_cast<uint32_t>(m.name.size()));
    footer += m.name;
    AppendPod(&footer, static_cast<uint8_t>(m.physical));
    uint8_t flags = 0;
    if (m.dict_encoded) flags |= kFlagDictEncoded;
    if (m.was_category) flags |= kFlagWasCategory;
    AppendPod(&footer, flags);
    if (m.dict_encoded) {
      AppendPod(&footer, m.dict_offset);
      AppendPod(&footer, m.dict_bytes);
      AppendPod(&footer, m.dict_count);
    }
    for (const ChunkMeta& cm : m.chunks) {
      AppendPod(&footer, cm.offset);
      AppendPod(&footer, cm.validity_bytes);
      AppendPod(&footer, cm.payload_bytes);
      AppendPod(&footer, cm.zone.null_count);
      AppendPod(&footer, static_cast<uint8_t>(cm.zone.has_bounds ? 1 : 0));
      AppendPod(&footer, cm.zone.min_i);
      AppendPod(&footer, cm.zone.max_i);
      AppendPod(&footer, cm.zone.min_d);
      AppendPod(&footer, cm.zone.max_d);
    }
  }
  Status injected = FaultPoint("lfc.write");
  if (!injected.ok()) return FailWrite(&out, tmp, injected);
  write_raw(footer.data(), footer.size());
  const uint64_t footer_len = footer.size();
  const uint64_t footer_checksum = Fnv1a64(footer.data(), footer.size());
  write_raw(&footer_len, sizeof(footer_len));
  write_raw(&footer_checksum, sizeof(footer_checksum));
  write_raw(&kLfcMagic, sizeof(kLfcMagic));
  out.flush();
  if (!out.good()) return FailWrite(&out, tmp, Status::OK());
  out.close();

  // Atomic publish: the final path only ever holds a complete file.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot publish lfc file " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct LfcReader::Impl {
  void* map = MAP_FAILED;
  size_t map_size = 0;
  std::vector<ColumnEntry> cols;

  ~Impl() {
    if (map != MAP_FAILED) ::munmap(map, map_size);
  }

  const uint8_t* base() const { return static_cast<const uint8_t*>(map); }
};

LfcReader::LfcReader() : impl_(new Impl) {}
LfcReader::~LfcReader() = default;

bool IsLfcFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kLfcMagic;
}

Result<std::unique_ptr<LfcReader>> LfcReader::Open(const std::string& path,
                                                   MemoryTracker* tracker) {
  LAFP_RETURN_NOT_OK(FaultPoint("lfc.read"));
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open lfc file " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat lfc file " + path);
  }
  const size_t file_size = static_cast<size_t>(st.st_size);
  if (file_size < sizeof(kLfcMagic) + kTrailerBytes) {
    ::close(fd);
    return Corrupt(path, "file too small for header and trailer");
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap lfc file " + path + " (" +
                           std::strerror(errno) + ")");
  }

  std::unique_ptr<LfcReader> reader(new LfcReader());
  reader->impl_->map = map;
  reader->impl_->map_size = file_size;
  reader->path_ = path;
  reader->tracker_ = tracker;
  const uint8_t* base = reader->impl_->base();

  uint64_t head_magic = 0;
  std::memcpy(&head_magic, base, sizeof(head_magic));
  if (head_magic != kLfcMagic) return Corrupt(path, "bad magic");

  // Trailer: footer_len | footer_checksum | magic at the very end.
  uint64_t footer_len = 0, footer_checksum = 0, tail_magic = 0;
  const uint8_t* trailer = base + file_size - kTrailerBytes;
  std::memcpy(&footer_len, trailer, 8);
  std::memcpy(&footer_checksum, trailer + 8, 8);
  std::memcpy(&tail_magic, trailer + 16, 8);
  if (tail_magic != kLfcMagic) return Corrupt(path, "bad trailer magic");
  const uint64_t max_footer =
      file_size - sizeof(kLfcMagic) - kTrailerBytes;
  if (footer_len > max_footer) {
    return Corrupt(path, "footer length " + std::to_string(footer_len) +
                             " exceeds file size");
  }
  const uint64_t footer_start = file_size - kTrailerBytes - footer_len;
  if (Fnv1a64(base + footer_start, footer_len) != footer_checksum) {
    return Corrupt(path, "footer checksum mismatch");
  }
  reader->info_.footer_checksum = footer_checksum;

  Cursor cur(base + footer_start, footer_len);
  uint32_t version = 0, ncols = 0, nchunks = 0;
  uint64_t nrows = 0, nominal_chunk_rows = 0;
  if (!cur.Read(&version) || !cur.Read(&nrows) ||
      !cur.Read(&nominal_chunk_rows) || !cur.Read(&ncols) ||
      !cur.Read(&nchunks)) {
    return Corrupt(path, "truncated footer header");
  }
  if (version != kLfcVersion) {
    return Status::IOError("unsupported lfc version " +
                           std::to_string(version) + " in " + path);
  }
  // Every chunk row count is a u64 and every column needs at least its
  // name length + type + flags; clamp both counts before any loop.
  if (nchunks > cur.remaining() / 8) {
    return Corrupt(path, "chunk count exceeds footer size");
  }
  reader->chunk_rows_.resize(nchunks);
  uint64_t rows_sum = 0;
  for (uint32_t i = 0; i < nchunks; ++i) {
    if (!cur.Read(&reader->chunk_rows_[i])) {
      return Corrupt(path, "truncated chunk table");
    }
    if (reader->chunk_rows_[i] == 0 || reader->chunk_rows_[i] > nrows) {
      return Corrupt(path, "chunk row count out of range");
    }
    // Overflow-safe accumulation: huge per-chunk counts must not wrap
    // rows_sum back onto nrows and launder themselves through the sum
    // check below.
    if (reader->chunk_rows_[i] > nrows - rows_sum) {
      return Corrupt(path, "chunk rows exceed row count");
    }
    rows_sum += reader->chunk_rows_[i];
  }
  if (rows_sum != nrows) {
    return Corrupt(path, "chunk rows do not sum to row count");
  }
  if (ncols == 0 && nrows != 0) {
    // The writer only emits chunks for frames with columns; without this
    // a column-less footer could claim an arbitrary row count that no
    // per-chunk payload check below would ever bound.
    return Corrupt(path, "row count without columns");
  }
  if (ncols > cur.remaining() / 6) {
    return Corrupt(path, "column count exceeds footer size");
  }

  reader->info_.nrows = nrows;
  reader->info_.num_chunks = nchunks;
  reader->impl_->cols.resize(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    ColumnEntry& col = reader->impl_->cols[c];
    uint32_t name_len = 0;
    if (!cur.Read(&name_len) || name_len > cur.remaining() ||
        !cur.ReadString(name_len, &col.name)) {
      return Corrupt(path, "truncated column name");
    }
    uint8_t type_raw = 0, flags = 0;
    if (!cur.Read(&type_raw) || !cur.Read(&flags)) {
      return Corrupt(path, "truncated column meta");
    }
    col.physical = static_cast<df::DataType>(type_raw);
    col.dict_encoded = (flags & kFlagDictEncoded) != 0;
    col.was_category = (flags & kFlagWasCategory) != 0;
    switch (col.physical) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp:
      case df::DataType::kDouble:
      case df::DataType::kBool:
        if (col.dict_encoded) {
          return Corrupt(path, "dictionary flag on numeric column");
        }
        break;
      case df::DataType::kString:
      case df::DataType::kCategory:
        if (!col.dict_encoded) {
          return Corrupt(path, "string column without dictionary");
        }
        break;
      default:
        return Corrupt(path, "bad column type");
    }
    if (col.dict_encoded) {
      if (!cur.Read(&col.dict_offset) || !cur.Read(&col.dict_bytes) ||
          !cur.Read(&col.dict_count)) {
        return Corrupt(path, "truncated dictionary meta");
      }
      if (col.dict_offset > footer_start ||
          col.dict_bytes > footer_start - col.dict_offset) {
        return Corrupt(path, "dictionary extends past data section");
      }
      if (col.dict_count > col.dict_bytes / 4 + 1) {
        return Corrupt(path, "dictionary count exceeds its byte length");
      }
      // Decode the dictionary eagerly; entry lengths are clamped against
      // the remaining dictionary bytes ("over-long offsets" corpus).
      auto dict = std::make_shared<df::Dictionary>();
      Cursor dcur(base + col.dict_offset, col.dict_bytes);
      for (uint32_t i = 0; i < col.dict_count; ++i) {
        uint32_t len = 0;
        std::string entry;
        if (!dcur.Read(&len) || len > dcur.remaining() ||
            !dcur.ReadString(len, &entry)) {
          return Corrupt(path, "truncated dictionary entry");
        }
        dict->push_back(std::move(entry));
      }
      if (dcur.remaining() != 0) {
        return Corrupt(path, "trailing bytes in dictionary");
      }
      col.dict = std::move(dict);
    }
    const uint64_t width = PayloadWidth(col);
    col.chunks.resize(nchunks);
    for (uint32_t i = 0; i < nchunks; ++i) {
      ChunkMeta& cm = col.chunks[i];
      uint8_t has_bounds = 0;
      if (!cur.Read(&cm.offset) || !cur.Read(&cm.validity_bytes) ||
          !cur.Read(&cm.payload_bytes) || !cur.Read(&cm.zone.null_count) ||
          !cur.Read(&has_bounds) || !cur.Read(&cm.zone.min_i) ||
          !cur.Read(&cm.zone.max_i) || !cur.Read(&cm.zone.min_d) ||
          !cur.Read(&cm.zone.max_d)) {
        return Corrupt(path, "truncated chunk meta");
      }
      cm.zone.has_bounds = has_bounds != 0;
      const uint64_t rows = reader->chunk_rows_[i];
      // The chunk's bytes must lie entirely inside the data section
      // (between the head magic and the footer), checked without
      // overflow: each length is clamped against what is left.
      if (cm.offset < sizeof(kLfcMagic) || cm.offset > footer_start ||
          cm.validity_bytes > footer_start - cm.offset ||
          cm.payload_bytes >
              footer_start - cm.offset - cm.validity_bytes) {
        return Corrupt(path, "chunk extends past data section");
      }
      // Bound the row count in division form BEFORE any arithmetic on
      // it: a crafted `rows` near 2^64/width would wrap `rows * width`
      // (and `rows + 7`) and make a zero-byte chunk claim to hold 2^61
      // rows, sending the decoder far past the mapping. `width` is 1, 4,
      // or 8 for every column type accepted above.
      const uint64_t payload_room =
          footer_start - cm.offset - cm.validity_bytes;
      if (rows > payload_room / width) {
        return Corrupt(path, "chunk row count exceeds data section");
      }
      if (cm.validity_bytes != 0 && cm.validity_bytes != (rows + 7) / 8) {
        return Corrupt(path, "validity bitmap size mismatch");
      }
      if (cm.payload_bytes != rows * width) {
        return Corrupt(path, "payload size mismatch");
      }
      if (cm.zone.null_count > rows) {
        return Corrupt(path, "null count exceeds chunk rows");
      }
    }
    reader->info_.columns.push_back(
        {col.name, col.was_category ? df::DataType::kCategory
         : col.physical == df::DataType::kCategory ? df::DataType::kString
                                                   : col.physical});
  }
  if (cur.remaining() != 0) {
    return Corrupt(path, "trailing bytes in footer");
  }
  return reader;
}

const LfcZoneMap& LfcReader::zone_map(size_t col, size_t chunk) const {
  return impl_->cols[col].chunks[chunk].zone;
}

Result<std::vector<size_t>> LfcReader::SelectColumns(
    const std::vector<std::string>& usecols) const {
  std::vector<size_t> out;
  if (usecols.empty()) {
    out.resize(impl_->cols.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] = i;
    return out;
  }
  for (const auto& want : usecols) {
    bool found = false;
    for (size_t i = 0; i < impl_->cols.size(); ++i) {
      if (impl_->cols[i].name == want) {
        out.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::KeyError("usecols: no column '" + want + "' in '" +
                              path_ + "'");
    }
  }
  // pandas usecols keeps file order, matching the CSV reader.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool LfcReader::ChunkMayMatch(size_t chunk,
                              const std::vector<LfcPredicate>& prune) const {
  const uint64_t rows = chunk_rows_[chunk];
  for (const LfcPredicate& p : prune) {
    for (const ColumnEntry& col : impl_->cols) {
      if (col.name != p.column) continue;
      if (ChunkNeverMatches(col, col.chunks[chunk], rows, p)) return false;
      break;
    }
    // Unknown columns fall through as indeterminate: the filter's own
    // column lookup reports the KeyError, exactly as without pruning.
  }
  return true;
}

namespace {

/// Decode `take` rows of one column chunk, appending into caller-owned
/// typed vectors (so multi-chunk assembly is one allocation per column).
struct ColumnAssembly {
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint8_t> bools;
  std::vector<int32_t> codes;
  std::vector<std::string> strings;
  std::vector<uint8_t> validity;
  bool saw_invalid = false;
};

Status DecodeChunkInto(const std::string& path, const ColumnEntry& col,
                       const ChunkMeta& cm, const uint8_t* base,
                       uint64_t take, ColumnAssembly* out) {
  // Validity first: bits are LSB-first within each byte.
  std::vector<uint8_t> valid;
  if (cm.validity_bytes != 0) {
    valid.resize(take);
    const uint8_t* bitmap = base + cm.offset;
    for (uint64_t i = 0; i < take; ++i) {
      valid[i] = (bitmap[i / 8] >> (i % 8)) & 1;
      if (valid[i] == 0) out->saw_invalid = true;
    }
  }
  const uint8_t* payload = base + cm.offset + cm.validity_bytes;
  const size_t prior = out->validity.size();
  out->validity.resize(prior + take, 1);
  if (!valid.empty()) {
    std::copy(valid.begin(), valid.end(), out->validity.begin() + prior);
  }
  switch (col.physical) {
    case df::DataType::kInt64:
    case df::DataType::kTimestamp: {
      const size_t at = out->ints.size();
      out->ints.resize(at + take);
      std::memcpy(out->ints.data() + at, payload, take * 8);
      break;
    }
    case df::DataType::kDouble: {
      const size_t at = out->doubles.size();
      out->doubles.resize(at + take);
      std::memcpy(out->doubles.data() + at, payload, take * 8);
      break;
    }
    case df::DataType::kBool: {
      const size_t at = out->bools.size();
      out->bools.resize(at + take);
      std::memcpy(out->bools.data() + at, payload, take);
      break;
    }
    case df::DataType::kString:
    case df::DataType::kCategory: {
      const df::Dictionary& dict = *col.dict;
      for (uint64_t i = 0; i < take; ++i) {
        uint32_t code = 0;
        std::memcpy(&code, payload + i * 4, 4);
        const bool is_valid = valid.empty() || valid[i] != 0;
        if (is_valid && code >= col.dict_count) {
          return Corrupt(path, "dictionary code out of range");
        }
        if (!is_valid) code = 0;  // never dereference a null row's code
        if (col.was_category) {
          out->codes.push_back(static_cast<int32_t>(code));
        } else {
          out->strings.push_back(is_valid ? dict[code] : std::string());
        }
      }
      break;
    }
    case df::DataType::kNull:
      return Corrupt(path, "bad column type");
  }
  return Status::OK();
}

Result<df::ColumnPtr> FinishAssembly(const ColumnEntry& col,
                                     ColumnAssembly&& a,
                                     MemoryTracker* tracker) {
  std::vector<uint8_t> validity;
  if (a.saw_invalid) validity = std::move(a.validity);
  switch (col.physical) {
    case df::DataType::kInt64:
      return df::Column::MakeInt(std::move(a.ints), std::move(validity),
                                 tracker);
    case df::DataType::kTimestamp:
      return df::Column::MakeTimestamp(std::move(a.ints),
                                       std::move(validity), tracker);
    case df::DataType::kDouble:
      return df::Column::MakeDouble(std::move(a.doubles),
                                    std::move(validity), tracker);
    case df::DataType::kBool:
      return df::Column::MakeBool(std::move(a.bools), std::move(validity),
                                  tracker);
    case df::DataType::kString:
    case df::DataType::kCategory:
      if (col.was_category) {
        return df::Column::MakeCategory(std::move(a.codes),
                                        std::move(validity), col.dict,
                                        tracker);
      }
      return df::Column::MakeString(std::move(a.strings),
                                    std::move(validity), tracker);
    default:
      return Status::Invalid("bad lfc column type");
  }
}

}  // namespace

Result<df::DataFrame> LfcReader::ReadChunk(size_t chunk,
                                           const std::vector<size_t>& col_idxs,
                                           size_t limit) const {
  const uint64_t rows = chunk_rows_[chunk];
  const uint64_t take =
      limit == 0 ? rows : std::min<uint64_t>(rows, limit);
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> cols;
  for (size_t idx : col_idxs) {
    const ColumnEntry& col = impl_->cols[idx];
    ColumnAssembly a;
    LAFP_RETURN_NOT_OK(DecodeChunkInto(path_, col, col.chunks[chunk],
                                       impl_->base(), take, &a));
    LAFP_ASSIGN_OR_RETURN(df::ColumnPtr built,
                          FinishAssembly(col, std::move(a), tracker_));
    names.push_back(col.name);
    cols.push_back(std::move(built));
  }
  return df::DataFrame::Make(std::move(names), std::move(cols));
}

Result<df::DataFrame> LfcReader::EmptyFrame(
    const std::vector<size_t>& col_idxs) const {
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> cols;
  for (size_t idx : col_idxs) {
    const ColumnEntry& col = impl_->cols[idx];
    LAFP_ASSIGN_OR_RETURN(df::ColumnPtr built,
                          FinishAssembly(col, ColumnAssembly{}, tracker_));
    names.push_back(col.name);
    cols.push_back(std::move(built));
  }
  return df::DataFrame::Make(std::move(names), std::move(cols));
}

Result<df::DataFrame> ReadLfcFile(const std::string& path,
                                  const LfcReadOptions& options,
                                  MemoryTracker* tracker,
                                  LfcReadStats* stats) {
  trace::Span span("lfc:read", "io");
  static auto* lfc_reads =
      metrics::Registry::Global()->GetCounter("lfc.reads");
  static auto* lfc_skipped =
      metrics::Registry::Global()->GetCounter("lfc.chunks_skipped");
  lfc_reads->Increment();
  LAFP_ASSIGN_OR_RETURN(auto reader, LfcReader::Open(path, tracker));
  LAFP_ASSIGN_OR_RETURN(std::vector<size_t> sel,
                        reader->SelectColumns(options.usecols));

  // Pick the surviving (chunk, take) slices. A pruned chunk still
  // consumes its share of the nrows quota so that the pruned scan is
  // exactly Filter-equivalent to the unpruned scan's first-nrows rows.
  const bool pruning = options.prune_enabled && !options.prune.empty();
  struct Slice {
    size_t chunk;
    uint64_t take;
  };
  std::vector<Slice> slices;
  uint64_t remaining = options.nrows == 0
                           ? std::numeric_limits<uint64_t>::max()
                           : options.nrows;
  size_t total = 0, skipped = 0;
  for (size_t chunk = 0; chunk < reader->num_chunks(); ++chunk) {
    if (remaining == 0) break;
    const uint64_t take =
        std::min<uint64_t>(reader->chunk_rows(chunk), remaining);
    remaining -= take;
    ++total;
    if (pruning && !reader->ChunkMayMatch(chunk, options.prune)) {
      ++skipped;
      continue;
    }
    slices.push_back({chunk, take});
  }
  if (stats != nullptr) {
    stats->chunks_total = total;
    stats->chunks_skipped = skipped;
  }
  lfc_skipped->Add(static_cast<int64_t>(skipped));
  if (span.active()) {
    span.AddArg("chunks", static_cast<int64_t>(total));
    span.AddArg("skipped", static_cast<int64_t>(skipped));
  }

  if (slices.empty()) return reader->EmptyFrame(sel);
  if (slices.size() == 1) {
    return reader->ReadChunk(slices[0].chunk, sel,
                             static_cast<size_t>(slices[0].take));
  }
  // Multi-chunk assembly: one pass per column over the surviving
  // slices, one allocation per column.
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> cols;
  for (size_t idx : sel) {
    df::ColumnPtr built;
    LAFP_ASSIGN_OR_RETURN(
        built, [&]() -> Result<df::ColumnPtr> {
          ColumnAssembly a;
          const ColumnEntry& col = reader->impl_->cols[idx];
          for (const Slice& s : slices) {
            LAFP_RETURN_NOT_OK(DecodeChunkInto(path, col,
                                               col.chunks[s.chunk],
                                               reader->impl_->base(), s.take,
                                               &a));
          }
          return FinishAssembly(col, std::move(a), tracker);
        }());
    names.push_back(reader->impl_->cols[idx].name);
    cols.push_back(std::move(built));
  }
  return df::DataFrame::Make(std::move(names), std::move(cols));
}

Result<LfcFileInfo> ReadLfcInfo(const std::string& path) {
  LAFP_ASSIGN_OR_RETURN(auto reader, LfcReader::Open(path, nullptr));
  return reader->info();
}

Status ConvertCsvToLfc(const std::string& csv_path,
                       const std::string& lfc_path,
                       const CsvReadOptions& csv_options,
                       const LfcWriteOptions& options,
                       MemoryTracker* tracker) {
  LAFP_ASSIGN_OR_RETURN(df::DataFrame frame,
                        ReadCsv(csv_path, csv_options, tracker));
  return WriteLfcFile(frame, lfc_path, options);
}

}  // namespace lafp::io
