#ifndef LAFP_IO_COLUMNAR_H_
#define LAFP_IO_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "dataframe/dataframe.h"
#include "io/csv.h"

namespace lafp::io {

/// LFC ("Lazy Fat Columnar") — the native on-disk table format
/// (ROADMAP item 2, DESIGN.md "Native columnar storage"). One file per
/// table:
///
///   [magic u64]
///   [chunk data: per chunk, per column: validity bitmap + payload]
///   [dictionary section: per string/category column]
///   [footer: versioned metadata + per-chunk zone maps]
///   [trailer: footer_len u64 | footer_checksum u64 | magic u64]
///
/// The footer lives at the end so the writer streams chunk payloads
/// without back-patching; readers locate it through the fixed-size
/// trailer. Reads are mmap-backed and validate every offset/length
/// against the mapped size before touching bytes (the spill-reader
/// clamping discipline, hardened further by tests/lfc_corpus).
///
/// Fault points: `lfc.write` fires once per column-chunk while writing
/// (partial tmp files are unlinked; the final rename is atomic) and
/// `lfc.read` fires at open.

inline constexpr uint64_t kLfcMagic = 0x4c41465043465331ULL;  // "LAFPCFS1"
inline constexpr uint32_t kLfcVersion = 1;

struct LfcWriteOptions {
  /// Rows per chunk; each chunk carries its own zone maps, so smaller
  /// chunks prune harder but cost more metadata.
  size_t chunk_rows = 65536;
};

/// One conjunctive scan predicate (`column <op> scalar`) consulted
/// against zone maps at scan time. Pruning only ever *skips* chunks that
/// cannot contain a matching row — the actual filter kernel still runs
/// above the scan, so an over-conservative zone test is never wrong.
struct LfcPredicate {
  std::string column;
  df::CompareOp op = df::CompareOp::kEq;
  df::Scalar scalar;
};

struct LfcReadOptions {
  std::vector<std::string> usecols;  // empty = all; selected in file order
  size_t nrows = 0;                  // 0 = all rows
  /// Conjunctive zone-map predicates attached by the optimizer's
  /// zone-prune pass (or tests). Skipped chunks still consume their
  /// `nrows` quota so pruned output == Filter(unpruned output).
  std::vector<LfcPredicate> prune;
  bool prune_enabled = true;
};

struct LfcReadStats {
  size_t chunks_total = 0;    // chunks inside the nrows window
  size_t chunks_skipped = 0;  // zone-map pruned
};

/// Per-chunk zone map. `has_bounds` is false when the chunk holds no
/// valid, non-NaN value (then no comparison against a non-null scalar
/// can match) and always for dictionary-encoded columns (their pruning
/// uses dictionary membership, not ordering).
struct LfcZoneMap {
  uint64_t null_count = 0;
  bool has_bounds = false;
  int64_t min_i = 0, max_i = 0;  // int64 / timestamp / bool space
  double min_d = 0.0, max_d = 0.0;  // double space
};

struct LfcColumnInfo {
  std::string name;
  df::DataType type = df::DataType::kNull;  // logical (kCategory kept)
};

struct LfcFileInfo {
  uint64_t nrows = 0;
  size_t num_chunks = 0;
  std::vector<LfcColumnInfo> columns;
  uint64_t footer_checksum = 0;
};

/// True when `path` starts with the LFC magic (false on any IO error).
/// Cheap enough for per-read dispatch sniffing.
bool IsLfcFile(const std::string& path);

/// Write `frame` as an LFC file. Streams into `path + ".tmp"` and
/// renames atomically; a failed or faulted write never leaves a partial
/// file at either path. kNull-typed columns are rejected.
Status WriteLfcFile(const df::DataFrame& frame, const std::string& path,
                    const LfcWriteOptions& options = {});

/// Eager whole-file read with projection, row limit, and zone-map
/// pruning. `stats`, when non-null, reports chunk-skip counts.
Result<df::DataFrame> ReadLfcFile(const std::string& path,
                                  const LfcReadOptions& options,
                                  MemoryTracker* tracker,
                                  LfcReadStats* stats = nullptr);

/// Footer-only metadata: schema, row/chunk counts, footer checksum.
/// Used by plan fingerprinting, the rewriter, and the result cache.
Result<LfcFileInfo> ReadLfcInfo(const std::string& path);

/// Convert a CSV file (with full read options) into an LFC file.
Status ConvertCsvToLfc(const std::string& csv_path,
                       const std::string& lfc_path,
                       const CsvReadOptions& csv_options,
                       const LfcWriteOptions& options,
                       MemoryTracker* tracker);

/// mmap-backed chunk reader — the streaming/partitioned scan surface
/// (Dask partitions, Modin chunk-per-partition reads). Thread-safe for
/// concurrent ReadChunk calls: the mapping is immutable and decoded
/// columns charge the (thread-safe) MemoryTracker.
class LfcReader {
 public:
  static Result<std::unique_ptr<LfcReader>> Open(const std::string& path,
                                                 MemoryTracker* tracker);
  ~LfcReader();

  LfcReader(const LfcReader&) = delete;
  LfcReader& operator=(const LfcReader&) = delete;

  const LfcFileInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  size_t num_chunks() const { return chunk_rows_.size(); }
  uint64_t chunk_rows(size_t chunk) const { return chunk_rows_[chunk]; }
  const LfcZoneMap& zone_map(size_t col, size_t chunk) const;

  /// Resolve `usecols` to column indexes in file order (the pandas
  /// usecols contract, matching the CSV reader). KeyError on a missing
  /// name; empty input selects every column.
  Result<std::vector<size_t>> SelectColumns(
      const std::vector<std::string>& usecols) const;

  /// Zone-map test: can `chunk` contain a row satisfying every
  /// predicate? Indeterminate predicates (unknown column, type mismatch
  /// the compare kernel would reject) conservatively return true.
  bool ChunkMayMatch(size_t chunk,
                     const std::vector<LfcPredicate>& prune) const;

  /// Decode the first `limit` rows (0 = all) of `chunk`, projected to
  /// `col_idxs` (file-order indexes from SelectColumns).
  Result<df::DataFrame> ReadChunk(size_t chunk,
                                  const std::vector<size_t>& col_idxs,
                                  size_t limit = 0) const;

  /// An empty frame carrying the projected schema (header-only reads).
  Result<df::DataFrame> EmptyFrame(const std::vector<size_t>& col_idxs) const;

 private:
  struct Impl;
  LfcReader();

  // ReadLfcFile assembles multi-chunk columns straight from the mapping
  // (one allocation per column) instead of concatenating ReadChunk frames.
  friend Result<df::DataFrame> ReadLfcFile(const std::string& path,
                                           const LfcReadOptions& options,
                                           MemoryTracker* tracker,
                                           LfcReadStats* stats);

  std::unique_ptr<Impl> impl_;
  std::string path_;
  LfcFileInfo info_;
  std::vector<uint64_t> chunk_rows_;
  MemoryTracker* tracker_ = nullptr;
};

}  // namespace lafp::io

#endif  // LAFP_IO_COLUMNAR_H_
