#ifndef LAFP_IO_CSV_H_
#define LAFP_IO_CSV_H_

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "dataframe/dataframe.h"

namespace lafp::io {

/// Options mirroring the pandas read_csv arguments the paper's rewrites
/// manipulate: `usecols` (column-selection optimization, §3.1) and `dtype`
/// overrides (metadata optimization, §3.6 — including "category").
struct CsvReadOptions {
  std::vector<std::string> usecols;  // empty = all columns
  std::map<std::string, df::DataType> dtypes;  // per-column overrides
  char delimiter = ',';
  size_t nrows = 0;        // 0 = read all rows
  size_t infer_rows = 64;  // data rows sampled for type inference
};

/// Streaming CSV reader; the Dask backend pulls fixed-size chunks so no
/// more than a partition is resident at a time.
class CsvChunkReader {
 public:
  /// Opens the file and reads the header. Column types are inferred from a
  /// buffered prefix (or taken from options.dtypes).
  static Result<std::unique_ptr<CsvChunkReader>> Open(
      const std::string& path, const CsvReadOptions& options,
      MemoryTracker* tracker);

  /// Next chunk of at most `rows` rows, or nullopt at end of file.
  /// Columns follow the selected-column order.
  Result<std::optional<df::DataFrame>> NextChunk(size_t rows);

  /// Names of the columns this reader produces (after usecols).
  const std::vector<std::string>& column_names() const { return out_names_; }
  const std::vector<df::DataType>& column_types() const { return out_types_; }

  /// All header names in file order (before usecols).
  const std::vector<std::string>& header() const { return header_; }

 private:
  CsvChunkReader() = default;

  Status Init(const std::string& path, const CsvReadOptions& options,
              MemoryTracker* tracker);
  Status ParseRowInto(const std::string& line,
                      std::vector<df::ColumnBuilder>* builders);

  std::ifstream in_;
  std::string path_;
  CsvReadOptions options_;
  MemoryTracker* tracker_ = nullptr;
  std::vector<std::string> header_;
  std::vector<std::string> out_names_;
  std::vector<df::DataType> out_types_;
  std::vector<int> out_field_index_;  // position in the CSV row
  std::vector<bool> wants_category_;  // categorize after building strings
  std::vector<std::string> buffered_lines_;  // inference prefix not yet consumed
  size_t buffered_pos_ = 0;
  size_t rows_emitted_ = 0;
  bool eof_ = false;
};

/// Eager whole-file read (the Pandas/Modin path).
Result<df::DataFrame> ReadCsv(const std::string& path,
                              const CsvReadOptions& options,
                              MemoryTracker* tracker);

/// Write a dataframe as CSV (used by the data generators and tests).
Status WriteCsv(const df::DataFrame& frame, const std::string& path);

/// Split one CSV record honoring double-quoted fields with "" escapes.
/// Exposed for tests and the metadata sampler.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

}  // namespace lafp::io

#endif  // LAFP_IO_CSV_H_
