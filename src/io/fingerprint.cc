#include "io/fingerprint.h"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/hash.h"
#include "io/columnar.h"
#include "io/csv.h"

namespace lafp::io {

Result<FileFingerprint> FingerprintFile(const std::string& path,
                                        size_t sample_bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());

  FileFingerprint fp;
  fp.size_bytes = static_cast<int64_t>(size);
  fp.mtime_ns = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  uint64_t sample_hash = Fnv1a64(path);
  std::vector<char> buf(sample_bytes);
  // Head sample.
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  sample_hash = Fnv1a64(buf.data(), static_cast<size_t>(in.gcount()),
                        sample_hash);
  // Tail sample (distinct from the head when the file is large enough).
  if (size > sample_bytes) {
    in.clear();
    const auto tail = std::min<uint64_t>(sample_bytes, size - sample_bytes);
    in.seekg(-static_cast<std::streamoff>(tail), std::ios::end);
    in.read(buf.data(), static_cast<std::streamsize>(tail));
    sample_hash = Fnv1a64(buf.data(), static_cast<size_t>(in.gcount()),
                          sample_hash);
  }

  uint64_t h = sample_hash;
  h = HashCombine(h, static_cast<uint64_t>(fp.size_bytes));
  h = HashCombine(h, static_cast<uint64_t>(fp.mtime_ns));
  fp.hash = h;
  return fp;
}

Result<FileFingerprint> FingerprintLfcFile(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  constexpr uint64_t kTrailer = 24;  // footer_len | footer_checksum | magic
  if (size < sizeof(kLfcMagic) + kTrailer) {
    return Status::IOError("not an lfc file (too small): " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  in.seekg(-static_cast<std::streamoff>(16), std::ios::end);
  uint64_t footer_checksum = 0, tail_magic = 0;
  in.read(reinterpret_cast<char*>(&footer_checksum), 8);
  in.read(reinterpret_cast<char*>(&tail_magic), 8);
  if (!in.good() || tail_magic != kLfcMagic) {
    return Status::IOError("not an lfc file (bad trailer): " + path);
  }

  FileFingerprint fp;
  fp.size_bytes = static_cast<int64_t>(size);
  fp.mtime_ns = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());
  uint64_t h = Fnv1a64(path);
  h = HashCombine(h, footer_checksum);
  h = HashCombine(h, static_cast<uint64_t>(fp.size_bytes));
  h = HashCombine(h, static_cast<uint64_t>(fp.mtime_ns));
  fp.hash = h;
  return fp;
}

Result<FileFingerprint> FingerprintInputFile(const std::string& path) {
  if (IsLfcFile(path)) return FingerprintLfcFile(path);
  return FingerprintFile(path);
}

Result<std::vector<std::string>> ReadCsvHeaderNames(const std::string& path,
                                                    char delimiter) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV file: " + path);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return SplitCsvLine(line, delimiter);
}

}  // namespace lafp::io
