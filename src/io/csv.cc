#include "io/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "dataframe/ops.h"

namespace lafp::io {

using df::Column;
using df::ColumnBuilder;
using df::ColumnPtr;
using df::DataFrame;
using df::DataType;

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

namespace {

/// Infer the type of one value; kNull for blanks.
DataType InferValueType(const std::string& raw) {
  std::string_view v = Trim(raw);
  if (v.empty()) return DataType::kNull;
  if (v == "True" || v == "False" || v == "true" || v == "false") {
    return DataType::kBool;
  }
  if (ParseInt64(v).has_value()) return DataType::kInt64;
  if (ParseDouble(v).has_value()) return DataType::kDouble;
  if (df::ParseTimestamp(std::string(v)).ok()) return DataType::kTimestamp;
  return DataType::kString;
}

/// Widening lattice for inference across rows.
DataType UnifyTypes(DataType a, DataType b) {
  if (a == DataType::kNull) return b;
  if (b == DataType::kNull) return a;
  if (a == b) return a;
  auto numeric_rank = [](DataType t) {
    switch (t) {
      case DataType::kBool:
        return 0;
      case DataType::kInt64:
        return 1;
      case DataType::kDouble:
        return 2;
      default:
        return -1;
    }
  };
  int ra = numeric_rank(a), rb = numeric_rank(b);
  if (ra >= 0 && rb >= 0) return ra > rb ? a : b;
  return DataType::kString;  // any other mix degrades to string
}

bool AppendParsed(ColumnBuilder* builder, DataType type,
                  const std::string& raw) {
  std::string_view v = Trim(raw);
  if (v.empty()) {
    builder->AppendNull();
    return true;
  }
  switch (type) {
    case DataType::kInt64: {
      auto p = ParseInt64(v);
      if (!p.has_value()) {
        // Tolerate "3.0" in an int column (replication artifacts).
        auto d = ParseDouble(v);
        if (!d.has_value()) {
          builder->AppendNull();
          return true;
        }
        builder->AppendInt(static_cast<int64_t>(*d));
        return true;
      }
      builder->AppendInt(*p);
      return true;
    }
    case DataType::kDouble: {
      auto p = ParseDouble(v);
      if (!p.has_value()) {
        builder->AppendNull();
      } else {
        builder->AppendDouble(*p);
      }
      return true;
    }
    case DataType::kBool: {
      if (v == "True" || v == "true" || v == "1") {
        builder->AppendBool(true);
      } else if (v == "False" || v == "false" || v == "0") {
        builder->AppendBool(false);
      } else {
        builder->AppendNull();
      }
      return true;
    }
    case DataType::kTimestamp: {
      auto p = df::ParseTimestamp(raw);
      if (!p.ok()) {
        builder->AppendNull();
      } else {
        builder->AppendInt(*p);
      }
      return true;
    }
    case DataType::kString:
      builder->AppendString(raw);
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::unique_ptr<CsvChunkReader>> CsvChunkReader::Open(
    const std::string& path, const CsvReadOptions& options,
    MemoryTracker* tracker) {
  auto reader = std::unique_ptr<CsvChunkReader>(new CsvChunkReader());
  LAFP_RETURN_NOT_OK(reader->Init(path, options, tracker));
  return reader;
}

Status CsvChunkReader::Init(const std::string& path,
                            const CsvReadOptions& options,
                            MemoryTracker* tracker) {
  path_ = path;
  options_ = options;
  tracker_ = tracker != nullptr ? tracker : MemoryTracker::Default();
  in_.open(path);
  if (!in_.is_open()) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::string header_line;
  if (!std::getline(in_, header_line)) {
    return Status::IOError("empty CSV file '" + path + "'");
  }
  if (!header_line.empty() && header_line.back() == '\r') {
    header_line.pop_back();
  }
  header_ = SplitCsvLine(header_line, options_.delimiter);

  // Resolve usecols -> field indexes, preserving file order like pandas.
  std::vector<int> selected;
  if (options_.usecols.empty()) {
    for (size_t i = 0; i < header_.size(); ++i) {
      selected.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& want : options_.usecols) {
      auto it = std::find(header_.begin(), header_.end(), want);
      if (it == header_.end()) {
        return Status::KeyError("usecols: no column '" + want + "' in '" +
                                path + "'");
      }
      selected.push_back(static_cast<int>(it - header_.begin()));
    }
    std::sort(selected.begin(), selected.end());
  }
  for (int idx : selected) {
    out_names_.push_back(header_[idx]);
    out_field_index_.push_back(idx);
  }

  // Buffer a prefix for type inference.
  std::string line;
  while (buffered_lines_.size() < options_.infer_rows &&
         std::getline(in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    buffered_lines_.push_back(std::move(line));
  }
  if (buffered_lines_.size() < options_.infer_rows) eof_ = true;

  out_types_.assign(out_names_.size(), DataType::kNull);
  wants_category_.assign(out_names_.size(), false);
  for (size_t c = 0; c < out_names_.size(); ++c) {
    auto it = options_.dtypes.find(out_names_[c]);
    if (it != options_.dtypes.end()) {
      if (it->second == DataType::kCategory) {
        out_types_[c] = DataType::kString;
        wants_category_[c] = true;
      } else {
        out_types_[c] = it->second;
      }
      continue;
    }
    DataType t = DataType::kNull;
    for (const auto& buffered : buffered_lines_) {
      auto fields = SplitCsvLine(buffered, options_.delimiter);
      if (static_cast<size_t>(out_field_index_[c]) >= fields.size()) {
        continue;
      }
      t = UnifyTypes(t, InferValueType(fields[out_field_index_[c]]));
      if (t == DataType::kString) break;
    }
    if (t == DataType::kNull) t = DataType::kString;  // all blank
    out_types_[c] = t;
  }
  return Status::OK();
}

Status CsvChunkReader::ParseRowInto(
    const std::string& line, std::vector<ColumnBuilder>* builders) {
  auto fields = SplitCsvLine(line, options_.delimiter);
  for (size_t c = 0; c < out_field_index_.size(); ++c) {
    size_t idx = static_cast<size_t>(out_field_index_[c]);
    if (idx >= fields.size()) {
      (*builders)[c].AppendNull();
      continue;
    }
    if (!AppendParsed(&(*builders)[c], out_types_[c], fields[idx])) {
      return Status::IOError("unparseable field in '" + path_ + "'");
    }
  }
  return Status::OK();
}

Result<std::optional<DataFrame>> CsvChunkReader::NextChunk(size_t rows) {
  if (rows == 0) return Status::Invalid("chunk size must be positive");
  static auto* chunk_counter =
      metrics::Registry::Global()->GetCounter("csv.chunks");
  chunk_counter->Increment();
  LAFP_RETURN_NOT_OK(FaultPoint("csv.read"));
  bool exhausted =
      buffered_pos_ >= buffered_lines_.size() && (eof_ || !in_.good());
  if (exhausted || (options_.nrows > 0 && rows_emitted_ >= options_.nrows)) {
    return std::optional<DataFrame>();
  }
  if (options_.nrows > 0) {
    rows = std::min(rows, options_.nrows - rows_emitted_);
  }
  std::vector<ColumnBuilder> builders;
  builders.reserve(out_names_.size());
  for (size_t c = 0; c < out_names_.size(); ++c) {
    builders.emplace_back(out_types_[c], tracker_);
    builders.back().Reserve(rows);
  }
  size_t built = 0;
  while (built < rows) {
    if (buffered_pos_ < buffered_lines_.size()) {
      LAFP_RETURN_NOT_OK(
          ParseRowInto(buffered_lines_[buffered_pos_], &builders));
      ++buffered_pos_;
      ++built;
      if (buffered_pos_ == buffered_lines_.size()) {
        buffered_lines_.clear();
        buffered_pos_ = 0;
        if (eof_) break;
      }
      continue;
    }
    std::string line;
    if (!std::getline(in_, line)) {
      eof_ = true;
      break;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    LAFP_RETURN_NOT_OK(ParseRowInto(line, &builders));
    ++built;
  }
  if (built == 0) return std::optional<DataFrame>();
  rows_emitted_ += built;

  std::vector<ColumnPtr> cols;
  cols.reserve(builders.size());
  for (size_t c = 0; c < builders.size(); ++c) {
    LAFP_ASSIGN_OR_RETURN(ColumnPtr col, builders[c].Finish());
    if (wants_category_[c]) {
      LAFP_ASSIGN_OR_RETURN(col, df::CategorizeStrings(*col, tracker_));
    }
    cols.push_back(std::move(col));
  }
  LAFP_ASSIGN_OR_RETURN(DataFrame chunk,
                        DataFrame::Make(out_names_, std::move(cols)));
  return std::optional<DataFrame>(std::move(chunk));
}

Result<DataFrame> ReadCsv(const std::string& path,
                          const CsvReadOptions& options,
                          MemoryTracker* tracker) {
  trace::Span span("csv:read", "io");
  if (span.active()) span.AddArg("path", path);
  LAFP_ASSIGN_OR_RETURN(auto reader,
                        CsvChunkReader::Open(path, options, tracker));
  std::vector<DataFrame> chunks;
  while (true) {
    LAFP_ASSIGN_OR_RETURN(auto chunk,
                          reader->NextChunk(1 << 16));
    if (!chunk.has_value()) break;
    chunks.push_back(std::move(*chunk));
  }
  if (chunks.empty()) {
    // Header-only file: empty columns of the inferred types.
    std::vector<ColumnPtr> cols;
    for (size_t c = 0; c < reader->column_names().size(); ++c) {
      DataType t = reader->column_types()[c];
      ColumnBuilder b(t == DataType::kCategory ? DataType::kString : t,
                      tracker);
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, b.Finish());
      cols.push_back(std::move(col));
    }
    return DataFrame::Make(reader->column_names(), std::move(cols));
  }
  if (chunks.size() == 1) return std::move(chunks[0]);
  return df::Concat(chunks);
}

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

namespace {

Status CsvWriteError(const std::string& path) {
  std::string detail = "write failed for '" + path + "'";
  if (errno != 0) {
    detail += ": ";
    detail += std::strerror(errno);
  }
  return Status::IOError(detail);
}

}  // namespace

Status WriteCsv(const DataFrame& frame, const std::string& path) {
  trace::Span span("csv:write", "io");
  if (span.active()) {
    span.AddArg("path", path);
    span.AddArg("rows", static_cast<int64_t>(frame.num_rows()));
  }
  errno = 0;
  LAFP_RETURN_NOT_OK(FaultPoint("csv.write"));
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (size_t i = 0; i < frame.names().size(); ++i) {
    if (i > 0) out << ',';
    out << frame.names()[i];
  }
  out << '\n';
  for (size_t r = 0; r < frame.num_rows(); ++r) {
    for (size_t c = 0; c < frame.num_columns(); ++c) {
      if (c > 0) out << ',';
      const df::Column& col = *frame.column(c);
      if (!col.IsValid(r)) continue;  // empty field == null
      std::string v = col.ValueString(r);
      out << (NeedsQuoting(v, ',') ? QuoteField(v) : v);
    }
    out << '\n';
    // A full disk fails the stream mid-file; formatting the remaining
    // rows into a dead stream would only hide how far the write got.
    if (!out.good()) return CsvWriteError(path);
  }
  out.flush();
  if (!out.good()) return CsvWriteError(path);
  return Status::OK();
}

}  // namespace lafp::io
