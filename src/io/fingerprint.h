#ifndef LAFP_IO_FINGERPRINT_H_
#define LAFP_IO_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lafp::io {

/// Identity of an input file as seen by the cross-query result cache:
/// path, size, mtime, and a hash of a content sample (head + tail bytes).
/// Any in-place edit that changes size, timestamp, or sampled bytes yields
/// a different fingerprint, which is what invalidates cached plan results
/// built from the file. The sample keeps fingerprinting O(1) in file size;
/// mtime catches same-size middle-of-file edits the sample could miss.
struct FileFingerprint {
  uint64_t hash = 0;       // combined digest (path + size + mtime + sample)
  int64_t size_bytes = 0;
  int64_t mtime_ns = 0;
};

/// Fingerprint `path`, sampling up to `sample_bytes` from each end of the
/// file. Fails with IOError when the file does not exist or cannot be
/// read — callers treat that as "not cacheable", not as a program error.
Result<FileFingerprint> FingerprintFile(const std::string& path,
                                        size_t sample_bytes = 4096);

/// Fingerprint an LFC columnar file: path + size + mtime + the stored
/// footer checksum read from the fixed-size trailer (stat + 24 tail
/// bytes — no content sampling needed, the writer already checksummed
/// the footer, which covers schema, chunk layout, and zone maps).
/// IOError when the file is missing or its trailer is not LFC-shaped.
Result<FileFingerprint> FingerprintLfcFile(const std::string& path);

/// Dispatching fingerprint for result-cache input keys: routes LFC files
/// (by magic sniff) to FingerprintLfcFile and everything else to
/// FingerprintFile.
Result<FileFingerprint> FingerprintInputFile(const std::string& path);

/// Column names from a CSV header line (before any usecols selection).
/// Used by plan fingerprinting to seed schema tracking. IOError when the
/// file cannot be opened or is empty.
Result<std::vector<std::string>> ReadCsvHeaderNames(const std::string& path,
                                                    char delimiter = ',');

}  // namespace lafp::io

#endif  // LAFP_IO_FINGERPRINT_H_
