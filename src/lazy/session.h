#ifndef LAFP_LAZY_SESSION_H_
#define LAFP_LAZY_SESSION_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "exec/backend.h"
#include "lazy/task_graph.h"

namespace lafp::lazy {

/// How statements execute. kLazy is the LaFP mode (build a task graph,
/// optimize, execute on demand); kEager reproduces plain Pandas/Modin
/// semantics: every API call materializes immediately.
enum class ExecutionMode : int { kLazy = 0, kEager = 1 };

struct SessionOptions {
  exec::BackendKind backend = exec::BackendKind::kPandas;
  exec::BackendConfig backend_config;
  /// Non-owning; Default() when null. Must outlive the session.
  MemoryTracker* tracker = nullptr;
  ExecutionMode mode = ExecutionMode::kLazy;
  /// LaFP lazy print (§3.3). When false (plain lazy frameworks), print
  /// forces computation immediately.
  bool lazy_print = true;
  /// Destination for print output; std::cout when null. Tests inject a
  /// stringstream; the regression harness hashes it.
  std::ostream* output = nullptr;
};

/// Placeholder markers inside a print template: "\x01<input index>\x02".
std::string PrintPlaceholder(size_t input_index);

/// The LaFP runtime: owns the task graph, the backend, the pending lazy
/// prints, and the execution engine with result clearing (paper §2.5-2.6,
/// §3.3, §3.5).
class Session {
 public:
  explicit Session(SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  TaskGraph* graph() { return &graph_; }
  exec::Backend* backend() { return backend_.get(); }
  MemoryTracker* tracker() { return tracker_; }
  const SessionOptions& options() const { return options_; }

  /// Create a node; in eager mode it executes immediately (and its input
  /// edges are dropped so intermediate results can be garbage collected,
  /// like plain Pandas temporaries).
  Result<TaskNodePtr> AddNode(exec::OpDesc desc,
                              std::vector<TaskNodePtr> inputs);

  /// One segment of a print statement: a literal, or a lazy value.
  struct PrintArg {
    std::string literal;
    TaskNodePtr node;  // null => literal segment
    static PrintArg Literal(std::string s) { return {std::move(s), nullptr}; }
    static PrintArg Value(TaskNodePtr n) { return {"", std::move(n)}; }
  };

  /// Print. Lazy mode with lazy_print: appends a print node chained to the
  /// previous one (§3.3). Otherwise forces computation and emits now.
  Status Print(const std::vector<PrintArg>& args);

  /// Evaluate every pending lazy print (pd.flush(), end of program).
  Status Flush();

  /// Force computation of `node`, first processing pending prints (§3.4).
  /// `live` lists dataframes live after this point (the rewriter's
  /// live_df argument, §3.5): shared subexpressions between `node` and
  /// `live` are persisted for reuse.
  Result<exec::EagerValue> Compute(const TaskNodePtr& node,
                                   const std::vector<TaskNodePtr>& live = {});

  /// Graph-rewriting hook run before each execution round; installed by
  /// the optimizer module. Receives the round's roots and live set.
  using OptimizerHook =
      std::function<Status(Session* session,
                           const std::vector<TaskNodePtr>& roots,
                           const std::vector<TaskNodePtr>& live)>;
  void set_optimizer_hook(OptimizerHook hook) {
    optimizer_hook_ = std::move(hook);
  }

  /// Number of node executions performed so far (tests use this to prove
  /// reuse/clearing behavior).
  int64_t num_node_executions() const { return num_node_executions_; }
  /// Number of nodes whose result was cleared by refcounting (§2.6).
  int64_t num_results_cleared() const { return num_results_cleared_; }

  std::ostream& out();

 private:
  Status ExecuteRound(const std::vector<TaskNodePtr>& roots,
                      const std::vector<TaskNodePtr>& live);
  Status ExecNode(const TaskNodePtr& node);
  Status EmitPrint(const TaskNodePtr& node);
  /// §3.5: mark the topmost nodes shared between the round's targets and
  /// the live set for persistence.
  void MarkSharedForPersist(const std::vector<TaskNodePtr>& roots,
                            const std::vector<TaskNodePtr>& live);

  SessionOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<exec::Backend> backend_;
  TaskGraph graph_;
  std::vector<TaskNodePtr> pending_prints_;
  TaskNodePtr last_print_;
  OptimizerHook optimizer_hook_;
  int64_t num_node_executions_ = 0;
  int64_t num_results_cleared_ = 0;
};

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_SESSION_H_
